//! Property tests for the random distributed-computation generator and
//! the structural invariants every generated poset must satisfy.

use paramount_poset::random::{RandomComputation, RandomEventKind};
use paramount_poset::{oracle, topo, CutSpace, EventId, Frontier, Tid};
use proptest::prelude::*;

fn arb_computation() -> impl Strategy<Value = RandomComputation> {
    (2usize..6, 1usize..7, 0.0f64..1.0, any::<u64>())
        .prop_map(|(n, events, frac, seed)| RandomComputation::new(n, events, frac, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Vector clocks of generated posets are internally consistent:
    /// own component = index, monotone along threads, and every
    /// component points at an existing event.
    #[test]
    fn generated_clocks_are_well_formed(config in arb_computation()) {
        let p = config.generate();
        let n = CutSpace::num_threads(&p);
        for t in 0..n {
            let tid = Tid::from(t);
            let mut prev: Option<paramount_vclock::VectorClock> = None;
            for (k, e) in p.thread_events(tid).enumerate() {
                prop_assert_eq!(e.vc.get(tid), k as u32 + 1);
                for j in 0..n {
                    let tj = Tid::from(j);
                    prop_assert!(
                        (e.vc.get(tj) as usize) <= CutSpace::events_of(&p, tj),
                        "dangling clock component"
                    );
                }
                if let Some(prev) = &prev {
                    prop_assert!(prev.le(&e.vc));
                }
                prev = Some(e.vc.clone());
            }
        }
    }

    /// Receives know their sender: every receive's clock strictly
    /// dominates some other-thread prefix (and internals/sends only know
    /// what process order gives them... unless they follow a receive).
    #[test]
    fn receive_events_carry_cross_knowledge(config in arb_computation()) {
        let p = config.generate_with_payload(|_, kind| kind);
        for e in p.events() {
            if *&e.payload == RandomEventKind::Receive {
                let cross = (0..CutSpace::num_threads(&p)).any(|j| {
                    let tj = Tid::from(j);
                    tj != e.tid() && e.vc.get(tj) > 0
                });
                prop_assert!(cross, "receive with no cross edge at {}", e.id);
            }
        }
    }

    /// `Gmin(e)` read from any generated event's clock is a consistent
    /// cut containing `e` as its own-thread frontier event (§2.2).
    #[test]
    fn gmin_from_clock_is_consistent(config in arb_computation()) {
        let p = config.generate();
        for e in p.events() {
            let gmin = Frontier::from_clock(&e.vc);
            prop_assert!(gmin.is_consistent(&p), "Gmin({}) inconsistent", e.id);
            prop_assert_eq!(gmin.get(e.tid()), e.index());
        }
    }

    /// Both topological orders are linear extensions of every generated
    /// poset, and the interval partition under each covers the lattice.
    #[test]
    fn orders_and_partition_on_generated(config in arb_computation()) {
        // Keep the oracle affordable.
        prop_assume!(config.processes * config.events_per_process <= 18);
        let p = config.generate();
        for order in [topo::weight_order(&p), topo::kahn_order(&p)] {
            prop_assert!(topo::is_linear_extension(&p, &order));
        }
        let total = oracle::count_ideals(&p);
        prop_assert!(total >= (p.num_events() + 1) as u64, "chain lower bound");
        // Upper bound: the full product.
        let product: u64 = (0..CutSpace::num_threads(&p))
            .map(|t| CutSpace::events_of(&p, Tid::from(t)) as u64 + 1)
            .product();
        prop_assert!(total <= product);
    }

    /// The level profile (when affordable) sums to the lattice size and
    /// peaks at least as high as the widest antichain of threads.
    #[test]
    fn level_profile_consistency(config in arb_computation()) {
        prop_assume!(config.processes * config.events_per_process <= 16);
        let p = config.generate();
        let profile = paramount_poset::analysis::level_profile(&p, 1_000_000)
            .expect("small lattice");
        let total: u64 = profile.iter().sum();
        prop_assert_eq!(total, oracle::count_ideals(&p));
        prop_assert_eq!(profile.len(), p.num_events() + 1);
    }

    /// `prefix()` of a consistent cut is itself a well-formed poset whose
    /// lattice divides into the original's (every ideal of the prefix is
    /// an ideal of the whole).
    #[test]
    fn prefix_posets_embed(
        config in arb_computation(),
        idx in any::<prop::sample::Index>(),
    ) {
        prop_assume!(config.processes * config.events_per_process <= 16);
        let p = config.generate();
        let cuts = oracle::enumerate_product_scan(&p);
        let chosen = &cuts[idx.index(cuts.len())];
        let prefix = p.prefix(chosen);
        prop_assert_eq!(prefix.num_events() as u64, chosen.total_events());
        for small in oracle::enumerate_product_scan(&prefix) {
            // Same frontier, interpreted in the full poset, is consistent.
            prop_assert!(small.is_consistent(&p));
            prop_assert!(small.leq(chosen));
        }
    }

    /// EventId display and ordering invariants hold across generated ids.
    #[test]
    fn event_id_roundtrip(config in arb_computation()) {
        let p = config.generate();
        for e in p.events() {
            let id = e.id;
            let shown = format!("{id}");
            prop_assert!(shown.starts_with('e'));
            let again = EventId::new(id.tid, id.index);
            prop_assert_eq!(id, again);
        }
    }
}
