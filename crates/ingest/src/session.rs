//! One ingest session: a [`Recorder`] feeding an [`OnlineEngine`], driven
//! by validated wire frames.
//!
//! A session is the server-side owner of everything one client connection
//! streams: the vector-clock recorder (Algorithm 3 bookkeeping), the name
//! interning tables (first appearance ⇒ id, the same rule as the trace
//! file format), the lock/fork/join legality checks, and the online
//! engine enumerating cuts concurrently with ingestion.
//!
//! # Completeness across the wire (Theorem 3)
//!
//! The online engine's correctness needs insertion order to be a
//! linearization of happened-before (Property 1): every event is inserted
//! before anything that causally depends on it. The recorder guarantees
//! this for all cross-thread edges *except* joining a child whose access
//! segment is still open — the join would read a clock indexing an event
//! that has not been emitted yet. [`Session::apply`] therefore flushes
//! the child ([`Recorder::finish_thread`]) before recording the join, and
//! marks the child joined so any later frame from it is a `state` error.
//! With that discipline, every prefix the session ever hands to the
//! engine is insertion-ordered, so Theorem 3 applies no matter where the
//! stream stops: a clean `END`, a mid-stream disconnect, a tripped limit
//! or a daemon shutdown all finalize to a report whose cut count is
//! exactly `i(P)` of the observed prefix.

use crate::persist::{RecoveredState, SessionStore};
use crate::proto::{DecodeError, EndReason, ErrCode, Hello, WireOp, WireReport};
use paramount::{
    BackpressurePolicy, FaultLog, MemoryBudget, MetricsSnapshot, OnlineEngine, OnlineEngineConfig,
    OnlinePoset,
};
use paramount_poset::Tid;
use paramount_trace::{LockId, Recorder, RecorderConfig, TraceEvent, VarId};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Per-session resource limits, enforced while frames arrive.
#[derive(Clone, Copy, Debug)]
pub struct SessionLimits {
    /// Most threads a `HELLO` may declare.
    pub max_threads: usize,
    /// Most `EVENT` frames a session may send before it is finalized with
    /// reason `limit`.
    pub max_events: u64,
    /// Enumeration workers are capped at this regardless of the `HELLO`.
    pub max_workers: usize,
    /// A connection silent for this long is finalized with reason
    /// `timeout` (enforced by the server's read loop).
    pub idle_timeout: Duration,
    /// Per-connection write deadline: a reply blocked on an unread socket
    /// for this long fails the write instead of wedging the connection
    /// thread (a stalled client must not pin a session forever).
    pub write_timeout: Duration,
}

impl Default for SessionLimits {
    fn default() -> Self {
        SessionLimits {
            max_threads: 64,
            max_events: 10_000_000,
            max_workers: 16,
            idle_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
        }
    }
}

/// Server-side configuration every session starts from. The `HELLO` may
/// override the algorithm and (within [`SessionLimits::max_workers`]) the
/// worker count.
#[derive(Clone, Debug, Default)]
pub struct SessionConfig {
    /// Engine defaults (algorithm, workers, queue bound, backpressure).
    pub engine: OnlineEngineConfig,
    /// Resource limits.
    pub limits: SessionLimits,
}

/// Adapter: the recorder's event consumer that streams into the engine.
/// Holds one of the two `Arc` handles on the engine (the session holds
/// the other for mid-stream queries); finalization drops this one so the
/// engine can be unwrapped and finished.
struct EngineOut(Arc<OnlineEngine<TraceEvent>>);

impl paramount_trace::EventOut for EngineOut {
    fn emit(&mut self, t: Tid, vc: paramount_poset::VectorClock, event: TraceEvent) {
        self.0.observe_with_clock(t, vc, event);
    }
}

/// The final accounting of one session.
#[derive(Clone, Debug)]
pub struct SessionReport {
    /// Server-assigned session id.
    pub id: u64,
    /// Client-chosen label, if any.
    pub label: Option<String>,
    /// Why the session ended.
    pub reason: EndReason,
    /// Events inserted into the poset (recorder segments, sync events).
    pub events: u64,
    /// Consistent cuts enumerated.
    pub cuts: u64,
    /// True when `cuts` is Theorem-2 exact for the observed prefix.
    pub complete: bool,
    /// Engine error, if enumeration died (budget trip etc.).
    pub error: Option<String>,
    /// Full engine metrics for the session.
    pub metrics: MetricsSnapshot,
    /// The quarantine ledger: exact `[Gmin, Gbnd]` bounds of every
    /// interval given up on. For a recovered session this also carries
    /// the pre-crash incarnation's entries (restored from the last
    /// checkpoint) — those are historical: replay re-enumerated their
    /// intervals, so `complete` reflects only the current engine.
    pub faults: FaultLog,
}

impl SessionReport {
    /// The `REPORT` frame body for this report.
    pub fn wire(&self) -> WireReport {
        WireReport {
            events: self.events,
            cuts: self.cuts,
            complete: self.complete,
            reason: self.reason,
        }
    }

    /// The report of a session whose finalization itself faulted: zero
    /// counts, reason [`EndReason::Fault`], the panic text as the error.
    /// Last-resort accounting — it keeps the daemon's books balanced when
    /// a panic unwound through everything else.
    pub fn failed(id: u64, label: Option<String>, message: String) -> SessionReport {
        SessionReport {
            id,
            label,
            reason: EndReason::Fault,
            events: 0,
            cuts: 0,
            complete: false,
            error: Some(message),
            metrics: MetricsSnapshot::default(),
            faults: FaultLog::default(),
        }
    }
}

fn state_err(message: impl Into<String>) -> DecodeError {
    DecodeError::new(ErrCode::State, message)
}

/// A durable-log I/O failure. Mapped to [`ErrCode::Limit`] because the
/// server's `limit` handling is exactly right for it: fatal for the
/// session (the durability contract can no longer be kept), clean
/// finalize with an exact report for the prefix that did persist.
fn store_err(err: std::io::Error) -> DecodeError {
    DecodeError::new(ErrCode::Limit, format!("durable store: {err}"))
}

/// One live session: interning tables + legality tracking + recorder +
/// engine. Created from a validated `HELLO`, driven by `EVENT` frames,
/// consumed by [`Session::finalize`].
pub struct Session {
    id: u64,
    label: Option<String>,
    threads: usize,
    limits: SessionLimits,
    /// Engine handle for mid-stream queries (`FLUSH`, `STATS`); the
    /// recorder's [`EngineOut`] holds the only other clone.
    engine: Arc<OnlineEngine<TraceEvent>>,
    recorder: Recorder<EngineOut>,
    var_ids: HashMap<String, VarId>,
    lock_ids: HashMap<String, LockId>,
    /// Which thread currently holds each lock.
    lock_holders: Vec<Option<usize>>,
    /// Threads that have been the target of a `fork`.
    forked: Vec<bool>,
    /// Threads that have emitted at least one frame.
    active: Vec<bool>,
    /// Threads that have been joined (no further frames allowed).
    joined: Vec<bool>,
    /// Accepted `EVENT` frames (the unit [`SessionLimits::max_events`]
    /// meters).
    wire_events: u64,
    /// Durable log, when the daemon runs with a data dir: every accepted
    /// event is appended before `apply` returns, so the persisted prefix
    /// never trails what the client was told was accepted.
    store: Option<SessionStore>,
    /// Quarantine ledger inherited from a pre-crash incarnation (restored
    /// from the last checkpoint). Merged ahead of the live engine's log
    /// in checkpoints and the final report; empty for fresh sessions.
    recovered_faults: FaultLog,
    /// Quarantine tally inherited alongside `recovered_faults` (kept
    /// separately: stores written before the ledger was persisted carry a
    /// tally but no entries).
    recovered_quarantined: u64,
}

impl Session {
    /// Opens a session from a validated `HELLO` with its own private
    /// memory budget (built from the engine config's governor). Fails
    /// (without starting an engine) when the declaration exceeds the
    /// limits.
    pub fn open(id: u64, hello: &Hello, config: &SessionConfig) -> Result<Self, DecodeError> {
        let budget = Arc::new(MemoryBudget::new(config.engine.governor));
        Self::open_with_budget(id, hello, config, budget)
    }

    /// Opens a session whose engine charges a caller-owned budget — the
    /// daemon threads one process-wide account through every session so
    /// the watermarks react to total load.
    pub fn open_with_budget(
        id: u64,
        hello: &Hello,
        config: &SessionConfig,
        budget: Arc<MemoryBudget>,
    ) -> Result<Self, DecodeError> {
        let limits = config.limits;
        if hello.threads > limits.max_threads {
            return Err(DecodeError::new(
                ErrCode::Limit,
                format!(
                    "threads={} exceeds the per-session limit {}",
                    hello.threads, limits.max_threads
                ),
            ));
        }
        let mut engine_config = config.engine.clone();
        if let Some(algo) = hello.algorithm {
            engine_config.algorithm = algo;
        }
        if let Some(workers) = hello.workers {
            engine_config.workers = workers.min(limits.max_workers);
        }
        // Count-only sink: the session's deliverable is the cut count and
        // metrics, not the cuts themselves (they are exponential).
        let engine = Arc::new(OnlineEngine::with_poset_and_budget(
            Arc::new(OnlinePoset::new(hello.threads)),
            engine_config,
            |_: paramount_poset::CutRef<'_>, _: paramount_poset::EventId| {
                std::ops::ControlFlow::<()>::Continue(())
            },
            budget,
        ));
        let recorder = Recorder::new(
            hello.threads,
            0,
            RecorderConfig {
                capture_sync: hello.capture_sync,
            },
            EngineOut(Arc::clone(&engine)),
        );
        Ok(Session {
            id,
            label: hello.label.clone(),
            threads: hello.threads,
            limits,
            engine,
            recorder,
            var_ids: HashMap::new(),
            lock_ids: HashMap::new(),
            lock_holders: Vec::new(),
            forked: vec![false; hello.threads],
            active: vec![false; hello.threads],
            joined: vec![false; hello.threads],
            wire_events: 0,
            store: None,
            recovered_faults: FaultLog::default(),
            recovered_quarantined: 0,
        })
    }

    /// Attaches a durable log; subsequent accepted events are appended
    /// to it. The server attaches right after `open` (fresh sessions) or
    /// right after replay (recovered ones), so the store only ever holds
    /// events the session actually accepted.
    pub fn attach_store(&mut self, store: SessionStore) {
        self.store = Some(store);
    }

    /// Detaches the durable log (finalization decides its disposition: a
    /// clean `END` deletes it, everything else leaves it resumable).
    pub fn take_store(&mut self) -> Option<SessionStore> {
        self.store.take()
    }

    /// Events durably accepted, when a store is attached — the `acked=`
    /// count `FLUSH` reports to resuming clients.
    pub fn acked(&self) -> Option<u64> {
        self.store.as_ref().map(|s| s.acked())
    }

    /// Forces the durable log to stable storage (the `FLUSH` barrier's
    /// durability point). No-op without a store.
    pub fn sync_store(&mut self) -> Result<(), DecodeError> {
        match self.store.as_mut() {
            Some(store) => store.sync().map_err(store_err),
            None => Ok(()),
        }
    }

    /// Re-stamps the attached store under `epoch`
    /// ([`SessionStore::restamp`]): a re-joined shard adopting a session
    /// its previous incarnation parked must claim the log under the
    /// lease it holds *now*. No-op without a store.
    pub fn restamp_store(&mut self, epoch: u64) -> Result<(), DecodeError> {
        match self.store.as_mut() {
            Some(store) => store.restamp(epoch).map_err(store_err),
            None => Ok(()),
        }
    }

    /// Rebuilds a session from recovered state: opens it from the
    /// persisted `HELLO`, replays the accepted prefix through the normal
    /// `apply` path (the engine re-enumerates deterministically — see
    /// [`crate::persist`]), then re-attaches the store for new appends.
    ///
    /// Replay routes through the cold disk tier when the config has a
    /// spill directory: a resumed prefix arrives as fast as disk reads
    /// allow (no pacing client on the other end), so a blocking replay
    /// would hold the whole backlog in RAM on a freshly restarted
    /// daemon. Spilling instead bounds replay memory by the governor's
    /// `disk_spill_bytes` — the same budget a live overloaded session
    /// gets.
    pub fn recover(
        rec: RecoveredState,
        config: &SessionConfig,
        budget: Arc<MemoryBudget>,
    ) -> Result<Self, DecodeError> {
        let mut config = config.clone();
        if config.engine.spill_dir.is_some() {
            config.engine.backpressure = BackpressurePolicy::SpillToDeque;
        }
        let mut session = Session::open_with_budget(rec.id, &rec.hello, &config, budget)?;
        session.recovered_faults = FaultLog {
            quarantined: rec.quarantine,
        };
        session.recovered_quarantined = rec.quarantined;
        for (tid, op) in &rec.events {
            // The prefix was validated when first accepted; a replay
            // rejection means the store was tampered with or the limits
            // were lowered across the restart — surface it, don't guess.
            session.apply(*tid, op).map_err(|err| {
                DecodeError::new(
                    err.code,
                    format!("replay of persisted event failed: {}", err.message),
                )
            })?;
        }
        session.store = Some(rec.store);
        Ok(session)
    }

    /// Server-assigned id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Client label, if declared.
    pub fn label(&self) -> Option<&str> {
        self.label.as_deref()
    }

    /// The session's idle timeout (from the server limits).
    pub fn idle_timeout(&self) -> Duration {
        self.limits.idle_timeout
    }

    /// Applies one validated `EVENT` frame. A `state`/`limit` error leaves
    /// the session unchanged — the caller decides whether to finalize.
    pub fn apply(&mut self, tid: usize, op: &WireOp) -> Result<(), DecodeError> {
        if tid >= self.threads {
            return Err(state_err(format!(
                "thread {tid} out of range (session declared {})",
                self.threads
            )));
        }
        if self.joined[tid] {
            return Err(state_err(format!("thread {tid} was already joined")));
        }
        if self.wire_events >= self.limits.max_events {
            return Err(DecodeError::new(
                ErrCode::Limit,
                format!("event limit {} reached", self.limits.max_events),
            ));
        }
        let t = Tid::from(tid);
        match op {
            WireOp::Read(name) => {
                let v = self.intern_var(name);
                self.recorder.read(t, v);
            }
            WireOp::Write(name) => {
                let v = self.intern_var(name);
                self.recorder.write(t, v);
            }
            WireOp::Acquire(name) => {
                let l = self.intern_lock(name);
                if let Some(holder) = self.lock_holders[l.index()] {
                    return Err(state_err(format!(
                        "lock {name} is already held by thread {holder}"
                    )));
                }
                self.lock_holders[l.index()] = Some(tid);
                self.recorder.acquire(t, l);
            }
            WireOp::Release(name) => {
                let l = self.intern_lock(name);
                match self.lock_holders[l.index()] {
                    Some(holder) if holder == tid => self.lock_holders[l.index()] = None,
                    Some(holder) => {
                        return Err(state_err(format!(
                            "thread {tid} cannot release lock {name} held by thread {holder}"
                        )))
                    }
                    None => {
                        return Err(state_err(format!(
                            "thread {tid} released lock {name} without holding it"
                        )))
                    }
                }
                self.recorder.release(t, l);
            }
            WireOp::Fork(child) => {
                let child = *child;
                if child >= self.threads {
                    return Err(state_err(format!(
                        "fork target {child} out of range (session declared {})",
                        self.threads
                    )));
                }
                if child == tid {
                    return Err(state_err(format!("thread {tid} cannot fork itself")));
                }
                if self.joined[child] {
                    return Err(state_err(format!("fork of already-joined thread {child}")));
                }
                if self.forked[child] || self.active[child] {
                    return Err(state_err(format!("fork of already-started thread {child}")));
                }
                self.forked[child] = true;
                self.recorder.fork(t, Tid::from(child));
            }
            WireOp::Join(child) => {
                let child = *child;
                if child >= self.threads {
                    return Err(state_err(format!(
                        "join target {child} out of range (session declared {})",
                        self.threads
                    )));
                }
                if child == tid {
                    return Err(state_err(format!("thread {tid} cannot join itself")));
                }
                if self.joined[child] {
                    return Err(state_err(format!("thread {child} was already joined")));
                }
                // Flush the child's open segment *before* the join reads
                // its clock: the join must not know about an event the
                // engine has not received (insertion order = →p).
                self.recorder.finish_thread(Tid::from(child));
                self.recorder.join(t, Tid::from(child));
                self.joined[child] = true;
            }
            // Weight is a scheduling hint for executors; on the wire it is
            // legal (so `gen` output pipes through) but records nothing.
            WireOp::Work(_) => {}
        }
        self.active[tid] = true;
        self.wire_events += 1;
        if let Some(store) = self.store.as_mut() {
            store.append_event(tid, op).map_err(store_err)?;
            if store.should_checkpoint() {
                // The checkpoint carries the full ledger — entries
                // inherited from a pre-crash incarnation ahead of the
                // live engine's — so quarantine bounds survive any number
                // of restarts, not just the tally.
                let quarantined =
                    self.recovered_quarantined + self.engine.metrics().intervals_quarantined;
                let mut ledger = self.recovered_faults.clone();
                ledger
                    .quarantined
                    .extend(self.engine.fault_log().quarantined);
                store.checkpoint(quarantined, &ledger).map_err(store_err)?;
            }
        }
        Ok(())
    }

    /// Live progress: (events inserted into the poset, cuts enumerated so
    /// far). Both monotone; `FLUSH` reports them.
    pub fn progress(&self) -> (u64, u64) {
        let m = self.engine.metrics();
        (m.events_inserted, m.cuts_emitted)
    }

    /// Live engine metrics snapshot (the `STATS` frame body).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.engine.metrics()
    }

    /// Accepted `EVENT` frames so far.
    pub fn wire_events(&self) -> u64 {
        self.wire_events
    }

    /// Finalizes: flushes every open recorder segment, drains the engine,
    /// and reports. Works from *any* state — `END`, disconnect, limit,
    /// timeout and shutdown all land here, and the cut count is exact for
    /// whatever prefix arrived (see the module docs).
    pub fn finalize(self, reason: EndReason) -> SessionReport {
        // `Recorder::finish` flushes open segments through `EngineOut`
        // (the last insertions), then returns it; dropping it leaves
        // `self.engine` as the only handle.
        drop(self.recorder.finish());
        // The report's ledger leads with pre-crash quarantines (historic,
        // re-enumerated by replay) followed by the live engine's.
        let mut faults = self.recovered_faults;
        match Arc::try_unwrap(self.engine) {
            Ok(engine) => {
                let report = engine.finish();
                let complete = report.is_complete();
                faults.quarantined.extend(report.faults.quarantined);
                SessionReport {
                    id: self.id,
                    label: self.label,
                    reason,
                    events: report.events,
                    cuts: report.cuts,
                    complete,
                    error: report.error.as_ref().map(|e| e.to_string()),
                    metrics: report.metrics,
                    faults,
                }
            }
            // A leaked engine handle (a recorder that did not drop its
            // clone, e.g. because a panic unwound through it) must not
            // panic finalize: report the live snapshot, marked incomplete
            // — the prefix counts are real, the drain just never ran.
            Err(shared) => {
                let metrics = shared.metrics();
                faults.quarantined.extend(shared.fault_log().quarantined);
                SessionReport {
                    id: self.id,
                    label: self.label,
                    reason,
                    events: metrics.events_inserted,
                    cuts: metrics.cuts_emitted,
                    complete: false,
                    error: Some(
                        "engine handle still shared at finalize; report is a live snapshot"
                            .to_string(),
                    ),
                    metrics,
                    faults,
                }
            }
        }
    }

    fn intern_var(&mut self, name: &str) -> VarId {
        let next = VarId(self.var_ids.len() as u32);
        *self.var_ids.entry(name.to_string()).or_insert(next)
    }

    fn intern_lock(&mut self, name: &str) -> LockId {
        let next = LockId(self.lock_ids.len() as u32);
        let id = *self.lock_ids.entry(name.to_string()).or_insert(next);
        if id.index() >= self.lock_holders.len() {
            self.lock_holders.resize(id.index() + 1, None);
        }
        self.recorder.ensure_locks(self.lock_holders.len());
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::Hello;
    use paramount_poset::oracle;

    fn session(threads: usize) -> Session {
        Session::open(1, &Hello::new(threads), &SessionConfig::default()).unwrap()
    }

    #[test]
    fn lock_ordered_stream_counts_like_the_oracle() {
        let mut s = session(2);
        for (tid, op) in [
            (0, WireOp::Acquire("m".into())),
            (0, WireOp::Write("x".into())),
            (0, WireOp::Release("m".into())),
            (1, WireOp::Acquire("m".into())),
            (1, WireOp::Read("x".into())),
            (1, WireOp::Release("m".into())),
        ] {
            s.apply(tid, &op).unwrap();
        }
        let report = s.finalize(EndReason::End);
        assert_eq!(report.events, 2, "two access segments");
        assert!(report.complete);
        assert_eq!(report.reason, EndReason::End);
        // t0's segment happens before t1's (lock atomicity): the lattice
        // is the 3-chain, i(P) = 3.
        assert_eq!(report.cuts, 3);
    }

    #[test]
    fn concurrent_stream_counts_like_the_oracle() {
        let mut s = session(3);
        for tid in 0..3 {
            for k in 0..4 {
                let name = format!("v{tid}.{k}");
                s.apply(tid, &WireOp::Write(name)).unwrap();
                // A lock round-trip closes the segment so each write is
                // its own event (no merging).
                s.apply(tid, &WireOp::Acquire(format!("l{tid}"))).unwrap();
                s.apply(tid, &WireOp::Release(format!("l{tid}"))).unwrap();
            }
        }
        let report = s.finalize(EndReason::End);
        assert_eq!(report.events, 12);
        assert!(report.complete);
        // Three independent 4-chains: (4+1)^3 ideals — and the offline
        // oracle over an equivalent recorder-built poset agrees.
        assert_eq!(report.cuts, 125);
        let mut r = paramount_trace::Recorder::new(
            3,
            3,
            paramount_trace::RecorderConfig::default(),
            paramount_trace::PosetCollector::new(3),
        );
        for tid in 0..3usize {
            for k in 0..4u32 {
                r.write(Tid::from(tid), paramount_trace::VarId(tid as u32 * 4 + k));
                r.acquire(Tid::from(tid), paramount_trace::LockId(tid as u32));
                r.release(Tid::from(tid), paramount_trace::LockId(tid as u32));
            }
        }
        let poset = r.finish().into_poset();
        assert_eq!(report.cuts, oracle::count_ideals(&poset));
    }

    #[test]
    fn fork_join_discipline_is_enforced() {
        let mut s = session(3);
        s.apply(0, &WireOp::Write("x".into())).unwrap();
        s.apply(0, &WireOp::Fork(1)).unwrap();
        s.apply(1, &WireOp::Write("x".into())).unwrap();
        // Fork of a thread that already ran is a state error.
        let err = s.apply(0, &WireOp::Fork(1)).unwrap_err();
        assert_eq!(err.code, ErrCode::State);
        // Self-fork and self-join are state errors.
        assert_eq!(
            s.apply(2, &WireOp::Fork(2)).unwrap_err().code,
            ErrCode::State
        );
        assert_eq!(
            s.apply(2, &WireOp::Join(2)).unwrap_err().code,
            ErrCode::State
        );
        // Join flushes the child and seals it.
        s.apply(0, &WireOp::Join(1)).unwrap();
        let err = s.apply(1, &WireOp::Write("y".into())).unwrap_err();
        assert_eq!(err.code, ErrCode::State, "joined thread may not speak");
        let err = s.apply(0, &WireOp::Join(1)).unwrap_err();
        assert_eq!(err.code, ErrCode::State, "double join");
        s.apply(0, &WireOp::Read("x".into())).unwrap();
        let report = s.finalize(EndReason::End);
        assert!(report.complete);
        // p1 before c1 before p2: a 3-chain, i(P) = 4 cuts... plus
        // nothing concurrent. Chain of 3 events has 4 ideals.
        assert_eq!(report.events, 3);
        assert_eq!(report.cuts, 4);
    }

    #[test]
    fn join_before_childs_segment_would_close_is_safe() {
        // The child's segment is OPEN when the parent joins: the session
        // must flush it first or the engine would receive the parent's
        // post-join event carrying a clock that references an
        // un-inserted child event (violating insertion order).
        let mut s = session(2);
        s.apply(0, &WireOp::Fork(1)).unwrap();
        s.apply(1, &WireOp::Write("x".into())).unwrap(); // segment open
        s.apply(0, &WireOp::Join(1)).unwrap(); // must flush child first
        s.apply(0, &WireOp::Read("x".into())).unwrap();
        let report = s.finalize(EndReason::End);
        assert!(report.complete, "no engine error");
        assert_eq!(report.events, 2);
        assert_eq!(report.cuts, 3, "chain child-write -> parent-read");
    }

    #[test]
    fn lock_misuse_is_a_state_error() {
        let mut s = session(2);
        s.apply(0, &WireOp::Acquire("m".into())).unwrap();
        // Double acquire (even by the holder: no reentrancy on the wire).
        assert_eq!(
            s.apply(1, &WireOp::Acquire("m".into())).unwrap_err().code,
            ErrCode::State
        );
        // Release by a non-holder.
        assert_eq!(
            s.apply(1, &WireOp::Release("m".into())).unwrap_err().code,
            ErrCode::State
        );
        s.apply(0, &WireOp::Release("m".into())).unwrap();
        // Release with no holder.
        assert_eq!(
            s.apply(0, &WireOp::Release("m".into())).unwrap_err().code,
            ErrCode::State
        );
        // The failed frames changed nothing: t1 can acquire now.
        s.apply(1, &WireOp::Acquire("m".into())).unwrap();
        s.apply(1, &WireOp::Release("m".into())).unwrap();
    }

    #[test]
    fn out_of_range_tid_is_a_state_error() {
        let mut s = session(2);
        assert_eq!(
            s.apply(2, &WireOp::Write("x".into())).unwrap_err().code,
            ErrCode::State
        );
        assert_eq!(
            s.apply(0, &WireOp::Fork(7)).unwrap_err().code,
            ErrCode::State
        );
        assert_eq!(
            s.apply(0, &WireOp::Join(7)).unwrap_err().code,
            ErrCode::State
        );
    }

    #[test]
    fn event_limit_trips_as_limit_error() {
        let config = SessionConfig {
            limits: SessionLimits {
                max_events: 3,
                ..SessionLimits::default()
            },
            ..SessionConfig::default()
        };
        let mut s = Session::open(9, &Hello::new(1), &config).unwrap();
        for _ in 0..3 {
            s.apply(0, &WireOp::Write("x".into())).unwrap();
        }
        let err = s.apply(0, &WireOp::Write("x".into())).unwrap_err();
        assert_eq!(err.code, ErrCode::Limit);
        // Finalizing with reason=limit still yields an exact prefix count.
        let report = s.finalize(EndReason::Limit);
        assert!(report.complete);
        assert_eq!(report.reason, EndReason::Limit);
    }

    #[test]
    fn oversized_hello_is_rejected_before_an_engine_starts() {
        let config = SessionConfig::default();
        let hello = Hello::new(config.limits.max_threads + 1);
        let err = match Session::open(1, &hello, &config) {
            Ok(_) => panic!("oversized HELLO must be rejected"),
            Err(err) => err,
        };
        assert_eq!(err.code, ErrCode::Limit);
    }

    #[test]
    fn finalize_mid_stream_is_exact_for_the_prefix() {
        // Simulates a disconnect: open segments, held locks, no END.
        let mut s = session(2);
        s.apply(0, &WireOp::Write("a".into())).unwrap();
        s.apply(1, &WireOp::Write("b".into())).unwrap();
        s.apply(0, &WireOp::Acquire("m".into())).unwrap();
        s.apply(0, &WireOp::Write("c".into())).unwrap(); // segment open, lock held
        let report = s.finalize(EndReason::Disconnect);
        assert_eq!(report.reason, EndReason::Disconnect);
        assert!(report.complete, "prefix count is Theorem-2 exact");
        assert_eq!(report.events, 3);
        // t0: 2-chain, t1: 1 event, independent: 3 * 2 = 6 ideals.
        assert_eq!(report.cuts, 6);
    }

    #[test]
    fn work_frames_are_legal_noops() {
        let mut s = session(1);
        s.apply(0, &WireOp::Work(100)).unwrap();
        s.apply(0, &WireOp::Write("x".into())).unwrap();
        let report = s.finalize(EndReason::End);
        assert_eq!(report.events, 1, "work records nothing");
        assert_eq!(report.cuts, 2);
    }
}
