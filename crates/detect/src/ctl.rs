//! Temporal operators over the lattice of global states — the
//! CTL-flavored detection questions of Sen & Garg and Ogale & Garg (the
//! paper's references \[24\] and \[27\]).
//!
//! An execution's possible behaviors are the maximal chains of its cut
//! lattice (empty cut → final cut). Branching-time questions over those
//! paths reduce to reachability over cut sets:
//!
//! * [`ef`] — `EF φ`: some execution reaches a φ-state (Cooper–Marzullo
//!   `Possibly(φ)`).
//! * [`ag`] — `AG φ`: φ holds at every global state of every execution
//!   (an invariant): the dual `¬EF ¬φ`.
//! * [`eg`] — `EG φ`: some complete execution stays inside φ the whole
//!   way.
//! * [`af`] — `AF φ`: every execution eventually hits φ
//!   (Cooper–Marzullo `Definitely(φ)`).
//!
//! All four cost one lattice walk (`O(n·i(P))` with BFS-style frontier
//! sets), and all are evaluated over the *inferred* executions — the
//! point of predicate detection.

use crate::modality;
use paramount_enumerate::fxhash::FxHashSet;
use paramount_poset::{CutRef, CutSpace, EventId, Frontier, Tid};

/// `EF φ`: does some consistent cut satisfy φ? (= `Possibly`.)
pub fn ef<S, F>(space: &S, phi: F) -> bool
where
    S: CutSpace + ?Sized,
    F: FnMut(CutRef<'_>) -> bool,
{
    modality::possibly(space, phi).is_some()
}

/// `AG φ`: does φ hold at **every** consistent cut? (Invariant check:
/// the dual `¬ EF ¬φ`.)
pub fn ag<S, F>(space: &S, mut phi: F) -> bool
where
    S: CutSpace + ?Sized,
    F: FnMut(CutRef<'_>) -> bool,
{
    !ef(space, |g| !phi(g))
}

/// `AF φ`: does every complete execution pass through a φ-state?
/// (= `Definitely`.)
pub fn af<S, F>(space: &S, phi: F) -> bool
where
    S: CutSpace + ?Sized,
    F: FnMut(CutRef<'_>) -> bool,
{
    modality::definitely(space, phi)
}

/// `EG φ`: is there a complete execution (maximal chain from the empty
/// cut to the final cut) every state of which satisfies φ?
///
/// Implementation: BFS restricted to φ-cuts; true iff the final cut is
/// φ-reachable from a φ-satisfying empty cut.
pub fn eg<S, F>(space: &S, mut phi: F) -> bool
where
    S: CutSpace + ?Sized,
    F: FnMut(CutRef<'_>) -> bool,
{
    let n = space.num_threads();
    let empty = Frontier::empty(n);
    let last = space.current_frontier();
    if !phi(empty.as_cut()) {
        return false;
    }
    if empty == last {
        return true;
    }
    let mut level: Vec<Frontier> = vec![empty];
    let mut next: FxHashSet<Frontier> = FxHashSet::default();
    while !level.is_empty() {
        for cut in &level {
            for t in Tid::all(n) {
                let k = cut.get(t) + 1;
                if k as usize > space.events_of(t) {
                    continue;
                }
                let e = EventId::new(t, k);
                if cut.enables(space, e) {
                    let succ = cut.advanced(t);
                    if !next.contains(&succ) && phi(succ.as_cut()) {
                        if succ == last {
                            return true;
                        }
                        next.insert(succ);
                    }
                }
            }
        }
        level.clear();
        level.extend(next.drain());
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use paramount_poset::builder::PosetBuilder;
    use paramount_poset::random::RandomComputation;
    use paramount_poset::{oracle, Poset};

    fn diamond() -> Poset {
        let mut b = PosetBuilder::new(2);
        let a = b.append(Tid(0), ());
        let bb = b.append(Tid(1), ());
        b.append_after(Tid(0), &[bb], ());
        b.append_after(Tid(1), &[a], ());
        b.finish()
    }

    #[test]
    fn ef_and_ag_are_duals() {
        let p = diamond();
        // φ: "at most 3 events" — true somewhere, not everywhere.
        assert!(ef(&p, |g| g.total_events() <= 3));
        assert!(!ag(&p, |g| g.total_events() <= 3));
        // An actual invariant: consistency-implied bound G[0] ≥ G[1]-1.
        assert!(ag(&p, |g| {
            g.get(Tid(1)) == 0 || g.get(Tid(0)) + 1 >= g.get(Tid(1))
        }));
    }

    #[test]
    fn eg_on_the_diamond() {
        let p = diamond();
        // "t0 never lags t1": holds along the path that always advances
        // t0 first.
        assert!(eg(&p, |g| g.get(Tid(0)) >= g.get(Tid(1))));
        // "t0 strictly ahead after the start" fails at the empty cut.
        assert!(!eg(&p, |g| g.get(Tid(0)) > g.get(Tid(1))));
        // Trivially: true everywhere.
        assert!(eg(&p, |_| true));
        // And false at the final cut kills every path.
        let last = p.final_frontier();
        assert!(!eg(&p, |g| g != last));
    }

    #[test]
    fn af_equals_definitely() {
        let p = diamond();
        assert!(af(&p, |g| g.as_slice() == [1, 1]));
        assert!(!af(&p, |g| g.as_slice() == [1, 0]));
    }

    #[test]
    fn eg_agrees_with_path_oracle_on_random_posets() {
        fn exists_phi_path<S: CutSpace>(
            space: &S,
            cut: &Frontier,
            last: &Frontier,
            phi: &impl Fn(CutRef<'_>) -> bool,
        ) -> bool {
            if !phi(cut.as_cut()) {
                return false;
            }
            if cut == last {
                return true;
            }
            let n = space.num_threads();
            for t in Tid::all(n) {
                let k = cut.get(t) + 1;
                if k as usize <= space.events_of(t) {
                    let e = EventId::new(t, k);
                    if cut.enables(space, e) && exists_phi_path(space, &cut.advanced(t), last, phi)
                    {
                        return true;
                    }
                }
            }
            false
        }
        for seed in 0..15 {
            let p = RandomComputation::new(3, 3, 0.4, seed).generate();
            let last = p.final_frontier();
            type Pred = Box<dyn Fn(CutRef<'_>) -> bool>;
            let preds: Vec<Pred> = vec![
                Box::new(|g: CutRef<'_>| g.get(Tid(0)) >= g.get(Tid(1))),
                Box::new(|g: CutRef<'_>| g.total_events() % 2 == 0 || g.get(Tid(2)) > 0),
                Box::new(|g: CutRef<'_>| g.get(Tid(2)) <= 2),
            ];
            for (i, phi) in preds.iter().enumerate() {
                let fast = eg(&p, phi);
                let slow = exists_phi_path(&p, &Frontier::empty(3), &last, &|g| phi(g));
                assert_eq!(fast, slow, "seed {seed} pred {i}");
            }
        }
    }

    #[test]
    fn operators_relate_sanely() {
        // AG φ ⇒ EG φ ⇒ EF φ, and AG φ ⇒ AF φ, on random posets with a
        // random threshold predicate.
        for seed in 0..10 {
            let p = RandomComputation::new(3, 3, 0.5, seed).generate();
            let threshold = (seed % 4) * 2;
            let phi = |g: CutRef<'_>| g.total_events() <= 9 - threshold.min(9);
            let vag = ag(&p, phi);
            let veg = eg(&p, phi);
            let vef = ef(&p, phi);
            let vaf = af(&p, phi);
            if vag {
                assert!(veg && vaf, "seed {seed}");
            }
            if veg {
                assert!(vef, "seed {seed}");
            }
            let _ = oracle::count_ideals(&p);
        }
    }
}
