//! Fault-tolerance tests for the wire layer: reconnect-and-replay on the
//! client side, panic containment on the daemon side.

use paramount_ingest::{
    send_trace_with_retry, Client, EndReason, Hello, RetryPolicy, Server, ServerConfig,
    SessionReport,
};
use paramount_trace::textfmt::trace_of_program;
use paramount_workloads::banking;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Duration;

/// What each finished session reports back to the test:
/// (label, end reason, cuts, complete).
type SessionOutcome = (Option<String>, EndReason, u64, bool);

fn spawn_daemon(
    config: ServerConfig,
) -> (
    SocketAddr,
    paramount_ingest::ServerHandle,
    mpsc::Receiver<SessionOutcome>,
    std::thread::JoinHandle<paramount_ingest::ServeSummary>,
) {
    let mut server = Server::new(config);
    let addr = server.bind_tcp("127.0.0.1:0").expect("bind loopback");
    let handle = server.handle();
    let (tx, rx) = mpsc::channel();
    let tx = Mutex::new(tx);
    let daemon = std::thread::spawn(move || {
        server
            .run(move |report: &SessionReport| {
                let _ = tx.lock().unwrap().send((
                    report.label.clone(),
                    report.reason,
                    report.cuts,
                    report.complete,
                ));
            })
            .expect("daemon run")
    });
    (addr, handle, rx, daemon)
}

#[test]
fn retry_delays_are_deterministic_exponential_and_capped() {
    let policy = RetryPolicy {
        attempts: 8,
        backoff: Duration::from_millis(100),
        max_backoff: Duration::from_millis(400),
        jitter_seed: 42,
        ..RetryPolicy::default()
    };
    // The first attempt never waits.
    assert_eq!(policy.delay_before(1), Duration::ZERO);
    for attempt in 2..=8 {
        let a = policy.delay_before(attempt);
        let b = policy.delay_before(attempt);
        assert_eq!(a, b, "same seed, same attempt, same delay");
        // Base doubles per retry (100, 200, 400, capped at 400), and the
        // jitter adds strictly less than half the base on top.
        let exp = (attempt - 2).min(16);
        let base = Duration::from_millis((100u64 << exp).min(400));
        assert!(a >= base, "attempt {attempt}: {a:?} < base {b:?}");
        assert!(a < base + base / 2 + Duration::from_millis(1));
    }
    // A different seed lands on a different schedule somewhere.
    let other = RetryPolicy {
        jitter_seed: 43,
        ..policy
    };
    assert!((2..=8).any(|n| policy.delay_before(n) != other.delay_before(n)));
}

/// First connection dies before the session opens; the retry lands on a
/// healthy daemon and the replay completes with the exact count.
#[test]
fn retrying_send_survives_a_dropped_first_connection() {
    // A listener that accepts one connection and immediately drops it.
    let doomed = TcpListener::bind("127.0.0.1:0").expect("bind doomed");
    let doomed_addr = doomed.local_addr().unwrap();
    let dropper = std::thread::spawn(move || {
        let (stream, _) = doomed.accept().expect("accept doomed");
        drop(stream);
    });

    let (addr, handle, _rx, daemon) = spawn_daemon(ServerConfig::default());
    let trace = trace_of_program(&banking::wide_program(3, 2), 42);

    let mut connections = 0u32;
    let policy = RetryPolicy::new(3, Duration::from_millis(1));
    let (report, _session, attempts) = send_trace_with_retry(
        |_| {
            connections += 1;
            if connections == 1 {
                Client::connect_tcp(doomed_addr)
            } else {
                Client::connect_tcp(addr)
            }
        },
        &Hello::new(trace.threads),
        &trace,
        policy,
    )
    .expect("retry must recover");

    assert_eq!(attempts, 2, "second attempt should succeed");
    assert!(report.complete);
    assert_eq!(report.reason, EndReason::End);
    let mut oracle = paramount_enumerate::CountSink::default();
    paramount_enumerate::bfs::enumerate(
        &trace.to_poset(false),
        &paramount_enumerate::bfs::BfsOptions::default(),
        &mut oracle,
    )
    .expect("oracle BFS");
    assert_eq!(report.cuts, oracle.count, "replayed session must be exact");

    dropper.join().unwrap();
    handle.shutdown();
    daemon.join().unwrap();
}

/// Every connection is dropped right after the first checkpoint `FLUSH`
/// is acknowledged: the send must exhaust its attempts and report the
/// exact server-acknowledged prefix, not pretend nothing happened.
#[test]
fn exhausted_retries_report_the_acknowledged_partial_prefix() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake");
    let addr = listener.local_addr().unwrap();
    // A fake daemon speaking just enough protocol: ack the HELLO, count
    // EVENT frames, ack the first FLUSH with the observed count, then
    // drop the connection.
    let fake = std::thread::spawn(move || {
        for _ in 0..2 {
            let (stream, _) = listener.accept().expect("accept");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut writer = stream;
            let mut line = String::new();
            let mut events = 0u64;
            loop {
                line.clear();
                if reader.read_line(&mut line).unwrap_or(0) == 0 {
                    break;
                }
                let frame = line.trim_end();
                if frame.starts_with("HELLO") {
                    writer.write_all(b"OK session=9\n").expect("ack hello");
                } else if frame.starts_with("RESUME") {
                    // In-memory daemons reject resumption; the client
                    // falls back to a fresh HELLO on this connection.
                    writer
                        .write_all(b"ERR state no durable store\n")
                        .expect("reject resume");
                } else if frame.starts_with("EVENT") {
                    events += 1;
                } else if frame.starts_with("FLUSH") {
                    writeln!(writer, "OK events={events} cuts=7").expect("ack flush");
                    break; // connection dropped with events still inbound
                }
            }
        }
    });

    // 600 events: past the 512-event checkpoint, so exactly one FLUSH
    // lands before the fake daemon hangs up.
    let mut text = String::from("threads 2\n");
    for i in 0..600 {
        text.push_str(&format!("{} read x\n", i % 2));
    }
    let trace = paramount_trace::textfmt::parse_trace(&text).expect("trace");

    let err = send_trace_with_retry(
        |_| Client::connect_tcp(addr),
        &Hello::new(2),
        &trace,
        RetryPolicy::new(2, Duration::from_millis(1)),
    )
    .expect_err("every attempt is dropped");

    assert_eq!(err.progress.attempts, 2);
    assert_eq!(err.progress.events, 512, "checkpointed prefix survives");
    assert_eq!(err.progress.cuts, 7);
    let rendered = err.to_string();
    assert!(
        rendered.contains("partial prefix") && rendered.contains("512"),
        "failure must surface the acknowledged prefix: {rendered}"
    );
    fake.join().unwrap();
}

/// Fault-injected daemon runs: only meaningful when the injection sites
/// are compiled in.
#[cfg(feature = "chaos")]
mod chaos {
    use super::*;

    /// A session thread panics mid-stream (injected after 3 events). The
    /// daemon must finalize that session with reason `fault`, stay up,
    /// and serve a subsequent clean session exactly.
    #[test]
    fn session_panic_finalizes_as_fault_and_daemon_keeps_serving() {
        let mut config = ServerConfig::default();
        config.session.engine.faults.session_panic_after = Some(3);
        let (addr, handle, rx, daemon) = spawn_daemon(config);

        // Doomed session: 4 events, so the 3rd trips the injected panic.
        let mut doomed = Client::connect_tcp(addr).expect("connect doomed");
        let mut hello = Hello::new(2);
        hello.label = Some("doomed".to_string());
        doomed.hello(&hello).expect("hello");
        for i in 0..4 {
            doomed
                .event_line(i % 2, "read x")
                .expect("buffered event write");
        }
        // The injected panic unwinds out of the session machinery, but
        // the connection thread contains it, finalizes the observed
        // prefix, and still delivers the report: 2 reads accepted before
        // the fault (one open segment per thread) is a 2x2 lattice.
        let report = doomed.finish().expect("fault report still delivered");
        assert_eq!(report.reason, EndReason::Fault);
        assert_eq!(report.cuts, 4, "prefix report stays Theorem-2 exact");

        let (label, reason, cuts, complete) =
            rx.recv_timeout(Duration::from_secs(10)).expect("report");
        assert_eq!(label.as_deref(), Some("doomed"));
        assert_eq!(reason, EndReason::Fault);
        assert_eq!(cuts, 4);
        assert!(complete, "the observed prefix itself is exact");

        // The daemon is still serving: a clean session under the panic
        // threshold completes with the exact count (2 concurrent reads:
        // a 2x2 lattice of cuts).
        let mut clean = Client::connect_tcp(addr).expect("connect clean");
        clean.hello(&Hello::new(2)).expect("hello");
        clean.event_line(0, "read x").expect("event");
        clean.event_line(1, "read x").expect("event");
        let report = clean.finish().expect("clean session completes");
        assert_eq!(report.reason, EndReason::End);
        assert!(report.complete);
        assert_eq!(report.cuts, 4);

        handle.shutdown();
        let summary = daemon.join().expect("daemon thread");
        assert_eq!(summary.ingest.sessions_opened, 2);
        assert_eq!(summary.ingest.sessions_faulted, 1);
        assert_eq!(summary.ingest.sessions_completed, 1);
        assert_eq!(summary.ingest.sessions_aborted, 0);
    }
}
