//! `hedc` — the web-crawler / meta-search harness (8 threads, as in the
//! paper — the only benchmark driven with more than 4).
//!
//! Crawler tasks are dispatched through a properly locked task pool;
//! every worker folds its results into four shared statistics counters
//! **without synchronization** — four racy variables, matching Table 2's
//! `hedc` row (the paper's 345-variable count includes the whole
//! application; the four detections are what both detectors report).

use paramount_trace::{Op, Program, ProgramBuilder, Tid};

/// Workload size.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Crawler threads (paper: 8 total, i.e. 7 workers + main).
    pub workers: usize,
    /// Tasks fetched per worker.
    pub tasks: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            workers: 7,
            tasks: 1,
        }
    }
}

/// Builds the hedc program.
pub fn program(params: &Params) -> Program {
    let mut b = ProgramBuilder::new("hedc", params.workers + 1);
    let pool = b.var("taskPool.head");
    let stats: Vec<_> = (0..4)
        .map(|i| {
            b.var(match i {
                0 => "stats.pagesFetched".to_string(),
                1 => "stats.bytesFetched".to_string(),
                2 => "stats.errors".to_string(),
                _ => "stats.elapsedTotal".to_string(),
            })
        })
        .collect();
    let pool_lock = b.lock("taskPool.lock");

    for w in 0..params.workers {
        let tid = Tid::from(w + 1);
        for _ in 0..params.tasks {
            // Pull a task (locked — clean).
            b.critical(tid, pool_lock, [Op::Read(pool), Op::Write(pool)]);
            b.push(tid, Op::Work(60));
            // Fold results into the shared counters — unsynchronized.
            for &s in &stats {
                b.push(tid, Op::Read(s));
                b.push(tid, Op::Write(s));
            }
        }
    }
    let mut init = vec![Op::Write(pool)];
    init.extend(stats.iter().map(|&v| Op::Write(v)));
    b.fork_join_all_with_init(init);
    b.build()
}

/// The Table 1 trace variant: each worker's statistics updates land in
/// `segments` separate unsynchronized events (split by a private pace
/// lock), with a single locked pool access chaining the workers only
/// weakly — a wide, hedc-shaped lattice like the paper's 4.5-billion-cut
/// poset.
pub fn wide_program(workers: usize, segments: usize) -> Program {
    let mut b = ProgramBuilder::new("hedc", workers + 1);
    let pool = b.var("taskPool.head");
    let stat = b.var("stats.pagesFetched");
    let pool_lock = b.lock("taskPool.lock");
    for w in 0..workers {
        let tid = Tid::from(w + 1);
        let pace = b.lock(format!("worker{w}.pace"));
        b.critical(tid, pool_lock, [Op::Read(pool), Op::Write(pool)]);
        for _ in 0..segments {
            b.push(tid, Op::Read(stat));
            b.push(tid, Op::Write(stat));
            b.critical(tid, pace, []);
        }
    }
    b.fork_join_all_with_init([Op::Write(pool), Op::Write(stat)]);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use paramount_detect::online::detect_races_sim;
    use paramount_detect::DetectorConfig;
    use paramount_trace::VarId;

    #[test]
    fn all_four_counters_race_and_nothing_else() {
        for seed in 0..4 {
            let report = detect_races_sim(
                &program(&Params::default()),
                seed,
                &DetectorConfig::default(),
            );
            assert_eq!(
                report.racy_vars,
                vec![VarId(1), VarId(2), VarId(3), VarId(4)],
                "seed {seed}"
            );
        }
    }

    #[test]
    fn eight_threads_like_the_paper() {
        assert_eq!(program(&Params::default()).num_threads(), 8);
    }

    #[test]
    fn wide_variant_shape() {
        use paramount_trace::sim::SimScheduler;
        // Small instance: 3 workers x 2 segments. Each worker: 1 pool
        // event + 2 stat events.
        let p = wide_program(3, 2);
        assert!(p.validate().is_empty());
        let poset = SimScheduler::new(5).run(&p);
        assert_eq!(poset.num_events(), 1 + 3 * 3, "main init + 3 per worker");
        // Wider than deep: the stat segments of different workers are
        // concurrent in some schedule (no shared locks around them).
        let cuts = paramount_poset::oracle::count_ideals(&poset);
        assert!(cuts > 27, "lattice too synchronized: {cuts}");
    }
}
