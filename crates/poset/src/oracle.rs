//! Brute-force enumeration of consistent cuts — the test oracle.
//!
//! Two independent, deliberately naive implementations:
//!
//! * [`enumerate_product_scan`] walks the full product space
//!   `∏ (|E_i|+1)` and filters by [`Frontier::is_consistent`]. Obviously
//!   correct, exponential in everything; use on tiny posets only.
//! * [`enumerate_reachability`] grows cuts event by event from the empty
//!   cut with a visited set. Linear in the number of consistent cuts.
//!
//! The real algorithms (BFS, DFS, lexical, ParaMount) are tested for set
//! equality against these, and the two oracles are tested against each
//! other.

use crate::{CutSpace, Frontier, Poset};
use paramount_vclock::Tid;
use std::collections::HashSet;

/// Enumerates every consistent cut by scanning the whole product space.
///
/// Returns cuts in lexicographic frontier order (a useful property for
/// comparing against the lexical algorithm's output order).
pub fn enumerate_product_scan<P>(poset: &Poset<P>) -> Vec<Frontier> {
    let n = poset.num_threads();
    let limits: Vec<u32> = (0..n)
        .map(|t| poset.events_of(Tid::from(t)) as u32)
        .collect();
    let mut out = Vec::new();
    let mut current = vec![0u32; n];
    loop {
        let frontier = Frontier::from_counts(current.clone());
        if frontier.is_consistent(poset) {
            out.push(frontier);
        }
        // Mixed-radix increment, least significant = last component, so
        // output order is lexicographic on the frontier vector.
        let mut i = n;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if current[i] < limits[i] {
                current[i] += 1;
                for c in current.iter_mut().skip(i + 1) {
                    *c = 0;
                }
                break;
            }
        }
        if n == 0 {
            // Zero-width poset: only the empty frontier exists.
            return out;
        }
    }
}

/// Enumerates every consistent cut by breadth-first reachability from the
/// empty cut, deduplicating with a hash set.
pub fn enumerate_reachability<P>(poset: &Poset<P>) -> Vec<Frontier> {
    let n = poset.num_threads();
    let mut seen: HashSet<Frontier> = HashSet::new();
    let mut stack = vec![Frontier::empty(n)];
    seen.insert(Frontier::empty(n));
    let mut out = Vec::new();
    while let Some(g) = stack.pop() {
        for t in Tid::all(n) {
            let next_index = g.get(t) + 1;
            if next_index as usize <= poset.events_of(t) {
                let e = crate::EventId::new(t, next_index);
                if g.enables(poset, e) {
                    let succ = g.advanced(t);
                    if seen.insert(succ.clone()) {
                        stack.push(succ);
                    }
                }
            }
        }
        out.push(g);
    }
    out
}

/// Capped reachability enumeration over any [`CutSpace`]; returns `None`
/// when the lattice exceeds `cap` cuts (protects callers from explosive
/// inputs — used by the DOT exporter).
pub fn enumerate_reachability_generic<S: CutSpace + ?Sized>(
    space: &S,
    cap: usize,
) -> Option<Vec<Frontier>> {
    let n = space.num_threads();
    let mut seen: HashSet<Frontier> = HashSet::new();
    let mut stack = vec![Frontier::empty(n)];
    seen.insert(Frontier::empty(n));
    let mut out = Vec::new();
    while let Some(g) = stack.pop() {
        for t in Tid::all(n) {
            let next_index = g.get(t) + 1;
            if next_index as usize <= space.events_of(t) {
                let e = crate::EventId::new(t, next_index);
                if g.enables(space, e) {
                    let succ = g.advanced(t);
                    if seen.insert(succ.clone()) {
                        if seen.len() > cap {
                            return None;
                        }
                        stack.push(succ);
                    }
                }
            }
        }
        out.push(g);
    }
    Some(out)
}

/// Number of consistent cuts — the paper's `i(P)`.
pub fn count_ideals<P>(poset: &Poset<P>) -> u64 {
    let n = poset.num_threads();
    let mut seen: HashSet<Frontier> = HashSet::new();
    let mut stack = vec![Frontier::empty(n)];
    seen.insert(Frontier::empty(n));
    while let Some(g) = stack.pop() {
        for t in Tid::all(n) {
            let next_index = g.get(t) + 1;
            if next_index as usize <= poset.events_of(t) {
                let e = crate::EventId::new(t, next_index);
                if g.enables(poset, e) {
                    let succ = g.advanced(t);
                    if seen.insert(succ.clone()) {
                        stack.push(succ);
                    }
                }
            }
        }
    }
    seen.len() as u64
}

/// Sorts cuts into canonical (lexicographic) order — helper for comparing
/// enumerations that emit in different orders.
pub fn canonicalize(mut cuts: Vec<Frontier>) -> Vec<Frontier> {
    cuts.sort_unstable();
    cuts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PosetBuilder;
    use crate::random::RandomComputation;

    fn figure4() -> Poset {
        let mut b = PosetBuilder::new(2);
        let a = b.append(Tid(0), ());
        let bb = b.append(Tid(1), ());
        b.append_after(Tid(0), &[bb], ());
        b.append_after(Tid(1), &[a], ());
        b.finish()
    }

    #[test]
    fn figure4_has_seven_consistent_cuts() {
        // 3×3 grid minus the two inconsistent corners {2,0} and {0,2}
        // (Figure 4(c) grays exactly those out).
        let p = figure4();
        let cuts = enumerate_product_scan(&p);
        assert_eq!(cuts.len(), 7);
        assert_eq!(count_ideals(&p), 7);
        assert!(!cuts.contains(&Frontier::from_counts(vec![2, 0])));
        assert!(!cuts.contains(&Frontier::from_counts(vec![0, 2])));
    }

    #[test]
    fn figure2_monitor_example_has_eight_cuts() {
        // Figure 2(a): t1 = e1, x.notify, e3 ; t2 = x.wait, e2 with the
        // monitor edge x.notify → x.wait. The paper draws G1..G8.
        let mut b = PosetBuilder::new(2);
        b.append(Tid(0), ()); // e1
        let notify = b.append(Tid(0), ());
        b.append(Tid(0), ()); // e3
        b.append_after(Tid(1), &[notify], ()); // x.wait
        b.append(Tid(1), ()); // e2
        let p = b.finish();
        assert_eq!(count_ideals(&p), 8);
    }

    #[test]
    fn oracles_agree_on_random_posets() {
        for seed in 0..30 {
            let p = RandomComputation::new(3, 5, 0.4, seed).generate();
            let a = canonicalize(enumerate_product_scan(&p));
            let b = canonicalize(enumerate_reachability(&p));
            assert_eq!(a, b, "oracle mismatch on seed {seed}");
            assert_eq!(a.len() as u64, count_ideals(&p));
        }
    }

    #[test]
    fn independent_chains_multiply() {
        // Two independent chains of lengths 2 and 3: (2+1)*(3+1) = 12 ideals.
        let mut b = PosetBuilder::new(2);
        b.append(Tid(0), ());
        b.append(Tid(0), ());
        b.append(Tid(1), ());
        b.append(Tid(1), ());
        b.append(Tid(1), ());
        let p = b.finish();
        assert_eq!(count_ideals(&p), 12);
    }

    #[test]
    fn totally_ordered_events_form_a_chain() {
        // t0 → t1 → t0 → t1 fully synchronized: ideals = |E| + 1.
        let mut b = PosetBuilder::new(2);
        let mut last = b.append(Tid(0), ());
        for i in 0..5 {
            let t = Tid((i % 2 == 0) as u32);
            last = b.append_after(t, &[last], ());
        }
        let p = b.finish();
        assert_eq!(count_ideals(&p), 7);
    }

    #[test]
    fn empty_poset_has_one_cut() {
        let p: Poset = Poset::empty(4);
        assert_eq!(count_ideals(&p), 1);
        assert_eq!(enumerate_product_scan(&p).len(), 1);
        assert_eq!(enumerate_reachability(&p).len(), 1);
    }

    #[test]
    fn product_scan_emits_lexicographic_order() {
        let p = figure4();
        let cuts = enumerate_product_scan(&p);
        let mut sorted = cuts.clone();
        sorted.sort_unstable();
        assert_eq!(cuts, sorted);
    }
}
