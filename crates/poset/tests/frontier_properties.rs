//! Property tests for the `Frontier` lattice operations.
//!
//! The set of cuts of an n-thread computation forms a lattice under the
//! componentwise order (the paper's Lemma 1 relies on this); `meet` and
//! `join` are the componentwise min/max. These tests check the lattice
//! laws — idempotence, commutativity, associativity, absorption, and the
//! `leq` ↔ `meet`/`join` characterisation — at both representation
//! widths: the inline small-vector encoding (n ≤ 16, no heap allocation)
//! and the spilled heap encoding (n > 16). A bug that only manifests in
//! one representation (or at the boundary) shows up here.

use paramount_poset::Frontier;
use proptest::prelude::*;

/// Frontiers at a width that stays in the inline representation.
fn arb_inline() -> impl Strategy<Value = (Frontier, Frontier, Frontier)> {
    arb_triple(1usize..=16)
}

/// Frontiers at a width that forces the spilled (heap) representation.
fn arb_spilled() -> impl Strategy<Value = (Frontier, Frontier, Frontier)> {
    arb_triple(17usize..=36)
}

/// Three same-width frontiers with independent per-thread counts.
fn arb_triple(
    width: std::ops::RangeInclusive<usize>,
) -> impl Strategy<Value = (Frontier, Frontier, Frontier)> {
    width.prop_flat_map(|n| {
        let counts = prop::collection::vec(0u32..50, n);
        (counts.clone(), counts.clone(), counts).prop_map(|(a, b, c)| {
            (
                Frontier::from_counts(a),
                Frontier::from_counts(b),
                Frontier::from_counts(c),
            )
        })
    })
}

/// The laws themselves, shared by both width regimes.
fn check_lattice_laws(x: &Frontier, y: &Frontier, z: &Frontier) -> Result<(), TestCaseError> {
    // Idempotence.
    prop_assert_eq!(&x.meet(x), x);
    prop_assert_eq!(&x.join(x), x);

    // Commutativity.
    prop_assert_eq!(x.meet(y), y.meet(x));
    prop_assert_eq!(x.join(y), y.join(x));

    // Associativity.
    prop_assert_eq!(x.meet(&y.meet(z)), x.meet(y).meet(z));
    prop_assert_eq!(x.join(&y.join(z)), x.join(y).join(z));

    // Absorption: x ∧ (x ∨ y) = x and x ∨ (x ∧ y) = x.
    prop_assert_eq!(&x.meet(&x.join(y)), x);
    prop_assert_eq!(&x.join(&x.meet(y)), x);

    // leq ↔ meet/join consistency: x ≤ y ⟺ x ∧ y = x ⟺ x ∨ y = y.
    prop_assert_eq!(x.leq(y), &x.meet(y) == x);
    prop_assert_eq!(x.leq(y), &x.join(y) == y);

    // meet is the greatest lower bound, join the least upper bound.
    let m = x.meet(y);
    let j = x.join(y);
    prop_assert!(m.leq(x) && m.leq(y));
    prop_assert!(x.leq(&j) && y.leq(&j));

    // join_assign agrees with join.
    let mut acc = x.clone();
    acc.join_assign(y);
    prop_assert_eq!(acc, j);

    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Lattice laws at inline width — and confirm the representation is
    /// actually inline, so the heap-free encoding is what's under test.
    #[test]
    fn lattice_laws_inline((x, y, z) in arb_inline()) {
        prop_assert!(x.is_inline() && y.is_inline() && z.is_inline());
        prop_assert!(x.meet(&y).is_inline() && x.join(&y).is_inline());
        check_lattice_laws(&x, &y, &z)?;
    }

    /// Lattice laws at spilled width — the heap representation.
    #[test]
    fn lattice_laws_spilled((x, y, z) in arb_spilled()) {
        prop_assert!(!x.is_inline() && !y.is_inline() && !z.is_inline());
        check_lattice_laws(&x, &y, &z)?;
    }

    /// Equality and `leq` are representation-independent: a frontier
    /// compares equal to itself however it was built, and the order is a
    /// partial order (reflexive, antisymmetric, transitive) at any width.
    #[test]
    fn leq_is_a_partial_order((x, y, z) in arb_triple(1usize..=20)) {
        prop_assert!(x.leq(&x));
        if x.leq(&y) && y.leq(&x) {
            prop_assert_eq!(&x, &y);
        }
        if x.leq(&y) && y.leq(&z) {
            prop_assert!(x.leq(&z));
        }
    }
}
