//! Fleet-mode `kill -9` acceptance (the acceptance gate of this PR): a
//! real `paramount fleet --shards 3` process manages three shard
//! daemons; one shard is SIGKILLed with a durable session mid-stream;
//! the router health-checks it to `Down`, migrates the session's store
//! to a survivor, re-ROUTEs the session there, and the resumed run's
//! count matches `paramount count` on the full trace — plus the scraped
//! fleet stats must show a nonzero failover and migration.
#![cfg(unix)]

use paramount_ingest::{parse_client_line, shard_of_session, Client, ClientFrame, Hello, WireOp};
use paramount_trace::textfmt::{parse_trace, render_op};
use std::io::{BufRead, BufReader};
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const TRACE: &str = "\
threads 2
0 write x
0 acquire m
0 write y
0 release m
1 read x
1 acquire m
1 write z
1 release m
0 write w
1 read y
";

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_paramount")
}

struct Fleet {
    child: Child,
    addr: String,
    shard_pids: Vec<(u64, u32)>,
}

/// Spawns `paramount fleet --shards 3` on an ephemeral port and parses
/// the shard and router banners.
fn spawn_fleet(root: &Path) -> Fleet {
    let mut child = Command::new(bin())
        .args([
            "fleet",
            "--listen",
            "127.0.0.1:0",
            "--shards",
            "3",
            "--data-dir",
            root.to_str().expect("utf-8 tmp path"),
            "--probe-interval-ms",
            "50",
            "--probe-deadline-ms",
            "250",
            "--suspect-after",
            "1",
            "--down-after",
            "2",
            "--checkpoint-events",
            "3",
            "--fsync",
            "always",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn paramount fleet");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let mut shard_pids = Vec::new();
    let addr = loop {
        let line = lines
            .next()
            .expect("fleet exited before binding")
            .expect("fleet stdout");
        // "shard <id> pid <pid> listening on tcp <addr>"
        if let Some(rest) = line.strip_prefix("shard ") {
            let mut words = rest.split_whitespace();
            let id: u64 = words.next().expect("shard id").parse().expect("shard id");
            assert_eq!(words.next(), Some("pid"));
            let pid: u32 = words.next().expect("shard pid").parse().expect("shard pid");
            shard_pids.push((id, pid));
        }
        if let Some(addr) = line.strip_prefix("fleet listening on tcp ") {
            break addr.to_string();
        }
    };
    assert_eq!(
        shard_pids.len(),
        3,
        "three shard banners before the router's"
    );
    // Keep draining stdout so the fleet never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    Fleet {
        child,
        addr,
        shard_pids,
    }
}

fn connect(addr: &str) -> Client {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match Client::connect_tcp(addr) {
            Ok(client) => return client,
            Err(err) if Instant::now() < deadline => {
                let _ = err;
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(err) => panic!("cannot connect to {addr}: {err}"),
        }
    }
}

/// ROUTE against the router, then dial the shard it names.
fn route_and_dial(router: &str, session: Option<u64>) -> (u64, Client) {
    let mut routed = connect(router);
    let (shard, addr) = routed.route(session).expect("route");
    (shard, connect(&addr))
}

/// `paramount count <trace>` — the sequential ground truth, via the
/// same binary under test.
fn oracle_count(trace_path: &Path) -> u64 {
    let out = Command::new(bin())
        .arg("count")
        .arg(trace_path)
        .output()
        .expect("run paramount count");
    assert!(out.status.success(), "count failed: {out:?}");
    let text = String::from_utf8(out.stdout).expect("utf-8 count output");
    let mut words = text.split_whitespace();
    while let Some(word) = words.next() {
        if word == "events," {
            return words
                .next()
                .expect("cut count after 'events,'")
                .parse()
                .expect("numeric cut count");
        }
    }
    panic!("unparseable count output: {text}");
}

/// One `"metric":"<name>"` counter value out of a STAT line dump.
fn scraped_counter(lines: &[String], name: &str) -> u64 {
    let needle = format!("\"metric\":\"{name}\"");
    let line = lines
        .iter()
        .find(|l| l.contains(&needle))
        .unwrap_or_else(|| panic!("no {name} in fleet stats: {lines:?}"));
    let at = line.find("\"value\":").expect("value field") + "\"value\":".len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().expect("numeric value")
}

#[test]
fn sigkilled_shard_fails_over_and_matches_count() {
    let root = std::env::temp_dir().join(format!("paramount-e2e-fleet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("tmp root");
    let trace_path = root.join("trace.txt");
    std::fs::write(&trace_path, TRACE).expect("write trace");
    let data_root = root.join("data");

    let expected = oracle_count(&trace_path);
    let trace = parse_trace(TRACE).expect("parse trace");
    let wire: Vec<(usize, WireOp)> = trace
        .ops
        .iter()
        .map(|&(tid, op)| {
            let body = render_op(op, &trace.var_names, &trace.lock_names);
            match parse_client_line(&format!("EVENT {} {body}", tid.index())) {
                Ok(ClientFrame::Event { tid, op }) => (tid, op),
                other => panic!("unparseable wire op: {other:?}"),
            }
        })
        .collect();
    let half = wire.len() / 2;

    let mut fleet = spawn_fleet(&data_root);

    // Open a routed session, stream half the trace, FLUSH so the acked
    // prefix is durable (fsync=always), then SIGKILL the owning shard —
    // no shutdown handler runs in it.
    let (victim, mut client) = route_and_dial(&fleet.addr, None);
    let session = client.hello(&Hello::new(trace.threads)).expect("hello");
    assert_eq!(
        shard_of_session(session) as u64,
        victim,
        "session id must encode the shard ROUTE named"
    );
    for (tid, op) in &wire[..half] {
        client.event(*tid, op).expect("event");
    }
    client.flush_sync().expect("flush");
    let (_, victim_pid) = *fleet
        .shard_pids
        .iter()
        .find(|(id, _)| *id == victim)
        .expect("victim shard was spawned");
    let killed = Command::new("kill")
        .args(["-9", &victim_pid.to_string()])
        .status()
        .expect("run kill");
    assert!(killed.success(), "SIGKILL shard {victim} pid {victim_pid}");
    drop(client);

    // The router notices within a few probe sweeps and re-homes the
    // session to a survivor; until then ROUTE still names the corpse.
    let deadline = Instant::now() + Duration::from_secs(30);
    let new_addr = loop {
        assert!(
            Instant::now() < deadline,
            "router never migrated session {session} off SIGKILLed shard {victim}"
        );
        let mut routed = connect(&fleet.addr);
        match routed.route(Some(session)) {
            Ok((shard, addr)) if shard != victim => break addr,
            _ => std::thread::sleep(Duration::from_millis(50)),
        }
    };

    // RESUME on the survivor: it acked exactly the flushed prefix, so
    // only the tail is re-sent, and the count must match the oracle.
    let mut client = connect(&new_addr);
    let acked = client.resume(session).expect("resume migrated session") as usize;
    assert_eq!(acked, half, "fsync=always must preserve the flushed prefix");
    for (tid, op) in &wire[acked..] {
        client.event(*tid, op).expect("resumed event");
    }
    let report = client.finish().expect("final report");
    assert!(report.complete, "migrated session must be Theorem-3 exact");
    assert_eq!(
        report.cuts, expected,
        "kill -9 + migrate + resume must match `paramount count`"
    );

    // The router's own STATS must account for the failover.
    let mut stats = connect(&fleet.addr);
    let lines = stats.stats().expect("fleet stats");
    assert!(
        scraped_counter(&lines, "failovers") >= 1,
        "the dead shard must count as a failover"
    );
    assert!(
        scraped_counter(&lines, "sessions_migrated") >= 1,
        "the session must count as migrated"
    );
    assert!(scraped_counter(&lines, "shards_down") >= 1);

    // SHUTDOWN drains the router, which drains the surviving shards;
    // the whole fleet process must exit cleanly.
    connect(&fleet.addr).request_shutdown().expect("shutdown");
    let status = fleet.child.wait().expect("fleet exit");
    assert!(status.success(), "fleet must drain cleanly: {status}");
    let _ = std::fs::remove_dir_all(&root);
}

/// The packaged client path: `paramount send --fleet` ROUTEs through
/// the router and streams to the shard it names, end to end.
#[test]
fn send_fleet_routes_and_matches_count() {
    let root =
        std::env::temp_dir().join(format!("paramount-e2e-fleet-send-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("tmp root");
    let trace_path = root.join("trace.txt");
    std::fs::write(&trace_path, TRACE).expect("write trace");

    let expected = oracle_count(&trace_path);
    let mut fleet = spawn_fleet(&root.join("data"));

    let out = Command::new(bin())
        .arg("send")
        .arg(&trace_path)
        .args(["--connect", &fleet.addr, "--fleet", "--retries", "3"])
        .output()
        .expect("run paramount send --fleet");
    assert!(out.status.success(), "send --fleet failed: {out:?}");
    let text = String::from_utf8(out.stdout).expect("utf-8 send output");
    assert!(
        text.contains(&format!("{expected} consistent global states"))
            || text.split_whitespace().any(|w| w == expected.to_string()),
        "send --fleet must report the oracle count {expected}: {text}"
    );

    connect(&fleet.addr).request_shutdown().expect("shutdown");
    let status = fleet.child.wait().expect("fleet exit");
    assert!(status.success(), "fleet must drain cleanly: {status}");
    let _ = std::fs::remove_dir_all(&root);
}
