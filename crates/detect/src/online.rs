//! The online-and-parallel predicate detector (Figure 7, §4.2).
//!
//! Program threads execute; every captured event is inserted into the
//! online poset and its interval `I(e)` enumerated by the worker pool
//! *while the program keeps running*; the race predicate fires on each
//! enumerated cut. The whole pipeline is the "ParaMount" column of
//! Table 2.

use crate::{DetectorConfig, DetectorOutcome, RaceDetectionReport, RacePredicate};
use paramount::{OnlineEngine, OnlineEngineConfig, OnlinePoset};
use paramount_poset::{CutRef, EventId};
use paramount_trace::exec;
use paramount_trace::sim::SimScheduler;
use paramount_trace::{EventOut, Program, RecorderConfig, TraceEvent};
use paramount_vclock::{Tid, VectorClock};
use std::ops::ControlFlow;
use std::sync::Arc;
use std::time::Instant;

/// Streams recorder output straight into the online engine — the glue
/// between Part I (capture) and Part II (enumeration) of the detector.
pub struct EngineOut<'a> {
    engine: &'a OnlineEngine<TraceEvent>,
}

impl<'a> EngineOut<'a> {
    /// Wraps an engine reference.
    pub fn new(engine: &'a OnlineEngine<TraceEvent>) -> Self {
        EngineOut { engine }
    }
}

impl EventOut for EngineOut<'_> {
    fn emit(&mut self, t: Tid, vc: VectorClock, event: TraceEvent) {
        self.engine.observe_with_clock(t, vc, event);
    }
}

/// Generic online predicate detection over a deterministic (seeded)
/// execution: `predicate` is evaluated on every consistent cut of the
/// observed poset, concurrently with the run. Returns (cuts, events,
/// budget error, engine metrics).
pub fn run_online_sim<F>(
    program: &Program,
    seed: u64,
    config: &DetectorConfig,
    predicate: F,
) -> (
    u64,
    u64,
    Option<paramount::EnumError>,
    paramount::MetricsSnapshot,
)
where
    F: Fn(&OnlinePoset<TraceEvent>, CutRef<'_>, EventId) -> ControlFlow<()> + Send + Sync + 'static,
{
    let poset = Arc::new(OnlinePoset::<TraceEvent>::new(program.num_threads()));
    let sink_poset = Arc::clone(&poset);
    let engine = OnlineEngine::with_poset(
        poset,
        OnlineEngineConfig {
            algorithm: config.algorithm,
            workers: config.workers,
            frontier_budget: config.frontier_budget,
            ..OnlineEngineConfig::default()
        },
        move |cut: CutRef<'_>, owner: EventId| predicate(sink_poset.as_ref(), cut, owner),
    );
    SimScheduler::new(seed).run_into(program, EngineOut::new(&engine));
    let report = engine.finish();
    (report.cuts, report.events, report.error, report.metrics)
}

/// Race detection over a deterministic (seeded) execution — the
/// reproducible form used by tests and benchmark tables.
pub fn detect_races_sim(
    program: &Program,
    seed: u64,
    config: &DetectorConfig,
) -> RaceDetectionReport {
    let start = Instant::now();
    let predicate = Arc::new(RacePredicate::new(
        program.num_vars(),
        config.ignore_init_races,
    ));
    let sink_predicate = Arc::clone(&predicate);
    let (cuts, events, error, metrics) =
        run_online_sim(program, seed, config, move |view, cut, owner| {
            sink_predicate.evaluate(view, cut, owner)
        });
    finish_report(
        "ParaMount (sim)",
        &predicate,
        cuts,
        events,
        error,
        Some(metrics),
        start,
    )
}

/// Race detection over a *real multithreaded* execution — the paper's
/// actual deployment: instrumented threads run genuinely in parallel with
/// the enumeration workers.
pub fn detect_races_threaded(
    program: &Program,
    work_scale: u32,
    config: &DetectorConfig,
) -> RaceDetectionReport {
    let start = Instant::now();
    let predicate = Arc::new(RacePredicate::new(
        program.num_vars(),
        config.ignore_init_races,
    ));
    let sink_predicate = Arc::clone(&predicate);

    let poset = Arc::new(OnlinePoset::<TraceEvent>::new(program.num_threads()));
    let sink_poset = Arc::clone(&poset);
    let engine = OnlineEngine::with_poset(
        poset,
        OnlineEngineConfig {
            algorithm: config.algorithm,
            workers: config.workers,
            frontier_budget: config.frontier_budget,
            ..OnlineEngineConfig::default()
        },
        move |cut: CutRef<'_>, owner: EventId| {
            sink_predicate.evaluate(sink_poset.as_ref(), cut, owner)
        },
    );
    exec::run_threads(
        program,
        RecorderConfig::default(),
        work_scale,
        EngineOut::new(&engine),
    );
    let report = engine.finish();
    finish_report(
        "ParaMount (online)",
        &predicate,
        report.cuts,
        report.events,
        report.error,
        Some(report.metrics),
        start,
    )
}

#[allow(clippy::too_many_arguments)]
fn finish_report(
    detector: &'static str,
    predicate: &RacePredicate,
    cuts: u64,
    events: u64,
    error: Option<paramount::EnumError>,
    metrics: Option<paramount::MetricsSnapshot>,
    start: Instant,
) -> RaceDetectionReport {
    let outcome = match error {
        Some(paramount::EnumError::OutOfBudget {
            live_frontiers,
            budget,
        }) => DetectorOutcome::OutOfMemory {
            live_frontiers,
            budget,
        },
        _ => DetectorOutcome::Completed,
    };
    RaceDetectionReport {
        detector,
        racy_vars: predicate.racy_vars(),
        detections: predicate.detections(),
        cuts,
        events,
        wall: start.elapsed(),
        outcome,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paramount_trace::{Op, ProgramBuilder, VarId};

    fn racy_program() -> Program {
        let mut b = ProgramBuilder::new("racy", 3);
        let x = b.var("x");
        let y = b.var("y");
        let l = b.lock("m");
        b.push(Tid(1), Op::Write(x));
        b.push(Tid(2), Op::Write(x));
        b.critical(Tid(1), l, [Op::Write(y)]);
        b.critical(Tid(2), l, [Op::Write(y)]);
        // Main initializes both variables before forking, so worker
        // writes are ordinary (non-initialization) accesses.
        b.fork_join_all_with_init([Op::Write(x), Op::Write(y)]);
        b.build()
    }

    #[test]
    fn detects_the_racy_variable_only() {
        let report = detect_races_sim(&racy_program(), 1, &DetectorConfig::default());
        assert_eq!(report.racy_vars, vec![VarId(0)], "x races, y does not");
        assert!(report.outcome.completed());
        assert!(report.cuts > 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = detect_races_sim(&racy_program(), 7, &DetectorConfig::default());
        let b = detect_races_sim(&racy_program(), 7, &DetectorConfig::default());
        assert_eq!(a.racy_vars, b.racy_vars);
        assert_eq!(a.cuts, b.cuts);
    }

    #[test]
    fn threaded_detector_agrees_on_detections() {
        for _ in 0..5 {
            let report = detect_races_threaded(&racy_program(), 0, &DetectorConfig::default());
            assert_eq!(report.racy_vars, vec![VarId(0)]);
            assert!(report.outcome.completed());
        }
    }

    #[test]
    fn init_refinement_distinguishes_first_writes() {
        // Only access to x is one write per thread; with init-refinement
        // the globally-first write is exempt, but the second thread's
        // write still conflicts with it... unless the *pair* contains the
        // init access. Exactly one writer pair exists and it includes the
        // init write, so the refined detector stays silent.
        let mut b = ProgramBuilder::new("init", 3);
        let x = b.var("x");
        b.push(Tid(1), Op::Write(x));
        b.push(Tid(2), Op::Write(x));
        b.fork_join_all();
        let p = b.build();
        let strict = detect_races_sim(
            &p,
            1,
            &DetectorConfig {
                ignore_init_races: false,
                ..DetectorConfig::default()
            },
        );
        assert_eq!(strict.racy_vars, vec![VarId(0)]);
        let refined = detect_races_sim(&p, 1, &DetectorConfig::default());
        assert!(refined.racy_vars.is_empty());
    }

    #[test]
    fn conjunctive_predicate_through_the_online_engine() {
        use crate::ConjunctivePredicate;
        let mut b = ProgramBuilder::new("conj", 3);
        let x = b.var("x");
        let y = b.var("y");
        b.push(Tid(1), Op::Write(x));
        b.push(Tid(2), Op::Write(y));
        b.fork_join_all();
        let p = b.build();
        let pred = Arc::new(ConjunctivePredicate::new(vec![
            Box::new(|_, _, _| true), // main thread: anything
            Box::new(|_, _, payload: Option<&TraceEvent>| {
                payload.and_then(TraceEvent::collection).is_some()
            }),
            Box::new(|_, _, payload: Option<&TraceEvent>| {
                payload.and_then(TraceEvent::collection).is_some()
            }),
        ]));
        let sink_pred = Arc::clone(&pred);
        let _ = run_online_sim(&p, 3, &DetectorConfig::default(), move |v, c, o| {
            sink_pred.evaluate(v, c, o)
        });
        assert!(pred.detected(), "both writers on one frontier must occur");
    }
}
