//! Networked subcommands: `paramount serve`, `paramount send`, and
//! `paramount stats --connect` — thin, testable glue between argv and
//! [`paramount_ingest`].

use paramount::Algorithm;
use paramount_ingest::{
    fleet, send_trace_with_retry, Client, EndReason, FleetConfig, FleetRouter, Hello, ProtoPref,
    ServeSummary, Server, ServerConfig, SessionReport, ShardSpec,
};
use paramount_trace::textfmt::TraceFile;
use std::fmt::Write as _;
use std::io::BufRead as _;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Where a client-side command connects.
#[derive(Clone, Debug)]
pub enum Target {
    /// `--connect HOST:PORT`.
    Tcp(String),
    /// `--unix PATH`.
    #[cfg(unix)]
    Unix(PathBuf),
}

impl Target {
    fn connect_io(&self) -> std::io::Result<Client> {
        match self {
            Target::Tcp(addr) => Client::connect_tcp(addr.as_str()),
            #[cfg(unix)]
            Target::Unix(path) => Client::connect_unix(path),
        }
    }

    fn connect(&self) -> Result<Client, String> {
        self.connect_io()
            .map_err(|e| format!("cannot connect to {self}: {e}"))
    }
}

impl std::fmt::Display for Target {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Target::Tcp(addr) => write!(f, "{addr}"),
            #[cfg(unix)]
            Target::Unix(path) => write!(f, "{}", path.display()),
        }
    }
}

/// Everything `paramount serve` accepts from argv.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// TCP endpoints to bind (`--listen`, repeatable).
    pub listen: Vec<String>,
    /// Unix-socket endpoints to bind (`--unix`, repeatable).
    pub unix: Vec<PathBuf>,
    /// Default bounded subroutine for sessions that don't pick one.
    pub algorithm: Algorithm,
    /// Default per-session enumeration workers (0 = engine default).
    pub workers: usize,
    /// Concurrent-session cap.
    pub max_sessions: u64,
    /// Per-session event cap.
    pub max_events: u64,
    /// Per-session idle timeout in seconds.
    pub idle_timeout_secs: u64,
    /// Per-session idle timeout in milliseconds (`--idle-timeout-ms`;
    /// overrides `idle_timeout_secs` when set).
    pub idle_timeout_ms: Option<u64>,
    /// Per-session write timeout in milliseconds (`--write-timeout-ms`).
    pub write_timeout_ms: Option<u64>,
    /// Soft spill-byte watermark (`--soft-spill-bytes`): past it,
    /// sessions block producers instead of spilling.
    pub soft_spill_bytes: Option<usize>,
    /// Hard spill-byte watermark (`--hard-spill-bytes`): past it, new
    /// `HELLO`s are rejected `ERR busy` and overflowing work fails fast.
    pub hard_spill_bytes: Option<usize>,
    /// Per-interval watchdog deadline in ms (`--interval-deadline-ms`).
    pub interval_deadline_ms: Option<u64>,
    /// `retry-after-ms` hint sent with `ERR busy` (`--busy-retry-ms`).
    pub busy_retry_ms: Option<u64>,
    /// Durable session store root (`--data-dir`): per-session WAL +
    /// checkpoints, crash recovery on boot, `RESUME` support, and
    /// disk-backed interval spill.
    pub data_dir: Option<PathBuf>,
    /// Checkpoint interval in accepted events (`--checkpoint-events`).
    pub checkpoint_events: Option<u64>,
    /// WAL fsync policy (`--fsync always|ondemand|never`).
    pub fsync: Option<String>,
    /// Disk-spill byte cap (`--disk-spill-bytes`); only meaningful with
    /// `--data-dir`.
    pub disk_spill_bytes: Option<usize>,
    /// Lowest session id handed out (`--first-session-id`); fleet
    /// shards get ids whose high 32 bits encode the shard index.
    pub first_session_id: Option<u64>,
    /// Highest wire protocol version offered to clients (`--proto-max`);
    /// `1` pins the daemon to the text protocol for mixed-version fleets.
    pub proto_max: Option<u8>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            listen: Vec::new(),
            unix: Vec::new(),
            algorithm: Algorithm::Lexical,
            workers: 0,
            max_sessions: ServerConfig::default().max_sessions,
            max_events: paramount_ingest::SessionLimits::default().max_events,
            idle_timeout_secs: 30,
            idle_timeout_ms: None,
            write_timeout_ms: None,
            soft_spill_bytes: None,
            hard_spill_bytes: None,
            interval_deadline_ms: None,
            busy_retry_ms: None,
            data_dir: None,
            checkpoint_events: None,
            fsync: None,
            disk_spill_bytes: None,
            first_session_id: None,
            proto_max: None,
        }
    }
}

/// Builds and binds the daemon from options; returns it plus the bound
/// TCP addresses (resolved, so `--listen 127.0.0.1:0` is reportable).
pub fn build_server(opts: &ServeOptions) -> Result<(Server, Vec<SocketAddr>), String> {
    let mut config = ServerConfig::default();
    config.session.engine.algorithm = opts.algorithm;
    if opts.workers > 0 {
        config.session.engine.workers = opts.workers;
    }
    config.max_sessions = opts.max_sessions;
    config.session.limits.max_events = opts.max_events;
    config.session.limits.idle_timeout = match opts.idle_timeout_ms {
        Some(ms) => std::time::Duration::from_millis(ms),
        None => std::time::Duration::from_secs(opts.idle_timeout_secs),
    };
    if let Some(ms) = opts.write_timeout_ms {
        config.session.limits.write_timeout = std::time::Duration::from_millis(ms);
    }
    config.governor.soft_spill_bytes = opts.soft_spill_bytes;
    config.governor.hard_spill_bytes = opts.hard_spill_bytes;
    config.governor.interval_deadline = opts
        .interval_deadline_ms
        .map(std::time::Duration::from_millis);
    if let Some(ms) = opts.busy_retry_ms {
        config.busy_retry_after_ms = ms;
    }
    config.data_dir = opts.data_dir.clone();
    if let Some(every) = opts.checkpoint_events {
        config.checkpoint_every_events = every;
    }
    if let Some(name) = &opts.fsync {
        config.fsync = paramount_durable::FsyncPolicy::parse(name)
            .ok_or_else(|| format!("unknown --fsync policy `{name}` (always|ondemand|never)"))?;
    }
    config.governor.disk_spill_bytes = opts.disk_spill_bytes;
    if let Some(first) = opts.first_session_id {
        config.first_session_id = first;
    }
    if let Some(max) = opts.proto_max {
        config.proto_max = max;
    }
    let mut server = Server::new(config);
    for addr in &opts.listen {
        server
            .bind_tcp(addr.as_str())
            .map_err(|e| format!("cannot listen on {addr}: {e}"))?;
    }
    for path in &opts.unix {
        #[cfg(unix)]
        server
            .bind_unix(path)
            .map_err(|e| format!("cannot listen on {}: {e}", path.display()))?;
        #[cfg(not(unix))]
        return Err(format!(
            "--unix {} is not supported on this platform",
            path.display()
        ));
    }
    let addrs = server.tcp_addrs();
    Ok((server, addrs))
}

/// One human-readable line per finished session.
pub fn session_line(report: &SessionReport) -> String {
    format!(
        "session {}{}: {} events, {} consistent global states (reason {}{})",
        report.id,
        report
            .label
            .as_deref()
            .map(|l| format!(" [{l}]"))
            .unwrap_or_default(),
        report.events,
        report.cuts,
        report.reason,
        if report.complete { "" } else { ", INCOMPLETE" },
    )
}

/// Runs the daemon until shutdown (SIGINT or a `SHUTDOWN` frame),
/// printing each session's final report as it lands, and returns the
/// drain summary text.
pub fn run_daemon(server: Server, quiet: bool) -> Result<String, String> {
    let summary = server
        .run(move |report| {
            if !quiet {
                println!("{}", session_line(report));
            }
        })
        .map_err(|e| format!("serve failed: {e}"))?;
    Ok(summary_text(&summary))
}

/// The end-of-run summary: totals plus the daemon-wide ingest counters.
pub fn summary_text(summary: &ServeSummary) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "served {} sessions ({} clean, {} aborted)",
        summary.reports.len(),
        summary
            .reports
            .iter()
            .filter(|r| r.reason == EndReason::End)
            .count(),
        summary
            .reports
            .iter()
            .filter(|r| r.reason != EndReason::End)
            .count(),
    );
    out.push_str(&summary.ingest.render_text());
    out
}

/// `paramount send`: stream a parsed trace into a daemon and report the
/// daemon's final count in the same shape as `paramount count`.
///
/// `retries` extra attempts reconnect and replay the whole session with
/// exponential backoff starting at `backoff_ms` (see
/// [`paramount_ingest::RetryPolicy`]); on exhaustion the error names the
/// server-acknowledged partial prefix. `checkpoint_every` overrides the
/// events-per-`FLUSH` checkpoint cadence (must be non-zero; validated by
/// the argv layer).
///
/// With `fleet: true` the target is a fleet *router*: every attempt
/// first sends `ROUTE` (with the session id once one exists) and then
/// dials the shard the router names — so a retry lands on the surviving
/// shard a migrated session was re-homed to, not the dead one.
#[allow(clippy::too_many_arguments)]
pub fn send(
    trace: &TraceFile,
    target: &Target,
    algorithm: Option<Algorithm>,
    workers: Option<usize>,
    label: Option<String>,
    capture_sync: bool,
    retries: u32,
    backoff_ms: u64,
    checkpoint_every: Option<u64>,
    fleet: bool,
    proto: ProtoPref,
) -> Result<String, String> {
    let hello = Hello {
        threads: trace.threads,
        algorithm,
        workers,
        capture_sync,
        label,
        proto: 1, // placeholder; negotiation stamps the offered version
    };
    let mut policy = paramount_ingest::RetryPolicy::new(
        retries.saturating_add(1),
        std::time::Duration::from_millis(backoff_ms),
    );
    if let Some(events) = checkpoint_every {
        policy = policy.with_checkpoint_every(events);
    }
    let result = if fleet {
        send_trace_with_retry(
            |session| {
                let mut client = fleet_connect(target, session)?;
                client.set_proto_pref(proto);
                Ok(client)
            },
            &hello,
            trace,
            policy,
        )
    } else {
        // Re-resolve the target on every attempt (fresh lookup, fresh
        // socket) rather than caching an address across retries.
        send_trace_with_retry(
            |_| {
                let mut client = target.connect_io()?;
                client.set_proto_pref(proto);
                Ok(client)
            },
            &hello,
            trace,
            policy,
        )
    };
    let (report, session, attempts) =
        result.map_err(|e| format!("cannot send to {target}: {e}"))?;
    Ok(format!(
        "{} events, {} consistent global states (session {session}, reason {}{}{})\n",
        report.events,
        report.cuts,
        report.reason,
        if report.complete { "" } else { ", INCOMPLETE" },
        if attempts > 1 {
            format!(", {attempts} attempts")
        } else {
            String::new()
        },
    ))
}

/// `paramount stats --connect`: scrape a live daemon's ingest counters
/// (JSON lines, same shape as `--json`).
pub fn remote_stats(target: &Target) -> Result<String, String> {
    let mut client = target.connect()?;
    let lines = client.stats().map_err(|e| e.to_string())?;
    let mut out = String::new();
    for line in lines {
        out.push_str(&line);
        out.push('\n');
    }
    Ok(out)
}

/// `paramount shutdown`-style admin: ask a daemon to drain and exit.
pub fn remote_shutdown(target: &Target) -> Result<String, String> {
    let client = target.connect()?;
    client.request_shutdown().map_err(|e| e.to_string())?;
    Ok("daemon draining\n".to_string())
}

/// One `ROUTE`-then-dial connection through a fleet router. A routing
/// failure keeps the original [`paramount_ingest::ClientError`] as the io error's
/// source, so the retry loop can read `ERR busy retry-after-ms` hints
/// off a `ROUTE` rejection exactly as it does off a direct `HELLO`.
pub fn fleet_connect(router: &Target, session: Option<u64>) -> std::io::Result<Client> {
    let mut routed = router.connect_io()?;
    let (_, addr) = routed.route(session).map_err(|e| match e {
        paramount_ingest::ClientError::Io(io) => io,
        rejection => std::io::Error::other(rejection),
    })?;
    Client::connect_tcp(addr.as_str())
}

/// Everything `paramount fleet` accepts from argv.
#[derive(Clone, Debug)]
pub struct FleetOptions {
    /// Router TCP endpoint (`--listen`).
    pub listen: String,
    /// Spawn mode: number of `paramount serve` child shards (`--shards`).
    pub shards: usize,
    /// Shared durable root (`--data-dir`); shard `k` serves
    /// `<root>/shard-<k>`. Required in spawn mode; enables migration in
    /// attach mode when the manifest shards share it.
    pub data_root: Option<PathBuf>,
    /// Attach mode: a shard manifest (`--manifest`), one
    /// `shard <id> <addr>` per line, instead of spawning children.
    pub manifest: Option<PathBuf>,
    /// Milliseconds between health-probe sweeps (`--probe-interval-ms`).
    pub probe_interval_ms: Option<u64>,
    /// Per-probe deadline in milliseconds (`--probe-deadline-ms`).
    pub probe_deadline_ms: Option<u64>,
    /// Consecutive probe failures before `Suspect` (`--suspect-after`).
    pub suspect_after: Option<u32>,
    /// Consecutive probe failures before `Down` + migration
    /// (`--down-after`).
    pub down_after: Option<u32>,
    /// Shard lease TTL in milliseconds (`--lease-ttl-ms`); the fencing
    /// window for partition-safe failover.
    pub lease_ttl_ms: Option<u64>,
    /// Directory for the router's durable manifest
    /// (`--router-data-dir`): epoch grants and the placement map
    /// survive a router restart.
    pub router_data_dir: Option<PathBuf>,
    /// Extra argv forwarded verbatim to every spawned shard (engine and
    /// durability flags of `paramount serve`).
    pub serve_args: Vec<String>,
}

impl Default for FleetOptions {
    fn default() -> Self {
        FleetOptions {
            listen: "127.0.0.1:7667".to_string(),
            shards: 0,
            data_root: None,
            manifest: None,
            probe_interval_ms: None,
            probe_deadline_ms: None,
            suspect_after: None,
            down_after: None,
            lease_ttl_ms: None,
            router_data_dir: None,
            serve_args: Vec::new(),
        }
    }
}

/// A spawned shard child process.
pub struct ShardProc {
    /// Shard index (high 32 bits of its session ids).
    pub id: usize,
    /// OS process id (tests `kill -9` this).
    pub pid: u32,
    /// The shard's bound TCP address, parsed from its banner.
    pub addr: String,
    child: std::process::Child,
}

/// Spawns one `paramount serve` shard and waits for its listen banner.
fn spawn_shard(
    exe: &Path,
    shard: usize,
    root: &Path,
    extra: &[String],
) -> Result<ShardProc, String> {
    let subroot = fleet::shard_subroot(root, shard);
    std::fs::create_dir_all(&subroot)
        .map_err(|e| format!("cannot create {}: {e}", subroot.display()))?;
    let mut child = std::process::Command::new(exe)
        .arg("serve")
        .arg("--listen")
        .arg("127.0.0.1:0")
        .arg("--data-dir")
        .arg(&subroot)
        .arg("--first-session-id")
        .arg(fleet::first_session_id(shard).to_string())
        .arg("--quiet")
        .args(extra)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::inherit())
        .spawn()
        .map_err(|e| format!("cannot spawn shard {shard}: {e}"))?;
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = std::io::BufReader::new(stdout);
    let mut line = String::new();
    let addr = loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => {
                let _ = child.kill();
                return Err(format!("shard {shard} exited before binding"));
            }
            Ok(_) => {
                if let Some(rest) = line.trim().strip_prefix("listening on tcp ") {
                    break rest.to_string();
                }
            }
            Err(e) => {
                let _ = child.kill();
                return Err(format!("shard {shard} banner read failed: {e}"));
            }
        }
    };
    // Keep draining the child's stdout so it never blocks on a full pipe.
    std::thread::Builder::new()
        .name(format!("paramount-shard-{shard}-drain"))
        .spawn(move || {
            let mut sink = String::new();
            while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
                sink.clear();
            }
        })
        .map_err(|e| format!("cannot spawn drain thread: {e}"))?;
    Ok(ShardProc {
        id: shard,
        pid: child.id(),
        addr,
        child,
    })
}

/// Builds the fleet: spawns (or attaches to) the shards and binds the
/// router. Returns the router, its bound address, and any spawned
/// children (empty in attach mode).
pub fn build_fleet(
    opts: &FleetOptions,
) -> Result<(FleetRouter, SocketAddr, Vec<ShardProc>), String> {
    let (specs, procs): (Vec<ShardSpec>, Vec<ShardProc>) = if let Some(manifest) = &opts.manifest {
        let text = std::fs::read_to_string(manifest)
            .map_err(|e| format!("cannot read {}: {e}", manifest.display()))?;
        (fleet::parse_manifest(&text)?, Vec::new())
    } else {
        if opts.shards == 0 {
            return Err("fleet: need --shards N (spawn mode) or --manifest FILE".to_string());
        }
        let root = opts
            .data_root
            .as_ref()
            .ok_or_else(|| "fleet: spawn mode requires --data-dir ROOT".to_string())?;
        let exe =
            std::env::current_exe().map_err(|e| format!("cannot locate own executable: {e}"))?;
        let mut procs = Vec::with_capacity(opts.shards);
        for shard in 0..opts.shards {
            procs.push(spawn_shard(&exe, shard, root, &opts.serve_args)?);
        }
        let specs = procs
            .iter()
            .map(|p| ShardSpec {
                id: p.id,
                addr: p.addr.clone(),
            })
            .collect();
        (specs, procs)
    };
    let mut config = FleetConfig {
        data_root: opts.data_root.clone(),
        ..FleetConfig::default()
    };
    if let Some(ms) = opts.probe_interval_ms {
        config.probe_interval = Duration::from_millis(ms);
    }
    if let Some(ms) = opts.probe_deadline_ms {
        config.probe_deadline = Duration::from_millis(ms);
    }
    if let Some(n) = opts.suspect_after {
        config.suspect_after = n.max(1);
    }
    if let Some(n) = opts.down_after {
        config.down_after = n.max(1);
    }
    if let Some(ms) = opts.lease_ttl_ms {
        config.lease_ttl = Duration::from_millis(ms.max(1));
    }
    if let Some(dir) = &opts.router_data_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create router data dir {}: {e}", dir.display()))?;
    }
    config.router_data_dir = opts.router_data_dir.clone();
    let mut router = FleetRouter::new(specs, config);
    let addr = router
        .bind_tcp(opts.listen.as_str())
        .map_err(|e| format!("cannot listen on {}: {e}", opts.listen))?;
    Ok((router, addr, procs))
}

/// Runs the router until shutdown, then drains spawned shards (polite
/// `SHUTDOWN` frame, `kill` after a grace period) and reports the final
/// fleet metrics.
pub fn run_fleet(router: FleetRouter, procs: Vec<ShardProc>) -> Result<String, String> {
    let summary = router.run().map_err(|e| format!("fleet failed: {e}"))?;
    let mut out = String::new();
    for mut proc in procs {
        if let Ok(client) = Client::connect_tcp(proc.addr.as_str()) {
            let _ = client.request_shutdown();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            match proc.child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if std::time::Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                _ => {
                    let _ = proc.child.kill();
                    let _ = proc.child.wait();
                    let _ = writeln!(out, "shard {} did not drain; killed", proc.id);
                    break;
                }
            }
        }
    }
    out.push_str(&summary.fleet.render_text());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{parse_trace, trace_of_program, write_trace};
    use paramount_workloads::banking;

    /// The full CLI path end to end: build+run a daemon on an ephemeral
    /// port, `send` the banking trace, and check the count line matches
    /// what the offline `count` command computes for the same trace.
    #[test]
    fn send_matches_offline_count() {
        let opts = ServeOptions {
            listen: vec!["127.0.0.1:0".to_string()],
            ..ServeOptions::default()
        };
        let (server, addrs) = build_server(&opts).expect("bind");
        let handle = server.handle();
        let daemon = std::thread::spawn(move || server.run(|_| {}).expect("run"));

        let text = write_trace(&trace_of_program(
            &banking::program(&banking::Params::default()),
            3,
        ));
        let trace = parse_trace(&text).expect("parse");
        let offline = crate::commands::count(&trace, Algorithm::Lexical, 2).expect("count");
        let streamed = send(
            &trace,
            &Target::Tcp(addrs[0].to_string()),
            None,
            None,
            Some("cli-test".to_string()),
            false,
            0,
            200,
            None,
            false,
            ProtoPref::Auto,
        )
        .expect("send");

        let states = |s: &str| -> u64 {
            s.split(" consistent global states").next().unwrap()[..]
                .rsplit(' ')
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        assert_eq!(
            states(&streamed),
            states(&offline),
            "send: {streamed} vs count: {offline}"
        );
        assert!(streamed.contains("reason end"), "{streamed}");

        let stats = remote_stats(&Target::Tcp(addrs[0].to_string())).expect("stats");
        assert!(stats.contains("\"sessions_opened\""), "{stats}");

        handle.shutdown();
        daemon.join().expect("daemon");
    }

    /// `send --retries`: the daemon's front door drops the first
    /// connection cold; the retry replays the whole session and the
    /// reported count still matches the offline oracle.
    #[test]
    fn send_retries_through_a_dropped_first_connection() {
        use std::net::{TcpListener, TcpStream};

        let opts = ServeOptions {
            listen: vec!["127.0.0.1:0".to_string()],
            ..ServeOptions::default()
        };
        let (server, addrs) = build_server(&opts).expect("bind");
        let upstream = addrs[0];
        let handle = server.handle();
        let daemon = std::thread::spawn(move || server.run(|_| {}).expect("run"));

        // A flaky front door: connection 1 is dropped on sight,
        // connection 2 is proxied byte-for-byte to the real daemon.
        let door = TcpListener::bind("127.0.0.1:0").expect("bind door");
        let door_addr = door.local_addr().unwrap();
        let proxy = std::thread::spawn(move || {
            let (first, _) = door.accept().expect("accept doomed");
            drop(first);
            let (client_side, _) = door.accept().expect("accept retry");
            let server_side = TcpStream::connect(upstream).expect("dial upstream");
            let mut c2s_src = client_side.try_clone().expect("clone");
            let mut c2s_dst = server_side.try_clone().expect("clone");
            let uplink = std::thread::spawn(move || {
                let _ = std::io::copy(&mut c2s_src, &mut c2s_dst);
                let _ = c2s_dst.shutdown(std::net::Shutdown::Write);
            });
            let (mut s2c_src, mut s2c_dst) = (server_side, client_side);
            let _ = std::io::copy(&mut s2c_src, &mut s2c_dst);
            uplink.join().expect("uplink");
        });

        let text = write_trace(&trace_of_program(
            &banking::program(&banking::Params::default()),
            3,
        ));
        let trace = parse_trace(&text).expect("parse");
        let offline = crate::commands::count(&trace, Algorithm::Lexical, 2).expect("count");
        let streamed = send(
            &trace,
            &Target::Tcp(door_addr.to_string()),
            None,
            None,
            None,
            false,
            2,
            1,
            None,
            false,
            ProtoPref::Auto,
        )
        .expect("retry must recover");

        assert!(streamed.contains("2 attempts"), "{streamed}");
        let states = |s: &str| -> u64 {
            s.split(" consistent global states").next().unwrap()[..]
                .rsplit(' ')
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        assert_eq!(states(&streamed), states(&offline));

        proxy.join().expect("proxy");
        handle.shutdown();
        daemon.join().expect("daemon");
    }

    /// Every connection dies: the send exhausts its attempts and the
    /// error surfaces the acknowledged partial prefix (the CLI maps this
    /// to a nonzero exit).
    #[test]
    fn send_exhausting_retries_reports_partial_prefix() {
        use std::net::TcpListener;
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let dropper = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while let Ok((stream, _)) = listener.accept() {
                    drop(stream);
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                }
            })
        };

        let trace = parse_trace("threads 1\n0 write x\n").expect("parse");
        let err = send(
            &trace,
            &Target::Tcp(addr.to_string()),
            None,
            None,
            None,
            false,
            2,
            1,
            None,
            false,
            ProtoPref::Auto,
        )
        .expect_err("every attempt is dropped");
        assert!(err.contains("after 3 attempts"), "{err}");
        assert!(err.contains("partial prefix"), "{err}");

        stop.store(true, Ordering::SeqCst);
        let _ = std::net::TcpStream::connect(addr); // unblock the accept loop
        dropper.join().expect("dropper");
    }

    #[test]
    fn summary_text_counts_outcomes() {
        let opts = ServeOptions {
            listen: vec!["127.0.0.1:0".to_string()],
            ..ServeOptions::default()
        };
        let (server, addrs) = build_server(&opts).expect("bind");
        let daemon = {
            let handle = server.handle();
            let join = std::thread::spawn(move || run_daemon(server, true).expect("run"));
            let trace = parse_trace("threads 1\n0 write x\n").expect("parse");
            send(
                &trace,
                &Target::Tcp(addrs[0].to_string()),
                None,
                None,
                None,
                false,
                0,
                200,
                None,
                false,
                ProtoPref::Auto,
            )
            .expect("send");
            handle.shutdown();
            join
        };
        let summary = daemon.join().expect("daemon");
        assert!(
            summary.contains("served 1 sessions (1 clean, 0 aborted)"),
            "{summary}"
        );
        assert!(summary.contains("sessions opened"), "{summary}");
    }
}
