//! `arraylist1` / `arraylist2` — an unsynchronized vs. a lock-protected
//! growable container.
//!
//! `add()` reads the current size, writes the backing slot, and bumps the
//! size. In `arraylist1` nothing is synchronized: `size` and both modeled
//! backing slots race (3 racy variables, matching Table 2). `arraylist2`
//! wraps every operation in the collection lock: zero races.

use paramount_trace::{Op, Program, ProgramBuilder, Tid};

/// Workload size.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Worker threads performing `add()` (paper total: 4 threads).
    pub workers: usize,
    /// `add()` calls per worker.
    pub adds: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            workers: 3,
            adds: 2,
        }
    }
}

/// Builds the container benchmark; `synchronized` selects `arraylist2`.
pub fn program(synchronized: bool, params: &Params) -> Program {
    let name = if synchronized {
        "arraylist2"
    } else {
        "arraylist1"
    };
    let mut b = ProgramBuilder::new(name, params.workers + 1);
    let size = b.var("list.size");
    let elem0 = b.var("list.elements[0]");
    let elem1 = b.var("list.elements[1]");
    let list_lock = b.lock("list.lock");

    for t in 1..=params.workers {
        let tid = Tid::from(t);
        // A private lock splits the worker's adds into separate poset
        // events without ordering anything across threads.
        let pace = b.lock(format!("pace{t}"));
        for round in 0..params.adds {
            let slot = if (t + round) % 2 == 0 { elem0 } else { elem1 };
            let add = [Op::Read(size), Op::Write(slot), Op::Write(size)];
            if synchronized {
                b.critical(tid, list_lock, add);
            } else {
                b.extend(tid, add);
                b.critical(tid, pace, []);
            }
        }
    }
    b.fork_join_all_with_init([Op::Write(size), Op::Write(elem0), Op::Write(elem1)]);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use paramount_detect::online::detect_races_sim;
    use paramount_detect::DetectorConfig;
    use paramount_trace::VarId;

    #[test]
    fn unsynchronized_list_has_three_racy_vars() {
        for seed in 0..5 {
            let report = detect_races_sim(
                &program(false, &Params::default()),
                seed,
                &DetectorConfig::default(),
            );
            assert_eq!(
                report.racy_vars,
                vec![VarId(0), VarId(1), VarId(2)],
                "seed {seed}"
            );
        }
    }

    #[test]
    fn synchronized_list_is_clean() {
        for seed in 0..5 {
            let report = detect_races_sim(
                &program(true, &Params::default()),
                seed,
                &DetectorConfig::default(),
            );
            assert!(report.racy_vars.is_empty(), "seed {seed}");
        }
    }
}
