use std::fmt;

/// A shared variable (one monitored memory location / field).
///
/// The paper reports detections as "variables with data races"; `VarId` is
/// the unit those reports count. Workloads register human-readable names
/// through [`crate::ProgramBuilder::var`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VarId(pub u32);

impl VarId {
    /// The id as an index into per-variable tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A lock (mutex / monitor) identity.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LockId(pub u32);

impl LockId {
    /// The id as an index into per-lock tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        assert_eq!(VarId(3).to_string(), "v3");
        assert_eq!(LockId(0).to_string(), "l0");
        assert_eq!(VarId(7).index(), 7);
        assert_eq!(LockId(2).index(), 2);
    }
}
