//! Depth-first enumeration with a visited set.
//!
//! An extra sequential baseline beyond the two the paper evaluates: same
//! exactly-once guarantee as the enhanced BFS, same worst-case space (the
//! visited set holds every cut of the interval), but a stack instead of a
//! level queue. Included because its traversal order stresses the bounded
//! subroutine contract differently in tests, and because its visited-set
//! growth makes a useful ablation against BFS's level storage in the
//! memory benchmarks.

use crate::fxhash::FxHashSet;
use crate::{debug_check_interval, CutSink, EnumError, EnumStats};
use paramount_poset::{CutSpace, EventId, Frontier, Tid};

/// Tuning for the DFS enumerator.
#[derive(Clone, Copy, Debug, Default)]
pub struct DfsOptions {
    /// Cap on visited-set size (`None` = unbounded); exceeded ⇒
    /// [`EnumError::OutOfBudget`].
    pub frontier_budget: Option<usize>,
}

/// Enumerates every consistent cut of `poset`, depth-first from the empty
/// cut. Emission order is DFS discovery order.
pub fn enumerate<Sp: CutSpace + ?Sized, S: CutSink>(
    poset: &Sp,
    options: &DfsOptions,
    sink: &mut S,
) -> Result<EnumStats, EnumError> {
    let empty = Frontier::empty(poset.num_threads());
    let last = poset.current_frontier();
    enumerate_bounded(poset, &empty, &last, options, sink)
}

/// Enumerates every consistent cut in `[gmin, gbnd]`, depth-first from
/// `gmin`.
pub fn enumerate_bounded<Sp: CutSpace + ?Sized, S: CutSink>(
    poset: &Sp,
    gmin: &Frontier,
    gbnd: &Frontier,
    options: &DfsOptions,
    sink: &mut S,
) -> Result<EnumStats, EnumError> {
    debug_check_interval(poset, gmin, gbnd);
    let n = poset.num_threads();
    let mut stats = EnumStats::default();

    let mut visited: FxHashSet<Frontier> = FxHashSet::default();
    let mut stack: Vec<Frontier> = vec![gmin.clone()];
    visited.insert(gmin.clone());

    while let Some(cut) = stack.pop() {
        stats.cuts += 1;
        if sink.visit(cut.as_cut()).is_break() {
            return Err(EnumError::Stopped);
        }
        for t in Tid::all(n) {
            let next_index = cut.get(t) + 1;
            if next_index > gbnd.get(t) {
                continue;
            }
            let e = EventId::new(t, next_index);
            stats.expansions += 1;
            if cut.enables(poset, e) {
                let succ = cut.advanced(t);
                if visited.insert(succ.clone()) {
                    stack.push(succ);
                }
            }
        }
        let live = visited.len() + stack.len();
        stats.peak_frontiers = stats.peak_frontiers.max(live);
        if let Some(budget) = options.frontier_budget {
            if live > budget {
                return Err(EnumError::OutOfBudget {
                    live_frontiers: live,
                    budget,
                });
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CollectSink;
    use paramount_poset::builder::PosetBuilder;
    use paramount_poset::oracle;
    use paramount_poset::random::RandomComputation;
    use paramount_poset::Poset;

    fn figure4() -> Poset {
        let mut b = PosetBuilder::new(2);
        let a = b.append(Tid(0), ());
        let bb = b.append(Tid(1), ());
        b.append_after(Tid(0), &[bb], ());
        b.append_after(Tid(1), &[a], ());
        b.finish()
    }

    #[test]
    fn full_dfs_matches_oracle() {
        let p = figure4();
        let mut sink = CollectSink::default();
        let stats = enumerate(&p, &DfsOptions::default(), &mut sink).unwrap();
        assert_eq!(stats.cuts, 7);
        assert_eq!(
            oracle::canonicalize(sink.cuts),
            oracle::enumerate_product_scan(&p)
        );
    }

    #[test]
    fn dfs_agrees_with_bfs_on_random_posets() {
        for seed in 0..25 {
            let p = RandomComputation::new(4, 4, 0.4, seed).generate();
            let mut dfs_sink = CollectSink::default();
            enumerate(&p, &DfsOptions::default(), &mut dfs_sink).unwrap();
            let mut bfs_sink = CollectSink::default();
            crate::bfs::enumerate(&p, &crate::bfs::BfsOptions::default(), &mut bfs_sink).unwrap();
            assert_eq!(
                oracle::canonicalize(dfs_sink.cuts),
                oracle::canonicalize(bfs_sink.cuts),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn bounded_dfs_respects_interval() {
        let p = figure4();
        let gmin = Frontier::from_counts(vec![2, 1]); // Gmin(e1[2]) = vc [2,1]
        let gbnd = Frontier::from_counts(vec![2, 1]); // Gbnd(e1[2]) per Fig. 6(c)
        let mut sink = CollectSink::default();
        enumerate_bounded(&p, &gmin, &gbnd, &DfsOptions::default(), &mut sink).unwrap();
        assert_eq!(sink.cuts, vec![gmin]);
    }

    #[test]
    fn budget_applies_to_visited_set() {
        let mut b = PosetBuilder::new(8);
        for t in Tid::all(8) {
            b.append(t, ());
        }
        let p = b.finish();
        let mut sink = CollectSink::default();
        let err = enumerate(
            &p,
            &DfsOptions {
                frontier_budget: Some(10),
            },
            &mut sink,
        )
        .unwrap_err();
        assert!(matches!(err, EnumError::OutOfBudget { .. }));
    }

    #[test]
    fn early_stop_propagates() {
        let p = figure4();
        let mut sink =
            crate::FirstMatchSink::new(|c: paramount_poset::CutRef<'_>| c.total_events() >= 3);
        assert_eq!(
            enumerate(&p, &DfsOptions::default(), &mut sink).unwrap_err(),
            EnumError::Stopped
        );
    }
}
