//! Offline ParaMount (the paper's Algorithm 1).
//!
//! Given a complete poset: fix a total order `→p`, compute one interval
//! per event (`O(n)` each — the worker's entire per-event overhead, which
//! is why ParaMount is work-optimal), then enumerate the intervals in
//! parallel with a bounded sequential subroutine.
//!
//! The paper's workers pull events off a shared total order; here the
//! same dynamic load balancing comes from Rayon's work stealing over the
//! interval list. Interval sizes are extremely skewed — late events in
//! `→p` own cut counts orders of magnitude larger than early ones — so
//! static chunking would idle most threads; stealing is essential to the
//! Figure 10/11 speedup shapes.
//!
//! This type is a *front-end*: all per-interval machinery — subroutine
//! dispatch, panic isolation, the retry/quarantine protocol, chaos
//! injection, metrics — lives in the shared [`crate::exec`] core. The
//! offline engine's only jobs are ordering, partitioning, and folding a
//! batch outcome into [`ParaStats`].

use crate::exec::IntervalExecutor;
use crate::faults::{FaultLog, FaultPlan};
use crate::interval::{partition_packed, Interval};
use crate::metrics::{MetricsSnapshot, ParaMetrics};
use crate::sink::ParallelCutSink;
use crate::store::PackedIntervalQueue;
use paramount_enumerate::{Algorithm, EnumError};
use paramount_poset::{topo, CutSpace, EventId};
use std::sync::Arc;

/// Intervals unpacked per [`ParaMount::enumerate_packed`] drain step.
///
/// Large enough that work stealing still sees a deep batch (interval
/// sizes are wildly skewed, so a chunk this size keeps every thread fed),
/// small enough that the unpacked `Vec<Interval>` — two `Frontier`
/// allocations per entry — stays a rounding error next to the packed
/// byte buffer holding the rest of the partition.
pub const BATCH_CHUNK: usize = 4096;

/// Configuration and entry points for offline parallel enumeration.
///
/// `B-Para` in the paper is `ParaMount { algorithm: Bfs, .. }`; `L-Para`
/// is `ParaMount { algorithm: Lexical, .. }`. `Algorithm::Auto` defers
/// the choice to the executor, which picks the lexical scan or the
/// space-efficient leveled walk per interval from the interval's box
/// size and live memory-pressure signals (see the adaptive-dispatch
/// notes on [`crate::exec::IntervalExecutor`]).
///
/// ```
/// use paramount::{Algorithm, AtomicCountSink, ParaMount};
/// use paramount_poset::builder::PosetBuilder;
/// use paramount_poset::Tid;
///
/// // The paper's Figure 4 poset: 7 consistent global states.
/// let mut b = PosetBuilder::new(2);
/// let e11 = b.append(Tid(0), ());
/// let e21 = b.append(Tid(1), ());
/// b.append_after(Tid(0), &[e21], ());
/// b.append_after(Tid(1), &[e11], ());
/// let poset = b.finish();
///
/// let sink = AtomicCountSink::new();
/// let stats = ParaMount::new(Algorithm::Lexical)
///     .with_threads(2)
///     .enumerate(&poset, &sink)
///     .unwrap();
/// assert_eq!(stats.cuts, 7);
/// assert_eq!(sink.count(), 7);
/// ```
#[derive(Clone, Debug)]
pub struct ParaMount {
    /// The bounded sequential subroutine run on each interval.
    pub algorithm: Algorithm,
    /// Worker threads. `0` uses Rayon's global default pool; any other
    /// value builds a dedicated pool of exactly that size (the knob behind
    /// the paper's `(1) (2) (4) (8)` columns).
    pub threads: usize,
    /// Per-interval frontier budget for the stateful subroutines (BFS /
    /// DFS). Partitioning is itself the paper's cure for BFS memory blowup:
    /// a budget that kills a whole-lattice BFS usually passes easily per
    /// interval.
    pub frontier_budget: Option<usize>,
    /// External metrics registry; when absent each run folds into a fresh
    /// one (see [`ParaStats::metrics`]).
    metrics: Option<Arc<ParaMetrics>>,
    /// Deterministic fault-injection plan. Inert unless the `chaos`
    /// feature compiles the injection sites in (panic isolation itself is
    /// always on — the plan only *creates* faults, never handles them).
    pub faults: FaultPlan,
    /// Per-interval wall-clock deadline. `None` (default) disables
    /// preemption; set it to bound how long any one interval can hold a
    /// worker before being split or quarantined (see
    /// [`crate::governor`]).
    pub interval_deadline: Option<std::time::Duration>,
}

impl ParaMount {
    /// ParaMount over the given subroutine, on the default pool.
    pub fn new(algorithm: Algorithm) -> Self {
        ParaMount {
            algorithm,
            threads: 0,
            frontier_budget: None,
            metrics: None,
            faults: FaultPlan::default(),
            interval_deadline: None,
        }
    }

    /// Sets the per-interval wall-clock deadline (liveness supervision).
    /// A preempted interval that delivered nothing is split and both
    /// halves rescheduled; one that already delivered cuts is
    /// quarantined with its exact prefix.
    pub fn with_interval_deadline(mut self, deadline: Option<std::time::Duration>) -> Self {
        self.interval_deadline = deadline;
        self
    }

    /// Arms a deterministic fault-injection plan (active only when the
    /// crate is built with the `chaos` feature).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the worker-thread count (0 = Rayon default).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the per-interval frontier budget for BFS/DFS subroutines.
    pub fn with_frontier_budget(mut self, budget: Option<usize>) -> Self {
        self.frontier_budget = budget;
        self
    }

    /// Records into a caller-owned registry instead of a per-run one —
    /// lets several enumerations accumulate into one set of instruments
    /// (a bench sweep), or a live observer watch a long run.
    pub fn with_metrics(mut self, metrics: Arc<ParaMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The interval-execution core this configuration describes.
    fn executor(&self) -> IntervalExecutor {
        IntervalExecutor {
            algorithm: self.algorithm,
            frontier_budget: self.frontier_budget,
            interval_deadline: self.interval_deadline,
            faults: self.faults,
        }
    }

    /// Worker slots the metrics registry should carry for this config.
    fn pool_width(&self) -> usize {
        if self.threads == 0 {
            rayon::current_num_threads()
        } else {
            self.threads
        }
    }

    /// Enumerates every consistent cut of `space` exactly once, in
    /// parallel, using the vector-clock-weight linear extension.
    pub fn enumerate<Sp, K>(&self, space: &Sp, sink: &K) -> Result<ParaStats, EnumError>
    where
        Sp: CutSpace + Sync + ?Sized,
        K: ParallelCutSink + ?Sized,
    {
        let order = topo::weight_order(space);
        self.enumerate_with_order(space, &order, sink)
    }

    /// Enumerates with an explicit `→p` order (any linear extension).
    pub fn enumerate_with_order<Sp, K>(
        &self,
        space: &Sp,
        order: &[EventId],
        sink: &K,
    ) -> Result<ParaStats, EnumError>
    where
        Sp: CutSpace + Sync + ?Sized,
        K: ParallelCutSink + ?Sized,
    {
        let mut queue = partition_packed(space, order);
        self.enumerate_packed(space, &mut queue, sink)
    }

    /// Enumerates a delta-coded interval queue (what
    /// [`partition_packed`] builds), draining it in bounded chunks so at
    /// most [`BATCH_CHUNK`] intervals are ever unpacked at once — the
    /// rest of the partition stays one contiguous varint buffer instead
    /// of two heap `Frontier`s per event.
    pub fn enumerate_packed<Sp, K>(
        &self,
        space: &Sp,
        queue: &mut PackedIntervalQueue,
        sink: &K,
    ) -> Result<ParaStats, EnumError>
    where
        Sp: CutSpace + Sync + ?Sized,
        K: ParallelCutSink + ?Sized,
    {
        if queue.is_empty() {
            return self.enumerate_intervals(space, &[], sink);
        }
        let owned_registry;
        let registry: &ParaMetrics = match &self.metrics {
            Some(shared) => shared.as_ref(),
            None => {
                owned_registry = ParaMetrics::new(self.pool_width());
                &owned_registry
            }
        };
        let total = queue.len();
        let mut cuts = 0u64;
        let mut peak_frontiers = 0usize;
        let mut faults = FaultLog::default();
        let mut chunk: Vec<Interval> = Vec::with_capacity(total.min(BATCH_CHUNK));
        while !queue.is_empty() {
            chunk.clear();
            while chunk.len() < BATCH_CHUNK {
                match queue.pop_front() {
                    Some(interval) => chunk.push(interval),
                    None => break,
                }
            }
            let batch = self
                .executor()
                .run_batch(self.threads, space, &chunk, sink, registry)?;
            cuts += batch.cuts;
            peak_frontiers = peak_frontiers.max(batch.peak_frontiers);
            faults.quarantined.extend(batch.faults.quarantined);
        }
        Ok(ParaStats {
            cuts,
            intervals: total,
            peak_frontiers,
            faults,
            metrics: registry.snapshot(),
        })
    }

    /// Enumerates a pre-computed interval list (the online engine and the
    /// ablation benchmarks call this directly).
    pub fn enumerate_intervals<Sp, K>(
        &self,
        space: &Sp,
        intervals: &[Interval],
        sink: &K,
    ) -> Result<ParaStats, EnumError>
    where
        Sp: CutSpace + Sync + ?Sized,
        K: ParallelCutSink + ?Sized,
    {
        // A shared registry accumulates across calls; a fresh one scopes
        // the snapshot to exactly this run.
        let owned_registry;
        let registry: &ParaMetrics = match &self.metrics {
            Some(shared) => shared.as_ref(),
            None => {
                owned_registry = ParaMetrics::new(self.pool_width());
                &owned_registry
            }
        };

        // Special case: an empty poset still has its one empty cut, but no
        // event interval carries it.
        if intervals.is_empty() {
            let empty = paramount_poset::Frontier::empty(space.num_threads());
            // No event exists to own the empty cut; report a placeholder id.
            let placeholder = EventId::new(paramount_poset::Tid(0), 1);
            return match sink.visit(empty.as_cut(), placeholder) {
                std::ops::ControlFlow::Continue(()) => {
                    registry.cuts_emitted.add(1);
                    Ok(ParaStats {
                        cuts: 1,
                        intervals: 0,
                        peak_frontiers: 1,
                        faults: FaultLog::default(),
                        metrics: registry.snapshot(),
                    })
                }
                std::ops::ControlFlow::Break(()) => Err(EnumError::Stopped),
            };
        }

        let batch = self
            .executor()
            .run_batch(self.threads, space, intervals, sink, registry)?;
        Ok(ParaStats {
            cuts: batch.cuts,
            intervals: intervals.len(),
            peak_frontiers: batch.peak_frontiers,
            faults: batch.faults,
            metrics: registry.snapshot(),
        })
    }
}

/// Aggregate statistics from one parallel enumeration.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ParaStats {
    /// Total cuts emitted (equals `i(P)` — Theorem 2 — when
    /// [`ParaStats::faults`] is empty; under quarantine it counts exactly
    /// the cuts the sink saw, delivered prefixes included).
    pub cuts: u64,
    /// Number of intervals processed (= number of events).
    pub intervals: usize,
    /// Largest per-interval frontier storage any worker needed (1 for the
    /// lexical subroutine; the partitioning win for BFS shows up here).
    pub peak_frontiers: usize,
    /// Intervals quarantined after a panic unwound out of the sink. Empty
    /// on a clean run; each entry carries its `[Gmin, Gbnd]` pair so the
    /// skipped region is exactly re-enumerable.
    pub faults: FaultLog,
    /// Observability snapshot: per-interval cut-count histogram, worker
    /// busy tallies, counter totals. Scoped to this run unless a shared
    /// registry was attached via [`ParaMount::with_metrics`] (then it
    /// holds everything recorded so far).
    pub metrics: MetricsSnapshot,
}

impl ParaStats {
    /// `Complete` when every interval enumerated cleanly, `Degraded`
    /// (carrying the quarantine log) otherwise.
    pub fn outcome(&self) -> crate::faults::Outcome<'_> {
        self.faults.outcome()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{AtomicCountSink, ConcurrentCollectSink};
    use paramount_poset::random::RandomComputation;
    use paramount_poset::{oracle, CutRef, Frontier, Poset};
    use std::ops::ControlFlow;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn matches_oracle_for_all_algorithms_and_thread_counts() {
        for seed in 0..8 {
            let p = RandomComputation::new(4, 5, 0.4, seed).generate();
            let expected = oracle::enumerate_product_scan(&p);
            for algo in Algorithm::ALL {
                for threads in [1, 2, 4] {
                    let sink = ConcurrentCollectSink::new();
                    let stats = ParaMount::new(algo)
                        .with_threads(threads)
                        .enumerate(&p, &sink)
                        .unwrap();
                    let got = oracle::canonicalize(sink.into_cuts());
                    assert_eq!(got, expected, "{algo:?}/{threads} seed {seed}");
                    assert_eq!(stats.cuts as usize, expected.len());
                    assert_eq!(stats.intervals, p.num_events());
                }
            }
        }
    }

    #[test]
    fn exactly_once_even_under_heavy_parallelism() {
        let p = RandomComputation::new(6, 6, 0.3, 99).generate();
        let sink = ConcurrentCollectSink::new();
        ParaMount::new(Algorithm::Lexical)
            .with_threads(8)
            .enumerate(&p, &sink)
            .unwrap();
        let cuts = sink.into_cuts();
        let unique: std::collections::HashSet<_> = cuts.iter().cloned().collect();
        assert_eq!(cuts.len(), unique.len(), "duplicate cut under parallelism");
        assert_eq!(cuts.len() as u64, oracle::count_ideals(&p));
    }

    #[test]
    fn kahn_and_weight_orders_agree_on_totals() {
        let p = RandomComputation::new(4, 6, 0.5, 5).generate();
        let a = AtomicCountSink::new();
        ParaMount::new(Algorithm::Lexical)
            .enumerate(&p, &a)
            .unwrap();
        let b = AtomicCountSink::new();
        let order = paramount_poset::topo::kahn_order(&p);
        ParaMount::new(Algorithm::Lexical)
            .enumerate_with_order(&p, &order, &b)
            .unwrap();
        assert_eq!(a.count(), b.count());
    }

    #[test]
    fn empty_poset_emits_single_empty_cut() {
        let p: Poset = Poset::empty(3);
        let sink = ConcurrentCollectSink::new();
        let stats = ParaMount::new(Algorithm::Lexical)
            .enumerate(&p, &sink)
            .unwrap();
        assert_eq!(stats.cuts, 1);
        assert_eq!(sink.into_cuts(), vec![Frontier::empty(3)]);
    }

    #[test]
    fn early_stop_reports_stopped() {
        let p = RandomComputation::new(4, 5, 0.3, 3).generate();
        let seen = AtomicU64::new(0);
        let sink = |_: CutRef<'_>, _: EventId| {
            if seen.fetch_add(1, Ordering::Relaxed) >= 10 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        };
        let err = ParaMount::new(Algorithm::Lexical)
            .with_threads(2)
            .enumerate(&p, &sink)
            .unwrap_err();
        assert_eq!(err, EnumError::Stopped);
    }

    #[test]
    fn per_interval_budget_passes_where_global_bfs_fails() {
        // Whole-lattice BFS holds C(8,4)+C(8,5) = 126 live frontiers at
        // its widest; the largest single interval (the last event's) peaks
        // at C(7,3)+C(7,4) = 70 — the memory win of partitioning, the
        // Table 1 o.o.m. story in miniature.
        let mut b = paramount_poset::builder::PosetBuilder::new(8);
        for t in paramount_poset::Tid::all(8) {
            b.append(t, ());
        }
        let p = b.finish();

        let mut whole = paramount_enumerate::CountSink::default();
        let err = paramount_enumerate::bfs::enumerate(
            &p,
            &paramount_enumerate::bfs::BfsOptions {
                frontier_budget: Some(80),
            },
            &mut whole,
        )
        .unwrap_err();
        assert!(matches!(err, EnumError::OutOfBudget { .. }));

        let sink = AtomicCountSink::new();
        let stats = ParaMount::new(Algorithm::Bfs)
            .with_threads(2)
            .with_frontier_budget(Some(80))
            .enumerate(&p, &sink)
            .unwrap();
        assert_eq!(stats.cuts, 256);
        assert_eq!(sink.count(), 256);
    }

    #[test]
    fn offline_metrics_reconcile_with_stats() {
        let p = RandomComputation::new(4, 5, 0.4, 11).generate();
        let sink = AtomicCountSink::new();
        let stats = ParaMount::new(Algorithm::Lexical)
            .with_threads(2)
            .enumerate(&p, &sink)
            .unwrap();
        let m = &stats.metrics;
        assert_eq!(m.cuts_emitted, stats.cuts);
        assert_eq!(m.intervals_dispatched as usize, stats.intervals);
        assert_eq!(m.intervals_completed, m.intervals_dispatched);
        assert_eq!(m.interval_cuts.count() as usize, stats.intervals);
        assert_eq!(m.interval_cuts.sum, stats.cuts);
        assert_eq!(m.workers.len(), 2);
        let per_worker: u64 = m.workers.iter().map(|w| w.intervals).sum();
        assert_eq!(per_worker as usize, stats.intervals);
    }

    #[test]
    fn shared_registry_accumulates_across_runs() {
        use crate::metrics::ParaMetrics;
        use std::sync::Arc;
        let p = RandomComputation::new(3, 4, 0.4, 2).generate();
        let registry = Arc::new(ParaMetrics::new(1));
        let pm = ParaMount::new(Algorithm::Lexical)
            .with_threads(1)
            .with_metrics(Arc::clone(&registry));
        let a = pm.enumerate(&p, &AtomicCountSink::new()).unwrap();
        let b = pm.enumerate(&p, &AtomicCountSink::new()).unwrap();
        // Stats scope to each run; the shared registry holds both.
        assert_eq!(a.cuts, b.cuts);
        assert_eq!(registry.snapshot().cuts_emitted, a.cuts + b.cuts);
        assert_eq!(b.metrics.cuts_emitted, a.cuts + b.cuts);
    }

    /// Delivered cuts plus each quarantined interval's remainder must
    /// equal the oracle lattice size exactly (Theorem 2 under faults).
    fn assert_exact_partition(p: &Poset, stats: &ParaStats) {
        let mut skipped = 0u64;
        for q in &stats.faults.quarantined {
            let mut csink = paramount_enumerate::CollectSink::default();
            q.interval
                .enumerate(p, Algorithm::Lexical, &mut csink)
                .unwrap();
            skipped += csink.cuts.len() as u64 - q.cuts_emitted;
        }
        assert_eq!(stats.cuts + skipped, oracle::count_ideals(p));
    }

    #[test]
    fn panicking_sink_quarantines_only_its_interval() {
        let p = RandomComputation::new(3, 5, 0.4, 21).generate();
        let order = paramount_poset::topo::weight_order(&p);
        let victim = order[order.len() / 2];
        let sink = move |_: CutRef<'_>, owner: EventId| {
            if owner == victim {
                panic!("poisoned predicate");
            }
            ControlFlow::Continue(())
        };
        let stats = ParaMount::new(Algorithm::Lexical)
            .with_threads(2)
            .enumerate(&p, &sink)
            .unwrap();
        assert_eq!(stats.faults.len(), 1);
        let q = &stats.faults.quarantined[0];
        assert_eq!(q.interval.event, victim);
        assert_eq!(q.attempts, 2, "one clean-slate retry, then quarantine");
        assert_eq!(q.cuts_emitted, 0);
        assert!(q.message.contains("poisoned predicate"));
        assert!(!stats.outcome().is_complete());
        assert_eq!(stats.metrics.worker_panics, 2);
        assert_eq!(stats.metrics.intervals_retried, 1);
        assert_eq!(stats.metrics.intervals_quarantined, 1);
        assert_eq!(
            stats.metrics.intervals_completed + stats.metrics.intervals_quarantined,
            stats.metrics.intervals_dispatched
        );
        assert_exact_partition(&p, &stats);
    }

    #[test]
    fn transient_panic_is_retried_to_completion_offline() {
        let p = RandomComputation::new(3, 4, 0.4, 9).generate();
        let order = paramount_poset::topo::weight_order(&p);
        let victim = *order.last().unwrap();
        let armed = std::sync::atomic::AtomicBool::new(true);
        let sink = |_: CutRef<'_>, owner: EventId| {
            // Panic exactly once, on the first delivery of the victim's
            // interval — before anything of it reached the sink.
            if owner == victim && armed.swap(false, Ordering::Relaxed) {
                panic!("transient");
            }
            ControlFlow::Continue(())
        };
        let stats = ParaMount::new(Algorithm::Lexical)
            .with_threads(2)
            .enumerate(&p, &sink)
            .unwrap();
        assert!(stats.outcome().is_complete());
        assert!(stats.faults.is_empty());
        assert_eq!(stats.metrics.worker_panics, 1);
        assert_eq!(stats.metrics.intervals_retried, 1);
        assert_eq!(stats.cuts, oracle::count_ideals(&p));
    }

    #[cfg(feature = "chaos")]
    #[test]
    fn chaos_offline_partitions_exactly_under_pinned_seeds() {
        use crate::faults::FaultPlan;
        for seed in [3u64, 17, 99] {
            let p = RandomComputation::new(3, 5, 0.4, seed).generate();
            let counter = AtomicCountSink::new();
            let stats = ParaMount::new(Algorithm::Lexical)
                .with_threads(2)
                .with_faults(FaultPlan {
                    seed,
                    sink_panic_every: Some(11),
                    ..FaultPlan::default()
                })
                .enumerate(&p, &counter)
                .unwrap();
            assert_eq!(counter.count(), stats.cuts, "meter vs sink, seed {seed}");
            assert_exact_partition(&p, &stats);
        }
    }

    #[test]
    fn stats_peak_frontiers_is_one_for_lexical() {
        let p = RandomComputation::new(4, 4, 0.4, 17).generate();
        let sink = AtomicCountSink::new();
        let stats = ParaMount::new(Algorithm::Lexical)
            .with_threads(4)
            .enumerate(&p, &sink)
            .unwrap();
        assert_eq!(stats.peak_frontiers, 1);
    }
}
