//! Offline detectors: the BFS 2-pass detector (our stand-in for RV
//! runtime) and an offline ParaMount detector for completeness.
//!
//! RV runtime's relevant profile, per the paper (§5.2, Table 3): offline
//! (logs the whole execution first, then analyzes), 2-pass poset
//! construction, sequential Cooper–Marzullo BFS enumeration whose
//! intermediate global-state storage grows exponentially with thread
//! count — the cause of its `o.o.m.` on `raytracer` and of running times
//! 10–50× behind the online detector. [`detect_races_offline_bfs`]
//! reproduces exactly those properties; the frontier budget plays the
//! role of the 2 GB JVM heap.

use crate::{DetectorConfig, DetectorOutcome, RaceDetectionReport, RacePredicate};
use paramount::{Algorithm, ParaMount};
use paramount_enumerate::bfs::{self, BfsOptions};
use paramount_enumerate::EnumError;
use paramount_poset::{CutRef, Poset};
use paramount_trace::sim::SimScheduler;
use paramount_trace::{Program, TraceEvent};
use std::ops::ControlFlow;
use std::time::Instant;

/// Pass 1 + pass 2 of the RV-analog: run the program (seeded), log the
/// poset, then enumerate the full lattice breadth-first and evaluate the
/// all-pairs race predicate (Figure 3) on every cut.
pub fn detect_races_offline_bfs(
    program: &Program,
    seed: u64,
    config: &DetectorConfig,
) -> RaceDetectionReport {
    let start = Instant::now();
    // Pass 1: observe and log.
    let poset = SimScheduler::new(seed).run(program);
    // Pass 2: offline analysis.
    let mut report = detect_races_on_poset_bfs(&poset, program.num_vars(), config);
    report.wall = start.elapsed();
    report
}

/// As [`detect_races_offline_bfs`], but pass 1 runs the program on real
/// threads (so "Base" execution cost is paid, like RV runtime executing
/// the benchmark before analyzing it).
pub fn detect_races_offline_bfs_threaded(
    program: &Program,
    work_scale: u32,
    config: &DetectorConfig,
) -> RaceDetectionReport {
    let start = Instant::now();
    let poset = paramount_trace::exec::run_threads(
        program,
        paramount_trace::RecorderConfig::default(),
        work_scale,
        paramount_trace::PosetCollector::new(program.num_threads()),
    )
    .into_poset();
    let mut report = detect_races_on_poset_bfs(&poset, program.num_vars(), config);
    report.wall = start.elapsed();
    report
}

/// Pass 2 only: BFS-enumerate an already-captured poset.
pub fn detect_races_on_poset_bfs(
    poset: &Poset<TraceEvent>,
    num_vars: usize,
    config: &DetectorConfig,
) -> RaceDetectionReport {
    let start = Instant::now();
    let predicate = RacePredicate::new(num_vars, config.ignore_init_races);
    let mut cuts = 0u64;
    let mut sink = |cut: CutRef<'_>| -> ControlFlow<()> {
        cuts += 1;
        predicate.evaluate_all_pairs(poset, cut)
    };
    // Isolate the predicate boundary: a panicking predicate degrades to
    // a `Faulted` report carrying whatever was detected before the
    // fault, instead of unwinding out of the detector.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        bfs::enumerate(
            poset,
            &BfsOptions {
                frontier_budget: config.frontier_budget,
            },
            &mut sink,
        )
    }))
    .unwrap_or_else(|payload| {
        Err(EnumError::Panicked {
            message: paramount_enumerate::panic_message(payload.as_ref()),
        })
    });
    let outcome = match result {
        Ok(_) => DetectorOutcome::Completed,
        Err(EnumError::OutOfBudget {
            live_frontiers,
            budget,
        }) => DetectorOutcome::OutOfMemory {
            live_frontiers,
            budget,
        },
        Err(EnumError::Stopped) => DetectorOutcome::Completed,
        Err(EnumError::Panicked { message }) => DetectorOutcome::Faulted { message },
    };
    RaceDetectionReport {
        detector: "BFS-offline (RV analog)",
        racy_vars: predicate.racy_vars(),
        detections: predicate.detections(),
        cuts,
        events: poset.num_events() as u64,
        wall: start.elapsed(),
        outcome,
        metrics: None, // sequential: no pool, no queue, nothing metered
    }
}

/// Offline *parallel* detection: capture the poset, then run offline
/// ParaMount over it with the owner-based predicate. Not a paper
/// configuration per se, but the natural "batch" deployment of the
/// algorithm and a useful ablation between the two detectors.
pub fn detect_races_offline_paramount(
    program: &Program,
    seed: u64,
    config: &DetectorConfig,
) -> RaceDetectionReport {
    let start = Instant::now();
    let poset = SimScheduler::new(seed).run(program);
    let predicate = RacePredicate::new(program.num_vars(), config.ignore_init_races);
    let sink =
        |cut: CutRef<'_>, owner: paramount_poset::EventId| predicate.evaluate(&poset, cut, owner);
    let runner = ParaMount::new(config.algorithm)
        .with_threads(config.workers)
        .with_frontier_budget(config.frontier_budget);
    let result = runner.enumerate(&poset, &sink);
    let (cuts, outcome, metrics) = match result {
        Ok(stats) => (stats.cuts, DetectorOutcome::Completed, Some(stats.metrics)),
        Err(EnumError::OutOfBudget {
            live_frontiers,
            budget,
        }) => (
            0,
            DetectorOutcome::OutOfMemory {
                live_frontiers,
                budget,
            },
            None,
        ),
        Err(EnumError::Stopped) => (0, DetectorOutcome::Completed, None),
        Err(EnumError::Panicked { message }) => (0, DetectorOutcome::Faulted { message }, None),
    };
    RaceDetectionReport {
        detector: "ParaMount (offline)",
        racy_vars: predicate.racy_vars(),
        detections: predicate.detections(),
        cuts,
        events: poset.num_events() as u64,
        wall: start.elapsed(),
        outcome,
        metrics,
    }
}

/// Convenience: the detector trio of Table 2 on one program + seed,
/// with FastTrack run by the caller (it lives in its own crate).
pub fn compare_detectors(
    program: &Program,
    seed: u64,
    config: &DetectorConfig,
) -> (RaceDetectionReport, RaceDetectionReport) {
    let online = crate::online::detect_races_sim(program, seed, config);
    let offline = detect_races_offline_bfs(program, seed, config);
    (online, offline)
}

/// The qualitative comparison rows of Table 3.
pub fn table3_rows() -> Vec<[&'static str; 5]> {
    vec![
        [
            "Detector",
            "Type",
            "Poset Construction",
            "Global States Enumeration",
            "Predicate Assumption",
        ],
        ["ParaMount", "Online", "1-pass", "Parallel", "No assumption"],
        [
            "RV runtime (analog)",
            "Offline",
            "2-passes",
            "Sequential (BFS)",
            "No assumption",
        ],
        [
            "FastTrack",
            "Online",
            "1-pass",
            "No enumeration involved",
            "Data races",
        ],
    ]
}

/// Keep `Algorithm` referenced so detector configs can name subroutines
/// without importing the enumeration crate directly.
pub fn default_subroutine() -> Algorithm {
    Algorithm::Lexical
}

#[cfg(test)]
mod tests {
    use super::*;
    use paramount_poset::Tid;
    use paramount_trace::{Op, ProgramBuilder, VarId};

    fn racy_program() -> Program {
        let mut b = ProgramBuilder::new("racy", 3);
        let x = b.var("x");
        let y = b.var("y");
        let l = b.lock("m");
        b.push(Tid(1), Op::Write(x));
        b.push(Tid(2), Op::Write(x));
        b.critical(Tid(1), l, [Op::Write(y)]);
        b.critical(Tid(2), l, [Op::Write(y)]);
        b.fork_join_all_with_init([Op::Write(x), Op::Write(y)]);
        b.build()
    }

    #[test]
    fn offline_bfs_finds_the_race() {
        let report = detect_races_offline_bfs(&racy_program(), 1, &DetectorConfig::default());
        assert_eq!(report.racy_vars, vec![VarId(0)]);
        assert!(report.outcome.completed());
        assert!(report.cuts > 0);
    }

    #[test]
    fn online_and_offline_agree() {
        for seed in 0..5 {
            let (online, offline) =
                compare_detectors(&racy_program(), seed, &DetectorConfig::default());
            assert_eq!(online.racy_vars, offline.racy_vars, "seed {seed}");
            // Both enumerate the same lattice exactly once.
            assert_eq!(online.cuts, offline.cuts, "seed {seed}");
        }
    }

    #[test]
    fn offline_paramount_agrees_too() {
        let report = detect_races_offline_paramount(&racy_program(), 2, &DetectorConfig::default());
        assert_eq!(report.racy_vars, vec![VarId(0)]);
    }

    #[test]
    fn bfs_detector_runs_out_of_memory_on_wide_posets() {
        // Eight unsynchronized writers: the BFS level set explodes; with a
        // small budget the RV-analog reports o.o.m. while the online
        // ParaMount detector sails through on the same budget.
        let mut b = ProgramBuilder::new("wide", 9);
        let vars: Vec<VarId> = (0..9).map(|i| b.var(format!("x{i}"))).collect();
        for (t, &var) in vars.iter().enumerate().skip(1) {
            // A private lock per thread splits the accesses into several
            // poset events without ordering anything across threads —
            // keeping the lattice wide (4^8 cuts).
            let own_lock = b.lock(format!("l{t}"));
            for _ in 0..3 {
                b.push(Tid::from(t), Op::Write(var));
                b.critical(Tid::from(t), own_lock, []);
            }
        }
        b.fork_join_all_with_init([Op::Write(vars[0])]);
        let p = b.build();
        let config = DetectorConfig {
            frontier_budget: Some(2_000),
            ..DetectorConfig::default()
        };
        let offline = detect_races_offline_bfs(&p, 1, &config);
        assert!(
            !offline.outcome.completed(),
            "expected o.o.m., got {:?} after {} cuts",
            offline.outcome,
            offline.cuts
        );
        let online = crate::online::detect_races_sim(&p, 1, &config);
        assert!(online.outcome.completed(), "{:?}", online.outcome);
    }

    #[test]
    fn table3_shape() {
        let rows = table3_rows();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[1][0], "ParaMount");
        assert_eq!(default_subroutine(), Algorithm::Lexical);
    }
}
