//! `sor` — successive over-relaxation, the phased scientific kernel.
//!
//! Each worker owns a band of the grid. Per phase it updates its interior
//! (thread-private — never shared) and exchanges boundary rows with its
//! right neighbor through a per-boundary lock. All shared accesses are
//! protected: zero races, matching Table 2; the value of the benchmark is
//! its *lattice shape* — many per-thread events with sparse cross edges —
//! which also makes it a Table 1-style enumeration input at larger sizes.

use paramount_trace::{Op, Program, ProgramBuilder, Tid};

/// Workload size.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Worker threads (grid bands).
    pub workers: usize,
    /// Relaxation phases.
    pub phases: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            workers: 3,
            phases: 2,
        }
    }
}

/// Builds the SOR program.
pub fn program(params: &Params) -> Program {
    let mut b = ProgramBuilder::new("sor", params.workers + 1);
    let interior: Vec<_> = (0..params.workers)
        .map(|i| b.var(format!("grid.band{i}")))
        .collect();
    // Boundary i sits between worker i and worker i+1.
    let boundary: Vec<_> = (0..params.workers.saturating_sub(1))
        .map(|i| b.var(format!("grid.boundary{i}")))
        .collect();
    let blocks: Vec<_> = (0..params.workers.saturating_sub(1))
        .map(|i| b.lock(format!("boundary{i}.lock")))
        .collect();

    for w in 0..params.workers {
        let tid = Tid::from(w + 1);
        for _ in 0..params.phases {
            // Interior update: thread-private, unshared — no conflicts.
            b.push(tid, Op::Read(interior[w]));
            b.push(tid, Op::Write(interior[w]));
            b.push(tid, Op::Work(30));
            // Exchange with the left neighbor's boundary...
            if w > 0 {
                b.critical(tid, blocks[w - 1], [Op::Read(boundary[w - 1])]);
            }
            // ...and publish our own right boundary.
            if w + 1 < params.workers {
                b.critical(tid, blocks[w], [Op::Write(boundary[w])]);
            }
        }
    }
    let init: Vec<Op> = interior
        .iter()
        .chain(boundary.iter())
        .map(|&v| Op::Write(v))
        .collect();
    b.fork_join_all_with_init(init);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use paramount_detect::online::detect_races_sim;
    use paramount_detect::DetectorConfig;

    #[test]
    fn sor_is_race_free() {
        for seed in 0..5 {
            let report = detect_races_sim(
                &program(&Params::default()),
                seed,
                &DetectorConfig::default(),
            );
            assert!(
                report.racy_vars.is_empty(),
                "seed {seed}: {:?}",
                report.detections
            );
        }
    }

    #[test]
    fn larger_grids_produce_larger_posets() {
        use paramount_trace::sim::SimScheduler;
        let small = SimScheduler::new(0).run(&program(&Params::default()));
        let large = SimScheduler::new(0).run(&program(&Params {
            workers: 4,
            phases: 5,
        }));
        assert!(large.num_events() > small.num_events());
    }
}
