//! A tour of the predicate classes, on one captured execution:
//!
//! * data races (the paper's Algorithm 6, general enumeration),
//! * conjunctive predicates via the polynomial Garg–Waldecker algorithm —
//!   no enumeration at all,
//! * `Possibly` vs `Definitely` (Cooper–Marzullo modalities),
//! * mutual-exclusion violation over a sync-captured trace.
//!
//! Run with: `cargo run --example predicate_zoo`

use paramount_suite::paramount_detect as detect;
use paramount_suite::paramount_trace::sim::SimScheduler;
use paramount_suite::paramount_trace::TraceEvent;
use paramount_suite::prelude::*;

fn main() {
    // One workload for everything: the banking benchmark (a genuine
    // lost-update race on the balance).
    let program = paramount_suite::paramount_workloads::banking::program(&Default::default());
    let poset = SimScheduler::new(42).run(&program);
    println!(
        "captured banking run: {} events from {} threads, {} consistent global states\n",
        poset.num_events(),
        CutSpace::num_threads(&poset),
        oracle::count_ideals(&poset)
    );

    // 1. Data races, by enumerating every global state in parallel.
    let race = detect::RacePredicate::new(program.num_vars(), true);
    let sink = |cut: CutRef<'_>, owner: EventId| race.evaluate(&poset, cut, owner);
    ParaMount::new(Algorithm::Lexical)
        .enumerate(&poset, &sink)
        .expect("enumeration");
    for d in race.detections() {
        println!(
            "race predicate:     RACE on `{}` at {}",
            program.var_name(d.var),
            d.cut
        );
    }

    // 2. A conjunctive question — "can every teller be mid-transaction at
    //    once?" — answered in polynomial time via linearity (reference
    //    [13]), no lattice walk.
    let n = CutSpace::num_threads(&poset);
    let locals: Vec<detect::LocalPredicate> = (0..n)
        .map(|i| {
            let is_worker = i != 0;
            Box::new(move |k: u32, _: Option<&TraceEvent>| !is_worker || k >= 1)
                as detect::LocalPredicate
        })
        .collect();
    let conj = detect::ConjunctiveLinear::new(locals);
    match detect::find_first_satisfying(&poset, &poset, &conj, &Frontier::empty(n)) {
        detect::LinearOutcome::Satisfied(cut) => {
            println!("linear predicate:   first cut with all tellers active: {cut}")
        }
        detect::LinearOutcome::Unsatisfiable => {
            println!("linear predicate:   impossible")
        }
    }

    // 3. Possibly vs Definitely for the same condition.
    let phi = |g: CutRef<'_>| (1..n).all(|i| g.get(Tid::from(i)) >= 1);
    let possibly = detect::possibly(&poset, phi).is_some();
    let definitely = detect::definitely(&poset, phi);
    println!("modalities:         Possibly = {possibly}, Definitely = {definitely}");

    // 4. Mutual exclusion over the sync-captured version of the trace.
    let sync_poset = SimScheduler::new(42).with_sync_capture().run(&program);
    let mutex = detect::MutexViolationPredicate::new(&sync_poset);
    let sink = |cut: CutRef<'_>, owner: EventId| mutex.evaluate(&sync_poset, cut, owner);
    let _ = ParaMount::new(Algorithm::Lexical).enumerate(&sync_poset, &sink);
    if mutex.detected() {
        for v in mutex.violations() {
            println!("mutex predicate:    VIOLATION {v:?}");
        }
    } else {
        println!("mutex predicate:    account lock is exclusion-safe in every interleaving");
    }
}
