//! The detector × workload matrix: for every Table 2 program, the three
//! detectors (ParaMount online, the RV-runtime analog, FastTrack) produce
//! the row the paper reports — including the places they deliberately
//! disagree.

use paramount_detect::offline::detect_races_offline_bfs;
use paramount_detect::online::detect_races_sim;
use paramount_detect::DetectorConfig;
use paramount_fasttrack::FastTrack;
use paramount_trace::sim::SimScheduler;
use paramount_workloads::table2_suite;

/// The RV analog runs without the §5.2 init refinement (RV reported the
/// benign races) — its expected counts differ from ParaMount's exactly on
/// the `set` benchmarks.
fn rv_expected(name: &str, paramount: usize) -> usize {
    match name {
        "set (correct)" => 1, // the benign initialization race
        _ => paramount,
    }
}

#[test]
fn full_detector_matrix() {
    let config = DetectorConfig::default();
    let rv_config = DetectorConfig {
        ignore_init_races: false,
        ..DetectorConfig::default()
    };
    for bench in table2_suite() {
        let seed = 3u64;

        let pm = detect_races_sim(&bench.program, seed, &config);
        assert_eq!(
            pm.num_detections(),
            bench.expected_paramount,
            "{}: ParaMount",
            bench.name
        );

        let rv = detect_races_offline_bfs(&bench.program, seed, &rv_config);
        assert!(
            rv.outcome.completed(),
            "{}: RV should finish at default scale",
            bench.name
        );
        assert_eq!(
            rv.num_detections(),
            rv_expected(bench.name, bench.expected_paramount),
            "{}: RV analog",
            bench.name
        );
        // Exactly-once on both enumeration detectors: same lattice.
        assert_eq!(pm.cuts, rv.cuts, "{}: cut counts", bench.name);

        let mut ft = FastTrack::new(bench.program.num_threads());
        SimScheduler::new(seed).run_with(&bench.program, &mut ft);
        assert_eq!(
            ft.racy_vars().len(),
            bench.expected_fasttrack,
            "{}: FastTrack",
            bench.name
        );
    }
}

/// The disagreement triangle on `set (correct)` is exactly the paper's:
/// ParaMount 0, RV 1 (benign), FastTrack 1 (benign).
#[test]
fn set_correct_disagreement_triangle() {
    let program = paramount_workloads::set::program(false);
    let pm = detect_races_sim(&program, 1, &DetectorConfig::default());
    let rv = detect_races_offline_bfs(
        &program,
        1,
        &DetectorConfig {
            ignore_init_races: false,
            ..DetectorConfig::default()
        },
    );
    let mut ft = FastTrack::new(program.num_threads());
    SimScheduler::new(1).run_with(&program, &mut ft);
    assert_eq!(pm.num_detections(), 0);
    assert_eq!(rv.num_detections(), 1);
    assert_eq!(ft.racy_vars().len(), 1);
    // And the benign variable is the same one RV and FastTrack point at.
    assert_eq!(rv.racy_vars, ft.racy_vars());
}

/// Detection results are schedule-independent for the whole suite (the
/// races are structural, not lucky interleavings).
#[test]
fn detections_are_schedule_independent() {
    for bench in table2_suite() {
        let baseline = detect_races_sim(&bench.program, 11, &DetectorConfig::default());
        for seed in [23u64, 37, 59] {
            let run = detect_races_sim(&bench.program, seed, &DetectorConfig::default());
            assert_eq!(
                run.racy_vars, baseline.racy_vars,
                "{}: seed {seed} changed detections",
                bench.name
            );
        }
    }
}
