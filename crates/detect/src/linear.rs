//! Efficient detection of *linear* predicates — the Garg–Waldecker
//! algorithm (reference \[13\] of the paper).
//!
//! The paper's §1 notes that for certain predicate classes detection
//! runs in polynomial time because only a partial set of global states
//! needs examining. The classic such class is **linear** predicates: if
//! `φ` is false at a cut `G`, some thread is *forbidden* — no satisfying
//! cut agrees with `G` on that thread's frontier — so its frontier must
//! advance. Conjunctions of per-thread local predicates are linear, which
//! is why "weak conjunctive predicate" detection costs `O(n²·m)` instead
//! of walking the exponential lattice.
//!
//! [`find_first_satisfying`] runs the advance-the-forbidden-thread loop
//! from any starting cut and returns the **least** satisfying cut at or
//! above it (linearity makes that cut unique when it exists). The test
//! suite cross-checks it against full enumeration — and the benchmark
//! story writes itself: the same conjunctive question costs `O(n²·m)`
//! here versus `i(P)` predicate evaluations through the enumerator.

use crate::EventView;
use paramount_poset::{CutRef, CutSpace, EventId, Frontier, Tid};
use paramount_trace::TraceEvent;

/// A linear predicate, presented through its *forbidden thread* oracle.
///
/// Contract (linearity): if `forbidden(G)` returns `Some(t)`, then no
/// satisfying cut `H ≥ G` has `H[t] == G[t]` — thread `t`'s frontier must
/// advance past its current position in every satisfying extension. If it
/// returns `None`, the cut satisfies the predicate.
pub trait LinearPredicate {
    /// Returns a forbidden thread of `cut`, or `None` if `cut` satisfies
    /// the predicate.
    fn forbidden(&self, view: &dyn EventView, cut: CutRef<'_>) -> Option<Tid>;
}

/// A boxed per-thread local predicate: receives the thread's frontier
/// index (0 = no event yet) and the frontier event's payload.
pub type LocalPredicate = Box<dyn Fn(u32, Option<&TraceEvent>) -> bool + Send + Sync>;

/// A conjunctive predicate `l₀ ∧ l₁ ∧ … ∧ lₙ₋₁` over per-thread local
/// states — the canonical linear predicate.
pub struct ConjunctiveLinear {
    locals: Vec<LocalPredicate>,
}

impl ConjunctiveLinear {
    /// `locals[i]` receives thread `i`'s frontier index (0 = no event)
    /// and payload.
    pub fn new(locals: Vec<LocalPredicate>) -> Self {
        ConjunctiveLinear { locals }
    }
}

impl LinearPredicate for ConjunctiveLinear {
    fn forbidden(&self, view: &dyn EventView, cut: CutRef<'_>) -> Option<Tid> {
        for (i, local) in self.locals.iter().enumerate() {
            let t = Tid::from(i);
            let k = cut.get(t);
            let payload = if k == 0 {
                None
            } else {
                Some(view.payload(EventId::new(t, k)))
            };
            if !local(k, payload) {
                // A false local is forbidden: no satisfying cut keeps this
                // frontier position (the local predicate depends only on
                // thread i's state).
                return Some(t);
            }
        }
        None
    }
}

/// Result of a linear-predicate search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LinearOutcome {
    /// The least satisfying cut at or above the start.
    Satisfied(Frontier),
    /// No satisfying cut exists at or above the start (a forbidden thread
    /// ran out of events).
    Unsatisfiable,
}

/// The Garg–Waldecker advance loop: starting from `start` (typically the
/// empty cut), repeatedly advance a forbidden thread, closing under
/// causality after each step. `O(|E|)` advances, each `O(n)` — no lattice
/// walk.
///
/// `space` supplies consistency (clocks); `view` supplies payloads. For a
/// `Poset<TraceEvent>` the same reference serves as both.
pub fn find_first_satisfying<S>(
    space: &S,
    view: &dyn EventView,
    predicate: &dyn LinearPredicate,
    start: &Frontier,
) -> LinearOutcome
where
    S: CutSpace + ?Sized,
{
    let n = space.num_threads();
    let mut cut = start.clone();
    debug_assert!(cut.is_consistent(space), "start must be consistent");
    loop {
        match predicate.forbidden(view, cut.as_cut()) {
            None => return LinearOutcome::Satisfied(cut),
            Some(t) => {
                let next_index = cut.get(t) + 1;
                if next_index as usize > space.events_of(t) {
                    return LinearOutcome::Unsatisfiable;
                }
                // Advance the forbidden thread and close under causality:
                // include every event the new frontier event depends on.
                cut.set(t, next_index);
                let mut changed = true;
                while changed {
                    changed = false;
                    for i in 0..n {
                        let ti = Tid::from(i);
                        let k = cut.get(ti);
                        if k == 0 {
                            continue;
                        }
                        for (j, need) in space.vc(EventId::new(ti, k)).iter_nonzero() {
                            let tj = Tid::from(j);
                            if need > cut.get(tj) {
                                cut.set(tj, need);
                                changed = true;
                            }
                        }
                    }
                }
                debug_assert!(cut.is_consistent(space));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paramount_poset::builder::PosetBuilder;
    use paramount_poset::{oracle, Poset};
    use paramount_trace::{Access, EventCollection, VarId};

    fn writes(var: u32) -> TraceEvent {
        let mut ec = EventCollection::new();
        ec.record(Access::write(VarId(var)));
        TraceEvent::Accesses(ec)
    }

    /// Local: thread's frontier event writes `var`.
    fn wants(var: u32) -> LocalPredicate {
        Box::new(move |_, payload| {
            payload
                .and_then(TraceEvent::collection)
                .is_some_and(|ec| ec.accesses().iter().any(|a| a.var == VarId(var)))
        })
    }

    fn sample_poset() -> Poset<TraceEvent> {
        // t0: w(v0), w(v2) ; t1: w(v1) after t0's w(v0).
        let mut b = PosetBuilder::new(2);
        let a = b.append(Tid(0), writes(0));
        b.append(Tid(0), writes(2));
        b.append_after(Tid(1), &[a], writes(1));
        b.finish()
    }

    #[test]
    fn finds_the_least_satisfying_cut() {
        let p = sample_poset();
        let predicate = ConjunctiveLinear::new(vec![wants(0), wants(1)]);
        let outcome = find_first_satisfying(&p, &p, &predicate, &Frontier::empty(2));
        assert_eq!(
            outcome,
            LinearOutcome::Satisfied(Frontier::from_counts(vec![1, 1]))
        );
    }

    #[test]
    fn unsatisfiable_when_a_local_never_holds() {
        let p = sample_poset();
        let predicate = ConjunctiveLinear::new(vec![wants(0), wants(9)]);
        let outcome = find_first_satisfying(&p, &p, &predicate, &Frontier::empty(2));
        assert_eq!(outcome, LinearOutcome::Unsatisfiable);
    }

    #[test]
    fn agrees_with_enumeration_on_random_inputs() {
        use paramount_poset::random::RandomComputation;
        for seed in 0..25 {
            let p = RandomComputation::new(3, 4, 0.4, seed)
                .generate_with_payload(|t, _| writes((t.0 + seed as u32) % 3));
            for target in 0..3u32 {
                let predicate = ConjunctiveLinear::new(vec![
                    wants(target),
                    wants((target + 1) % 3),
                    Box::new(|_, _| true),
                ]);
                let fast = find_first_satisfying(&p, &p, &predicate, &Frontier::empty(3));
                // Oracle: the ≤-least satisfying cut via full enumeration.
                let satisfying: Vec<Frontier> = oracle::enumerate_product_scan(&p)
                    .into_iter()
                    .filter(|g| predicate.forbidden(&p, g.as_cut()).is_none())
                    .collect();
                match fast {
                    LinearOutcome::Unsatisfiable => {
                        assert!(satisfying.is_empty(), "seed {seed} target {target}");
                    }
                    LinearOutcome::Satisfied(cut) => {
                        assert!(
                            satisfying.contains(&cut),
                            "seed {seed}: found non-satisfying cut"
                        );
                        // Least: dominated by every satisfying cut.
                        for other in &satisfying {
                            assert!(cut.leq(other), "seed {seed}: {cut} not least vs {other}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn start_above_empty_skips_lower_witnesses() {
        let p = sample_poset();
        let predicate = ConjunctiveLinear::new(vec![wants(2), Box::new(|_, _| true)]);
        // From empty: satisfied at {2,0}.
        let from_empty = find_first_satisfying(&p, &p, &predicate, &Frontier::empty(2));
        assert_eq!(
            from_empty,
            LinearOutcome::Satisfied(Frontier::from_counts(vec![2, 0]))
        );
        // From {2,1}: already satisfying.
        let start = Frontier::from_counts(vec![2, 1]);
        let from_mid = find_first_satisfying(&p, &p, &predicate, &start);
        assert_eq!(from_mid, LinearOutcome::Satisfied(start));
    }
}
