//! The `paramount/2` binary framing: length-prefixed LEB128 frames for the
//! client → server half of a negotiated-v2 connection.
//!
//! # Frame layout
//!
//! ```text
//! [tag: u8] [len: LEB128 varint] [payload: len bytes]
//! ```
//!
//! | tag | frame | payload |
//! |-----|-------|---------|
//! | 0x01 | EVENT | delta-coded event body (below) |
//! | 0x02 | FLUSH | empty |
//! | 0x03 | STATS | empty |
//! | 0x04 | END   | empty |
//!
//! # EVENT payload
//!
//! ```text
//! [tid: zigzag varint delta vs previous frame's tid]
//! [opcode: u8]
//! [arg]
//! ```
//!
//! Opcodes 0–3 (`read`/`write`/`acquire`/`release`) carry a *wire-interned*
//! name: the first use of a name ships `varint 0` + `varint len` + the
//! UTF-8 bytes and assigns it the next id in the decoder's table (vars and
//! locks have separate tables); later uses ship `varint (id + 1)` — two
//! bytes for a hot variable instead of its full name on every event.
//! Opcodes 4–6 (`fork`/`join`/`work`) carry a plain varint argument.
//!
//! Thread ids are delta-coded (zigzag) against the previous EVENT frame of
//! the same codec, so a thread streaming a run of its own events pays one
//! `0x00` byte per frame for its tid.
//!
//! Both codecs are deterministic state machines over the frame sequence:
//! an [`Enc`] and a [`Dec`] fed the same frames stay in lockstep. The WAL
//! uses a *fresh* codec per record ([`encode_event_record`] /
//! [`decode_event_record`]), trading interning for statelessness so a
//! checkpoint can rewrite any subset of records.
//!
//! # Clock bodies
//!
//! [`push_clock`] / [`read_clock`] define the v2 timestamp codec: width,
//! entry count, then delta-coded `(tid, count)` pairs of the nonzero
//! components — the sparse neighborhood form of
//! [`paramount_vclock::VectorClock`] goes on the wire without ever
//! materializing a dense vector.

use crate::proto::{ClientFrame, DecodeError, ErrCode, WireOp};
use paramount_durable::varint::{push_u32, push_u64, read_u32_at, read_u64_at};
use paramount_vclock::{ClockRef, VectorClock};

/// Frame tag for `EVENT`.
pub const TAG_EVENT: u8 = 0x01;
/// Frame tag for `FLUSH`.
pub const TAG_FLUSH: u8 = 0x02;
/// Frame tag for `STATS`.
pub const TAG_STATS: u8 = 0x03;
/// Frame tag for `END`.
pub const TAG_END: u8 = 0x04;
/// Frame tag for `LEASE` (payload: varint epoch, varint ttl-ms). Leases
/// normally travel on the router's text probe connection, but the frame
/// exists in both framings so v2 streams have no text-only verbs.
pub const TAG_LEASE: u8 = 0x05;

/// Longest accepted frame payload, in bytes — the binary analog of
/// [`crate::proto::MAX_LINE_BYTES`], bounding per-connection buffering.
pub const MAX_FRAME_BYTES: usize = 64 * 1024;

const OP_READ: u8 = 0;
const OP_WRITE: u8 = 1;
const OP_ACQUIRE: u8 = 2;
const OP_RELEASE: u8 = 3;
const OP_FORK: u8 = 4;
const OP_JOIN: u8 = 5;
const OP_WORK: u8 = 6;

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn bad(message: impl Into<String>) -> DecodeError {
    DecodeError::new(ErrCode::Proto, message)
}

/// Encoder state for one v2 stream: the name tables and the tid delta
/// base. Feed it client frames, read back wire bytes.
#[derive(Default)]
pub struct Enc {
    vars: Vec<String>,
    locks: Vec<String>,
    last_tid: u64,
    scratch: Vec<u8>,
}

impl Enc {
    /// A fresh encoder (empty name tables, tid base 0).
    pub fn new() -> Self {
        Enc::default()
    }

    /// Appends one `EVENT` frame to `out`.
    pub fn push_event(&mut self, out: &mut Vec<u8>, tid: usize, op: &WireOp) {
        self.scratch.clear();
        let delta = zigzag(tid as i64 - self.last_tid as i64);
        self.last_tid = tid as u64;
        push_u64(&mut self.scratch, delta);
        match op {
            WireOp::Read(v) => push_named(&mut self.scratch, OP_READ, v, &mut self.vars),
            WireOp::Write(v) => push_named(&mut self.scratch, OP_WRITE, v, &mut self.vars),
            WireOp::Acquire(l) => push_named(&mut self.scratch, OP_ACQUIRE, l, &mut self.locks),
            WireOp::Release(l) => push_named(&mut self.scratch, OP_RELEASE, l, &mut self.locks),
            WireOp::Fork(t) => {
                self.scratch.push(OP_FORK);
                push_u64(&mut self.scratch, *t as u64);
            }
            WireOp::Join(t) => {
                self.scratch.push(OP_JOIN);
                push_u64(&mut self.scratch, *t as u64);
            }
            WireOp::Work(w) => {
                self.scratch.push(OP_WORK);
                push_u32(&mut self.scratch, *w);
            }
        }
        out.push(TAG_EVENT);
        push_u64(out, self.scratch.len() as u64);
        out.extend_from_slice(&self.scratch);
    }

    /// Appends one bare (empty-payload) frame to `out`.
    pub fn push_bare(&mut self, out: &mut Vec<u8>, tag: u8) {
        debug_assert!(matches!(tag, TAG_FLUSH | TAG_STATS | TAG_END));
        out.push(tag);
        out.push(0);
    }

    /// Appends one `LEASE` frame to `out`.
    pub fn push_lease(&mut self, out: &mut Vec<u8>, epoch: u64, ttl_ms: u64) {
        self.scratch.clear();
        push_u64(&mut self.scratch, epoch);
        push_u64(&mut self.scratch, ttl_ms);
        out.push(TAG_LEASE);
        push_u64(out, self.scratch.len() as u64);
        out.extend_from_slice(&self.scratch);
    }
}

fn push_named(out: &mut Vec<u8>, opcode: u8, name: &str, table: &mut Vec<String>) {
    out.push(opcode);
    match table.iter().position(|n| n == name) {
        Some(id) => push_u64(out, id as u64 + 1),
        None => {
            table.push(name.to_string());
            out.push(0);
            push_u64(out, name.len() as u64);
            out.extend_from_slice(name.as_bytes());
        }
    }
}

/// Incremental decoder for a v2 stream. Feed it bytes as they arrive
/// ([`Dec::extend`]); drain complete frames with [`Dec::next_frame`].
#[derive(Default)]
pub struct Dec {
    buf: Vec<u8>,
    pos: usize,
    vars: Vec<String>,
    locks: Vec<String>,
    last_tid: u64,
}

/// One step of [`Dec::next_frame`].
#[derive(Debug)]
pub enum Step {
    /// A complete frame was decoded.
    Frame(ClientFrame),
    /// More bytes are needed for the next frame.
    Incomplete,
}

impl Dec {
    /// A fresh decoder (empty name tables, tid base 0).
    pub fn new() -> Self {
        Dec::default()
    }

    /// Appends newly received bytes to the decode buffer.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a decoded frame.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Decodes the next complete frame, if the buffer holds one.
    ///
    /// Errors are fatal to the stream: a torn frame that *cannot complete*
    /// (oversize length, bad opcode, invalid UTF-8, payload/length
    /// mismatch) is distinguishable from one that merely hasn't fully
    /// arrived, and only the former errors.
    pub fn next_frame(&mut self) -> Result<Step, DecodeError> {
        let avail = &self.buf[self.pos..];
        if avail.is_empty() {
            self.compact();
            return Ok(Step::Incomplete);
        }
        let tag = avail[0];
        let mut at = 1usize;
        let len = match read_u64_at(avail, &mut at) {
            Some(l) => l,
            None if avail.len() - 1 < 10 => return Ok(Step::Incomplete),
            None => return Err(bad("unterminated frame length varint")),
        };
        if len as usize > MAX_FRAME_BYTES {
            return Err(DecodeError::new(
                ErrCode::Limit,
                format!("frame of {len} bytes exceeds cap {MAX_FRAME_BYTES}"),
            ));
        }
        let len = len as usize;
        if avail.len() < at + len {
            return Ok(Step::Incomplete);
        }
        let payload = &avail[at..at + len];
        let frame = match tag {
            TAG_EVENT => {
                decode_event_payload(payload, &mut self.last_tid, &mut self.vars, &mut self.locks)?
            }
            TAG_FLUSH | TAG_STATS | TAG_END => {
                if len != 0 {
                    return Err(bad(format!(
                        "bare frame 0x{tag:02x} with {len}-byte payload"
                    )));
                }
                match tag {
                    TAG_FLUSH => ClientFrame::Flush,
                    TAG_STATS => ClientFrame::Stats,
                    _ => ClientFrame::End,
                }
            }
            TAG_LEASE => {
                let mut at = 0usize;
                let epoch =
                    read_u64_at(payload, &mut at).ok_or_else(|| bad("truncated LEASE epoch"))?;
                let ttl_ms =
                    read_u64_at(payload, &mut at).ok_or_else(|| bad("truncated LEASE ttl-ms"))?;
                if at != payload.len() {
                    return Err(bad("trailing bytes after LEASE payload"));
                }
                ClientFrame::Lease { epoch, ttl_ms }
            }
            other => return Err(bad(format!("unknown frame tag 0x{other:02x}"))),
        };
        self.pos += at + len;
        self.compact();
        Ok(Step::Frame(frame))
    }

    /// Reclaims consumed prefix space once it dominates the buffer.
    fn compact(&mut self) {
        if self.pos > 4096 && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

fn decode_event_payload(
    payload: &[u8],
    last_tid: &mut u64,
    vars: &mut Vec<String>,
    locks: &mut Vec<String>,
) -> Result<ClientFrame, DecodeError> {
    let mut at = 0usize;
    let delta = read_u64_at(payload, &mut at).ok_or_else(|| bad("EVENT truncated at tid"))?;
    let tid = (*last_tid as i64)
        .checked_add(unzigzag(delta))
        .filter(|&t| t >= 0)
        .ok_or_else(|| bad("EVENT tid delta out of range"))? as u64;
    let opcode = *payload.get(at).ok_or_else(|| bad("EVENT missing opcode"))?;
    at += 1;
    let op = match opcode {
        OP_READ => WireOp::Read(read_name(payload, &mut at, vars)?),
        OP_WRITE => WireOp::Write(read_name(payload, &mut at, vars)?),
        OP_ACQUIRE => WireOp::Acquire(read_name(payload, &mut at, locks)?),
        OP_RELEASE => WireOp::Release(read_name(payload, &mut at, locks)?),
        OP_FORK => WireOp::Fork(
            read_u64_at(payload, &mut at).ok_or_else(|| bad("fork truncated"))? as usize,
        ),
        OP_JOIN => WireOp::Join(
            read_u64_at(payload, &mut at).ok_or_else(|| bad("join truncated"))? as usize,
        ),
        OP_WORK => {
            WireOp::Work(read_u32_at(payload, &mut at).ok_or_else(|| bad("work truncated"))?)
        }
        other => return Err(bad(format!("unknown opcode {other}"))),
    };
    if at != payload.len() {
        return Err(bad(format!(
            "EVENT payload has {} trailing bytes",
            payload.len() - at
        )));
    }
    *last_tid = tid;
    Ok(ClientFrame::Event {
        tid: tid as usize,
        op,
    })
}

fn read_name(
    payload: &[u8],
    at: &mut usize,
    table: &mut Vec<String>,
) -> Result<String, DecodeError> {
    let id = read_u64_at(payload, at).ok_or_else(|| bad("name id truncated"))?;
    if id == 0 {
        let len = read_u64_at(payload, at).ok_or_else(|| bad("name length truncated"))? as usize;
        let bytes = payload
            .get(*at..*at + len)
            .ok_or_else(|| bad("name bytes truncated"))?;
        *at += len;
        let name = std::str::from_utf8(bytes)
            .map_err(|_| bad("name is not UTF-8"))?
            .to_string();
        table.push(name.clone());
        Ok(name)
    } else {
        table
            .get(id as usize - 1)
            .cloned()
            .ok_or_else(|| bad(format!("name id {id} not yet interned")))
    }
}

/// Encodes one event as a self-contained record body (fresh codec: name
/// inline, absolute tid) — the payload of an `EVENT2` WAL record.
pub fn encode_event_record(tid: usize, op: &WireOp) -> Vec<u8> {
    let mut enc = Enc::new();
    let mut out = Vec::with_capacity(16);
    enc.push_event(&mut out, tid, op);
    out
}

/// Decodes a self-contained event record produced by
/// [`encode_event_record`].
pub fn decode_event_record(bytes: &[u8]) -> Result<(usize, WireOp), DecodeError> {
    let mut dec = Dec::new();
    dec.extend(bytes);
    match dec.next_frame()? {
        Step::Frame(ClientFrame::Event { tid, op }) if dec.pending() == 0 => Ok((tid, op)),
        Step::Frame(_) => Err(bad("record is not a single EVENT frame")),
        Step::Incomplete => Err(bad("truncated event record")),
    }
}

/// Appends a clock to `out` in the v2 sparse timestamp codec: width,
/// nonzero-entry count, then `(tid delta - 1, count)` varint pairs in tid
/// order (deltas between *consecutive nonzero* tids, so a clock's cost is
/// proportional to its causal neighborhood, not its width).
pub fn push_clock(out: &mut Vec<u8>, clock: ClockRef<'_>) {
    push_u64(out, clock.len() as u64);
    let entries = clock.iter_nonzero().count();
    push_u64(out, entries as u64);
    let mut prev: u64 = 0;
    for (j, c) in clock.iter_nonzero() {
        // Gap coding: distance from the previous nonzero tid, so runs of
        // consecutive neighbors cost one byte each.
        push_u64(out, j as u64 - prev);
        prev = j as u64 + 1;
        push_u32(out, c);
    }
}

/// Reads a clock written by [`push_clock`]. `None` on truncation or a
/// malformed body (entries out of range or out of order).
pub fn read_clock(buf: &[u8], at: &mut usize) -> Option<VectorClock> {
    let n = read_u64_at(buf, at)? as usize;
    let entries = read_u64_at(buf, at)? as usize;
    if entries > n {
        return None;
    }
    let mut pairs = Vec::with_capacity(entries);
    let mut prev: u64 = 0;
    for _ in 0..entries {
        let delta = read_u64_at(buf, at)?;
        let j = prev + delta;
        if j as usize >= n {
            return None;
        }
        prev = j + 1;
        let c = read_u32_at(buf, at)?;
        if c == 0 {
            return None;
        }
        pairs.push((j as u32, c));
    }
    Some(VectorClock::from_entries(n, pairs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use paramount_vclock::Tid;

    fn ops() -> Vec<(usize, WireOp)> {
        vec![
            (0, WireOp::Write("balance".into())),
            (0, WireOp::Read("balance".into())),
            (1, WireOp::Acquire("m".into())),
            (1, WireOp::Write("balance".into())),
            (1, WireOp::Release("m".into())),
            (0, WireOp::Fork(2)),
            (2, WireOp::Work(17)),
            (0, WireOp::Join(2)),
        ]
    }

    #[test]
    fn stream_round_trips_through_the_codec() {
        let mut enc = Enc::new();
        let mut wire = Vec::new();
        for (tid, op) in &ops() {
            enc.push_event(&mut wire, *tid, op);
        }
        enc.push_bare(&mut wire, TAG_FLUSH);
        enc.push_bare(&mut wire, TAG_END);

        let mut dec = Dec::new();
        dec.extend(&wire);
        for (tid, op) in ops() {
            match dec.next_frame().unwrap() {
                Step::Frame(f) => assert_eq!(f, ClientFrame::Event { tid, op }),
                Step::Incomplete => panic!("frame should be complete"),
            }
        }
        assert!(matches!(
            dec.next_frame().unwrap(),
            Step::Frame(ClientFrame::Flush)
        ));
        assert!(matches!(
            dec.next_frame().unwrap(),
            Step::Frame(ClientFrame::End)
        ));
        assert!(matches!(dec.next_frame().unwrap(), Step::Incomplete));
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn lease_round_trips_through_the_codec() {
        let mut enc = Enc::new();
        let mut wire = Vec::new();
        enc.push_lease(&mut wire, 9, 1500);
        let mut dec = Dec::new();
        dec.extend(&wire);
        match dec.next_frame().unwrap() {
            Step::Frame(f) => assert_eq!(
                f,
                ClientFrame::Lease {
                    epoch: 9,
                    ttl_ms: 1500
                }
            ),
            Step::Incomplete => panic!("frame should be complete"),
        }
        assert_eq!(dec.pending(), 0);
        // Trailing bytes after the two varints are malformed.
        let mut dec = Dec::new();
        dec.extend(&[TAG_LEASE, 0x03, 0x01, 0x02, 0x00]);
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn interning_shrinks_repeated_names() {
        let mut enc = Enc::new();
        let mut first = Vec::new();
        enc.push_event(&mut first, 0, &WireOp::Write("a_rather_long_name".into()));
        let mut second = Vec::new();
        enc.push_event(&mut second, 0, &WireOp::Write("a_rather_long_name".into()));
        assert!(
            second.len() < first.len() / 2,
            "{} vs {}",
            second.len(),
            first.len()
        );
        // A hot same-thread event is tag + len + tid-delta 0 + opcode + id.
        assert_eq!(second.len(), 5);
    }

    #[test]
    fn byte_at_a_time_delivery_reassembles_frames() {
        let mut enc = Enc::new();
        let mut wire = Vec::new();
        for (tid, op) in &ops() {
            enc.push_event(&mut wire, *tid, op);
        }
        let mut dec = Dec::new();
        let mut got = Vec::new();
        for &b in &wire {
            dec.extend(&[b]);
            loop {
                match dec.next_frame().unwrap() {
                    Step::Frame(ClientFrame::Event { tid, op }) => got.push((tid, op)),
                    Step::Frame(other) => panic!("unexpected {other:?}"),
                    Step::Incomplete => break,
                }
            }
        }
        assert_eq!(got, ops());
    }

    #[test]
    fn torn_and_malformed_frames_are_rejected() {
        // Unknown tag.
        let mut dec = Dec::new();
        dec.extend(&[0x7f, 0x00]);
        assert!(dec.next_frame().is_err());

        // Oversize declared length.
        let mut dec = Dec::new();
        let mut wire = vec![TAG_EVENT];
        push_u64(&mut wire, MAX_FRAME_BYTES as u64 + 1);
        dec.extend(&wire);
        let err = dec.next_frame().unwrap_err();
        assert_eq!(err.code, ErrCode::Limit);

        // Bare frame with a payload.
        let mut dec = Dec::new();
        dec.extend(&[TAG_FLUSH, 0x01, 0x00]);
        assert!(dec.next_frame().is_err());

        // EVENT payload with a bad opcode.
        let mut dec = Dec::new();
        dec.extend(&[TAG_EVENT, 0x02, 0x00, 0x63]);
        assert!(dec.next_frame().is_err());

        // Name id that was never interned.
        let mut dec = Dec::new();
        dec.extend(&[TAG_EVENT, 0x03, 0x00, OP_READ, 0x05]);
        assert!(dec.next_frame().is_err());

        // Truncated name bytes: length says 100, payload ends first — the
        // frame length is authoritative, so this is malformed, not torn.
        let mut dec = Dec::new();
        let mut wire = vec![TAG_EVENT];
        let mut payload = vec![0x00, OP_READ, 0x00];
        push_u64(&mut payload, 100);
        payload.extend_from_slice(b"abc");
        push_u64(&mut wire, payload.len() as u64);
        wire.extend_from_slice(&payload);
        dec.extend(&wire);
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn torn_tail_is_incomplete_not_an_error() {
        let mut enc = Enc::new();
        let mut wire = Vec::new();
        enc.push_event(&mut wire, 3, &WireOp::Write("x".into()));
        for cut in 0..wire.len() {
            let mut dec = Dec::new();
            dec.extend(&wire[..cut]);
            assert!(
                matches!(dec.next_frame().unwrap(), Step::Incomplete),
                "prefix of {cut} bytes"
            );
        }
    }

    #[test]
    fn event_records_are_stateless() {
        let rec_a = encode_event_record(5, &WireOp::Acquire("lock".into()));
        let rec_b = encode_event_record(5, &WireOp::Acquire("lock".into()));
        // No cross-record interning: identical records encode identically.
        assert_eq!(rec_a, rec_b);
        assert_eq!(
            decode_event_record(&rec_a).unwrap(),
            (5, WireOp::Acquire("lock".into()))
        );
        // Trailing garbage is rejected.
        let mut long = rec_a.clone();
        long.push(0);
        assert!(decode_event_record(&long).is_err());
        assert!(decode_event_record(&rec_a[..rec_a.len() - 1]).is_err());
    }

    #[test]
    fn clocks_round_trip_sparse_and_dense() {
        let mut wide = VectorClock::zero_sparse(4096);
        wide.set(Tid(3), 7);
        wide.set(Tid(900), 1);
        wide.set(Tid(4095), 123_456);
        let narrow = VectorClock::from_components(vec![2, 0, 1]);
        for clock in [&wide, &narrow] {
            let mut buf = Vec::new();
            push_clock(&mut buf, clock.view());
            let mut at = 0;
            let back = read_clock(&buf, &mut at).unwrap();
            assert_eq!(&back, clock);
            assert_eq!(at, buf.len());
        }
        // The wide clock's encoding is proportional to its neighborhood.
        let mut buf = Vec::new();
        push_clock(&mut buf, wide.view());
        assert!(buf.len() < 32, "sparse clock took {} bytes", buf.len());
    }

    #[test]
    fn clock_decode_rejects_malformed_bodies() {
        // More entries than width.
        let mut buf = Vec::new();
        push_u64(&mut buf, 2);
        push_u64(&mut buf, 3);
        assert!(read_clock(&buf, &mut 0).is_none());
        // Entry past the width.
        let mut buf = Vec::new();
        push_u64(&mut buf, 2);
        push_u64(&mut buf, 1);
        push_u64(&mut buf, 5);
        push_u32(&mut buf, 1);
        assert!(read_clock(&buf, &mut 0).is_none());
        // Zero count.
        let mut buf = Vec::new();
        push_u64(&mut buf, 4);
        push_u64(&mut buf, 1);
        push_u64(&mut buf, 0);
        push_u32(&mut buf, 0);
        assert!(read_clock(&buf, &mut 0).is_none());
        // Truncation.
        assert!(read_clock(&[], &mut 0).is_none());
    }
}
