//! The textual trace format — re-exported from `paramount-trace`.
//!
//! The parser/writer moved into [`paramount_trace::textfmt`] so the ingest
//! wire protocol (whose `EVENT` frames reuse the per-line operation
//! syntax) can share it without depending on the CLI. This module keeps
//! the historical `paramount_cli::format` paths working and carries the
//! CLI-facing round-trip tests.

pub use paramount_trace::textfmt::{
    parse_op_body, parse_trace, render_op, trace_of_program, write_trace, ParseError, TraceFile,
};

#[cfg(test)]
mod tests {
    use super::*;
    use paramount_trace::gen::{random_program, RandomProgramConfig};
    use paramount_trace::sim::SimScheduler;

    /// Proptest-style randomized round-trip: random programs across a grid
    /// of shapes and seeds, rendered to text and re-parsed — the poset of
    /// the reparsed trace must be *identical* (same events, same vector
    /// clocks) to a direct capture of the same seeded execution. The wire
    /// codec builds on this format, so this is the substrate guarantee
    /// streaming ingestion rests on.
    #[test]
    fn random_program_round_trip_preserves_poset() {
        let mut cases = 0usize;
        for &threads in &[1usize, 2, 4] {
            for &locks in &[0usize, 1, 3] {
                for &lock_probability in &[0.0, 0.5, 1.0] {
                    for seed in 0..4u64 {
                        let config = RandomProgramConfig {
                            threads,
                            steps_per_thread: 6,
                            vars: 3,
                            locks,
                            lock_probability,
                            write_probability: 0.4,
                        };
                        let program = random_program("roundtrip", config, seed);
                        let trace = trace_of_program(&program, seed);
                        let rendered = write_trace(&trace);
                        let reparsed = parse_trace(&rendered)
                            .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{rendered}"));
                        // Tables may renumber (the parser interns by first
                        // appearance and drops unused locks) but every op
                        // must render back to the same line.
                        assert_eq!(
                            write_trace(&reparsed),
                            rendered,
                            "text round-trip (seed {seed})"
                        );

                        // Identical poset: direct capture vs replay of the
                        // rendered text, event by event, clock by clock.
                        let direct = SimScheduler::new(seed).run(&program);
                        let replayed = reparsed.to_poset(false);
                        assert_eq!(direct.num_events(), replayed.num_events(), "seed {seed}");
                        for (a, b) in direct.events().zip(replayed.events()) {
                            assert_eq!(a.id, b.id, "seed {seed}");
                            assert_eq!(a.vc, b.vc, "seed {seed}");
                        }
                        cases += 1;
                    }
                }
            }
        }
        assert_eq!(cases, 3 * 3 * 3 * 4);
    }

    /// A second rendering of the reparsed trace must be byte-identical —
    /// write ∘ parse is a fixpoint (names and ids intern stably).
    #[test]
    fn write_parse_write_is_fixpoint() {
        for seed in 0..8u64 {
            let program = random_program("fixpoint", RandomProgramConfig::default(), seed);
            let first = write_trace(&trace_of_program(&program, seed));
            let second = write_trace(&parse_trace(&first).unwrap());
            assert_eq!(first, second, "seed {seed}");
        }
    }
}
