#![warn(missing_docs)]
//! FastTrack (Flanagan & Freund, PLDI 2009) — the online race-detection
//! baseline of the ParaMount evaluation (Table 2).
//!
//! FastTrack is *not* an enumeration-based detector: it checks, on every
//! access, whether the access is ordered after all conflicting prior
//! accesses under happened-before. Its contribution is replacing the
//! per-variable vector clocks of DJIT⁺ with lightweight *epochs*
//! (`clock@tid`) on the common paths:
//!
//! * writes are totally ordered in race-free executions, so the last write
//!   is a single epoch;
//! * reads are usually ordered after the last read, so the read state is
//!   an epoch too, *adaptively* inflated to a full vector only while reads
//!   are genuinely concurrent.
//!
//! Two detectors live here:
//!
//! * [`FastTrack`] — the real algorithm, epochs and all.
//! * [`VectorDetector`] — the DJIT⁺-style full-vector detector FastTrack
//!   was derived from. It is obviously correct, so the test suite uses it
//!   as FastTrack's oracle: on every input both must flag the same set of
//!   racy variables.
//!
//! Both implement [`paramount_trace::OpObserver`], so any executor
//! (deterministic sim, real threads) can drive them over the same workload
//! programs the ParaMount detector sees.

mod djit;
mod fasttrack;
mod report;

pub use djit::VectorDetector;
pub use fasttrack::FastTrack;
pub use report::{RaceKind, RaceReport};
