//! Online ParaMount (the paper's Algorithm 4 and §4.2).
//!
//! Events are inserted *while the observed program runs*. Each insertion
//! executes the paper's atomic block — append the event, take `Gmin(e)`
//! from its clock, take `Gbnd(e)` as a snapshot of the current maximal
//! events — and then hands the interval `I(e)` to a worker pool that
//! enumerates it concurrently with further insertions. The insertion order
//! *is* the total order `→p` (the instrumented program cannot execute its
//! next event before the current one is inserted, so Property 1 holds),
//! and the snapshot satisfies Definition 1, so Lemmas 1–3 carry over
//! verbatim: every cut of the final poset is enumerated exactly once.
//!
//! The engine here is a *front-end*: [`OnlinePoset`] implements the
//! atomic block, and everything downstream of `observe_*` — the bounded
//! dispatch queue with its [`BackpressurePolicy`], the supervised worker
//! pool, panic isolation, retry/quarantine, metrics — is the shared
//! streaming executor in [`crate::exec`]. Unlike the offline mode there
//! is no Rayon in that pool: intervals must start the moment they are
//! created (work arrives as a stream, not a batch) and the pool must
//! outlive any single call, so it is a hand-built crossbeam-channel
//! fan-out. Every run records into a
//! [`ParaMetrics`](crate::metrics::ParaMetrics) registry — queue depth,
//! per-interval cut counts, worker busy/idle time, insertion
//! critical-section time — surfaced in [`OnlineReport::metrics`].

pub use crate::exec::BackpressurePolicy;
use crate::exec::{IntervalExecutor, StreamExecutor, StreamParams};
use crate::faults::{FaultLog, FaultPlan, Outcome};
use crate::governor::{GovernorConfig, MemoryBudget, OverloadError};
use crate::interval::Interval;
use crate::metrics::MetricsSnapshot;
use crate::sink::ParallelCutSink;
use crate::store::AppendVec;
use paramount_enumerate::{Algorithm, EnumError};
use paramount_poset::{CutSpace, Event, EventId, Frontier, Poset, Tid, VectorClock};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

/// A poset that grows while it is being enumerated.
///
/// Events live in one [`AppendVec`] per thread; the insertion critical
/// section (clock bookkeeping + snapshot) is one short mutex, after which
/// readers — the bounded enumerations — proceed lock-free (Theorem 3).
///
/// ```
/// use paramount::OnlinePoset;
/// use paramount_poset::Tid;
///
/// let poset: OnlinePoset<&str> = OnlinePoset::new(2);
/// let (first, interval) = poset.insert_after(Tid(0), &[], "e1[1]");
/// assert_eq!(interval.gmin.as_slice(), &[1, 0]); // Gmin(e) = e.vc
/// assert!(interval.include_empty);               // first event owns {0,0}
/// let (_, interval) = poset.insert_after(Tid(1), &[first], "e2[1]");
/// assert_eq!(interval.gbnd.as_slice(), &[1, 1]); // snapshot Gbnd
/// ```
pub struct OnlinePoset<P> {
    threads: Box<[AppendVec<Event<P>>]>,
    state: Mutex<InsertState>,
}

struct InsertState {
    /// Running clock per observed thread (clock of its latest event).
    clocks: Vec<VectorClock>,
    /// Total events inserted (detects the first event for the empty cut).
    total: u64,
}

impl<P> OnlinePoset<P> {
    /// An empty online poset over `n` observed threads.
    pub fn new(n: usize) -> Self {
        OnlinePoset {
            threads: (0..n).map(|_| AppendVec::new()).collect(),
            state: Mutex::new(InsertState {
                clocks: (0..n).map(|_| VectorClock::zero(n)).collect(),
                total: 0,
            }),
        }
    }

    /// Total events inserted so far.
    pub fn num_events(&self) -> usize {
        self.threads.iter().map(AppendVec::len).sum()
    }

    /// The event with the given id (must be published).
    pub fn event(&self, id: EventId) -> &Event<P> {
        self.threads[id.tid.index()]
            .get((id.index - 1) as usize)
            .expect("event not yet published")
    }

    /// Inserts an event of thread `t` depending on `deps` (which must
    /// already be inserted), computing its clock internally. Returns the
    /// id and the interval `I(e)` to enumerate — the paper's atomic block.
    pub fn insert_after(&self, t: Tid, deps: &[EventId], payload: P) -> (EventId, Interval) {
        let mut st = self.state.lock();
        let mut clock = st.clocks[t.index()].clone();
        clock.tick(t);
        for &d in deps {
            let dep = self.threads[d.tid.index()]
                .get((d.index - 1) as usize)
                .expect("dependency on a not-yet-inserted event");
            clock.join(&dep.vc);
        }
        st.clocks[t.index()] = clock.clone();
        self.insert_locked(&mut st, t, clock, payload)
    }

    /// Inserts an event whose clock was computed externally (e.g. by the
    /// trace recorder's lock/fork bookkeeping — Algorithm 3 runs there).
    pub fn insert_with_clock(&self, t: Tid, vc: VectorClock, payload: P) -> (EventId, Interval) {
        let mut st = self.state.lock();
        debug_assert_eq!(
            vc.get(t) as usize,
            self.threads[t.index()].len() + 1,
            "external clock must index the next event of its thread"
        );
        debug_assert!(
            st.clocks[t.index()].le(&vc),
            "external clock must dominate the thread's history"
        );
        st.clocks[t.index()] = vc.clone();
        self.insert_locked(&mut st, t, vc, payload)
    }

    fn insert_locked(
        &self,
        st: &mut InsertState,
        t: Tid,
        clock: VectorClock,
        payload: P,
    ) -> (EventId, Interval) {
        let id = EventId::new(t, clock.get(t));
        let gmin = Frontier::from_clock(&clock);
        let include_empty = st.total == 0;
        st.total += 1;
        // Publish the event *before* snapshotting, so Gbnd includes it
        // (Definition 1 requires e ∈ Gbnd(e)).
        self.threads[t.index()].push(Event {
            id,
            vc: clock,
            payload,
        });
        // Snapshot of the maximal events of all threads, still inside the
        // critical section: exactly the events inserted before (or being)
        // e — a valid Gbnd per Definition 1, consistent per Theorem 1.
        let gbnd = Frontier::from_counts(self.threads.iter().map(|seq| seq.len() as u32).collect());
        (
            id,
            Interval {
                event: id,
                gmin,
                gbnd,
                include_empty,
            },
        )
    }

    /// Freezes the current contents into an immutable [`Poset`] (for
    /// offline cross-checks and reporting).
    pub fn snapshot(&self) -> Poset<P>
    where
        P: Clone,
    {
        Poset::from_threads(
            self.threads
                .iter()
                .map(|seq| seq.iter().cloned().collect())
                .collect(),
        )
    }
}

impl<P> CutSpace for OnlinePoset<P> {
    #[inline]
    fn num_threads(&self) -> usize {
        self.threads.len()
    }

    #[inline]
    fn events_of(&self, t: Tid) -> usize {
        self.threads[t.index()].len()
    }

    #[inline]
    fn vc(&self, id: EventId) -> &VectorClock {
        &self.event(id).vc
    }
}

/// Configuration for the online engine.
#[derive(Clone, Debug)]
pub struct OnlineEngineConfig {
    /// Bounded subroutine for each interval (the paper defaults to the
    /// lexical algorithm for online detection). `Algorithm::Auto` lets
    /// the executor pick lexical vs. the space-efficient leveled walk
    /// per interval from box size and memory pressure (see
    /// [`crate::exec::IntervalExecutor`]).
    pub algorithm: Algorithm,
    /// Enumeration worker threads (≥ 1).
    pub workers: usize,
    /// Per-interval frontier budget for stateful subroutines.
    pub frontier_budget: Option<usize>,
    /// Capacity of the interval dispatch queue (≥ 1). When full, the
    /// [`BackpressurePolicy`] decides what `observe_*` does.
    pub queue_capacity: usize,
    /// What to do when the dispatch queue is full.
    pub backpressure: BackpressurePolicy,
    /// How many times the supervisor may restart a worker body after a
    /// panic escapes the per-interval isolation boundary (shared budget
    /// across the pool). `0` lets a twice-panicking worker die; the
    /// remaining workers — and, ultimately, `finish`'s inline drain —
    /// still process every queued interval.
    pub worker_restart_budget: u32,
    /// Deterministic fault-injection plan. Inert unless the crate is
    /// built with the `chaos` feature **and** the plan arms a site; see
    /// [`FaultPlan`].
    pub faults: FaultPlan,
    /// Overload governor: memory watermarks for adaptive backpressure
    /// and the per-interval liveness deadline. Default is fully off.
    pub governor: GovernorConfig,
    /// Directory for the cold spill tier (created if missing). `None`
    /// keeps the spill deque RAM-only; with a directory, memory pressure
    /// freezes spilled intervals to disk instead of shedding them once
    /// the hard watermark trips (see `GovernorConfig::disk_spill_bytes`
    /// for the cap on that tier).
    pub spill_dir: Option<std::path::PathBuf>,
}

impl Default for OnlineEngineConfig {
    fn default() -> Self {
        OnlineEngineConfig {
            algorithm: Algorithm::Lexical,
            workers: 4,
            frontier_budget: None,
            queue_capacity: 1024,
            backpressure: BackpressurePolicy::Block,
            worker_restart_budget: 8,
            faults: FaultPlan::default(),
            governor: GovernorConfig::default(),
            spill_dir: None,
        }
    }
}

/// The online enumeration engine: an [`OnlinePoset`] feeding the shared
/// streaming executor ([`crate::exec`]) — a worker pool draining a
/// bounded channel of freshly created intervals.
///
/// `observe_*` calls may come from many program threads concurrently; the
/// per-call cost beyond the enumeration itself is one mutex-protected
/// insert and one channel send (which may block, spill or shed under a
/// full queue — see [`BackpressurePolicy`]).
pub struct OnlineEngine<P: Send + Sync + 'static> {
    poset: Arc<OnlinePoset<P>>,
    stream: StreamExecutor<OnlinePoset<P>>,
    config: OnlineEngineConfig,
    /// The byte account this engine charges — built from the config's
    /// governor, or handed in by an embedder (the daemon shares one
    /// budget across every session).
    budget: Arc<MemoryBudget>,
}

impl<P: Send + Sync + 'static> OnlineEngine<P> {
    /// Starts an engine observing `n` program threads, feeding `sink`.
    pub fn new(n: usize, config: OnlineEngineConfig, sink: impl ParallelCutSink + 'static) -> Self {
        Self::with_poset(Arc::new(OnlinePoset::new(n)), config, sink)
    }

    /// Starts an engine over a caller-provided poset handle.
    ///
    /// Sharing the `Arc` lets the sink itself read event payloads — the
    /// predicate detectors hold a clone and look up the owner event of
    /// each visited cut.
    pub fn with_poset(
        poset: Arc<OnlinePoset<P>>,
        config: OnlineEngineConfig,
        sink: impl ParallelCutSink + 'static,
    ) -> Self {
        let budget = Arc::new(MemoryBudget::new(config.governor));
        Self::with_poset_and_budget(poset, config, sink, budget)
    }

    /// Starts an engine charging a caller-owned [`MemoryBudget`].
    ///
    /// Several engines can share one budget (the ingest daemon threads a
    /// process-wide account through every session), so the watermarks
    /// react to *total* load, not per-engine load. The watermarks come
    /// from the budget; `config.governor` only contributes the interval
    /// deadline here.
    pub fn with_poset_and_budget(
        poset: Arc<OnlinePoset<P>>,
        config: OnlineEngineConfig,
        sink: impl ParallelCutSink + 'static,
        budget: Arc<MemoryBudget>,
    ) -> Self {
        let exec = IntervalExecutor {
            algorithm: config.algorithm,
            frontier_budget: config.frontier_budget,
            interval_deadline: config.governor.interval_deadline,
            faults: config.faults,
        };
        let params = StreamParams {
            workers: config.workers,
            queue_capacity: config.queue_capacity,
            backpressure: config.backpressure,
            worker_restart_budget: config.worker_restart_budget,
            spill_dir: config.spill_dir.clone(),
        };
        let stream = StreamExecutor::new(
            Arc::clone(&poset),
            exec,
            params,
            Box::new(sink),
            Arc::clone(&budget),
        );
        OnlineEngine {
            poset,
            stream,
            config,
            budget,
        }
    }

    /// Bytes the budget is charged for each retained event: the event
    /// record itself plus its heap-allocated vector clock.
    fn retained_bytes_per_event(&self) -> usize {
        std::mem::size_of::<Event<P>>() + self.poset.num_threads() * 4
    }

    /// Observes an event of thread `t` with explicit dependencies; clock
    /// computed internally. Returns the event id.
    pub fn observe_after(&self, t: Tid, deps: &[EventId], payload: P) -> EventId {
        let start = Instant::now();
        let (id, interval) = self.poset.insert_after(t, deps, payload);
        self.note_insert(start);
        self.stream.submit(interval);
        id
    }

    /// Observes an event whose clock the caller computed (recorder path).
    pub fn observe_with_clock(&self, t: Tid, vc: VectorClock, payload: P) -> EventId {
        let start = Instant::now();
        let (id, interval) = self.poset.insert_with_clock(t, vc, payload);
        self.note_insert(start);
        self.stream.submit(interval);
        id
    }

    /// Replays a complete reference poset through the engine: every event
    /// in `→p` (vector-clock-weight) order, with its recorded clock. The
    /// standard way to drive the online engine from an offline trace —
    /// tests and benches compare the resulting report against offline
    /// enumeration of the same poset.
    pub fn observe_poset(&self, reference: &Poset<P>)
    where
        P: Clone,
    {
        for &id in &paramount_poset::topo::weight_order(reference) {
            self.observe_with_clock(
                id.tid,
                reference.vc(id).clone(),
                reference.payload(id).clone(),
            );
        }
    }

    fn note_insert(&self, start: Instant) {
        let m = self.stream.metrics();
        m.insert_critical_ns
            .record(start.elapsed().as_nanos() as u64);
        m.events_inserted.add(1);
        // Online retention is unbounded by construction (the trace only
        // grows); charging it keeps the watermarks honest about *total*
        // memory, not just the spill queue.
        self.budget.charge_retained(self.retained_bytes_per_event());
    }

    /// The growing poset (also a [`CutSpace`], usable for ad-hoc queries).
    pub fn poset(&self) -> &OnlinePoset<P> {
        &self.poset
    }

    /// True once the sink has requested a global stop.
    pub fn is_stopped(&self) -> bool {
        self.stream.is_stopped()
    }

    /// Worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.config.workers
    }

    /// Live snapshot of the metrics registry. Counters are folded with
    /// relaxed loads, so totals are approximate while workers run and
    /// exact after [`OnlineEngine::finish`].
    pub fn metrics(&self) -> MetricsSnapshot {
        self.stream.metrics().snapshot()
    }

    /// Live snapshot of the quarantine ledger: every interval the engine
    /// has given up on so far, with its exact `[Gmin, Gbnd]` bounds.
    /// Exact after [`OnlineEngine::finish`]; while workers run an interval
    /// may quarantine between this call and the next.
    pub fn fault_log(&self) -> FaultLog {
        self.stream.fault_log()
    }

    /// The memory budget this engine charges (shared with the embedder
    /// when constructed via [`OnlineEngine::with_poset_and_budget`]).
    pub fn budget(&self) -> &Arc<MemoryBudget> {
        &self.budget
    }

    /// Closes the stream, waits for all pending intervals — queued *and*
    /// spilled — to drain, and reports totals.
    pub fn finish(self) -> OnlineReport<P>
    where
        P: Clone,
    {
        let retained = self.poset.num_events() * self.retained_bytes_per_event();
        let OnlineEngine {
            poset,
            stream,
            budget,
            ..
        } = self;
        let outcome = stream.finish();
        // The engine's retention ends with it: credit everything this
        // run charged so a shared budget sees the memory come back.
        budget.credit_retained(retained);
        OnlineReport {
            cuts: outcome.metrics.cuts_emitted,
            events: poset.num_events() as u64,
            error: outcome.error,
            faults: outcome.faults,
            metrics: outcome.metrics,
            overload: outcome.overload,
            poset: poset.snapshot(),
        }
    }
}

/// Result of a completed online enumeration.
pub struct OnlineReport<P> {
    /// Total cuts enumerated (= `i(P)` of the final poset, Theorem 2 —
    /// unless the run stopped early, shed work, or quarantined
    /// intervals; see [`OnlineReport::is_complete`]).
    pub cuts: u64,
    /// Events observed.
    pub events: u64,
    /// Budget error, if a stateful subroutine tripped its limit.
    pub error: Option<EnumError>,
    /// Faults survived: every quarantined interval with its `Gmin`/`Gbnd`
    /// pair, delivered-prefix length, and panic message. Empty on a
    /// clean run; see [`OnlineReport::outcome`].
    pub faults: FaultLog,
    /// Folded observability counters for the whole run: queue-depth
    /// high-water mark, per-interval cut-count histogram, worker
    /// busy/idle tallies, insertion critical-section times.
    pub metrics: MetricsSnapshot,
    /// Typed overload, if the memory budget's hard watermark forced
    /// intervals to be shed mid-run (see [`crate::governor`]). Always
    /// accompanied by `metrics.intervals_rejected > 0`.
    pub overload: Option<OverloadError>,
    /// The final, frozen poset.
    pub poset: Poset<P>,
}

impl<P> OnlineReport<P> {
    /// True when `cuts` is exactly `i(P)`: no error, no interval shed by
    /// [`BackpressurePolicy::Fail`], and nothing quarantined.
    pub fn is_complete(&self) -> bool {
        self.error.is_none() && self.metrics.intervals_rejected == 0 && self.faults.is_empty()
    }

    /// [`Outcome::Complete`], or [`Outcome::Degraded`] with the fault
    /// log when intervals were quarantined. The degraded cut set is
    /// still exact on everything outside the log: intervals are
    /// disjoint (Theorem 2), so `cuts` + the log's per-interval
    /// remainders partition `i(P)`.
    pub fn outcome(&self) -> Outcome<'_> {
        self.faults.outcome()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{AtomicCountSink, ConcurrentCollectSink};
    use paramount_poset::oracle;
    use paramount_poset::random::RandomComputation;
    use paramount_poset::CutRef;
    use std::ops::ControlFlow;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc as StdArc;

    #[test]
    fn online_poset_insertion_and_snapshot() {
        let p: OnlinePoset<&str> = OnlinePoset::new(2);
        let (a, iv_a) = p.insert_after(Tid(0), &[], "a");
        assert_eq!(iv_a.gmin.as_slice(), &[1, 0]);
        assert_eq!(iv_a.gbnd.as_slice(), &[1, 0]);
        assert!(iv_a.include_empty);
        let (_b, iv_b) = p.insert_after(Tid(1), &[a], "b");
        assert_eq!(iv_b.gmin.as_slice(), &[1, 1]);
        assert_eq!(iv_b.gbnd.as_slice(), &[1, 1]);
        assert!(!iv_b.include_empty);
        let snap = p.snapshot();
        assert_eq!(snap.num_events(), 2);
        assert_eq!(*snap.payload(a), "a");
    }

    #[test]
    fn figure8_snapshot_gbnd() {
        // Figure 8(a): insertion order e1[1], e2[1], e1[2], e2[2] gives
        // Gbnd(e1[2]) = {2,1}; (b): inserting e2[2] before e1[2] gives
        // Gbnd(e1[2]) = {2,2}.
        let p: OnlinePoset<()> = OnlinePoset::new(2);
        p.insert_after(Tid(0), &[], ());
        p.insert_after(Tid(1), &[], ());
        let (_, iv) = p.insert_after(Tid(0), &[], ());
        assert_eq!(iv.gbnd.as_slice(), &[2, 1]);

        let q: OnlinePoset<()> = OnlinePoset::new(2);
        q.insert_after(Tid(0), &[], ());
        q.insert_after(Tid(1), &[], ());
        q.insert_after(Tid(1), &[], ());
        let (_, iv) = q.insert_after(Tid(0), &[], ());
        assert_eq!(iv.gbnd.as_slice(), &[2, 2]);
    }

    #[test]
    fn engine_enumerates_every_cut_exactly_once() {
        for seed in 0..6 {
            // Replay a random computation through the online engine...
            let reference = RandomComputation::new(4, 5, 0.4, seed).generate();
            let sink = StdArc::new(ConcurrentCollectSink::new());
            let engine = OnlineEngine::new(
                4,
                OnlineEngineConfig {
                    workers: 3,
                    ..OnlineEngineConfig::default()
                },
                {
                    let sink = StdArc::clone(&sink);
                    move |cut: CutRef<'_>, owner| sink.visit(cut, owner)
                },
            );
            engine.observe_poset(&reference);
            let report = engine.finish();
            // ...and compare against the offline oracle.
            let expected = oracle::enumerate_product_scan(&reference);
            assert_eq!(report.cuts as usize, expected.len(), "seed {seed}");
            // `take_cuts` reads through the shared handle — the closure
            // sink's leaked clone cannot abort result extraction.
            let got: Vec<Frontier> = sink.take_cuts();
            assert_eq!(oracle::canonicalize(got), expected, "seed {seed}");
        }
    }

    #[test]
    fn concurrent_observers_agree_with_offline_count() {
        // Theorem 3: four real threads observe their own events (with a
        // handful of cross-thread dependencies) while workers enumerate.
        let counter = StdArc::new(AtomicCountSink::new());
        let counter_in_sink = StdArc::clone(&counter);
        // Scoped threads borrow the engine directly: no `Arc` around it,
        // so teardown needs no `try_unwrap` at all.
        let engine = OnlineEngine::new(
            4,
            OnlineEngineConfig {
                workers: 4,
                ..OnlineEngineConfig::default()
            },
            move |cut: CutRef<'_>, owner| counter_in_sink.visit(cut, owner),
        );

        let barrier = std::sync::Barrier::new(4);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let engine = &engine;
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    for k in 0..6 {
                        // Every third event synchronizes with a previously
                        // published event of the next thread, if any.
                        let deps: Vec<EventId> = if k % 3 == 2 {
                            let other = Tid((t + 1) % 4);
                            let published = engine.poset().events_of(other) as u32;
                            if published > 0 {
                                vec![EventId::new(other, published)]
                            } else {
                                Vec::new()
                            }
                        } else {
                            Vec::new()
                        };
                        engine.observe_after(Tid(t), &deps, ());
                    }
                });
            }
        });
        let report = engine.finish();
        assert_eq!(report.events, 24);
        // The online count must equal the offline lattice size of the
        // final poset.
        let expected = oracle::count_ideals(&report.poset);
        assert_eq!(report.cuts, expected);
        assert_eq!(counter.count(), expected);
        assert!(report.error.is_none());
        assert!(report.is_complete());
    }

    #[test]
    fn early_stop_halts_engine() {
        let engine = OnlineEngine::new(
            2,
            OnlineEngineConfig {
                workers: 2,
                ..OnlineEngineConfig::default()
            },
            move |_: CutRef<'_>, _: EventId| ControlFlow::Break(()),
        );
        for _ in 0..50 {
            engine.observe_after(Tid(0), &[], ());
            engine.observe_after(Tid(1), &[], ());
        }
        let report = engine.finish();
        assert!(report.cuts < 200, "stop should prevent full enumeration");
        assert!(report.error.is_none(), "Stopped is not an error");
    }

    #[test]
    fn dropping_engine_without_finish_joins_workers() {
        let engine = OnlineEngine::new(
            2,
            OnlineEngineConfig::default(),
            move |_: CutRef<'_>, _: EventId| ControlFlow::Continue(()),
        );
        engine.observe_after(Tid(0), &[], ());
        drop(engine); // must not hang or leak threads
    }

    #[test]
    fn report_metrics_are_internally_consistent() {
        let reference = RandomComputation::new(3, 6, 0.3, 42).generate();
        let engine = OnlineEngine::new(
            3,
            OnlineEngineConfig {
                workers: 2,
                ..OnlineEngineConfig::default()
            },
            move |_: CutRef<'_>, _: EventId| ControlFlow::Continue(()),
        );
        engine.observe_poset(&reference);
        let report = engine.finish();
        let m = &report.metrics;
        assert_eq!(m.events_inserted, report.events);
        assert_eq!(m.intervals_dispatched, report.events);
        assert_eq!(m.intervals_completed, report.events);
        assert_eq!(m.intervals_spilled, 0);
        assert_eq!(m.intervals_rejected, 0);
        assert_eq!(m.cuts_emitted, report.cuts);
        // Every interval's cut count went through the histogram; the sums
        // must reconcile exactly with the headline count.
        assert_eq!(m.interval_cuts.count(), report.events);
        assert_eq!(m.interval_cuts.sum, report.cuts);
        // Every insert was timed.
        assert_eq!(m.insert_critical_ns.count(), report.events);
        // Queue fully drained; high-water mark observed at least one send.
        assert_eq!(m.queue_depth, 0);
        assert!(m.queue_depth_high_water >= 1);
        // Worker tallies add up to the dispatched total.
        assert_eq!(m.workers.len(), 2);
        let by_worker: u64 = m.workers.iter().map(|w| w.intervals).sum();
        assert_eq!(by_worker, report.events);
        assert!(report.is_complete());
    }

    #[test]
    fn tiny_intervals_coalesce_into_queue_batches() {
        // A single-thread chain: every event's interval is one cut, so
        // the submit path coalesces them into batched queue entries
        // instead of paying a channel round-trip per interval. The count
        // must stay oracle-exact through batching, part-filled leftover
        // included.
        let engine = OnlineEngine::new(
            1,
            OnlineEngineConfig {
                workers: 1,
                ..OnlineEngineConfig::default()
            },
            move |_: CutRef<'_>, _: EventId| ControlFlow::Continue(()),
        );
        for _ in 0..100 {
            engine.observe_after(Tid(0), &[], ());
        }
        let report = engine.finish();
        let expected = oracle::count_ideals(&report.poset);
        assert_eq!(report.cuts, expected, "batching must not lose cuts");
        let m = &report.metrics;
        assert_eq!(m.intervals_dispatched, 100);
        assert_eq!(m.intervals_completed, 100);
        assert!(
            m.queue_batches >= 2,
            "chain intervals must coalesce into batches (saw {})",
            m.queue_batches
        );
        assert_eq!(m.queue_depth, 0, "queue fully drained");
        assert!(report.is_complete());
    }

    #[test]
    fn spill_policy_loses_no_cuts_under_tiny_queue() {
        let reference = RandomComputation::new(3, 6, 0.3, 7).generate();
        let counter = StdArc::new(AtomicCountSink::new());
        let counter_in_sink = StdArc::clone(&counter);
        let engine = OnlineEngine::new(
            3,
            OnlineEngineConfig {
                workers: 1,
                queue_capacity: 1,
                backpressure: BackpressurePolicy::SpillToDeque,
                ..OnlineEngineConfig::default()
            },
            move |cut: CutRef<'_>, owner| {
                // Slow consumer: force the 1-slot queue to overflow.
                std::thread::sleep(std::time::Duration::from_micros(50));
                counter_in_sink.visit(cut, owner)
            },
        );
        engine.observe_poset(&reference);
        let report = engine.finish();
        let expected = oracle::count_ideals(&report.poset);
        assert_eq!(report.cuts, expected, "spill must not lose intervals");
        assert_eq!(counter.count(), expected);
        assert_eq!(report.metrics.intervals_rejected, 0);
        assert_eq!(
            report.metrics.intervals_completed,
            report.metrics.intervals_dispatched
        );
        assert!(report.is_complete());
    }

    #[test]
    fn fail_policy_sheds_load_and_reports_incomplete() {
        let release = StdArc::new(AtomicBool::new(false));
        let gate = StdArc::clone(&release);
        let engine = OnlineEngine::new(
            2,
            OnlineEngineConfig {
                workers: 1,
                queue_capacity: 1,
                backpressure: BackpressurePolicy::Fail,
                ..OnlineEngineConfig::default()
            },
            move |_: CutRef<'_>, _: EventId| {
                // Hold the single worker hostage until all inserts landed.
                while !gate.load(Ordering::Relaxed) {
                    std::thread::yield_now();
                }
                ControlFlow::Continue(())
            },
        );
        for _ in 0..30 {
            engine.observe_after(Tid(0), &[], ());
            engine.observe_after(Tid(1), &[], ());
        }
        release.store(true, Ordering::Relaxed);
        let report = engine.finish();
        let m = &report.metrics;
        assert!(m.intervals_rejected > 0, "queue must have shed load");
        assert_eq!(
            m.intervals_completed + m.intervals_rejected,
            m.intervals_dispatched
        );
        assert!(!report.is_complete());
        // Shed work means a strict undercount versus the true lattice.
        assert!(report.cuts < oracle::count_ideals(&report.poset));
    }

    #[test]
    fn live_metrics_snapshot_is_available_mid_run() {
        let engine = OnlineEngine::new(
            2,
            OnlineEngineConfig::default(),
            move |_: CutRef<'_>, _: EventId| ControlFlow::Continue(()),
        );
        engine.observe_after(Tid(0), &[], ());
        let live = engine.metrics();
        assert_eq!(live.events_inserted, 1);
        let report = engine.finish();
        assert_eq!(report.metrics.events_inserted, 1);
    }

    /// Theorem 2's disjoint cover, under faults: the delivered cuts plus
    /// each quarantined interval's remainder (re-enumerated offline on
    /// the final poset, minus the delivered prefix) must partition the
    /// oracle lattice count exactly — no cut lost, none double-counted.
    fn assert_exact_partition<P: Clone + Send + Sync>(report: &OnlineReport<P>) {
        let total = oracle::count_ideals(&report.poset);
        let mut skipped = 0u64;
        for q in &report.faults.quarantined {
            let mut sink = paramount_enumerate::CollectSink::default();
            q.interval
                .enumerate(&report.poset, Algorithm::Lexical, &mut sink)
                .expect("lexical re-enumeration is stateless");
            skipped += sink.cuts.len() as u64 - q.cuts_emitted;
            assert!(q.skipped_cuts_bound() >= u128::from(sink.cuts.len() as u64 - q.cuts_emitted));
        }
        assert_eq!(report.cuts + skipped, total, "degraded partition not exact");
    }

    #[test]
    fn panicking_sink_quarantines_its_interval_and_degrades() {
        let reference = RandomComputation::new(3, 5, 0.4, 11).generate();
        let order = paramount_poset::topo::weight_order(&reference);
        let victim = order[order.len() / 2];
        let counter = StdArc::new(AtomicCountSink::new());
        let counter_in_sink = StdArc::clone(&counter);
        let engine = OnlineEngine::new(
            3,
            OnlineEngineConfig {
                workers: 2,
                ..OnlineEngineConfig::default()
            },
            move |cut: CutRef<'_>, owner: EventId| {
                if owner == victim {
                    panic!("predicate exploded");
                }
                counter_in_sink.visit(cut, owner)
            },
        );
        engine.observe_poset(&reference);
        let report = engine.finish();
        // The faulted interval panicked on its first delivery (clean
        // slate), earned one retry, panicked again, and was quarantined.
        assert_eq!(report.faults.len(), 1);
        let q = &report.faults.quarantined[0];
        assert_eq!(q.interval.event, victim);
        assert_eq!(q.cuts_emitted, 0);
        assert_eq!(q.attempts, 2);
        assert!(q.message.contains("predicate exploded"), "{}", q.message);
        assert!(!report.is_complete());
        assert!(!report.outcome().is_complete());
        match report.outcome() {
            Outcome::Degraded(log) => assert_eq!(log.len(), 1),
            Outcome::Complete => panic!("run must be degraded"),
        }
        let m = &report.metrics;
        assert_eq!(m.worker_panics, 2);
        assert_eq!(m.intervals_retried, 1);
        assert_eq!(m.intervals_quarantined, 1);
        assert_eq!(
            m.intervals_completed + m.intervals_quarantined,
            m.intervals_dispatched
        );
        assert_eq!(counter.count(), report.cuts);
        assert_exact_partition(&report);
    }

    #[test]
    fn partial_emission_skips_retry_and_reports_exact_prefix() {
        // t0: two events; t1: one concurrent event whose interval spans
        // {0,1},{1,1},{2,1}. The sink delivers the first cut, then
        // panics — a retry would double-deliver it, so the engine must
        // quarantine immediately with the prefix length on record.
        let visits = StdArc::new(AtomicU64::new(0));
        let visits_in_sink = StdArc::clone(&visits);
        let engine = OnlineEngine::new(
            2,
            OnlineEngineConfig {
                workers: 1,
                ..OnlineEngineConfig::default()
            },
            move |_: CutRef<'_>, owner: EventId| {
                if owner.tid == Tid(1) && visits_in_sink.fetch_add(1, Ordering::Relaxed) + 1 == 2 {
                    panic!("mid-interval fault");
                }
                ControlFlow::Continue(())
            },
        );
        engine.observe_after(Tid(0), &[], ());
        engine.observe_after(Tid(0), &[], ());
        engine.observe_after(Tid(1), &[], ());
        let report = engine.finish();
        assert_eq!(report.faults.len(), 1);
        let q = &report.faults.quarantined[0];
        assert_eq!(q.cuts_emitted, 1, "exactly the delivered prefix");
        assert_eq!(q.attempts, 1, "partial emission forbids the retry");
        assert_eq!(report.metrics.intervals_retried, 0);
        assert_eq!(report.metrics.worker_panics, 1);
        // Lattice: 6 cuts total; the quarantined interval held 3, one
        // was delivered. 2 + 1 + 1 = 4 delivered overall.
        assert_eq!(report.cuts, 4);
        assert_eq!(q.skipped_cuts_bound(), 2);
        assert_exact_partition(&report);
    }

    #[test]
    fn transient_panic_is_retried_and_run_completes() {
        let first = StdArc::new(AtomicBool::new(true));
        let first_in_sink = StdArc::clone(&first);
        let counter = StdArc::new(AtomicCountSink::new());
        let counter_in_sink = StdArc::clone(&counter);
        let engine = OnlineEngine::new(
            2,
            OnlineEngineConfig {
                workers: 2,
                ..OnlineEngineConfig::default()
            },
            move |cut: CutRef<'_>, owner: EventId| {
                // Panic once, on the very first delivery of t1's
                // interval — before anything of it was delivered.
                if owner.tid == Tid(1) && first_in_sink.swap(false, Ordering::Relaxed) {
                    panic!("transient");
                }
                counter_in_sink.visit(cut, owner)
            },
        );
        engine.observe_after(Tid(0), &[], ());
        engine.observe_after(Tid(0), &[], ());
        engine.observe_after(Tid(1), &[], ());
        let report = engine.finish();
        assert!(report.is_complete(), "retry must recover a transient fault");
        assert!(report.outcome().is_complete());
        assert!(report.faults.is_empty());
        assert_eq!(report.metrics.worker_panics, 1);
        assert_eq!(report.metrics.intervals_retried, 1);
        assert_eq!(report.metrics.intervals_quarantined, 0);
        assert_eq!(report.cuts, 6);
        assert_eq!(counter.count(), 6);
    }

    #[test]
    fn worker_panic_never_terminates_the_process_across_many_intervals() {
        // Every t1-owned interval panics on every delivery: multiple
        // quarantines, all contained, engine finishes normally.
        let counter = StdArc::new(AtomicCountSink::new());
        let counter_in_sink = StdArc::clone(&counter);
        let engine = OnlineEngine::new(
            2,
            OnlineEngineConfig {
                workers: 2,
                worker_restart_budget: 2,
                ..OnlineEngineConfig::default()
            },
            move |cut: CutRef<'_>, owner: EventId| {
                if owner.tid == Tid(1) {
                    panic!("poisoned predicate");
                }
                counter_in_sink.visit(cut, owner)
            },
        );
        for _ in 0..5 {
            engine.observe_after(Tid(0), &[], ());
            engine.observe_after(Tid(1), &[], ());
        }
        let report = engine.finish();
        assert_eq!(report.faults.len(), 5, "every t1 interval quarantined");
        assert_eq!(report.metrics.intervals_quarantined, 5);
        assert_eq!(report.metrics.worker_panics, 10, "each retried once");
        assert!(!report.is_complete());
        assert_eq!(counter.count(), report.cuts);
        assert_exact_partition(&report);
    }

    #[test]
    fn watchdog_preempts_a_stalled_interval_and_quarantines_its_prefix() {
        // t0: two events; t1: one concurrent event whose interval spans
        // {0,1},{1,1},{2,1}. The sink delivers the first cut of that
        // interval, then stalls far past the deadline: the next visit
        // observes the expired deadline and preempts. One cut was
        // already delivered, so a rerun would double-deliver — the
        // interval is quarantined with its exact prefix (exactly-once
        // outranks completeness).
        let engine = OnlineEngine::new(
            2,
            OnlineEngineConfig {
                workers: 1,
                governor: GovernorConfig {
                    interval_deadline: Some(std::time::Duration::from_millis(100)),
                    ..GovernorConfig::default()
                },
                ..OnlineEngineConfig::default()
            },
            move |_: CutRef<'_>, owner: EventId| {
                if owner.tid == Tid(1) {
                    std::thread::sleep(std::time::Duration::from_millis(400));
                }
                ControlFlow::Continue(())
            },
        );
        engine.observe_after(Tid(0), &[], ());
        engine.observe_after(Tid(0), &[], ());
        engine.observe_after(Tid(1), &[], ());
        let report = engine.finish();
        assert_eq!(report.faults.len(), 1);
        let q = &report.faults.quarantined[0];
        assert_eq!(q.interval.event.tid, Tid(1));
        assert_eq!(q.cuts_emitted, 1, "exactly the delivered prefix");
        assert!(q.message.contains("preempted"), "{}", q.message);
        assert!(!report.is_complete());
        let m = &report.metrics;
        assert!(m.intervals_preempted >= 1);
        assert!(m.watchdog_wakeups >= 1, "supervisor thread must have run");
        assert_eq!(m.intervals_quarantined, 1);
        assert_exact_partition(&report);
    }

    #[test]
    fn zero_deadline_splits_intervals_to_leaves_and_stays_exact() {
        // A zero deadline preempts every multi-cut interval at its first
        // visit, before anything is delivered: the executor splits it
        // and reschedules both halves, recursing until single-cut
        // leaves, which rerun deadline-free. The final count must still
        // be exact — the split preserves disjointness and cover.
        let reference = RandomComputation::new(3, 5, 0.4, 23).generate();
        let counter = StdArc::new(AtomicCountSink::new());
        let counter_in_sink = StdArc::clone(&counter);
        let engine = OnlineEngine::new(
            3,
            OnlineEngineConfig {
                workers: 2,
                governor: GovernorConfig {
                    interval_deadline: Some(std::time::Duration::ZERO),
                    ..GovernorConfig::default()
                },
                ..OnlineEngineConfig::default()
            },
            move |cut: CutRef<'_>, owner| counter_in_sink.visit(cut, owner),
        );
        engine.observe_poset(&reference);
        let report = engine.finish();
        assert_eq!(report.cuts, oracle::count_ideals(&report.poset));
        assert_eq!(counter.count(), report.cuts);
        assert!(report.is_complete(), "splitting must lose nothing");
        let m = &report.metrics;
        assert!(m.intervals_preempted >= 1);
        assert!(m.intervals_split >= 1);
        // A split consumes one dispatched interval and dispatches two
        // more; every leaf either completes or (never, here) is
        // quarantined. The ledger must balance exactly.
        assert_eq!(
            m.intervals_completed + m.intervals_quarantined + m.intervals_split,
            m.intervals_dispatched
        );
    }

    #[test]
    fn soft_watermark_promotes_spill_to_blocking_and_loses_nothing() {
        // With a 1-byte soft watermark the budget is in soft pressure
        // from the first retained event on, so every queue-full submit
        // is promoted from spilling to a blocking send: the producer
        // slows down instead of growing the spill, and nothing is lost.
        // Two independent chains keep interval boxes growing past the
        // tiny-batch ceiling, so submissions hit the 1-slot channel
        // directly instead of parking in the coalescing buffer.
        let counter = StdArc::new(AtomicCountSink::new());
        let counter_in_sink = StdArc::clone(&counter);
        let engine = OnlineEngine::new(
            2,
            OnlineEngineConfig {
                workers: 1,
                queue_capacity: 1,
                backpressure: BackpressurePolicy::SpillToDeque,
                governor: GovernorConfig {
                    soft_spill_bytes: Some(1),
                    ..GovernorConfig::default()
                },
                ..OnlineEngineConfig::default()
            },
            move |cut: CutRef<'_>, owner| {
                // Slow consumer: force the 1-slot queue to overflow.
                std::thread::sleep(std::time::Duration::from_micros(200));
                counter_in_sink.visit(cut, owner)
            },
        );
        for _ in 0..30 {
            engine.observe_after(Tid(0), &[], ());
            engine.observe_after(Tid(1), &[], ());
        }
        let report = engine.finish();
        assert_eq!(report.cuts, oracle::count_ideals(&report.poset));
        assert_eq!(counter.count(), report.cuts);
        assert!(report.is_complete());
        assert!(report.overload.is_none());
        let m = &report.metrics;
        assert!(m.backpressure_promotions >= 1, "full queue must promote");
        assert_eq!(m.intervals_spilled, 0, "soft pressure forbids spilling");
        assert_eq!(m.intervals_rejected, 0);
    }

    #[test]
    fn hard_watermark_with_fail_policy_reports_typed_overload() {
        // A 1-byte hard watermark is exceeded by the first retained
        // event, so every queue-full rejection under `Fail` also
        // surfaces the typed overload error in the report.
        let release = StdArc::new(AtomicBool::new(false));
        let gate = StdArc::clone(&release);
        let engine = OnlineEngine::new(
            2,
            OnlineEngineConfig {
                workers: 1,
                queue_capacity: 1,
                backpressure: BackpressurePolicy::Fail,
                governor: GovernorConfig {
                    hard_spill_bytes: Some(1),
                    ..GovernorConfig::default()
                },
                ..OnlineEngineConfig::default()
            },
            move |_: CutRef<'_>, _: EventId| {
                while !gate.load(Ordering::Relaxed) {
                    std::thread::yield_now();
                }
                ControlFlow::Continue(())
            },
        );
        for _ in 0..30 {
            engine.observe_after(Tid(0), &[], ());
            engine.observe_after(Tid(1), &[], ());
        }
        release.store(true, Ordering::Relaxed);
        let report = engine.finish();
        assert!(report.metrics.intervals_rejected > 0);
        let err = report
            .overload
            .expect("hard-watermark shedding must produce a typed error");
        assert_eq!(err.hard_watermark, 1);
        assert!(err.accounted_bytes >= 1);
        assert!(err.to_string().contains("memory budget exhausted"));
        assert!(!report.is_complete());
    }

    #[cfg(feature = "chaos")]
    mod chaos {
        use super::*;

        #[test]
        fn spawn_failures_degrade_the_pool_and_stay_exact() {
            // Fail 2 of 4 spawns → half pool; fail all 4 → inline mode.
            for fail in [2u32, 4] {
                let counter = StdArc::new(AtomicCountSink::new());
                let counter_in_sink = StdArc::clone(&counter);
                let engine = OnlineEngine::new(
                    2,
                    OnlineEngineConfig {
                        workers: 4,
                        faults: FaultPlan {
                            spawn_fail_first: fail,
                            ..FaultPlan::default()
                        },
                        ..OnlineEngineConfig::default()
                    },
                    move |cut: CutRef<'_>, owner| counter_in_sink.visit(cut, owner),
                );
                for _ in 0..4 {
                    engine.observe_after(Tid(0), &[], ());
                    engine.observe_after(Tid(1), &[], ());
                }
                let report = engine.finish();
                assert_eq!(report.metrics.worker_spawn_failures, u64::from(fail));
                assert_eq!(report.cuts, oracle::count_ideals(&report.poset));
                assert_eq!(counter.count(), report.cuts);
                assert!(report.is_complete(), "degraded pool loses nothing");
            }
        }

        #[test]
        fn injected_worker_kill_quarantines_in_flight_and_respawns() {
            let engine = OnlineEngine::new(
                2,
                OnlineEngineConfig {
                    workers: 2,
                    faults: FaultPlan {
                        worker_kill_at: Some(3),
                        ..FaultPlan::default()
                    },
                    ..OnlineEngineConfig::default()
                },
                |_: CutRef<'_>, _: EventId| ControlFlow::Continue(()),
            );
            for _ in 0..6 {
                engine.observe_after(Tid(0), &[], ());
                engine.observe_after(Tid(1), &[], ());
            }
            let report = engine.finish();
            assert_eq!(report.metrics.worker_panics, 1);
            assert_eq!(report.metrics.worker_restarts, 1);
            assert_eq!(report.faults.len(), 1, "the in-flight interval");
            assert_eq!(report.faults.quarantined[0].cuts_emitted, 0);
            assert!(!report.is_complete());
            assert_exact_partition(&report);
        }

        #[test]
        fn injected_send_failures_quarantine_at_dispatch() {
            let engine = OnlineEngine::new(
                2,
                OnlineEngineConfig {
                    workers: 2,
                    faults: FaultPlan {
                        send_fail_every: Some(4),
                        ..FaultPlan::default()
                    },
                    ..OnlineEngineConfig::default()
                },
                |_: CutRef<'_>, _: EventId| ControlFlow::Continue(()),
            );
            for _ in 0..6 {
                engine.observe_after(Tid(0), &[], ());
                engine.observe_after(Tid(1), &[], ());
            }
            let report = engine.finish();
            assert_eq!(report.faults.len(), 3, "sends 4, 8, 12 fail");
            assert!(report
                .faults
                .quarantined
                .iter()
                .all(|q| q.message.contains("queue send failed")));
            assert_eq!(report.metrics.intervals_quarantined, 3);
            assert_eq!(
                report.metrics.intervals_completed + report.metrics.intervals_quarantined,
                report.metrics.intervals_dispatched
            );
            assert_exact_partition(&report);
        }

        #[test]
        fn seeded_sink_chaos_partitions_exactly_under_every_seed() {
            for seed in [1u64, 7, 42] {
                let reference = RandomComputation::new(3, 5, 0.4, seed).generate();
                let counter = StdArc::new(AtomicCountSink::new());
                let counter_in_sink = StdArc::clone(&counter);
                let engine = OnlineEngine::new(
                    3,
                    OnlineEngineConfig {
                        workers: 3,
                        faults: FaultPlan {
                            seed,
                            sink_panic_every: Some(13),
                            ..FaultPlan::default()
                        },
                        ..OnlineEngineConfig::default()
                    },
                    move |cut: CutRef<'_>, owner| counter_in_sink.visit(cut, owner),
                );
                engine.observe_poset(&reference);
                let report = engine.finish();
                assert_eq!(counter.count(), report.cuts, "seed {seed}");
                assert_exact_partition(&report);
            }
        }
    }
}
