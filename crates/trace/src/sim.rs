//! Deterministic seeded execution of [`Program`]s.
//!
//! The paper runs each Java benchmark once and converts the observed path
//! to a poset; different machines observe different paths. For reproducible
//! benchmark tables this module replaces wall-clock nondeterminism with a
//! seeded scheduler: at every step one runnable thread is chosen uniformly
//! at random (respecting lock blocking and fork/join gating) and executes
//! exactly one operation. Same program + same seed ⇒ byte-identical poset.

use crate::observer::{OpObserver, RecorderObserver};
use crate::recorder::{EventOut, PosetCollector};
use crate::{Op, Program, Recorder, RecorderConfig, TraceEvent};
use paramount_poset::{Poset, Tid};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic interleaving executor.
#[derive(Clone, Copy, Debug)]
pub struct SimScheduler {
    /// RNG seed selecting the interleaving.
    pub seed: u64,
    /// Capture configuration forwarded to the recorder.
    pub config: RecorderConfig,
}

impl SimScheduler {
    /// A scheduler with the given seed and default capture config.
    pub fn new(seed: u64) -> Self {
        SimScheduler {
            seed,
            config: RecorderConfig::default(),
        }
    }

    /// Also capture synchronization events.
    pub fn with_sync_capture(mut self) -> Self {
        self.config = RecorderConfig { capture_sync: true };
        self
    }

    /// Runs the program to completion, returning the observed poset.
    pub fn run(&self, program: &Program) -> Poset<TraceEvent> {
        let collector = PosetCollector::new(program.num_threads());
        self.run_into(program, collector).into_poset()
    }

    /// Runs the program, streaming captured events into `out` (the online
    /// detector path). Returns `out`.
    pub fn run_into<E: EventOut>(&self, program: &Program, out: E) -> E {
        let recorder = Recorder::new(program.num_threads(), program.num_locks(), self.config, out);
        let mut observer = RecorderObserver::new(recorder);
        self.run_with(program, &mut observer);
        observer.finish()
    }

    /// Runs the program, reporting every executed operation to `observer`
    /// (the generic path — FastTrack and cross-validation tests use this).
    pub fn run_with<Ob: OpObserver>(&self, program: &Program, observer: &mut Ob) {
        let problems = program.validate();
        assert!(problems.is_empty(), "invalid program: {problems:?}");

        let n = program.num_threads();
        let mut rng = StdRng::seed_from_u64(self.seed);

        let mut pc = vec![0usize; n];
        let mut started = vec![false; n];
        let mut finished = vec![false; n];
        started[0] = true;
        let mut lock_holder: Vec<Option<Tid>> = vec![None; program.num_locks()];

        let runnable = |t: usize,
                        pc: &[usize],
                        started: &[bool],
                        finished: &[bool],
                        lock_holder: &[Option<Tid>]|
         -> bool {
            if !started[t] || finished[t] {
                return false;
            }
            match program.script(Tid::from(t)).get(pc[t]) {
                None => true, // will finish on its next step
                Some(Op::Acquire(l)) => lock_holder[l.index()].is_none(),
                Some(Op::Join(c)) => finished[c.index()],
                Some(_) => true,
            }
        };

        loop {
            let candidates: Vec<usize> = (0..n)
                .filter(|&t| runnable(t, &pc, &started, &finished, &lock_holder))
                .collect();
            if candidates.is_empty() {
                let stuck: Vec<usize> = (0..n).filter(|&t| started[t] && !finished[t]).collect();
                assert!(
                    stuck.is_empty(),
                    "deadlock: threads {stuck:?} blocked forever"
                );
                break;
            }
            let t = candidates[rng.gen_range(0..candidates.len())];
            let tid = Tid::from(t);
            match program.script(tid).get(pc[t]).copied() {
                None => {
                    observer.thread_finished(tid);
                    finished[t] = true;
                    continue;
                }
                Some(op) => {
                    // Maintain the scheduler's own lock/lifecycle state;
                    // the observer only sees the operation stream.
                    match op {
                        Op::Acquire(l) => {
                            debug_assert!(lock_holder[l.index()].is_none());
                            lock_holder[l.index()] = Some(tid);
                        }
                        Op::Release(l) => {
                            debug_assert_eq!(lock_holder[l.index()], Some(tid));
                            lock_holder[l.index()] = None;
                        }
                        Op::Fork(child) => {
                            debug_assert!(!started[child.index()], "double fork");
                            started[child.index()] = true;
                        }
                        Op::Join(child) => {
                            debug_assert!(finished[child.index()]);
                        }
                        Op::Read(_) | Op::Write(_) | Op::Work(_) => {}
                    }
                    observer.op(tid, op);
                    pc[t] += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;
    use paramount_poset::EventId;

    fn two_thread_locked_program() -> Program {
        let mut b = ProgramBuilder::new("locked", 2);
        let x = b.var("x");
        let l = b.lock("m");
        b.critical(Tid(0), l, [Op::Write(x)]);
        b.critical(Tid(1), l, [Op::Write(x)]);
        b.fork_join_all();
        b.build()
    }

    #[test]
    fn deterministic_per_seed() {
        let p = two_thread_locked_program();
        let a = SimScheduler::new(7).run(&p);
        let b = SimScheduler::new(7).run(&p);
        assert_eq!(a.num_events(), b.num_events());
        for (ea, eb) in a.events().zip(b.events()) {
            assert_eq!(ea.id, eb.id);
            assert_eq!(ea.vc, eb.vc);
            assert_eq!(ea.payload, eb.payload);
        }
    }

    #[test]
    fn seeds_explore_different_interleavings() {
        // With both orders possible, some pair of seeds must disagree on
        // which thread's critical section ran first.
        let p = two_thread_locked_program();
        let firsts: std::collections::HashSet<bool> = (0..40)
            .map(|seed| {
                let poset = SimScheduler::new(seed).run(&p);
                // true iff t0's event happened before t1's.
                poset.happened_before(EventId::new(Tid(0), 1), EventId::new(Tid(1), 1))
            })
            .collect();
        assert_eq!(firsts.len(), 2, "scheduler never flipped the lock order");
    }

    #[test]
    fn locked_sections_are_always_ordered() {
        let p = two_thread_locked_program();
        for seed in 0..20 {
            let poset = SimScheduler::new(seed).run(&p);
            let a = EventId::new(Tid(0), 1);
            let b = EventId::new(Tid(1), 1);
            assert!(
                !poset.concurrent(a, b),
                "critical sections concurrent at seed {seed}"
            );
        }
    }

    #[test]
    fn racy_accesses_are_concurrent_in_some_schedule() {
        let mut b = ProgramBuilder::new("racy", 2);
        let x = b.var("x");
        b.push(Tid(0), Op::Write(x));
        b.push(Tid(1), Op::Write(x));
        b.fork_join_all();
        let p = b.build();
        let poset = SimScheduler::new(0).run(&p);
        // Sync ops emit no events, so main's write is its event 1 even
        // though the fork precedes it in program order.
        assert!(poset.concurrent(EventId::new(Tid(0), 1), EventId::new(Tid(1), 1)));
    }

    #[test]
    fn fork_join_all_orders_main_around_children() {
        let mut b = ProgramBuilder::new("fj", 3);
        let x = b.var("x");
        b.push(Tid(0), Op::Write(x));
        b.push(Tid(1), Op::Write(x));
        b.push(Tid(2), Op::Write(x));
        b.fork_join_all();
        let p = b.build();
        let poset = SimScheduler::new(3).run(&p);
        // Main's write comes after the forks in fork_join_all()? No: the
        // builder puts forks first, main body, then joins — main's body is
        // concurrent with children. Children exist and wrote x.
        assert_eq!(poset.num_events(), 3);
        assert_eq!(poset.events_of(Tid(1)), 1);
        assert_eq!(poset.events_of(Tid(2)), 1);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected() {
        let mut b = ProgramBuilder::new("deadlock", 2);
        let l1 = b.lock("a");
        let l2 = b.lock("b");
        // Classic lock-order inversion, forced by Work-free lockstep: with
        // seed search, some schedule interleaves into deadlock. To make the
        // panic deterministic, have each thread grab its first lock and
        // then the other's with no release.
        b.push(Tid(0), Op::Acquire(l1));
        b.push(Tid(0), Op::Acquire(l2));
        b.push(Tid(0), Op::Release(l2));
        b.push(Tid(0), Op::Release(l1));
        b.push(Tid(1), Op::Acquire(l2));
        b.push(Tid(1), Op::Acquire(l1));
        b.push(Tid(1), Op::Release(l1));
        b.push(Tid(1), Op::Release(l2));
        b.fork_join_all();
        let p = b.build();
        // Find a seed that deadlocks (both grab their first lock before
        // either grabs its second); panic propagates from run().
        for seed in 0..1000 {
            SimScheduler::new(seed).run(&p);
        }
    }

    #[test]
    fn sync_capture_produces_figure2_poset() {
        // Figure 2: t1 = e1, notify (release), e3 ; t2 = wait (acquire), e2.
        // Model notify/wait as a release/acquire pair on one monitor.
        let mut b = ProgramBuilder::new("figure2", 2);
        let e1 = b.var("e1");
        let e2 = b.var("e2");
        let e3 = b.var("e3");
        let m = b.lock("x");
        b.push(Tid(0), Op::Fork(Tid(1)));
        b.push(Tid(0), Op::Write(e1));
        b.push(Tid(0), Op::Acquire(m));
        b.push(Tid(0), Op::Release(m)); // x.notify
        b.push(Tid(0), Op::Write(e3));
        b.push(Tid(1), Op::Acquire(m)); // x.wait — must follow the notify
        b.push(Tid(1), Op::Release(m));
        b.push(Tid(1), Op::Write(e2));
        b.push(Tid(0), Op::Join(Tid(1)));
        let p = b.build();
        // Force the schedule where t1's notify precedes t2's wait by
        // searching seeds; with capture_sync the monitor edge appears.
        for seed in 0..50 {
            let poset = SimScheduler::new(seed).with_sync_capture().run(&p);
            // Count consistent cuts: must be ≥ the 8 of Figure 2(b) shape
            // when the edge exists (extra sync events inflate the count,
            // so just sanity-check the edge itself).
            let n_t0 = poset.events_of(Tid(0));
            let n_t1 = poset.events_of(Tid(1));
            assert!(n_t0 >= 4 && n_t1 >= 3, "seed {seed}");
        }
    }
}
