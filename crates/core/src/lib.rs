#![warn(missing_docs)]
//! **ParaMount** — the first parallel and online algorithm for global-states
//! enumeration (Chang & Garg, PPoPP 2015).
//!
//! The lattice of consistent cuts of an event poset is partitioned into one
//! *interval* per event `e` (§3.1 of the paper):
//!
//! ```text
//! I(e) = { G consistent | Gmin(e) ≤ G ≤ Gbnd(e) }
//! Gmin(e) = e.vc                       — least cut containing e
//! Gbnd(e) = { f | f = e ∨ f →p e }     — everything at or before e in a
//!                                        fixed total (topological) order →p
//! ```
//!
//! The intervals are pairwise disjoint and jointly cover every cut (the
//! paper's Lemmas 2–3; the empty cut is assigned to the first event of
//! `→p`), so any *bounded* sequential enumerator — BFS, DFS or lexical from
//! [`paramount_enumerate`] — can process intervals independently on as many
//! threads as desired, with no shared mutable state and no duplicated or
//! missed cuts (Theorem 2). With the lexical subroutine the scheme does
//! `O(n²·i(P))` total work, the same as the sequential algorithm: ParaMount
//! is work-optimal.
//!
//! This crate provides both execution modes:
//!
//! * [`offline`] — Algorithm 1: partition a complete poset and fan the
//!   intervals out over a Rayon pool (work stealing soaks up the wildly
//!   uneven interval sizes).
//! * [`online`] — Algorithm 4: events arrive one at a time *while the
//!   program under observation is still running*; each insertion atomically
//!   computes its interval from a snapshot of the current maximal events
//!   and hands it to a worker pool. The store is an append-only,
//!   lock-free-for-readers structure ([`store::AppendVec`]), so bounded
//!   enumerations proceed concurrently with insertions (Theorem 3).
//!
//! Both modes are thin front-ends over one interval-execution core
//! ([`exec`]): the same subroutine dispatch, panic-isolation boundary,
//! retry/quarantine protocol and metrics registry serve batch and
//! streaming execution alike.
//!
//! Consumers receive cuts through [`ParallelCutSink`], the `Sync` analog of
//! the sequential [`paramount_enumerate::CutSink`].

pub mod exec;
pub mod faults;
pub mod governor;
pub mod interval;
pub mod metrics;
pub mod offline;
pub mod online;
mod sink;
pub mod store;

pub use exec::IntervalExecutor;
pub use faults::{FaultLog, FaultPlan, Outcome, QuarantinedInterval};
pub use governor::{BudgetSnapshot, GovernorConfig, MemoryBudget, OverloadError, Pressure};
pub use interval::{measure_interval_work, partition, partition_packed, Interval};
pub use metrics::{
    FleetMetrics, FleetSnapshot, HistogramSnapshot, IngestMetrics, IngestSnapshot, MetricsSnapshot,
    ParaMetrics, WorkerSnapshot,
};
pub use offline::{ParaMount, ParaStats};
pub use online::{BackpressurePolicy, OnlineEngine, OnlineEngineConfig, OnlinePoset, OnlineReport};
pub use sink::{AtomicCountSink, ConcurrentCollectSink, MeteredSink, ParallelCutSink, SinkBridge};

pub use paramount_enumerate::{panic_message, Algorithm, EnumError, EnumStats};
pub use paramount_poset::{CutRef, CutSpace, EventId, Frontier, Poset, Tid, VectorClock};
