//! The Ganter/Garg lexical ("next-closure") enumeration — the paper's
//! Algorithm 2 in its bounded form.
//!
//! Cuts are visited in lexicographic order of their frontier vectors. The
//! algorithm is **stateless**: it holds exactly one current frontier and
//! computes its lexical successor in `O(n²)` from the event vector clocks,
//! so live memory is `O(n)` regardless of lattice size. That property is
//! what makes it the subroutine of choice for ParaMount ("L-Para") and the
//! memory baseline of Figure 12.
//!
//! Successor computation (Algorithm 2 lines 5–14, de-compressed): from the
//! current cut `G`, scan positions `k = n…1` for the largest `k` such that
//!
//! 1. `G[k] < Gbnd[k]` — one more event of thread `k` stays in bounds, and
//! 2. the next event `f = E_k[G[k]+1]` needs nothing beyond `G` on threads
//!    `j < k` (`f.vc[j] ≤ G[j]`) — threads before `k` are frozen in a
//!    lexical step, while threads after `k` may be raised freely.
//!
//! The successor keeps `G[1..k-1]`, increments `G[k]`, resets every later
//! component to `Gmin`, then closes under causality by joining in the
//! vector clocks of the ≤ k frontier events. Both the reset floor and the
//! closure sources are dominated by the consistent cut `Gbnd`, so the
//! closure can never escape the interval (the argument inside Theorem 1 /
//! Lemma 1 of the paper).

use crate::{debug_check_interval, CutSink, EnumError, EnumStats};
use paramount_poset::{CutSpace, EventId, Frontier, Tid};

/// Enumerates every consistent cut of `poset` in lexical order.
///
/// ```
/// use paramount_enumerate::{lexical, CollectSink};
/// use paramount_poset::builder::PosetBuilder;
/// use paramount_poset::Tid;
///
/// let mut b = PosetBuilder::new(2);
/// b.append(Tid(0), ());
/// b.append(Tid(1), ());
/// let poset = b.finish(); // two independent events: 4 cuts
///
/// let mut sink = CollectSink::default();
/// lexical::enumerate(&poset, &mut sink).unwrap();
/// let shown: Vec<String> = sink.cuts.iter().map(|c| c.to_string()).collect();
/// assert_eq!(shown, ["{0,0}", "{0,1}", "{1,0}", "{1,1}"]);
/// ```
pub fn enumerate<Sp: CutSpace + ?Sized, S: CutSink>(
    poset: &Sp,
    sink: &mut S,
) -> Result<EnumStats, EnumError> {
    let empty = Frontier::empty(poset.num_threads());
    let last = poset.current_frontier();
    enumerate_bounded(poset, &empty, &last, sink)
}

/// Enumerates every consistent cut `G` with `gmin ≤ G ≤ gbnd` in lexical
/// order — the ParaMount subroutine (Lemma 1: exactly once each).
pub fn enumerate_bounded<Sp: CutSpace + ?Sized, S: CutSink>(
    poset: &Sp,
    gmin: &Frontier,
    gbnd: &Frontier,
    sink: &mut S,
) -> Result<EnumStats, EnumError> {
    debug_check_interval(poset, gmin, gbnd);
    let mut stats = EnumStats {
        cuts: 0,
        peak_frontiers: 1, // stateless: exactly one live frontier
        expansions: 0,
    };
    let mut g = gmin.clone();

    loop {
        stats.cuts += 1;
        if sink.visit(g.as_cut()).is_break() {
            return Err(EnumError::Stopped);
        }
        if &g == gbnd {
            break;
        }
        if !advance(poset, gmin, gbnd, &mut g, &mut stats.expansions) {
            // Gbnd is the lexical maximum of the interval, so a successor
            // must exist until we reach it.
            debug_assert!(false, "no lexical successor before gbnd — interval bug");
            break;
        }
    }
    Ok(stats)
}

/// Replaces `g` with its lexical successor within `[gmin, gbnd]`.
/// Returns `false` if no successor exists (only possible at `gbnd`).
/// Each position scanned counts one probe into `expansions`.
fn advance<Sp: CutSpace + ?Sized>(
    poset: &Sp,
    gmin: &Frontier,
    gbnd: &Frontier,
    g: &mut Frontier,
    expansions: &mut u64,
) -> bool {
    let n = g.len();
    for k in (0..n).rev() {
        *expansions += 1;
        let tk = Tid::from(k);
        if g.get(tk) >= gbnd.get(tk) {
            continue; // thread k is at its bound
        }
        let f = EventId::new(tk, g.get(tk) + 1);
        let fvc = poset.vc(f);
        // Prefix-enabled: f's dependencies on frozen threads j < k must
        // already be inside g. (If f fails this, so does every later event
        // of thread k — process order — so skipping straight to k-1 is
        // sound.)
        let prefix_ok = fvc
            .iter_nonzero()
            .take_while(|&(j, _)| j < k)
            .all(|(j, need)| need <= g.as_slice()[j]);
        if !prefix_ok {
            continue;
        }

        // Commit the increment at position k.
        g.set(tk, g.get(tk) + 1);
        // Reset the free suffix to the interval floor...
        for i in (k + 1)..n {
            let ti = Tid::from(i);
            g.set(ti, gmin.get(ti));
        }
        // ...and close under causality: every frontier event of the frozen
        // prefix (including the new f) may demand events on later threads.
        for j in 0..=k {
            let tj = Tid::from(j);
            let cj = g.get(tj);
            if cj == 0 {
                continue;
            }
            let vcj = poset.vc(EventId::new(tj, cj));
            for (i, need) in vcj.iter_nonzero() {
                if i > k {
                    let ti = Tid::from(i);
                    if need > g.get(ti) {
                        g.set(ti, need);
                    }
                }
            }
        }
        debug_assert!(g.leq(gbnd), "closure escaped the interval");
        debug_assert!(g.is_consistent(poset), "lexical successor inconsistent");
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CollectSink;
    use paramount_poset::builder::PosetBuilder;
    use paramount_poset::oracle;
    use paramount_poset::random::RandomComputation;
    use paramount_poset::Poset;

    fn figure4() -> Poset {
        let mut b = PosetBuilder::new(2);
        let a = b.append(Tid(0), ());
        let bb = b.append(Tid(1), ());
        b.append_after(Tid(0), &[bb], ());
        b.append_after(Tid(1), &[a], ());
        b.finish()
    }

    fn collect_full(p: &Poset) -> Vec<Frontier> {
        let mut sink = CollectSink::default();
        enumerate(p, &mut sink).unwrap();
        sink.cuts
    }

    #[test]
    fn full_lexical_matches_oracle_in_order() {
        let p = figure4();
        let cuts = collect_full(&p);
        // The product-scan oracle also emits in lexicographic order, so the
        // sequences must be identical, not just set-equal.
        assert_eq!(cuts, oracle::enumerate_product_scan(&p));
    }

    #[test]
    fn emission_order_is_strictly_lexical() {
        for seed in 0..10 {
            let p = RandomComputation::new(4, 4, 0.3, seed).generate();
            let cuts = collect_full(&p);
            for w in cuts.windows(2) {
                assert!(w[0] < w[1], "order violated at seed {seed}");
            }
        }
    }

    #[test]
    fn lexical_agrees_with_oracle_on_random_posets() {
        for seed in 0..40 {
            let p = RandomComputation::new(4, 5, 0.4, seed).generate();
            let cuts = collect_full(&p);
            assert_eq!(
                cuts,
                oracle::enumerate_product_scan(&p),
                "mismatch at seed {seed}"
            );
        }
    }

    #[test]
    fn bounded_lexical_enumerates_exactly_the_interval() {
        // For every event e of random posets, compare the bounded run on
        // [Gmin(e), Gbnd(e)] against the oracle filtered to that interval.
        for seed in 0..15 {
            let p = RandomComputation::new(3, 4, 0.4, seed).generate();
            let order = paramount_poset::topo::weight_order(&p);
            let all = oracle::enumerate_product_scan(&p);
            // Build Gbnd by walking →p.
            let mut running = Frontier::empty(p.num_threads());
            for &e in &order {
                running.set(e.tid, e.index);
                let gmin = Frontier::from_clock(p.vc(e));
                let gbnd = running.clone();
                let mut sink = CollectSink::default();
                enumerate_bounded(&p, &gmin, &gbnd, &mut sink).unwrap();
                let expected: Vec<Frontier> = all
                    .iter()
                    .filter(|g| gmin.leq(g) && g.leq(&gbnd))
                    .cloned()
                    .collect();
                assert_eq!(sink.cuts, expected, "event {e} seed {seed}");
            }
        }
    }

    #[test]
    fn interval_of_figure6_events() {
        // Figure 6 with →p = e1[1], e2[1], e1[2], e2[2]:
        //   I(e1[1]) = {{1,0}} (+ the empty cut, handled by ParaMount),
        //   I(e2[1]) = {{0,1},{1,1}}, I(e1[2]) = {{2,1}},
        //   I(e2[2]) = {{1,2},{2,2}}.
        let p = figure4();
        let cases: Vec<(Frontier, Frontier, Vec<Frontier>)> = vec![
            (
                Frontier::from_counts(vec![1, 0]),
                Frontier::from_counts(vec![1, 0]),
                vec![Frontier::from_counts(vec![1, 0])],
            ),
            (
                Frontier::from_counts(vec![0, 1]),
                Frontier::from_counts(vec![1, 1]),
                vec![
                    Frontier::from_counts(vec![0, 1]),
                    Frontier::from_counts(vec![1, 1]),
                ],
            ),
            (
                Frontier::from_counts(vec![2, 1]),
                Frontier::from_counts(vec![2, 1]),
                vec![Frontier::from_counts(vec![2, 1])],
            ),
            (
                Frontier::from_counts(vec![1, 2]),
                Frontier::from_counts(vec![2, 2]),
                vec![
                    Frontier::from_counts(vec![1, 2]),
                    Frontier::from_counts(vec![2, 2]),
                ],
            ),
        ];
        for (gmin, gbnd, expected) in cases {
            let mut sink = CollectSink::default();
            enumerate_bounded(&p, &gmin, &gbnd, &mut sink).unwrap();
            assert_eq!(sink.cuts, expected);
        }
    }

    #[test]
    fn stateless_peak_is_one() {
        let p = RandomComputation::new(4, 5, 0.3, 1).generate();
        let mut sink = crate::CountSink::default();
        let stats = enumerate(&p, &mut sink).unwrap();
        assert_eq!(stats.peak_frontiers, 1);
        assert_eq!(stats.cuts, sink.count);
    }

    #[test]
    fn expansions_are_a_deterministic_work_witness() {
        let p = RandomComputation::new(4, 5, 0.3, 9).generate();
        let run = || {
            let mut sink = crate::CountSink::default();
            enumerate(&p, &mut sink).unwrap()
        };
        // Same poset, same interval ⇒ bit-identical stats, probes included.
        let first = run();
        assert_eq!(first, run());
        assert!(first.expansions >= first.cuts - 1, "one probe per advance");
    }

    #[test]
    fn early_stop_propagates() {
        let p = figure4();
        let mut sink =
            crate::FirstMatchSink::new(|c: paramount_poset::CutRef<'_>| c.total_events() == 1);
        assert_eq!(enumerate(&p, &mut sink).unwrap_err(), EnumError::Stopped);
        assert_eq!(sink.witness, Some(Frontier::from_counts(vec![0, 1])));
    }

    #[test]
    fn single_thread_chain() {
        let mut b = PosetBuilder::new(1);
        for _ in 0..5 {
            b.append(Tid(0), ());
        }
        let p = b.finish();
        let cuts = collect_full(&p);
        assert_eq!(cuts.len(), 6);
    }

    #[test]
    fn empty_poset_emits_only_empty_cut() {
        let p: Poset = Poset::empty(3);
        let cuts = collect_full(&p);
        assert_eq!(cuts, vec![Frontier::empty(3)]);
    }
}
