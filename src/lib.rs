#![warn(missing_docs)]
//! **paramount-suite** — the workspace façade of the ParaMount
//! reproduction (Chang & Garg, *A Parallel Algorithm for Global States
//! Enumeration in Concurrent Systems*, PPoPP 2015).
//!
//! This crate re-exports the public API of every member crate so the
//! `examples/` and the cross-crate integration tests have one import
//! root. Library users should usually depend on the member crates
//! directly:
//!
//! * [`paramount`] — the parallel/online enumeration algorithm itself;
//! * [`paramount_vclock`] / [`paramount_poset`] — vector clocks, posets,
//!   frontiers;
//! * [`paramount_enumerate`] — the sequential BFS/DFS/lexical baselines;
//! * [`paramount_trace`] — execution capture (programs, recorder,
//!   schedulers);
//! * [`paramount_detect`] — the online-and-parallel predicate detector
//!   and the offline BFS (RV-analog) detector;
//! * [`paramount_fasttrack`] — the FastTrack baseline race detector;
//! * [`paramount_workloads`] — the paper's benchmark programs.

pub use paramount;
pub use paramount_detect;
pub use paramount_enumerate;
pub use paramount_fasttrack;
pub use paramount_poset;
pub use paramount_trace;
pub use paramount_vclock;
pub use paramount_workloads;

/// Convenience prelude for examples and tests.
pub mod prelude {
    pub use paramount::{
        partition, Algorithm, AtomicCountSink, BackpressurePolicy, BudgetSnapshot,
        ConcurrentCollectSink, GovernorConfig, Interval, MemoryBudget, MetricsSnapshot,
        OnlineEngine, OnlineEngineConfig, OnlinePoset, OverloadError, ParaMetrics, ParaMount,
        ParallelCutSink, Pressure,
    };
    pub use paramount_detect::{DetectorConfig, RacePredicate};
    pub use paramount_poset::{
        builder::PosetBuilder, oracle, random::RandomComputation, topo, CutRef, CutSpace, Event,
        EventId, Frontier, Poset, Tid, VectorClock,
    };
    pub use paramount_trace::{Op, Program, ProgramBuilder, TraceEvent};
}
