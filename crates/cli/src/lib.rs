#![warn(missing_docs)]
//! Library side of the `paramount` command-line tool: the trace file
//! format and the command implementations (kept in a library so they are
//! unit-testable; `main.rs` only parses argv).
//!
//! # The trace format
//!
//! A trace is a text file: one executed operation per line, in the order
//! the operations were observed (any interleaving-consistent order). The
//! recorder reconstructs the happened-before poset from it.
//!
//! ```text
//! # comment, blank lines ignored
//! threads 3
//! 0 write balance
//! 0 fork 1
//! 1 acquire m
//! 1 read balance
//! 1 release m
//! 0 join 1
//! ```
//!
//! Thread ids are 0-based (`0` is main). Variables and locks are named
//! by identifier and numbered in order of first appearance. `work N`
//! lines are accepted and ignored for poset purposes.

pub mod commands;
pub mod format;
pub mod net;

pub use format::{parse_trace, write_trace, ParseError, TraceFile};
