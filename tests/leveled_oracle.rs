//! Oracle equivalence for the space-efficient leveled traversal: on
//! every workload in `crates/workloads` (captured through the simulated
//! scheduler) and on wide distributed posets, the leveled walk visits
//! *exactly* the cut set of the stored-frontier BFS reference — both in
//! the inline-frontier regime (n ≤ 8 threads) and in the spilled regime
//! (n = 10, where `Frontier` goes to the heap and the leveled walk's
//! `O(n)` live state is the whole point).
//!
//! Small lattices are compared as sorted cut vectors (exact set
//! equality); larger ones as (count, commutative hash-sum) digests so
//! the suite never materializes a multi-million-cut set.

use paramount_suite::paramount_enumerate::{bfs, leveled};
use paramount_suite::paramount_trace::sim::SimScheduler;
use paramount_suite::paramount_workloads as workloads;
use paramount_suite::prelude::*;
use std::ops::ControlFlow;

/// Lattices at or under this size are compared cut-by-cut.
const EXACT_CAP: u64 = 50_000;

/// Order-independent 64-bit mix of one cut's counts.
fn mix(counts: &[u32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &v in counts {
        h ^= u64::from(v).wrapping_add(0x9e37_79b9_7f4a_7c15);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^ (h >> 33)
}

/// (cut count, commutative digest) of everything `run` emits.
fn digest(mut run: impl FnMut(&mut dyn FnMut(CutRef<'_>))) -> (u64, u64) {
    let mut count = 0u64;
    let mut sum = 0u64;
    run(&mut |g| {
        count += 1;
        sum = sum.wrapping_add(mix(g.as_slice()));
    });
    (count, sum)
}

/// Asserts leveled ≡ BFS on one cut space, exactly when small, by
/// digest when large. Returns the lattice size for sanity asserts.
fn assert_equivalent<Sp: CutSpace + ?Sized>(space: &Sp, label: &str) -> u64 {
    let (bfs_count, bfs_sum) = digest(|f| {
        let mut sink = |g: CutRef<'_>| {
            f(g);
            ControlFlow::<()>::Continue(())
        };
        bfs::enumerate(space, &bfs::BfsOptions::default(), &mut sink).unwrap();
    });
    let (lvl_count, lvl_sum) = digest(|f| {
        let mut sink = |g: CutRef<'_>| {
            f(g);
            ControlFlow::<()>::Continue(())
        };
        leveled::enumerate(space, &mut sink).unwrap();
    });
    assert_eq!(lvl_count, bfs_count, "{label}: cut counts differ");
    assert_eq!(lvl_sum, bfs_sum, "{label}: cut-set digests differ");

    if bfs_count <= EXACT_CAP {
        let mut expected = Vec::new();
        let mut sink = |g: CutRef<'_>| {
            expected.push(g.to_frontier());
            ControlFlow::<()>::Continue(())
        };
        bfs::enumerate(space, &bfs::BfsOptions::default(), &mut sink).unwrap();
        expected.sort_unstable();

        let mut got = Vec::new();
        let mut sink = |g: CutRef<'_>| {
            got.push(g.to_frontier());
            ControlFlow::<()>::Continue(())
        };
        leveled::enumerate(space, &mut sink).unwrap();
        got.sort_unstable();
        assert_eq!(got, expected, "{label}: exact cut sets differ");
    }
    bfs_count
}

/// Every Table 2 workload program, captured at two schedules, in the
/// inline-frontier regime: leveled visits exactly the BFS cut set.
#[test]
fn leveled_matches_bfs_on_every_workload() {
    for bench in workloads::table2_suite() {
        for seed in [1u64, 9] {
            let poset = SimScheduler::new(seed).run(&bench.program);
            let cuts = assert_equivalent(&poset, &format!("{} seed {seed}", bench.name));
            assert!(cuts > 0, "{}: empty lattice", bench.name);
        }
    }
}

/// Wide distributed posets (n = 10 processes — past the inline-frontier
/// cap, so every stored frontier spills to the heap): the regime the
/// leveled walk exists for.
#[test]
fn leveled_matches_bfs_at_spilled_frontier_widths() {
    const {
        assert!(
            workloads::distributed::PROCESSES > 8,
            "d-* posets must exceed the inline frontier cap for this test to bite"
        );
    }
    for (events, frac, seed) in [(3usize, 0.3f64, 42u64), (4, 0.6, 77), (5, 0.85, 300)] {
        let poset = workloads::distributed::scaled(events, frac, seed).generate();
        let label = format!("d10x{events} frac={frac} seed={seed}");
        let cuts = assert_equivalent(&poset, &label);
        assert!(cuts > 50, "{label}: lattice too synchronized ({cuts} cuts)");
    }
}

/// The space bound that justifies the algorithm, end to end: on a wide
/// poset the leveled walk reports a single live frontier while BFS
/// stores whole levels.
#[test]
fn leveled_live_state_stays_constant_where_bfs_levels_grow() {
    let poset = workloads::distributed::scaled(4, 0.6, 77).generate();
    let mut sink = |_: CutRef<'_>| ControlFlow::<()>::Continue(());
    let lvl = leveled::enumerate(&poset, &mut sink).unwrap();
    assert_eq!(lvl.peak_frontiers, 1, "leveled must regenerate, not store");
    let mut sink = |_: CutRef<'_>| ControlFlow::<()>::Continue(());
    let b = bfs::enumerate(&poset, &bfs::BfsOptions::default(), &mut sink).unwrap();
    assert!(
        b.peak_frontiers > 10 * lvl.peak_frontiers,
        "BFS peak {} should dwarf leveled peak {}",
        b.peak_frontiers,
        lvl.peak_frontiers
    );
}
