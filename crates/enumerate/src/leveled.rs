//! Space-efficient breadth-first ("leveled") enumeration in the style of
//! Chauhan & Garg: consistent cuts are visited level by level — a level
//! is the set of cuts with the same *rank* (total event count) — without
//! ever storing a Cooper–Marzullo frontier set.
//!
//! Classic BFS keeps one full lattice level live to generate the next,
//! which is exponential in the number of threads in the worst case and is
//! exactly the memory the overload governor has to police. The leveled
//! walk instead **regenerates** each level directly from the vector
//! clocks: for a target rank `r` it runs a lexicographic backtracking
//! search that assigns the frontier vector `G[0..n)` one thread at a
//! time, so the only live state is the single working frontier plus two
//! `O(n)` prefix-sum tables — `O(n)` space for any lattice size.
//!
//! The search at one level works because both pruning rules are exact and
//! monotone:
//!
//! 1. **Rank feasibility.** With the prefix `G[0..k)` placed, thread `k`
//!    may only take values `v` for which the remaining threads can still
//!    reach rank `r` inside `[gmin, gbnd]`:
//!    `r − Σ gbnd[k+1..] ≤ placed + v ≤ r − Σ gmin[k+1..]`. The suffix
//!    sums are precomputed once per interval.
//! 2. **Consistency by construction.** Event clocks along one thread are
//!    monotone (`vc(E_k[v]) ≤ vc(E_k[v+1])` pointwise), so the values of
//!    `G[k]` compatible with the placed prefix form a contiguous range:
//!    the lower end is forced by what the prefix events demand *of*
//!    thread `k`, and the first `v` whose own clock demands more than the
//!    prefix *has* ends the range. Every completed assignment therefore
//!    satisfies all pairwise clock constraints — no post-hoc
//!    `is_consistent` filter, no duplicate, no miss.
//!
//! Within a level, cuts come out in ascending lexicographic order;
//! levels come out in ascending rank. The combined (rank, lex) order is
//! deterministic, which the test suite and the perf harness rely on.
//!
//! Work per emitted cut is `O(n²)` (a root-to-leaf path of `n`
//! assignments, each an `O(n)` clock scan) — the same bound as the
//! lexical algorithm — plus the dead-end probes of the backtracking
//! search, which the rank bounds keep small in practice. The trade
//! against [`crate::lexical`] is therefore not asymptotic work but
//! traversal order: the leveled walk delivers breadth-first semantics
//! (rank-monotone emission) at lexical-algorithm memory cost.

use crate::{debug_check_interval, CutSink, EnumError, EnumStats};
use paramount_poset::{CutSpace, EventId, Frontier, Tid};

/// Enumerates every consistent cut of `poset` level by level (ascending
/// rank, lexicographic within a level).
///
/// ```
/// use paramount_enumerate::{leveled, CollectSink};
/// use paramount_poset::builder::PosetBuilder;
/// use paramount_poset::Tid;
///
/// let mut b = PosetBuilder::new(2);
/// b.append(Tid(0), ());
/// b.append(Tid(1), ());
/// let poset = b.finish(); // two independent events: 4 cuts
///
/// let mut sink = CollectSink::default();
/// leveled::enumerate(&poset, &mut sink).unwrap();
/// let shown: Vec<String> = sink.cuts.iter().map(|c| c.to_string()).collect();
/// // Rank order: the two rank-1 cuts come before the rank-2 top.
/// assert_eq!(shown, ["{0,0}", "{0,1}", "{1,0}", "{1,1}"]);
/// ```
pub fn enumerate<Sp: CutSpace + ?Sized, S: CutSink>(
    poset: &Sp,
    sink: &mut S,
) -> Result<EnumStats, EnumError> {
    let empty = Frontier::empty(poset.num_threads());
    let last = poset.current_frontier();
    enumerate_bounded(poset, &empty, &last, sink)
}

/// Enumerates every consistent cut `G` with `gmin ≤ G ≤ gbnd` level by
/// level — the ParaMount subroutine (Lemma 1: exactly once each) in its
/// `O(n)`-space breadth-first form.
pub fn enumerate_bounded<Sp: CutSpace + ?Sized, S: CutSink>(
    poset: &Sp,
    gmin: &Frontier,
    gbnd: &Frontier,
    sink: &mut S,
) -> Result<EnumStats, EnumError> {
    debug_check_interval(poset, gmin, gbnd);
    let n = gmin.len();
    let mut stats = EnumStats {
        cuts: 0,
        peak_frontiers: 1, // one working frontier, regardless of width
        expansions: 0,
    };

    // Suffix sums of the interval bounds: suffix_min[k] = Σ gmin[k..],
    // suffix_max[k] = Σ gbnd[k..]. These make the rank-feasibility window
    // for each position an O(1) computation.
    let mut suffix_min = vec![0u64; n + 1];
    let mut suffix_max = vec![0u64; n + 1];
    for k in (0..n).rev() {
        let tk = Tid::from(k);
        suffix_min[k] = suffix_min[k + 1] + u64::from(gmin.get(tk));
        suffix_max[k] = suffix_max[k + 1] + u64::from(gbnd.get(tk));
    }

    let mut g = gmin.clone();
    for rank in gmin.total_events()..=gbnd.total_events() {
        enumerate_level(
            poset,
            gmin,
            gbnd,
            &suffix_min,
            &suffix_max,
            rank,
            &mut g,
            sink,
            &mut stats,
        )?;
    }
    Ok(stats)
}

/// Emits every consistent cut of `[gmin, gbnd]` with exactly `rank` total
/// events, in ascending lexicographic order, via backtracking over the
/// thread positions. `g` is the single reusable working frontier.
#[allow(clippy::too_many_arguments)]
fn enumerate_level<Sp: CutSpace + ?Sized, S: CutSink>(
    poset: &Sp,
    gmin: &Frontier,
    gbnd: &Frontier,
    suffix_min: &[u64],
    suffix_max: &[u64],
    rank: u64,
    g: &mut Frontier,
    sink: &mut S,
    stats: &mut EnumStats,
) -> Result<(), EnumError> {
    let n = gmin.len();
    if n == 0 {
        // Zero threads: the empty frontier is the whole lattice.
        stats.cuts += 1;
        if sink.visit(g.as_cut()).is_break() {
            return Err(EnumError::Stopped);
        }
        return Ok(());
    }

    let mut k = 0usize; // next position to assign
    let mut placed = 0u64; // Σ g[0..k), maintained incrementally
    let mut descend = true; // entering k fresh vs. resuming after backtrack
    loop {
        if k == n {
            // Complete assignment: consistent by construction, rank == r.
            debug_assert_eq!(g.total_events(), rank);
            debug_assert!(g.is_consistent(poset), "leveled leaf inconsistent");
            stats.cuts += 1;
            if sink.visit(g.as_cut()).is_break() {
                return Err(EnumError::Stopped);
            }
            k -= 1;
            placed -= u64::from(g.get(Tid::from(k)));
            descend = false;
            continue;
        }

        let tk = Tid::from(k);
        let candidate = if descend {
            // Fresh entry: start at the lower bound — the interval floor,
            // raised by what the placed prefix demands of thread k and by
            // the rank window (the suffix cannot exceed suffix_max).
            let mut lo = u64::from(gmin.get(tk));
            lo = lo.max(rank.saturating_sub(placed + suffix_max[k + 1]));
            for u in 0..k {
                let cu = g.get(Tid::from(u));
                if cu > 0 {
                    let demand = poset.vc(EventId::new(Tid::from(u), cu)).component(k);
                    lo = lo.max(u64::from(demand));
                }
            }
            lo
        } else {
            u64::from(g.get(tk)) + 1
        };

        // Upper bound: the interval ceiling, and the rank window (the
        // suffix must still be able to contribute at least suffix_min).
        let hi = match rank.checked_sub(placed + suffix_min[k + 1]) {
            Some(room) => u64::from(gbnd.get(tk)).min(room),
            None => 0, // prefix already over rank: forces the backtrack below
        };

        stats.expansions += 1;
        if candidate <= hi && prefix_allows(poset, g, k, candidate as u32) {
            g.set(tk, candidate as u32);
            placed += candidate;
            k += 1;
            descend = true;
        } else {
            // Dead end at k: clock demands are monotone in the candidate,
            // so no larger value can succeed either. Backtrack.
            if k == 0 {
                return Ok(()); // level exhausted
            }
            k -= 1;
            placed -= u64::from(g.get(Tid::from(k)));
            descend = false;
        }
    }
}

/// True iff taking `v` events of thread `k` demands nothing beyond the
/// already-placed prefix `g[0..k)` — the other half of the pairwise
/// consistency check (the prefix's demands *on* `k` are folded into the
/// candidate lower bound by the caller).
fn prefix_allows<Sp: CutSpace + ?Sized>(poset: &Sp, g: &Frontier, k: usize, v: u32) -> bool {
    if v == 0 {
        return true;
    }
    poset
        .vc(EventId::new(Tid::from(k), v))
        .iter_nonzero()
        .take_while(|&(j, _)| j < k)
        .all(|(j, need)| need <= g.as_slice()[j])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CollectSink;
    use paramount_poset::builder::PosetBuilder;
    use paramount_poset::oracle;
    use paramount_poset::random::RandomComputation;
    use paramount_poset::Poset;

    fn figure4() -> Poset {
        let mut b = PosetBuilder::new(2);
        let a = b.append(Tid(0), ());
        let bb = b.append(Tid(1), ());
        b.append_after(Tid(0), &[bb], ());
        b.append_after(Tid(1), &[a], ());
        b.finish()
    }

    fn collect_full(p: &Poset) -> Vec<Frontier> {
        let mut sink = CollectSink::default();
        enumerate(p, &mut sink).unwrap();
        sink.cuts
    }

    /// The oracle's lexical output re-sorted into the leveled algorithm's
    /// (rank, lex) emission order.
    fn rank_lex_sorted(mut cuts: Vec<Frontier>) -> Vec<Frontier> {
        cuts.sort_by(|a, b| {
            a.total_events()
                .cmp(&b.total_events())
                .then_with(|| a.cmp(b))
        });
        cuts
    }

    #[test]
    fn full_leveled_matches_oracle_in_rank_lex_order() {
        let p = figure4();
        let cuts = collect_full(&p);
        assert_eq!(cuts, rank_lex_sorted(oracle::enumerate_product_scan(&p)));
    }

    #[test]
    fn emission_order_is_rank_then_lex() {
        for seed in 0..10 {
            let p = RandomComputation::new(4, 4, 0.3, seed).generate();
            let cuts = collect_full(&p);
            for w in cuts.windows(2) {
                let (ra, rb) = (w[0].total_events(), w[1].total_events());
                assert!(
                    ra < rb || (ra == rb && w[0] < w[1]),
                    "order violated at seed {seed}: {} then {}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn leveled_agrees_with_oracle_on_random_posets() {
        for seed in 0..40 {
            let p = RandomComputation::new(4, 5, 0.4, seed).generate();
            let cuts = collect_full(&p);
            assert_eq!(
                cuts,
                rank_lex_sorted(oracle::enumerate_product_scan(&p)),
                "mismatch at seed {seed}"
            );
        }
    }

    #[test]
    fn bounded_leveled_enumerates_exactly_the_interval() {
        // For every event e of random posets, compare the bounded run on
        // [Gmin(e), Gbnd(e)] against the oracle filtered to that interval.
        for seed in 0..15 {
            let p = RandomComputation::new(3, 4, 0.4, seed).generate();
            let order = paramount_poset::topo::weight_order(&p);
            let all = oracle::enumerate_product_scan(&p);
            let mut running = Frontier::empty(p.num_threads());
            for &e in &order {
                running.set(e.tid, e.index);
                let gmin = Frontier::from_clock(p.vc(e));
                let gbnd = running.clone();
                let mut sink = CollectSink::default();
                enumerate_bounded(&p, &gmin, &gbnd, &mut sink).unwrap();
                let expected: Vec<Frontier> = all
                    .iter()
                    .filter(|c| gmin.leq(c) && c.leq(&gbnd))
                    .cloned()
                    .collect();
                assert_eq!(
                    sink.cuts,
                    rank_lex_sorted(expected),
                    "event {e} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn interval_of_figure6_events() {
        // Same interval cases as the lexical test; for these small
        // intervals (rank, lex) order coincides with lexical order.
        let p = figure4();
        let cases: Vec<(Frontier, Frontier, Vec<Frontier>)> = vec![
            (
                Frontier::from_counts(vec![1, 0]),
                Frontier::from_counts(vec![1, 0]),
                vec![Frontier::from_counts(vec![1, 0])],
            ),
            (
                Frontier::from_counts(vec![0, 1]),
                Frontier::from_counts(vec![1, 1]),
                vec![
                    Frontier::from_counts(vec![0, 1]),
                    Frontier::from_counts(vec![1, 1]),
                ],
            ),
            (
                Frontier::from_counts(vec![2, 1]),
                Frontier::from_counts(vec![2, 1]),
                vec![Frontier::from_counts(vec![2, 1])],
            ),
            (
                Frontier::from_counts(vec![1, 2]),
                Frontier::from_counts(vec![2, 2]),
                vec![
                    Frontier::from_counts(vec![1, 2]),
                    Frontier::from_counts(vec![2, 2]),
                ],
            ),
        ];
        for (gmin, gbnd, expected) in cases {
            let mut sink = CollectSink::default();
            enumerate_bounded(&p, &gmin, &gbnd, &mut sink).unwrap();
            assert_eq!(sink.cuts, expected);
        }
    }

    #[test]
    fn stateless_peak_is_one() {
        let p = RandomComputation::new(4, 5, 0.3, 1).generate();
        let mut sink = crate::CountSink::default();
        let stats = enumerate(&p, &mut sink).unwrap();
        assert_eq!(stats.peak_frontiers, 1);
        assert_eq!(stats.cuts, sink.count);
    }

    #[test]
    fn expansions_are_a_deterministic_work_witness() {
        let p = RandomComputation::new(4, 5, 0.3, 9).generate();
        let run = || {
            let mut sink = crate::CountSink::default();
            enumerate(&p, &mut sink).unwrap()
        };
        let first = run();
        assert_eq!(first, run());
        // Every emitted cut costs at least one probe per thread position.
        assert!(first.expansions >= first.cuts, "work witness too small");
    }

    #[test]
    fn early_stop_propagates() {
        let p = figure4();
        let mut sink =
            crate::FirstMatchSink::new(|c: paramount_poset::CutRef<'_>| c.total_events() == 1);
        assert_eq!(enumerate(&p, &mut sink).unwrap_err(), EnumError::Stopped);
        assert_eq!(sink.witness, Some(Frontier::from_counts(vec![0, 1])));
    }

    #[test]
    fn single_thread_chain() {
        let mut b = PosetBuilder::new(1);
        for _ in 0..5 {
            b.append(Tid(0), ());
        }
        let p = b.finish();
        let cuts = collect_full(&p);
        assert_eq!(cuts.len(), 6);
        // One cut per rank, emitted in rank order.
        for (i, c) in cuts.iter().enumerate() {
            assert_eq!(c.total_events(), i as u64);
        }
    }

    #[test]
    fn empty_poset_emits_only_empty_cut() {
        let p: Poset = Poset::empty(3);
        let cuts = collect_full(&p);
        assert_eq!(cuts, vec![Frontier::empty(3)]);
    }

    #[test]
    fn zero_thread_poset_emits_only_empty_cut() {
        let p: Poset = Poset::empty(0);
        let cuts = collect_full(&p);
        assert_eq!(cuts, vec![Frontier::empty(0)]);
    }

    #[test]
    fn wide_antichain_is_enumerated_without_frontier_storage() {
        // 10 fully independent threads of 2 events each: 3^10 cuts, where
        // classic BFS would hold a ~central-binomial level live.
        let mut b = PosetBuilder::new(10);
        for t in 0..10 {
            b.append(Tid(t), ());
            b.append(Tid(t), ());
        }
        let p = b.finish();
        let mut sink = crate::CountSink::default();
        let stats = enumerate(&p, &mut sink).unwrap();
        assert_eq!(stats.cuts, 3u64.pow(10));
        assert_eq!(stats.peak_frontiers, 1);
    }
}
