//! Panic containment at the sink boundary: a predicate or sink that
//! panics mid-enumeration must surface as [`EnumError::Panicked`] from
//! `run_isolated`, never unwind through the caller — and since the
//! enumerators are stateless across calls, a clean rerun must still
//! produce the exact count.

use paramount_enumerate::{Algorithm, CountSink, CutSink, EnumError};
use paramount_poset::random::RandomComputation;
use paramount_poset::{oracle, CutRef, Frontier, Tid};
use std::ops::ControlFlow;

/// Counts cuts and panics on the `n`-th visit — a stand-in for a buggy
/// user predicate evaluated inside the sink.
struct PanicAtSink {
    seen: u64,
    panic_at: u64,
}

impl CutSink for PanicAtSink {
    fn visit(&mut self, _cut: CutRef<'_>) -> ControlFlow<()> {
        self.seen += 1;
        if self.seen == self.panic_at {
            panic!("predicate bug on cut #{}", self.seen);
        }
        ControlFlow::Continue(())
    }
}

#[test]
fn panicking_sink_is_contained_and_clean_rerun_is_exact() {
    let poset = RandomComputation::new(3, 6, 0.3, 11).generate();
    let expected = oracle::count_ideals(&poset);
    assert!(expected > 4, "poset must be big enough to panic mid-run");

    for algorithm in Algorithm::ALL {
        // Panic partway through: run_isolated reports, never unwinds.
        let mut sink = PanicAtSink {
            seen: 0,
            panic_at: 3,
        };
        let err = algorithm
            .run_isolated(&poset, &mut sink)
            .expect_err("sink panic must surface as an error");
        match err {
            EnumError::Panicked { message } => {
                assert!(
                    message.contains("predicate bug on cut #3"),
                    "{algorithm:?}: payload must survive: {message}"
                );
            }
            other => panic!("{algorithm:?}: expected Panicked, got {other:?}"),
        }
        // The sink really did see a delivered prefix before the panic.
        assert_eq!(sink.seen, 3, "{algorithm:?}");

        // Stateless core: a clean rerun of the same algorithm on the
        // same poset is still exact.
        let mut clean = CountSink::default();
        algorithm
            .run_isolated(&poset, &mut clean)
            .expect("clean rerun");
        assert_eq!(clean.count, expected, "{algorithm:?}");
    }
}

/// A panic on the very first visit (before any cut is delivered) is the
/// retry-eligible case the engines rely on: zero cuts escaped.
#[test]
fn first_visit_panic_delivers_nothing() {
    let poset = RandomComputation::new(2, 4, 0.2, 5).generate();
    for algorithm in Algorithm::ALL {
        let mut sink = PanicAtSink {
            seen: 0,
            panic_at: 1,
        };
        let err = algorithm
            .run_isolated(&poset, &mut sink)
            .expect_err("panic");
        assert!(matches!(err, EnumError::Panicked { .. }), "{algorithm:?}");
        assert_eq!(sink.seen, 1, "{algorithm:?}: panicked on the 1st visit");
    }
}

/// The bounded-interval variant is isolated the same way — this is the
/// exact boundary the parallel engines call per interval.
#[test]
fn bounded_interval_panic_is_contained() {
    let poset = RandomComputation::new(3, 5, 0.4, 23).generate();
    let gmin = Frontier::empty(3);
    let gbnd = Frontier::from_counts((0..3).map(|t| poset.events_of(Tid(t)) as u32).collect());
    for algorithm in Algorithm::ALL {
        let mut sink = PanicAtSink {
            seen: 0,
            panic_at: 2,
        };
        let err = algorithm
            .run_bounded_isolated(&poset, &gmin, &gbnd, &mut sink)
            .expect_err("panic");
        assert!(matches!(err, EnumError::Panicked { .. }), "{algorithm:?}");

        let mut clean = CountSink::default();
        algorithm
            .run_bounded_isolated(&poset, &gmin, &gbnd, &mut clean)
            .expect("clean rerun");
        assert_eq!(clean.count, oracle::count_ideals(&poset), "{algorithm:?}");
    }
}
