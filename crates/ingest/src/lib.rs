#![warn(missing_docs)]
//! Streaming trace ingestion — `paramount serve` and its wire protocol.
//!
//! The paper's online detector (§4.2, Algorithm 4) assumes the observed
//! program and the enumeration engine share an address space: each
//! instrumented thread inserts its event and continues. This crate
//! removes that assumption. A daemon ([`server::Server`]) owns one
//! [`OnlineEngine`](paramount::OnlineEngine) per *session* and clients
//! stream happened-before-relevant operations to it over TCP or Unix
//! sockets using a newline-delimited text protocol ([`proto`]) whose
//! `EVENT` frames reuse the trace file format's per-line operation
//! syntax — anything `paramount gen` writes can be piped onto a socket.
//!
//! The load-bearing invariant lives in [`session`]: frames are validated
//! and fed to the recorder in an order that keeps every engine insertion
//! a linearization of happened-before, so Theorem 3 ("every cut of the
//! observed prefix, exactly once") holds *wherever the stream stops* — a
//! clean `END`, a mid-stream disconnect, a tripped limit, or a daemon
//! shutdown all finalize to an exact report for what arrived.
//!
//! ```
//! use paramount_ingest::{Client, Hello, Server, ServerConfig, WireOp};
//!
//! let mut server = Server::new(ServerConfig::default());
//! let addr = server.bind_tcp("127.0.0.1:0").unwrap();
//! let handle = server.handle();
//! let daemon = std::thread::spawn(move || server.run(|_| {}).unwrap());
//!
//! let mut client = Client::connect_tcp(addr).unwrap();
//! client.hello(&Hello::new(2)).unwrap();
//! client.event(0, &WireOp::Write("x".into())).unwrap();
//! client.event(1, &WireOp::Read("x".into())).unwrap();
//! let report = client.finish().unwrap();
//! assert_eq!(report.cuts, 4); // two concurrent events: 2×2 lattice
//!
//! handle.shutdown();
//! daemon.join().unwrap();
//! ```

pub mod client;
pub mod fleet;
pub mod lease;
#[cfg(feature = "chaos")]
pub mod linkchaos;
pub mod persist;
pub mod proto;
pub mod server;
pub mod session;
pub mod wire2;

pub use client::{
    send_trace_with_retry, stream_program, Client, ClientError, ProtoPref, RetryPolicy, SendError,
    SendProgress, WireObserver,
};
pub use fleet::{
    first_session_id, parse_manifest, shard_of_session, shard_subroot, FleetConfig, FleetHandle,
    FleetRouter, FleetSummary, ShardSpec, ShardState,
};
pub use lease::{FenceGuard, LeaseAck};
#[cfg(feature = "chaos")]
pub use linkchaos::{ChaosProxy, LinkFaults};
pub use persist::{
    scan_sessions, session_dir, RecoveredState, SessionStore, StoreConfig, CHECKPOINT_KIND,
    EVENT2_KIND, EVENT_KIND, META_KIND,
};
pub use proto::{
    parse_client_line, parse_server_line, version_token, ClientFrame, DecodeError, EndReason,
    ErrCode, Hello, ServerFrame, WireOp, WireReport, MAX_LINE_BYTES, PROTOCOL_VERSION,
    PROTOCOL_VERSION_2, PROTO_MAX,
};
pub use server::{ServeSummary, Server, ServerConfig, ServerHandle};
pub use session::{Session, SessionConfig, SessionLimits, SessionReport};
pub use wire2::{
    decode_event_record, encode_event_record, push_clock, read_clock, Dec, Enc, Step,
    MAX_FRAME_BYTES,
};
