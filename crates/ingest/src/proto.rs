//! The `paramount/1` (text) and `paramount/2` (binary-framed) wire
//! protocols. v1 is newline-delimited text throughout; v2 negotiates over
//! the same text `HELLO`/`RESUME` handshake and then switches the client →
//! server half to the length-prefixed binary framing of [`crate::wire2`]
//! (server → client stays text in both).
//!
//! Design constraints, in order:
//!
//! 1. **Reuse the trace format.** An `EVENT` frame body is exactly one
//!    line of the textual trace format (`read x`, `fork 2`, …), parsed by
//!    the same grammar ([`paramount_trace::textfmt::parse_op_body`]) the
//!    CLI uses for whole files. Anything `paramount gen` emits can be
//!    piped onto a socket unchanged (minus the `threads N` header, which
//!    becomes the `HELLO` frame).
//! 2. **No dependencies.** Hand-rolled split/parse over `&str`; the only
//!    allocation per frame is the owned names an op carries.
//! 3. **Strict validation.** Every malformed line maps to a
//!    [`DecodeError`] with a machine-readable [`ErrCode`] and a
//!    human-readable message; the server never guesses.
//!
//! # Grammar
//!
//! Client → server, one frame per `\n`-terminated line:
//!
//! ```text
//! HELLO paramount/<V> threads=<N> [algo=lexical|bfs|dfs|leveled|auto] [workers=<K>]
//!       [capture_sync=0|1] [label=<token>]      # V in {1, 2}
//! EVENT <tid> <op> [<arg>]        # op/arg exactly as in the trace format
//! FLUSH                           # barrier: ack + live progress counters
//! STATS                           # session metrics (daemon-wide pre-HELLO)
//! END                             # finalize: drain, report, close
//! SHUTDOWN                        # admin (pre-HELLO): drain the daemon
//! RESUME paramount/1 session=<id> # durable daemons: reattach to a
//!                                 # persisted session instead of HELLO
//! ROUTE paramount/1 [session=<id>]# fleet routers: which shard should
//!                                 # this (new or resuming) session use?
//! LEASE paramount/1 epoch=<e> ttl-ms=<t> # routers → shards (pre-HELLO):
//!                                 # fencing-epoch lease grant/renewal
//! ```
//!
//! Server → client:
//!
//! ```text
//! OK [key=value ...]
//! ERR <code> <message…>
//! STAT <json-object>              # repeated, then OK
//! REPORT events=<n> cuts=<n> complete=<bool> reason=<reason>
//! ```
//!
//! Admission control: a daemon over its memory budget answers `HELLO`
//! with `ERR busy retry-after-ms=<n> …` and closes the connection. The
//! first `key=value` token of a `busy` message is a machine-readable
//! retry hint ([`DecodeError::retry_after_hint`]); well-behaved clients
//! back off at least that long before reconnecting.

use paramount::Algorithm;
use paramount_trace::textfmt::{parse_op_body, ParseError};
use paramount_trace::{LockId, Op, VarId};
use std::fmt;

/// Version token of the baseline text protocol.
pub const PROTOCOL_VERSION: &str = "paramount/1";

/// Version token of the binary-framed protocol. Negotiation happens over
/// text: a client sends `HELLO paramount/2 …` (or `RESUME paramount/2 …`)
/// and, if the server accepts, the `OK` reply carries `proto=2` — only
/// after that does the client → server half of the connection switch to
/// the length-prefixed binary framing of [`crate::wire2`]. Server →
/// client frames stay text in both versions. A server capped at v1
/// answers `ERR version …` *without closing the connection*, so a v2
/// client falls back by re-sending a `paramount/1` HELLO on the same
/// socket.
pub const PROTOCOL_VERSION_2: &str = "paramount/2";

/// Highest protocol version this build speaks.
pub const PROTO_MAX: u8 = 2;

/// Longest accepted frame line, in bytes. A line longer than this is a
/// protocol error — it bounds per-connection buffering against hostile or
/// broken clients.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Machine-readable error class, sent as the first token of `ERR`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrCode {
    /// Malformed frame (syntax).
    Proto,
    /// Well-formed frame that violates the session state machine
    /// (tid out of range, event after join, fork of a started thread, …).
    State,
    /// A configured resource limit was exceeded.
    Limit,
    /// Unsupported protocol version in `HELLO`.
    Version,
    /// The daemon is over its memory budget and admits no new sessions;
    /// the message starts with a `retry-after-ms=<n>` hint.
    Busy,
}

impl ErrCode {
    /// The wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrCode::Proto => "proto",
            ErrCode::State => "state",
            ErrCode::Limit => "limit",
            ErrCode::Version => "version",
            ErrCode::Busy => "busy",
        }
    }

    /// Parses a wire token.
    pub fn from_token(s: &str) -> Option<Self> {
        Some(match s {
            "proto" => ErrCode::Proto,
            "state" => ErrCode::State,
            "limit" => ErrCode::Limit,
            "version" => ErrCode::Version,
            "busy" => ErrCode::Busy,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A decode or validation failure, ready to render as an `ERR` frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeError {
    /// Error class.
    pub code: ErrCode,
    /// Human-readable detail.
    pub message: String,
}

impl DecodeError {
    /// Shorthand constructor.
    pub fn new(code: ErrCode, message: impl Into<String>) -> Self {
        DecodeError {
            code,
            message: message.into(),
        }
    }

    /// An admission-control rejection carrying a retry hint: the message
    /// leads with `retry-after-ms=<n>` so clients can parse it without
    /// caring about the prose after it.
    pub fn busy(retry_after_ms: u64, detail: impl fmt::Display) -> Self {
        DecodeError::new(
            ErrCode::Busy,
            format!("retry-after-ms={retry_after_ms} {detail}"),
        )
    }

    /// The retry hint of a [`ErrCode::Busy`] rejection, if present: the
    /// duration the server asks the client to wait before reconnecting.
    pub fn retry_after_hint(&self) -> Option<std::time::Duration> {
        if self.code != ErrCode::Busy {
            return None;
        }
        let first = self.message.split_whitespace().next()?;
        let ms: u64 = first.strip_prefix("retry-after-ms=")?.parse().ok()?;
        Some(std::time::Duration::from_millis(ms))
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for DecodeError {}

fn proto(message: impl Into<String>) -> DecodeError {
    DecodeError::new(ErrCode::Proto, message)
}

/// Maps a version token to its number, or a `version` error naming what
/// this build would accept.
fn parse_version_token(token: &str) -> Result<u8, DecodeError> {
    match token {
        PROTOCOL_VERSION => Ok(1),
        PROTOCOL_VERSION_2 => Ok(2),
        _ => Err(DecodeError::new(
            ErrCode::Version,
            format!(
                "unsupported protocol `{token}` (want {PROTOCOL_VERSION} or {PROTOCOL_VERSION_2})"
            ),
        )),
    }
}

/// The wire token for a protocol version number.
pub fn version_token(proto: u8) -> &'static str {
    match proto {
        2 => PROTOCOL_VERSION_2,
        _ => PROTOCOL_VERSION,
    }
}

/// An operation as it travels on the wire: names, not interned ids.
/// The receiving session interns names into its own tables (the same
/// first-appearance numbering `parse_trace` uses).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireOp {
    /// Read of a named variable.
    Read(String),
    /// Write of a named variable.
    Write(String),
    /// Acquire of a named lock.
    Acquire(String),
    /// Release of a named lock.
    Release(String),
    /// Fork of a thread id.
    Fork(usize),
    /// Join of a thread id.
    Join(usize),
    /// Local work of the given weight (ignored by the poset, still a
    /// legal frame so `gen` output pipes through unchanged).
    Work(u32),
}

impl WireOp {
    /// Renders the op body in trace-line syntax.
    pub fn render(&self) -> String {
        match self {
            WireOp::Read(v) => format!("read {v}"),
            WireOp::Write(v) => format!("write {v}"),
            WireOp::Acquire(l) => format!("acquire {l}"),
            WireOp::Release(l) => format!("release {l}"),
            WireOp::Fork(t) => format!("fork {t}"),
            WireOp::Join(t) => format!("join {t}"),
            WireOp::Work(w) => format!("work {w}"),
        }
    }
}

/// `HELLO` parameters: what the client declares about its stream.
#[derive(Clone, Debug, PartialEq)]
pub struct Hello {
    /// Number of observed threads (0-based tids).
    pub threads: usize,
    /// Bounded subroutine override (`None` = server default).
    pub algorithm: Option<Algorithm>,
    /// Enumeration worker override (`None` = server default; the server
    /// caps it).
    pub workers: Option<usize>,
    /// Also capture acquire/release/fork/join as poset events.
    pub capture_sync: bool,
    /// Optional session label (single token) echoed in reports.
    pub label: Option<String>,
    /// Protocol version this HELLO proposes (1 = text, 2 = binary
    /// framing after the `OK`).
    pub proto: u8,
}

impl Hello {
    /// A minimal `HELLO` for `threads` observed threads.
    pub fn new(threads: usize) -> Self {
        Hello {
            threads,
            algorithm: None,
            workers: None,
            capture_sync: false,
            label: None,
            proto: 1,
        }
    }

    /// Renders the frame line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut out = format!(
            "HELLO {} threads={}",
            version_token(self.proto),
            self.threads
        );
        if let Some(algo) = self.algorithm {
            out.push_str(&format!(" algo={}", algo.name()));
        }
        if let Some(workers) = self.workers {
            out.push_str(&format!(" workers={workers}"));
        }
        if self.capture_sync {
            out.push_str(" capture_sync=1");
        }
        if let Some(label) = &self.label {
            out.push_str(&format!(" label={label}"));
        }
        out
    }
}

/// One client → server frame.
#[derive(Clone, Debug, PartialEq)]
pub enum ClientFrame {
    /// Session start.
    Hello(Hello),
    /// One observed operation of `tid`.
    Event {
        /// Executing thread (0-based).
        tid: usize,
        /// The operation, names not yet interned.
        op: WireOp,
    },
    /// Barrier: ack with live progress.
    Flush,
    /// Metrics request.
    Stats,
    /// Clean end of stream.
    End,
    /// Admin: drain the whole daemon.
    Shutdown,
    /// Reattach to a persisted session (durable daemons only). Takes the
    /// place of `HELLO`; the server answers `OK session=<id> acked=<n>`
    /// where `acked` counts the durably accepted events the client must
    /// *not* resend.
    Resume {
        /// The session id a previous `HELLO`/`RESUME` handed out.
        session: u64,
        /// Protocol version proposed for the resumed stream (same
        /// negotiation as `HELLO`).
        proto: u8,
    },
    /// Fleet routers only: ask which shard should serve a session. With
    /// no `session=`, the router picks a shard for a *new* session
    /// (consistent hashing, steered by fleet-wide pressure) and answers
    /// `OK shard=<k> addr=<addr>`. With `session=<id>`, the router
    /// resolves where that durable session lives *now* — its home shard,
    /// or the survivor it was migrated to after a failover.
    Route {
        /// The session to locate, or `None` to place a new one.
        session: Option<u64>,
    },
    /// Fleet routers → shard daemons (pre-HELLO admin, piggybacked on
    /// the STATS probe connection): grant or renew a fencing-epoch
    /// lease. The shard answers `OK epoch=<e> fenced=<0|1>` with the
    /// epoch it holds *after* applying the grant. A shard that cannot
    /// renew before `ttl-ms` elapses self-fences (see [`crate::lease`]).
    Lease {
        /// Monotonically increasing fencing epoch being offered.
        epoch: u64,
        /// Lease duration from grant receipt, in milliseconds.
        ttl_ms: u64,
    },
}

impl ClientFrame {
    /// Renders the frame line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            ClientFrame::Hello(h) => h.encode(),
            ClientFrame::Event { tid, op } => format!("EVENT {tid} {}", op.render()),
            ClientFrame::Flush => "FLUSH".to_string(),
            ClientFrame::Stats => "STATS".to_string(),
            ClientFrame::End => "END".to_string(),
            ClientFrame::Shutdown => "SHUTDOWN".to_string(),
            ClientFrame::Resume { session, proto } => {
                format!("RESUME {} session={session}", version_token(*proto))
            }
            ClientFrame::Route { session } => match session {
                Some(id) => format!("ROUTE {PROTOCOL_VERSION} session={id}"),
                None => format!("ROUTE {PROTOCOL_VERSION}"),
            },
            ClientFrame::Lease { epoch, ttl_ms } => {
                format!("LEASE {PROTOCOL_VERSION} epoch={epoch} ttl-ms={ttl_ms}")
            }
        }
    }
}

/// Parses one client frame line (already stripped of the newline).
pub fn parse_client_line(line: &str) -> Result<ClientFrame, DecodeError> {
    let line = line.trim_end_matches('\r');
    let mut parts = line.split_whitespace();
    let verb = parts.next().ok_or_else(|| proto("empty frame"))?;
    match verb {
        "HELLO" => parse_hello(parts),
        "EVENT" => parse_event(line, parts),
        "FLUSH" => expect_bare(parts, ClientFrame::Flush),
        "STATS" => expect_bare(parts, ClientFrame::Stats),
        "END" => expect_bare(parts, ClientFrame::End),
        "SHUTDOWN" => expect_bare(parts, ClientFrame::Shutdown),
        "RESUME" => parse_resume(parts),
        "ROUTE" => parse_route(parts),
        "LEASE" => parse_lease(parts),
        other => Err(proto(format!("unknown frame `{other}`"))),
    }
}

fn parse_resume<'a>(parts: impl Iterator<Item = &'a str>) -> Result<ClientFrame, DecodeError> {
    let mut version: Option<u8> = None;
    let mut session: Option<u64> = None;
    for token in parts {
        if version.is_none() {
            version = Some(parse_version_token(token)?);
            continue;
        }
        let (key, value) = token
            .split_once('=')
            .ok_or_else(|| proto(format!("expected key=value, got `{token}`")))?;
        match key {
            "session" => {
                session = Some(
                    value
                        .parse()
                        .map_err(|_| proto(format!("invalid session `{value}`")))?,
                );
            }
            other => return Err(proto(format!("unknown RESUME key `{other}`"))),
        }
    }
    let proto_v = version.ok_or_else(|| proto("RESUME missing protocol version"))?;
    let session = session.ok_or_else(|| proto("RESUME missing session="))?;
    Ok(ClientFrame::Resume {
        session,
        proto: proto_v,
    })
}

fn parse_route<'a>(parts: impl Iterator<Item = &'a str>) -> Result<ClientFrame, DecodeError> {
    let mut version_seen = false;
    let mut session: Option<u64> = None;
    for token in parts {
        if !version_seen {
            // Routers are version-agnostic: ROUTE carries no payload whose
            // encoding differs, so either token is accepted and the answer
            // is the same.
            parse_version_token(token)?;
            version_seen = true;
            continue;
        }
        let (key, value) = token
            .split_once('=')
            .ok_or_else(|| proto(format!("expected key=value, got `{token}`")))?;
        match key {
            "session" => {
                session = Some(
                    value
                        .parse()
                        .map_err(|_| proto(format!("invalid session `{value}`")))?,
                );
            }
            other => return Err(proto(format!("unknown ROUTE key `{other}`"))),
        }
    }
    if !version_seen {
        return Err(proto("ROUTE missing protocol version"));
    }
    Ok(ClientFrame::Route { session })
}

fn parse_lease<'a>(parts: impl Iterator<Item = &'a str>) -> Result<ClientFrame, DecodeError> {
    let mut version_seen = false;
    let mut epoch: Option<u64> = None;
    let mut ttl_ms: Option<u64> = None;
    for token in parts {
        if !version_seen {
            // Like ROUTE, LEASE is an admin frame whose payload encodes
            // identically under either version token.
            parse_version_token(token)?;
            version_seen = true;
            continue;
        }
        let Some((key, value)) = token.split_once('=') else {
            return Err(proto(format!("malformed LEASE token `{token}`")));
        };
        match key {
            "epoch" => {
                epoch = Some(
                    value
                        .parse()
                        .map_err(|_| proto(format!("invalid epoch `{value}`")))?,
                );
            }
            "ttl-ms" => {
                ttl_ms = Some(
                    value
                        .parse()
                        .map_err(|_| proto(format!("invalid ttl-ms `{value}`")))?,
                );
            }
            other => return Err(proto(format!("unknown LEASE key `{other}`"))),
        }
    }
    if !version_seen {
        return Err(proto("LEASE missing protocol version"));
    }
    let epoch = epoch.ok_or_else(|| proto("LEASE missing epoch="))?;
    let ttl_ms = ttl_ms.ok_or_else(|| proto("LEASE missing ttl-ms="))?;
    Ok(ClientFrame::Lease { epoch, ttl_ms })
}

fn expect_bare<'a>(
    mut parts: impl Iterator<Item = &'a str>,
    frame: ClientFrame,
) -> Result<ClientFrame, DecodeError> {
    match parts.next() {
        None => Ok(frame),
        Some(extra) => Err(proto(format!("trailing token `{extra}`"))),
    }
}

fn parse_hello<'a>(parts: impl Iterator<Item = &'a str>) -> Result<ClientFrame, DecodeError> {
    let mut version: Option<u8> = None;
    let mut threads: Option<usize> = None;
    let mut hello = Hello::new(0);
    for token in parts {
        if version.is_none() {
            let v = parse_version_token(token)?;
            hello.proto = v;
            version = Some(v);
            continue;
        }
        let (key, value) = token
            .split_once('=')
            .ok_or_else(|| proto(format!("expected key=value, got `{token}`")))?;
        match key {
            "threads" => {
                let n: usize = value
                    .parse()
                    .map_err(|_| proto(format!("invalid threads `{value}`")))?;
                if n == 0 {
                    return Err(proto("need at least one thread"));
                }
                threads = Some(n);
            }
            "algo" => {
                hello.algorithm = Some(
                    Algorithm::from_name(value)
                        .ok_or_else(|| proto(format!("unknown algorithm `{value}`")))?,
                );
            }
            "workers" => {
                let w: usize = value
                    .parse()
                    .map_err(|_| proto(format!("invalid workers `{value}`")))?;
                if w == 0 {
                    return Err(proto("workers must be >= 1"));
                }
                hello.workers = Some(w);
            }
            "capture_sync" => {
                hello.capture_sync = match value {
                    "0" => false,
                    "1" => true,
                    other => return Err(proto(format!("invalid capture_sync `{other}`"))),
                };
            }
            "label" => {
                if value.is_empty() {
                    return Err(proto("empty label"));
                }
                hello.label = Some(value.to_string());
            }
            other => return Err(proto(format!("unknown HELLO key `{other}`"))),
        }
    }
    if version.is_none() {
        return Err(DecodeError::new(
            ErrCode::Version,
            "missing protocol version",
        ));
    }
    hello.threads = threads.ok_or_else(|| proto("HELLO missing threads=N"))?;
    Ok(ClientFrame::Hello(hello))
}

fn parse_event<'a>(
    line: &str,
    mut parts: impl Iterator<Item = &'a str>,
) -> Result<ClientFrame, DecodeError> {
    let tid_token = parts
        .next()
        .ok_or_else(|| proto("EVENT missing thread id"))?;
    let tid: usize = tid_token
        .parse()
        .map_err(|_| proto(format!("invalid thread id `{tid_token}`")))?;
    let kind = parts
        .next()
        .ok_or_else(|| proto("EVENT missing operation"))?;
    let arg = parts.next();
    if let Some(extra) = parts.next() {
        return Err(proto(format!("trailing token `{extra}`")));
    }
    // Reuse the trace-format grammar: the interners capture the raw name
    // so the id-based `Op` can be lifted back into a name-carrying
    // `WireOp` — one source of truth for the operation syntax.
    let mut var_name: Option<String> = None;
    let mut lock_name: Option<String> = None;
    let op = parse_op_body(
        0,
        kind,
        arg,
        &mut |name| {
            var_name = Some(name.to_string());
            VarId(0)
        },
        &mut |name| {
            lock_name = Some(name.to_string());
            LockId(0)
        },
    )
    .map_err(|ParseError { message, .. }| proto(format!("{message} in `{line}`")))?;
    let op = match op {
        Op::Read(_) => WireOp::Read(var_name.expect("read interned a var")),
        Op::Write(_) => WireOp::Write(var_name.expect("write interned a var")),
        Op::Acquire(_) => WireOp::Acquire(lock_name.expect("acquire interned a lock")),
        Op::Release(_) => WireOp::Release(lock_name.expect("release interned a lock")),
        Op::Fork(t) => WireOp::Fork(t.index()),
        Op::Join(t) => WireOp::Join(t.index()),
        Op::Work(w) => WireOp::Work(w),
    };
    Ok(ClientFrame::Event { tid, op })
}

/// Why a session ended — the `reason=` token of a `REPORT` frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EndReason {
    /// Clean `END` handshake.
    End,
    /// The connection dropped mid-stream.
    Disconnect,
    /// A session limit tripped.
    Limit,
    /// The idle timeout expired.
    Timeout,
    /// The daemon drained on shutdown.
    Shutdown,
    /// A protocol/state error or an engine error ended the session.
    Error,
    /// A panic unwound out of the session's machinery; the report covers
    /// the prefix observed before the fault (and the daemon kept serving).
    Fault,
}

impl EndReason {
    /// The wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            EndReason::End => "end",
            EndReason::Disconnect => "disconnect",
            EndReason::Limit => "limit",
            EndReason::Timeout => "timeout",
            EndReason::Shutdown => "shutdown",
            EndReason::Error => "error",
            EndReason::Fault => "fault",
        }
    }

    /// Parses a wire token.
    pub fn from_token(s: &str) -> Option<Self> {
        Some(match s {
            "end" => EndReason::End,
            "disconnect" => EndReason::Disconnect,
            "limit" => EndReason::Limit,
            "timeout" => EndReason::Timeout,
            "shutdown" => EndReason::Shutdown,
            "error" => EndReason::Error,
            "fault" => EndReason::Fault,
            _ => return None,
        })
    }
}

impl fmt::Display for EndReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The final summary of one session, as carried by a `REPORT` frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireReport {
    /// Events inserted into the session's poset.
    pub events: u64,
    /// Consistent cuts enumerated.
    pub cuts: u64,
    /// True when `cuts` is Theorem-2 exact for the observed prefix (no
    /// engine error, no shed intervals).
    pub complete: bool,
    /// Why the session ended.
    pub reason: EndReason,
}

/// One server → client frame.
#[derive(Clone, Debug, PartialEq)]
pub enum ServerFrame {
    /// Acknowledgement, with optional `key=value` details.
    Ok(Vec<(String, String)>),
    /// Rejection or failure.
    Err(DecodeError),
    /// One line of a metrics dump (JSON object).
    Stat(String),
    /// Final session summary.
    Report(WireReport),
}

impl ServerFrame {
    /// Renders the frame line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            ServerFrame::Ok(kvs) => {
                let mut out = "OK".to_string();
                for (k, v) in kvs {
                    out.push_str(&format!(" {k}={v}"));
                }
                out
            }
            ServerFrame::Err(e) => format!("ERR {} {}", e.code, e.message),
            ServerFrame::Stat(json) => format!("STAT {json}"),
            ServerFrame::Report(r) => format!(
                "REPORT events={} cuts={} complete={} reason={}",
                r.events, r.cuts, r.complete, r.reason
            ),
        }
    }
}

/// Parses one server frame line (client side).
pub fn parse_server_line(line: &str) -> Result<ServerFrame, DecodeError> {
    let line = line.trim_end_matches('\r');
    let (verb, rest) = match line.split_once(' ') {
        Some((v, r)) => (v, r),
        None => (line, ""),
    };
    match verb {
        "OK" => {
            let mut kvs = Vec::new();
            for token in rest.split_whitespace() {
                let (k, v) = token
                    .split_once('=')
                    .ok_or_else(|| proto(format!("bad OK token `{token}`")))?;
                kvs.push((k.to_string(), v.to_string()));
            }
            Ok(ServerFrame::Ok(kvs))
        }
        "ERR" => {
            let (code, message) = match rest.split_once(' ') {
                Some((c, m)) => (c, m),
                None => (rest, ""),
            };
            let code = ErrCode::from_token(code)
                .ok_or_else(|| proto(format!("unknown error code `{code}`")))?;
            Ok(ServerFrame::Err(DecodeError::new(code, message)))
        }
        "STAT" => Ok(ServerFrame::Stat(rest.to_string())),
        "REPORT" => {
            let mut report = WireReport {
                events: 0,
                cuts: 0,
                complete: false,
                reason: EndReason::End,
            };
            for token in rest.split_whitespace() {
                let (k, v) = token
                    .split_once('=')
                    .ok_or_else(|| proto(format!("bad REPORT token `{token}`")))?;
                match k {
                    "events" => {
                        report.events = v.parse().map_err(|_| proto(format!("bad events `{v}`")))?
                    }
                    "cuts" => {
                        report.cuts = v.parse().map_err(|_| proto(format!("bad cuts `{v}`")))?
                    }
                    "complete" => {
                        report.complete = match v {
                            "true" => true,
                            "false" => false,
                            _ => return Err(proto(format!("bad complete `{v}`"))),
                        }
                    }
                    "reason" => {
                        report.reason = EndReason::from_token(v)
                            .ok_or_else(|| proto(format!("bad reason `{v}`")))?
                    }
                    other => return Err(proto(format!("unknown REPORT key `{other}`"))),
                }
            }
            Ok(ServerFrame::Report(report))
        }
        other => Err(proto(format!("unknown server frame `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_round_trip() {
        let hello = Hello {
            threads: 4,
            algorithm: Some(Algorithm::Bfs),
            workers: Some(2),
            capture_sync: true,
            label: Some("banking".to_string()),
            proto: 1,
        };
        let line = ClientFrame::Hello(hello.clone()).encode();
        assert_eq!(
            line,
            "HELLO paramount/1 threads=4 algo=bfs workers=2 capture_sync=1 label=banking"
        );
        assert_eq!(parse_client_line(&line).unwrap(), ClientFrame::Hello(hello));
    }

    #[test]
    fn hello_negotiates_v2_via_the_version_token() {
        let mut hello = Hello::new(3);
        hello.proto = 2;
        let line = ClientFrame::Hello(hello.clone()).encode();
        assert_eq!(line, "HELLO paramount/2 threads=3");
        assert_eq!(parse_client_line(&line).unwrap(), ClientFrame::Hello(hello));
        // Unknown future versions are still rejected.
        assert_eq!(
            parse_client_line("HELLO paramount/3 threads=3")
                .unwrap_err()
                .code,
            ErrCode::Version
        );
    }

    #[test]
    fn event_frames_reuse_trace_syntax() {
        for (line, want) in [
            (
                "EVENT 0 read account.balance",
                WireOp::Read("account.balance".to_string()),
            ),
            ("EVENT 0 write x", WireOp::Write("x".to_string())),
            ("EVENT 0 acquire m", WireOp::Acquire("m".to_string())),
            ("EVENT 0 release m", WireOp::Release("m".to_string())),
            ("EVENT 0 fork 3", WireOp::Fork(3)),
            ("EVENT 0 join 3", WireOp::Join(3)),
            ("EVENT 0 work 17", WireOp::Work(17)),
        ] {
            let frame = parse_client_line(line).unwrap();
            assert_eq!(frame, ClientFrame::Event { tid: 0, op: want });
            assert_eq!(frame.encode(), line, "encode is the inverse");
        }
    }

    #[test]
    fn resume_round_trip_and_rejects() {
        for proto in [1u8, 2] {
            let frame = ClientFrame::Resume { session: 42, proto };
            let line = frame.encode();
            assert_eq!(line, format!("RESUME paramount/{proto} session=42"));
            assert_eq!(parse_client_line(&line).unwrap(), frame);
        }
        for (line, code) in [
            ("RESUME", ErrCode::Proto),
            ("RESUME session=42", ErrCode::Version),
            ("RESUME paramount/9 session=42", ErrCode::Version),
            ("RESUME paramount/1", ErrCode::Proto),
            ("RESUME paramount/1 session=many", ErrCode::Proto),
            ("RESUME paramount/1 label=x", ErrCode::Proto),
        ] {
            assert_eq!(parse_client_line(line).unwrap_err().code, code, "{line}");
        }
    }

    #[test]
    fn route_round_trip_and_rejects() {
        for frame in [
            ClientFrame::Route { session: None },
            ClientFrame::Route { session: Some(81) },
        ] {
            let line = frame.encode();
            assert_eq!(parse_client_line(&line).unwrap(), frame, "{line}");
        }
        assert_eq!(
            ClientFrame::Route { session: None }.encode(),
            "ROUTE paramount/1"
        );
        // Routers answer either version token identically.
        assert_eq!(
            parse_client_line("ROUTE paramount/2").unwrap(),
            ClientFrame::Route { session: None }
        );
        for (line, code) in [
            ("ROUTE", ErrCode::Proto),
            ("ROUTE session=8", ErrCode::Version),
            ("ROUTE paramount/9", ErrCode::Version),
            ("ROUTE paramount/1 session=many", ErrCode::Proto),
            ("ROUTE paramount/1 label=x", ErrCode::Proto),
        ] {
            assert_eq!(parse_client_line(line).unwrap_err().code, code, "{line}");
        }
    }

    #[test]
    fn lease_round_trip_and_rejects() {
        let frame = ClientFrame::Lease {
            epoch: 7,
            ttl_ms: 1500,
        };
        let line = frame.encode();
        assert_eq!(line, "LEASE paramount/1 epoch=7 ttl-ms=1500");
        assert_eq!(parse_client_line(&line).unwrap(), frame);
        // Version-agnostic like ROUTE.
        assert_eq!(
            parse_client_line("LEASE paramount/2 epoch=1 ttl-ms=2").unwrap(),
            ClientFrame::Lease {
                epoch: 1,
                ttl_ms: 2
            }
        );
        for (line, code) in [
            ("LEASE", ErrCode::Proto),
            ("LEASE epoch=1 ttl-ms=2", ErrCode::Version),
            ("LEASE paramount/9 epoch=1 ttl-ms=2", ErrCode::Version),
            ("LEASE paramount/1", ErrCode::Proto),
            ("LEASE paramount/1 epoch=1", ErrCode::Proto),
            ("LEASE paramount/1 ttl-ms=2", ErrCode::Proto),
            ("LEASE paramount/1 epoch=many ttl-ms=2", ErrCode::Proto),
            ("LEASE paramount/1 epoch=1 ttl-ms=soon", ErrCode::Proto),
            ("LEASE paramount/1 epoch=1 ttl-ms=2 label=x", ErrCode::Proto),
        ] {
            assert_eq!(parse_client_line(line).unwrap_err().code, code, "{line}");
        }
    }

    #[test]
    fn malformed_frames_are_strict_errors() {
        for (line, code) in [
            ("", ErrCode::Proto),
            ("NOPE", ErrCode::Proto),
            ("HELLO paramount/9 threads=2", ErrCode::Version),
            ("HELLO threads=2", ErrCode::Version),
            ("HELLO paramount/1", ErrCode::Proto),
            ("HELLO paramount/1 threads=0", ErrCode::Proto),
            ("HELLO paramount/1 threads=2 bogus=1", ErrCode::Proto),
            ("HELLO paramount/1 threads=2 algo=magic", ErrCode::Proto),
            ("HELLO paramount/1 threads=2 workers=0", ErrCode::Proto),
            ("EVENT", ErrCode::Proto),
            ("EVENT x read v", ErrCode::Proto),
            ("EVENT 0", ErrCode::Proto),
            ("EVENT 0 frobnicate x", ErrCode::Proto),
            ("EVENT 0 read x extra", ErrCode::Proto),
            ("EVENT 0 fork many", ErrCode::Proto),
            ("FLUSH now", ErrCode::Proto),
            ("END x", ErrCode::Proto),
        ] {
            let err = parse_client_line(line).unwrap_err();
            assert_eq!(err.code, code, "line `{line}` -> {err}");
        }
    }

    #[test]
    fn server_frames_round_trip() {
        let frames = [
            ServerFrame::Ok(vec![("session".to_string(), "7".to_string())]),
            ServerFrame::Ok(Vec::new()),
            ServerFrame::Err(DecodeError::new(ErrCode::Limit, "too many sessions")),
            ServerFrame::Stat("{\"metric\":\"x\",\"value\":1}".to_string()),
            ServerFrame::Report(WireReport {
                events: 96,
                cuts: 815730721,
                complete: true,
                reason: EndReason::End,
            }),
            ServerFrame::Report(WireReport {
                events: 12,
                cuts: 40,
                complete: true,
                reason: EndReason::Disconnect,
            }),
        ];
        for frame in frames {
            let line = frame.encode();
            assert_eq!(parse_server_line(&line).unwrap(), frame, "{line}");
        }
    }

    #[test]
    fn end_reasons_and_codes_cover_their_tokens() {
        for reason in [
            EndReason::End,
            EndReason::Disconnect,
            EndReason::Limit,
            EndReason::Timeout,
            EndReason::Shutdown,
            EndReason::Error,
            EndReason::Fault,
        ] {
            assert_eq!(EndReason::from_token(reason.as_str()), Some(reason));
        }
        for code in [
            ErrCode::Proto,
            ErrCode::State,
            ErrCode::Limit,
            ErrCode::Version,
            ErrCode::Busy,
        ] {
            assert_eq!(ErrCode::from_token(code.as_str()), Some(code));
        }
        assert_eq!(EndReason::from_token("nope"), None);
        assert_eq!(ErrCode::from_token("nope"), None);
    }

    #[test]
    fn busy_rejection_round_trips_with_its_retry_hint() {
        let err = DecodeError::busy(250, "2 sessions over budget");
        let line = ServerFrame::Err(err.clone()).encode();
        assert_eq!(line, "ERR busy retry-after-ms=250 2 sessions over budget");
        let parsed = match parse_server_line(&line).unwrap() {
            ServerFrame::Err(e) => e,
            other => panic!("expected ERR, got {other:?}"),
        };
        assert_eq!(parsed, err);
        assert_eq!(
            parsed.retry_after_hint(),
            Some(std::time::Duration::from_millis(250))
        );
        // The hint is specific to `busy` frames and to well-formed hints.
        assert_eq!(
            DecodeError::new(ErrCode::Limit, "retry-after-ms=9 nope").retry_after_hint(),
            None
        );
        assert_eq!(
            DecodeError::new(ErrCode::Busy, "no hint here").retry_after_hint(),
            None
        );
    }
}
