//! Property tests for the leveled traversal's *emission contract*: cuts
//! come out level by level (rank = number of included events, never
//! decreasing) and in strictly increasing lexicographic order inside a
//! level. Downstream consumers (per-level progress accounting, the CI
//! perf harness's determinism checks) rely on this order, so it is a
//! contract, not an implementation detail.

use paramount_enumerate::{leveled, CollectSink};
use paramount_poset::random::RandomComputation;
use paramount_poset::{oracle, Frontier, Poset};
use proptest::prelude::*;

fn arb_poset() -> impl Strategy<Value = Poset> {
    (2usize..5, 2usize..5, 0.0f64..0.9, any::<u64>()).prop_map(|(n, events, frac, seed)| {
        RandomComputation::new(n, events, frac, seed).generate()
    })
}

/// Rank-then-lex: the order the leveled walk must emit in.
fn assert_rank_lex_sorted(cuts: &[Frontier]) -> Result<(), TestCaseError> {
    for w in cuts.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        prop_assert!(
            a.total_events() < b.total_events() || (a.total_events() == b.total_events() && a < b),
            "out of order: {a} then {b}"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Full-lattice runs emit every consistent cut, rank-sorted with
    /// strictly-lex order within each level.
    #[test]
    fn full_emission_is_rank_then_lex(poset in arb_poset()) {
        let mut sink = CollectSink::default();
        let stats = leveled::enumerate(&poset, &mut sink).unwrap();
        assert_rank_lex_sorted(&sink.cuts)?;
        prop_assert_eq!(stats.cuts as usize, sink.cuts.len());
        prop_assert_eq!(stats.peak_frontiers, 1, "regeneration, not storage");
        prop_assert_eq!(
            oracle::canonicalize(sink.cuts),
            oracle::enumerate_product_scan(&poset)
        );
    }

    /// Bounded runs over arbitrary `[lo, hi]` intervals keep the same
    /// order contract (the engines only ever call the bounded form).
    #[test]
    fn bounded_emission_is_rank_then_lex(
        poset in arb_poset(),
        lo_pick in any::<prop::sample::Index>(),
        hi_pick in any::<prop::sample::Index>(),
    ) {
        let cuts = oracle::enumerate_product_scan(&poset);
        let lo = &cuts[lo_pick.index(cuts.len())];
        // Candidates above lo always include lo itself, so hi exists.
        let above: Vec<&Frontier> = cuts.iter().filter(|c| lo.leq(c)).collect();
        let hi = above[hi_pick.index(above.len())];

        let mut sink = CollectSink::default();
        leveled::enumerate_bounded(&poset, lo, hi, &mut sink).unwrap();
        assert_rank_lex_sorted(&sink.cuts)?;
        let expected: usize = cuts.iter().filter(|c| lo.leq(c) && c.leq(hi)).count();
        prop_assert_eq!(sink.cuts.len(), expected);
    }
}
