//! The `d-*` random distributed computations of Table 1.
//!
//! The paper's `d-300`, `d-500` and `d-10K` posets model distributed
//! computations over 10 processes with 300 / 500 / 10,000 events and
//! lattices of 42 M / 237 M / 4,962 M consistent cuts. The generators
//! here keep the process count and event counts, with the message density
//! chosen so the lattices land in a range a laptop enumerates in seconds
//! to minutes (the paper's testbed ran hours on these); `scaled(...)`
//! exposes the knobs for anyone wanting the original magnitudes.

use paramount_poset::random::RandomComputation;

/// Number of processes used by every `d-*` input (as in the paper).
pub const PROCESSES: usize = 10;

/// `d-300`: 10 processes × 30 events.
pub fn d300() -> RandomComputation {
    RandomComputation::new(PROCESSES, 30, 0.78, 300)
}

/// `d-500`: 10 processes × 50 events.
pub fn d500() -> RandomComputation {
    RandomComputation::new(PROCESSES, 50, 0.80, 500)
}

/// `d-10K`: 10 processes × 1,000 events. At the default density the
/// lattice is the largest of the three, as in the paper.
pub fn d10k() -> RandomComputation {
    RandomComputation::new(PROCESSES, 1000, 0.92, 10_000)
}

/// A custom-size distributed computation with the same model.
pub fn scaled(events_per_process: usize, message_fraction: f64, seed: u64) -> RandomComputation {
    RandomComputation::new(PROCESSES, events_per_process, message_fraction, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paramount_poset::oracle::count_ideals;

    #[test]
    fn shapes_match_the_paper() {
        assert_eq!(d300().total_events(), 300);
        assert_eq!(d500().total_events(), 500);
        assert_eq!(d10k().total_events(), 10_000);
    }

    #[test]
    fn lattice_sizes_are_ordered_and_nontrivial() {
        // Tiny proxies (4 processes) with the same densities: the ordering
        // smaller-input < larger-input must already show. Full-size `d-*`
        // lattices are counted by the table1 harness, not a unit test.
        let small = RandomComputation::new(4, 6, 0.78, 300).generate();
        let larger = RandomComputation::new(4, 9, 0.80, 500).generate();
        let a = count_ideals(&small);
        let b = count_ideals(&larger);
        assert!(a > 20, "proxy too synchronized: {a}");
        assert!(b > a, "expected the larger input to have more cuts");
    }

    #[test]
    fn deterministic() {
        let a = d300().generate();
        let b = d300().generate();
        assert_eq!(a.num_events(), b.num_events());
        let va: Vec<_> = a.events().map(|e| e.vc.clone()).collect();
        let vb: Vec<_> = b.events().map(|e| e.vc.clone()).collect();
        assert_eq!(va, vb);
    }
}
