//! Incremental construction of posets with automatic vector clocks.

use crate::{Event, EventId, Poset};
use paramount_vclock::{Tid, VectorClock};

/// Builds a [`Poset`] event by event, computing vector clocks on the fly.
///
/// Each appended event implicitly depends on the previous event of its own
/// thread (process order); [`PosetBuilder::append_after`] adds explicit
/// cross-thread dependencies (messages, lock hand-offs, fork/join edges).
/// Dependencies must refer to already-appended events, so construction
/// order is automatically a linear extension of the resulting poset.
#[derive(Clone, Debug)]
pub struct PosetBuilder<P = ()> {
    threads: Vec<Vec<Event<P>>>,
    /// Running clock per thread (clock of its latest event).
    thread_clocks: Vec<VectorClock>,
}

impl<P> PosetBuilder<P> {
    /// A builder for an `n`-thread computation.
    pub fn new(n: usize) -> Self {
        PosetBuilder {
            threads: (0..n).map(|_| Vec::new()).collect(),
            thread_clocks: (0..n).map(|_| VectorClock::zero(n)).collect(),
        }
    }

    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Total events appended so far.
    pub fn num_events(&self) -> usize {
        self.threads.iter().map(Vec::len).sum()
    }

    /// Appends a purely process-ordered event to thread `t`.
    pub fn append(&mut self, t: Tid, payload: P) -> EventId {
        self.append_after(t, &[], payload)
    }

    /// Appends an event to thread `t` that additionally depends on `deps`.
    ///
    /// The new event's clock is `tick(t)` of the thread clock joined with
    /// every dependency's clock — i.e. Algorithm 3 generalized to any
    /// number of incoming edges.
    pub fn append_after(&mut self, t: Tid, deps: &[EventId], payload: P) -> EventId {
        let i = t.index();
        // `threads` and `thread_clocks` are disjoint fields, so dependency
        // clocks are joined straight out of their events — no clone per dep.
        let clock = &mut self.thread_clocks[i];
        clock.tick(t);
        for &d in deps {
            debug_assert!(
                (d.index as usize) <= self.threads[d.tid.index()].len(),
                "dependency on a not-yet-appended event"
            );
            clock.join(&self.threads[d.tid.index()][(d.index - 1) as usize].vc);
        }
        let id = EventId::new(t, clock.get(t));
        self.threads[i].push(Event {
            id,
            vc: clock.clone(),
            payload,
        });
        id
    }

    /// Appends an event whose clock was computed externally (e.g. by the
    /// trace recorder's own Algorithm 3 bookkeeping). The clock must
    /// dominate the thread's previous clock and have `vc[t]` equal to the
    /// next index.
    pub fn append_with_clock(&mut self, t: Tid, vc: VectorClock, payload: P) -> EventId {
        let i = t.index();
        let next = self.threads[i].len() as u32 + 1;
        debug_assert_eq!(vc.get(t), next, "external clock must index the next event");
        debug_assert!(
            self.thread_clocks[i].le(&vc),
            "external clock must dominate the thread's history"
        );
        let id = EventId::new(t, next);
        self.thread_clocks[i] = vc.clone();
        self.threads[i].push(Event { id, vc, payload });
        id
    }

    /// Current clock of a thread (the clock of its latest event).
    pub fn thread_clock(&self, t: Tid) -> &VectorClock {
        &self.thread_clocks[t.index()]
    }

    /// Finalizes the poset.
    pub fn finish(self) -> Poset<P> {
        Poset::from_threads(self.threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_order_only() {
        let mut b = PosetBuilder::new(2);
        let a1 = b.append(Tid(0), ());
        let a2 = b.append(Tid(0), ());
        let b1 = b.append(Tid(1), ());
        let p = b.finish();
        assert_eq!(p.vc(a1).to_dense(), &[1, 0]);
        assert_eq!(p.vc(a2).to_dense(), &[2, 0]);
        assert_eq!(p.vc(b1).to_dense(), &[0, 1]);
        assert!(p.happened_before(a1, a2));
        assert!(p.concurrent(a2, b1));
    }

    #[test]
    fn cross_dependencies_reproduce_figure_4d() {
        let mut b = PosetBuilder::new(2);
        let e1_1 = b.append(Tid(0), ());
        let e2_1 = b.append(Tid(1), ());
        let e1_2 = b.append_after(Tid(0), &[e2_1], ());
        let e2_2 = b.append_after(Tid(1), &[e1_1], ());
        let p = b.finish();
        assert_eq!(p.vc(e1_1).to_dense(), &[1, 0]);
        assert_eq!(p.vc(e2_1).to_dense(), &[0, 1]);
        assert_eq!(p.vc(e1_2).to_dense(), &[2, 1]);
        assert_eq!(p.vc(e2_2).to_dense(), &[1, 2]);
    }

    #[test]
    fn transitive_knowledge_flows_through_deps() {
        // t0: a ; t1: b after a ; t2: c after b — c must know about a.
        let mut bld = PosetBuilder::new(3);
        let a = bld.append(Tid(0), ());
        let b = bld.append_after(Tid(1), &[a], ());
        let c = bld.append_after(Tid(2), &[b], ());
        let p = bld.finish();
        assert_eq!(p.vc(c).to_dense(), &[1, 1, 1]);
        assert!(p.happened_before(a, c));
    }

    #[test]
    fn append_with_clock_round_trip() {
        let mut b = PosetBuilder::new(2);
        b.append_with_clock(Tid(0), VectorClock::from_components(vec![1, 0]), ());
        b.append_with_clock(Tid(1), VectorClock::from_components(vec![1, 1]), ());
        let p = b.finish();
        assert!(p.happened_before(EventId::new(Tid(0), 1), EventId::new(Tid(1), 1)));
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn append_with_clock_rejects_stale_clock() {
        let mut b = PosetBuilder::new(2);
        b.append_with_clock(Tid(0), VectorClock::from_components(vec![1, 5]), ());
        // Second clock does not dominate the first on component 1.
        b.append_with_clock(Tid(0), VectorClock::from_components(vec![2, 0]), ());
    }
}
