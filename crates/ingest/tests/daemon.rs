//! End-to-end acceptance tests for `paramount serve`: a real daemon on
//! loopback, real sockets, concurrent sessions, and the sequential BFS
//! enumerator as the ground-truth oracle.

use paramount_enumerate::bfs::{self, BfsOptions};
use paramount_enumerate::CountSink;
use paramount_ingest::{
    stream_program, Client, EndReason, Hello, ProtoPref, Server, ServerConfig, SessionReport,
    WireOp,
};
use paramount_trace::gen::{random_program, RandomProgramConfig};
use paramount_trace::textfmt::{trace_of_program, TraceFile};
use paramount_workloads::banking;
use std::net::SocketAddr;
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Duration;

/// The sequential oracle: full BFS enumeration of the trace's poset.
fn bfs_oracle(trace: &TraceFile) -> u64 {
    let poset = trace.to_poset(false);
    let mut sink = CountSink::default();
    bfs::enumerate(&poset, &BfsOptions::default(), &mut sink).expect("oracle BFS");
    sink.count
}

/// The slice of a [`SessionReport`] the notify channel carries.
#[derive(Debug)]
struct ReportInfo {
    label: Option<String>,
    reason: EndReason,
    events: u64,
    cuts: u64,
    complete: bool,
}

fn spawn_daemon(
    config: ServerConfig,
) -> (
    SocketAddr,
    paramount_ingest::ServerHandle,
    mpsc::Receiver<ReportInfo>,
    std::thread::JoinHandle<paramount_ingest::ServeSummary>,
) {
    let mut server = Server::new(config);
    let addr = server.bind_tcp("127.0.0.1:0").expect("bind loopback");
    let handle = server.handle();
    let (tx, rx) = mpsc::channel();
    let tx = Mutex::new(tx);
    let daemon = std::thread::spawn(move || {
        server
            .run(move |report: &SessionReport| {
                let _ = tx.lock().unwrap().send(ReportInfo {
                    label: report.label.clone(),
                    reason: report.reason,
                    events: report.events,
                    cuts: report.cuts,
                    complete: report.complete,
                });
            })
            .expect("daemon run")
    });
    (addr, handle, rx, daemon)
}

/// Eight clients stream different random traces concurrently into one
/// daemon; every session's cut count must equal the sequential BFS
/// enumeration of that session's poset (Theorem 2, per session).
#[test]
fn eight_concurrent_sessions_match_the_sequential_bfs_oracle() {
    let (addr, handle, _rx, daemon) = spawn_daemon(ServerConfig::default());

    let clients: Vec<_> = (0..8u64)
        .map(|seed| {
            std::thread::spawn(move || {
                let config = RandomProgramConfig {
                    threads: 2 + (seed as usize % 2),
                    steps_per_thread: 4 + (seed as usize % 2),
                    vars: 3,
                    locks: 1 + (seed as usize % 2),
                    lock_probability: 0.5,
                    write_probability: 0.4,
                };
                let program = random_program("wire", config, seed);
                let trace = trace_of_program(&program, seed);
                let expected = bfs_oracle(&trace);

                let mut client = Client::connect_tcp(addr).expect("connect");
                let mut hello = Hello::new(trace.threads);
                hello.label = Some(format!("oracle-{seed}"));
                client.hello(&hello).expect("hello");
                client.stream_trace(&trace).expect("stream");
                // Barrier mid-protocol: progress counters are monotone
                // and the connection survives the sync round-trip.
                let (events_so_far, _) = client.flush_sync().expect("flush");
                let report = client.finish().expect("finish");

                assert_eq!(report.reason, EndReason::End, "seed {seed}");
                assert!(report.complete, "seed {seed}");
                assert!(events_so_far <= report.events, "seed {seed}");
                assert_eq!(
                    report.cuts, expected,
                    "seed {seed}: daemon cut count must equal the BFS oracle"
                );
                report.cuts
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client thread");
    }

    handle.shutdown();
    let summary = daemon.join().expect("daemon thread");
    assert_eq!(summary.reports.len(), 8);
    assert_eq!(summary.ingest.sessions_opened, 8);
    assert_eq!(summary.ingest.sessions_completed, 8);
    assert_eq!(summary.ingest.sessions_aborted, 0);
    assert_eq!(summary.ingest.decode_errors, 0);
    assert!(summary.ingest.active_sessions_high_water >= 1);
}

/// A client dies mid-stream (socket dropped, no `END`, a segment still
/// open and a lock still held). The daemon must finalize that session
/// with an exact partial report (reason `disconnect`) and keep serving
/// other clients.
#[test]
fn mid_stream_disconnect_yields_partial_report_and_serving_continues() {
    let (addr, handle, rx, daemon) = spawn_daemon(ServerConfig::default());

    // The doomed client: three segments' worth of events, then gone.
    {
        let mut client = Client::connect_tcp(addr).expect("connect");
        let mut hello = Hello::new(2);
        hello.label = Some("doomed".to_string());
        client.hello(&hello).expect("hello");
        client.event(0, &WireOp::Write("a".into())).expect("event");
        client.event(1, &WireOp::Write("b".into())).expect("event");
        client
            .event(0, &WireOp::Acquire("m".into()))
            .expect("event");
        client.event(0, &WireOp::Write("c".into())).expect("event");
        // The barrier guarantees the daemon consumed everything before
        // the socket drops.
        client.flush_sync().expect("flush");
        // Drop without END: a mid-stream kill.
    }

    let report = rx
        .recv_timeout(Duration::from_secs(10))
        .expect("daemon must finalize the dropped session");
    assert_eq!(report.label.as_deref(), Some("doomed"));
    assert_eq!(report.reason, EndReason::Disconnect);
    assert!(
        report.complete,
        "partial report must still be Theorem-2 exact for the prefix"
    );
    // t0 contributed two segments (the acquire closed the first), t1 one:
    // a 2-chain times a 1-chain has 3 x 2 = 6 ideals.
    assert_eq!(report.events, 3);
    assert_eq!(report.cuts, 6);

    // The daemon is still alive and still correct for everyone else.
    let program = random_program("survivor", RandomProgramConfig::default(), 42);
    let trace = trace_of_program(&program, 42);
    let expected = bfs_oracle(&trace);
    let mut client = Client::connect_tcp(addr).expect("connect after kill");
    client.hello(&Hello::new(trace.threads)).expect("hello");
    client.stream_trace(&trace).expect("stream");
    let survivor = client.finish().expect("finish");
    assert_eq!(survivor.cuts, expected);
    assert!(survivor.complete);

    handle.shutdown();
    let summary = daemon.join().expect("daemon");
    assert_eq!(summary.reports.len(), 2);
    assert_eq!(summary.ingest.sessions_aborted, 1);
    assert_eq!(summary.ingest.sessions_completed, 1);
}

/// A real multi-threaded execution (the paper's online mode) streams over
/// the wire as it runs. The wide banking workload's lattice size is
/// interleaving-independent, so the count is checkable even for a
/// nondeterministic execution.
#[test]
fn live_threaded_execution_streams_over_the_wire() {
    let (addr, handle, _rx, daemon) = spawn_daemon(ServerConfig::default());

    let program = banking::wide_program(3, 2);
    let client = Client::connect_tcp(addr).expect("connect");
    let report = stream_program(client, &program, 1, |hello| {
        hello.label = Some("banking-live".to_string());
    })
    .expect("stream program");
    assert_eq!(report.reason, EndReason::End);
    assert!(report.complete);
    // Init write + 3 tellers x 4 segments, no cross edges among tellers:
    // 1 + 5^3 ideals (see banking::wide_program docs).
    assert_eq!(report.cuts, 126);

    handle.shutdown();
    daemon.join().expect("daemon");
}

/// Malformed and illegal frames are single-frame failures: the server
/// answers `ERR` with the right code and the session keeps going.
#[test]
fn malformed_input_is_survivable() {
    let (addr, handle, _rx, daemon) = spawn_daemon(ServerConfig::default());

    let mut client = Client::connect_tcp(addr).expect("connect");
    // Pin the text protocol: this test is about the server rejecting a
    // malformed text line mid-session (binary clients can't emit one —
    // `event_line` re-parses and fails locally under paramount/2).
    client.set_proto_pref(paramount_ingest::ProtoPref::V1);
    client.hello(&Hello::new(2)).expect("hello");
    client.event(0, &WireOp::Write("x".into())).expect("event");
    // A garbage line: ERR proto, session lives.
    client
        .event_line(0, "frobnicate the balance")
        .expect("queue");
    // An illegal (but well-formed) frame: ERR state, session lives.
    client
        .event(1, &WireOp::Release("m".into()))
        .expect("queue");
    let err = client.flush_sync().expect_err("first ERR surfaces");
    match err {
        paramount_ingest::ClientError::Rejected(e) => {
            assert_eq!(e.code, paramount_ingest::ErrCode::Proto)
        }
        other => panic!("expected a proto rejection, got {other}"),
    }
    // The client can keep using the connection: the second ERR (state)
    // and the FLUSH OK are still queued in order.
    // Re-sync: read the state ERR, then a fresh FLUSH round-trip.
    let err = client.flush_sync().expect_err("second ERR surfaces");
    match err {
        paramount_ingest::ClientError::Rejected(e) => {
            assert_eq!(e.code, paramount_ingest::ErrCode::State)
        }
        other => panic!("expected a state rejection, got {other}"),
    }
    // (t0's write is an open segment, so the live insertion count may
    // still be 0 — only the round-trip itself is under test here.)
    let (events, _cuts) = client.flush_sync().expect("stream recovered");
    assert!(events <= 2);
    client.event(1, &WireOp::Read("x".into())).expect("event");
    let report = client.finish().expect("finish");
    assert_eq!(report.reason, EndReason::End);
    assert!(report.complete);
    assert_eq!(report.events, 2);

    handle.shutdown();
    let summary = daemon.join().expect("daemon");
    assert_eq!(summary.ingest.decode_errors, 2);
    assert_eq!(summary.ingest.sessions_completed, 1);
}

/// Unix-domain sockets serve the same protocol, and a pre-session
/// `STATS` scrapes daemon-wide ingest counters.
#[cfg(unix)]
#[test]
fn unix_socket_sessions_and_daemon_stats() {
    let dir = std::env::temp_dir().join(format!("paramount-ingest-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("serve.sock");
    let _ = std::fs::remove_file(&path);

    let mut server = Server::new(ServerConfig::default());
    server.bind_unix(&path).expect("bind unix");
    let handle = server.handle();
    let daemon = std::thread::spawn(move || server.run(|_| {}).expect("run"));

    // Daemon-wide stats before any session exists.
    let mut probe = Client::connect_unix(&path).expect("connect probe");
    let stats = probe.stats().expect("daemon stats");
    assert!(
        stats.iter().any(|l| l.contains("\"sessions_opened\"")),
        "ingest counters must be scrapeable pre-session: {stats:?}"
    );
    drop(probe);

    let mut client = Client::connect_unix(&path).expect("connect unix");
    client.hello(&Hello::new(2)).expect("hello");
    client.event(0, &WireOp::Write("x".into())).expect("event");
    client.event(1, &WireOp::Read("x".into())).expect("event");
    // In-session stats: the engine's metrics JSON.
    let stats = client.stats().expect("session stats");
    assert!(stats.iter().any(|l| l.contains("\"metric\"")));
    let report = client.finish().expect("finish");
    assert_eq!(report.cuts, 4, "two concurrent events: 2x2 lattice");

    handle.shutdown();
    daemon.join().expect("daemon");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `SHUTDOWN` admin frame drains the daemon remotely, and sessions
/// live at drain time are finalized with reason `shutdown`.
#[test]
fn admin_shutdown_drains_live_sessions() {
    let (addr, handle, rx, daemon) = spawn_daemon(ServerConfig::default());

    // A session that never ENDs: it will be drained.
    let mut lingering = Client::connect_tcp(addr).expect("connect");
    let mut hello = Hello::new(1);
    hello.label = Some("drained".to_string());
    lingering.hello(&hello).expect("hello");
    lingering
        .event(0, &WireOp::Write("x".into()))
        .expect("event");
    lingering.flush_sync().expect("flush");

    // Admin connection asks the daemon to stop.
    let admin = Client::connect_tcp(addr).expect("connect admin");
    admin.request_shutdown().expect("shutdown frame");

    let report = rx
        .recv_timeout(Duration::from_secs(10))
        .expect("drained session must finalize");
    assert_eq!(report.label.as_deref(), Some("drained"));
    assert_eq!(report.reason, EndReason::Shutdown);
    assert!(report.complete);
    assert_eq!(report.events, 1);
    assert_eq!(report.cuts, 2);

    let summary = daemon.join().expect("daemon");
    assert_eq!(summary.reports.len(), 1);
    assert!(handle.is_shutdown());
}

/// Session limits on the wire: an oversized `HELLO` is rejected with
/// `ERR limit` before any engine spins up.
#[test]
fn oversized_hello_is_rejected_on_the_wire() {
    let (addr, handle, _rx, daemon) = spawn_daemon(ServerConfig::default());

    let mut client = Client::connect_tcp(addr).expect("connect");
    let limit = ServerConfig::default().session.limits.max_threads;
    let err = client.hello(&Hello::new(limit + 1)).expect_err("rejected");
    match err {
        paramount_ingest::ClientError::Rejected(e) => {
            assert_eq!(e.code, paramount_ingest::ErrCode::Limit)
        }
        other => panic!("expected a limit rejection, got {other}"),
    }

    handle.shutdown();
    let summary = daemon.join().expect("daemon");
    assert_eq!(summary.ingest.sessions_rejected, 1);
    assert_eq!(summary.ingest.sessions_opened, 0);
}

/// Mixed-version interop, both framings against one daemon: the same
/// trace streamed by a paramount/1-pinned client and a paramount/2-pinned
/// client yields identical reports, both equal to the BFS oracle.
#[test]
fn text_and_binary_framing_agree_with_the_bfs_oracle() {
    let (addr, handle, _rx, daemon) = spawn_daemon(ServerConfig::default());

    let config = RandomProgramConfig {
        threads: 3,
        steps_per_thread: 5,
        vars: 3,
        locks: 2,
        lock_probability: 0.5,
        write_probability: 0.4,
    };
    let program = random_program("interop", config, 7);
    let trace = trace_of_program(&program, 7);
    let expected = bfs_oracle(&trace);

    for (pref, want_proto) in [(ProtoPref::V1, 1u8), (ProtoPref::V2, 2u8)] {
        let mut client = Client::connect_tcp(addr).expect("connect");
        client.set_proto_pref(pref);
        client.hello(&Hello::new(trace.threads)).expect("hello");
        assert_eq!(client.proto(), want_proto, "negotiated version");
        client.stream_trace(&trace).expect("stream");
        let report = client.finish().expect("finish");
        assert_eq!(report.reason, EndReason::End);
        assert!(report.complete);
        assert_eq!(report.cuts, expected, "proto {want_proto} vs BFS oracle");
    }

    handle.shutdown();
    let summary = daemon.join().expect("daemon");
    assert_eq!(summary.ingest.sessions_completed, 2);
    assert_eq!(summary.ingest.decode_errors, 0);
}

/// An `auto` client offered paramount/2 to a v1-capped daemon falls back
/// to the text protocol on the same socket and still completes, while a
/// hard-pinned v2 client is turned away with `ERR version`.
#[test]
fn auto_client_falls_back_against_a_version_capped_daemon() {
    let config = ServerConfig {
        proto_max: 1,
        ..ServerConfig::default()
    };
    let (addr, handle, _rx, daemon) = spawn_daemon(config);

    // Hard-pinned v2: rejected, connection-level version error.
    let mut pinned = Client::connect_tcp(addr).expect("connect");
    pinned.set_proto_pref(ProtoPref::V2);
    let err = pinned.hello(&Hello::new(2)).expect_err("v2 refused");
    match err {
        paramount_ingest::ClientError::Rejected(e) => {
            assert_eq!(e.code, paramount_ingest::ErrCode::Version)
        }
        other => panic!("expected a version rejection, got {other}"),
    }

    // Auto (the default): second HELLO on the same socket, text framing.
    let mut client = Client::connect_tcp(addr).expect("connect");
    client.hello(&Hello::new(2)).expect("fallback hello");
    assert_eq!(client.proto(), 1, "fell back to paramount/1");
    client.event(0, &WireOp::Write("x".into())).expect("event");
    client.event(1, &WireOp::Read("x".into())).expect("event");
    let report = client.finish().expect("finish");
    assert_eq!(report.cuts, 4);
    assert!(report.complete);

    handle.shutdown();
    let summary = daemon.join().expect("daemon");
    assert_eq!(summary.ingest.sessions_completed, 1);
}

/// `STATS` surfaces the connection's negotiated `protocol_version` so
/// operators can audit which framing live clients actually speak.
#[test]
fn stats_report_the_negotiated_protocol_version() {
    let (addr, handle, _rx, daemon) = spawn_daemon(ServerConfig::default());

    let mut client = Client::connect_tcp(addr).expect("connect");
    client.hello(&Hello::new(2)).expect("hello");
    assert_eq!(client.proto(), 2);
    client.event(0, &WireOp::Write("x".into())).expect("event");
    let lines = client.stats().expect("stats");
    let gauge = lines
        .iter()
        .find(|l| l.contains("\"protocol_version\""))
        .expect("protocol_version gauge present");
    assert!(gauge.contains("\"value\":2"), "{gauge}");
    let report = client.finish().expect("finish");
    assert_eq!(report.events, 1);

    // A bare scrape connection never negotiated: it reports version 1.
    let mut scrape = Client::connect_tcp(addr).expect("connect");
    let lines = scrape.stats().expect("stats");
    let gauge = lines
        .iter()
        .find(|l| l.contains("\"protocol_version\""))
        .expect("protocol_version gauge present");
    assert!(gauge.contains("\"value\":1"), "{gauge}");

    handle.shutdown();
    daemon.join().expect("daemon");
}
