//! Random program generation — fuzz input for detector cross-validation.
//!
//! Generates structurally valid [`Program`]s (balanced locks, proper
//! fork/join) whose access patterns mix protected and unprotected reads and
//! writes, so FastTrack, the vector-clock oracle, and the ParaMount
//! predicate detector can be compared on thousands of distinct inputs.

use crate::{Op, Program, ProgramBuilder};
use paramount_poset::Tid;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Knobs for the random program generator.
#[derive(Clone, Copy, Debug)]
pub struct RandomProgramConfig {
    /// Worker threads (the main thread forks and joins them).
    pub threads: usize,
    /// Logical "statements" generated per worker (each may expand to a
    /// few ops).
    pub steps_per_thread: usize,
    /// Shared variables.
    pub vars: usize,
    /// Locks.
    pub locks: usize,
    /// Probability a statement is a critical section instead of a bare
    /// access (0 = everything racy, 1 = everything protected).
    pub lock_probability: f64,
    /// Probability an access is a write.
    pub write_probability: f64,
}

impl Default for RandomProgramConfig {
    fn default() -> Self {
        RandomProgramConfig {
            threads: 3,
            steps_per_thread: 8,
            vars: 4,
            locks: 2,
            lock_probability: 0.5,
            write_probability: 0.4,
        }
    }
}

/// Generates a random, validated program.
pub fn random_program(name: &str, config: RandomProgramConfig, seed: u64) -> Program {
    assert!(config.threads >= 1);
    assert!(config.vars >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    // threads + 1: thread 0 is the fork/join harness.
    let mut b = ProgramBuilder::new(name.to_string(), config.threads + 1);
    let vars = b.vars("v", config.vars);
    let locks = b.locks("l", config.locks.max(1));

    for t in 1..=config.threads {
        let tid = Tid::from(t);
        for _ in 0..config.steps_per_thread {
            let var = vars[rng.gen_range(0..vars.len())];
            let access = if rng.gen_bool(config.write_probability) {
                Op::Write(var)
            } else {
                Op::Read(var)
            };
            if config.locks > 0 && rng.gen_bool(config.lock_probability) {
                // Protect the access — and sometimes a second one — with a
                // randomly chosen lock.
                let lock = locks[rng.gen_range(0..locks.len())];
                if rng.gen_bool(0.3) {
                    let var2 = vars[rng.gen_range(0..vars.len())];
                    let access2 = if rng.gen_bool(config.write_probability) {
                        Op::Write(var2)
                    } else {
                        Op::Read(var2)
                    };
                    b.critical(tid, lock, [access, access2]);
                } else {
                    b.critical(tid, lock, [access]);
                }
            } else {
                b.push(tid, access);
            }
        }
    }
    b.fork_join_all();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimScheduler;

    #[test]
    fn generated_programs_are_valid_and_runnable() {
        for seed in 0..30 {
            let p = random_program("fuzz", RandomProgramConfig::default(), seed);
            assert!(p.validate().is_empty(), "seed {seed}");
            let poset = SimScheduler::new(seed).run(&p);
            assert!(poset.num_events() > 0, "seed {seed} captured nothing");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = random_program("fuzz", RandomProgramConfig::default(), 5);
        let b = random_program("fuzz", RandomProgramConfig::default(), 5);
        for t in 0..a.num_threads() {
            assert_eq!(a.script(Tid::from(t)), b.script(Tid::from(t)));
        }
    }

    #[test]
    fn lock_probability_extremes() {
        let all_locked = random_program(
            "locked",
            RandomProgramConfig {
                lock_probability: 1.0,
                ..RandomProgramConfig::default()
            },
            1,
        );
        let none_locked = random_program(
            "racy",
            RandomProgramConfig {
                lock_probability: 0.0,
                ..RandomProgramConfig::default()
            },
            1,
        );
        let count_acquires = |p: &Program| -> usize {
            (0..p.num_threads())
                .flat_map(|t| p.script(Tid::from(t)).iter())
                .filter(|op| matches!(op, Op::Acquire(_)))
                .count()
        };
        assert!(count_acquires(&all_locked) > 0);
        assert_eq!(count_acquires(&none_locked), 0);
    }
}
