//! A minimal Fx-style hasher for frontier deduplication.
//!
//! The BFS/DFS enumerators hash millions of small `Vec<u32>` frontiers;
//! std's SipHash costs more than the rest of the successor computation
//! combined. This is the classic Firefox/rustc multiply-rotate hash:
//! not DoS-resistant (irrelevant here — inputs are our own frontiers),
//! ~4× faster on short keys.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashSet`/`HashMap` alias used by the enumerators.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx multiply-rotate hasher.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u32(&mut self, value: u32) {
        self.add(value as u64);
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.add(value);
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.add(value as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: &T) -> u64 {
        let mut h = FxHasher::default();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_and_input_sensitive() {
        let a = vec![1u32, 2, 3];
        let b = vec![1u32, 2, 4];
        assert_eq!(hash_of(&a), hash_of(&a));
        assert_ne!(hash_of(&a), hash_of(&b));
        assert_ne!(hash_of(&vec![0u32; 4]), hash_of(&vec![0u32; 5]));
    }

    #[test]
    fn set_behaves() {
        let mut set: FxHashSet<Vec<u32>> = FxHashSet::default();
        assert!(set.insert(vec![1, 2]));
        assert!(!set.insert(vec![1, 2]));
        assert!(set.insert(vec![2, 1]));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn spreads_sequential_keys() {
        // Cheap sanity: 4k sequential frontiers should hit ~4k distinct
        // buckets of a 1<<16 table (no catastrophic clustering).
        let mut buckets = std::collections::HashSet::new();
        for i in 0..4096u32 {
            let h = hash_of(&vec![i, i / 3, 7]);
            buckets.insert(h & 0xffff);
        }
        assert!(buckets.len() > 3500, "only {} buckets", buckets.len());
    }
}
