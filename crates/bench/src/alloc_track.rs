//! A byte-counting global allocator — the instrument behind Figure 12
//! (memory usage of the lexical algorithm vs. L-Para).
//!
//! The paper measured JVM heap usage; here every allocation and
//! deallocation is counted at the allocator boundary, giving live-byte
//! and peak-byte numbers with no runtime dependency. Binaries opt in
//! with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: paramount_bench::alloc_track::CountingAllocator =
//!     paramount_bench::alloc_track::CountingAllocator;
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static EVENTS: AtomicUsize = AtomicUsize::new(0);

/// Counting wrapper around the system allocator.
pub struct CountingAllocator;

// SAFETY: delegates allocation to `System`, only adding counters.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            EVENTS.fetch_add(1, Ordering::Relaxed);
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            EVENTS.fetch_add(1, Ordering::Relaxed);
            if new_size >= layout.size() {
                let grow = new_size - layout.size();
                let live = LIVE.fetch_add(grow, Ordering::Relaxed) + grow;
                PEAK.fetch_max(live, Ordering::Relaxed);
            } else {
                LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        new_ptr
    }
}

/// Currently live heap bytes.
pub fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// Peak live bytes since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Resets the peak to the current live amount; returns the old peak.
pub fn reset_peak() -> usize {
    PEAK.swap(LIVE.load(Ordering::Relaxed), Ordering::Relaxed)
}

/// Measures the peak heap growth while `f` runs (relative to entry live
/// bytes). Only meaningful in binaries that installed
/// [`CountingAllocator`].
pub fn measure_peak<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let baseline = live_bytes();
    reset_peak();
    let value = f();
    let peak = peak_bytes().saturating_sub(baseline);
    (value, peak)
}

/// Total allocation events (every successful `alloc` or `realloc` call)
/// since process start.
pub fn alloc_events() -> usize {
    EVENTS.load(Ordering::Relaxed)
}

/// Counts allocation events while `f` runs — the instrument behind the
/// allocations-per-cut report (`allocs` binary). Only meaningful in
/// binaries that installed [`CountingAllocator`]; single caller at a time
/// (the counter is global), so wrap whole benchmark runs, not parallel
/// sub-tasks.
pub fn measure_allocs<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let before = alloc_events();
    let value = f();
    (value, alloc_events() - before)
}

/// Formats a byte count as MB with one decimal.
pub fn mb(bytes: usize) -> String {
    format!("{:.1} MB", bytes as f64 / (1024.0 * 1024.0))
}
