//! Property coverage for the WAL record codec and its crash model: for
//! arbitrary record streams and arbitrary tail damage (truncation at
//! any byte, or a bit flip at any position), reopening recovers exactly
//! a committed *prefix* of what was appended — never a reordering,
//! never a corrupted payload, never records past the damage point.

use paramount_durable::{FsyncPolicy, Record, Wal, WalConfig};
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;

fn scratch_dir(tag: &str) -> PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "paramount-walprop-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn write_all(dir: &PathBuf, records: &[(u8, Vec<u8>)], segment_bytes: usize) {
    let cfg = WalConfig {
        segment_bytes,
        fsync: FsyncPolicy::Never, // tests damage files by hand anyway
    };
    let (mut wal, existing) = Wal::open(dir, cfg).unwrap();
    assert!(existing.is_empty());
    for (kind, payload) in records {
        wal.append(*kind, payload).unwrap();
    }
}

fn reopen(dir: &PathBuf) -> Vec<Record> {
    let (_wal, records) = Wal::open(
        dir,
        WalConfig {
            fsync: FsyncPolicy::Never,
            ..WalConfig::default()
        },
    )
    .unwrap();
    records
}

/// Segment files of the log, in replay order.
fn segment_files(dir: &PathBuf) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    files.sort();
    files
}

fn assert_exact_prefix(recovered: &[Record], written: &[(u8, Vec<u8>)]) {
    assert!(
        recovered.len() <= written.len(),
        "recovery may not invent records"
    );
    for (rec, (kind, payload)) in recovered.iter().zip(written) {
        assert_eq!(rec.kind, *kind);
        assert_eq!(&rec.payload, payload, "committed prefix must be bit-exact");
    }
}

fn arb_records() -> impl Strategy<Value = Vec<(u8, Vec<u8>)>> {
    prop::collection::vec(
        (any::<u8>(), prop::collection::vec(any::<u8>(), 0..64)),
        1..24,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn undamaged_logs_replay_every_record(records in arb_records(), seg in 32usize..256) {
        let dir = scratch_dir("clean");
        write_all(&dir, &records, seg);
        let recovered = reopen(&dir);
        prop_assert_eq!(recovered.len(), records.len());
        assert_exact_prefix(&recovered, &records);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tail_truncation_recovers_a_committed_prefix(
        records in arb_records(),
        seg in 32usize..256,
        cut in any::<prop::sample::Index>(),
    ) {
        let dir = scratch_dir("cut");
        write_all(&dir, &records, seg);
        // Truncate the final segment at an arbitrary byte.
        let files = segment_files(&dir);
        let last = files.last().unwrap();
        let len = fs::metadata(last).unwrap().len() as usize;
        let keep = cut.index(len + 1);
        fs::OpenOptions::new()
            .write(true)
            .open(last)
            .unwrap()
            .set_len(keep as u64)
            .unwrap();
        let recovered = reopen(&dir);
        assert_exact_prefix(&recovered, &records);
        // Idempotence: reopening a repaired log changes nothing.
        prop_assert_eq!(reopen(&dir), recovered);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flips_never_surface_corrupt_records(
        records in arb_records(),
        seg in 32usize..256,
        victim in any::<prop::sample::Index>(),
        byte in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let dir = scratch_dir("flip");
        write_all(&dir, &records, seg);
        let files = segment_files(&dir);
        let path = &files[victim.index(files.len())];
        let mut bytes = fs::read(path).unwrap();
        if !bytes.is_empty() {
            let at = byte.index(bytes.len());
            bytes[at] ^= 1 << bit;
            fs::write(path, &bytes).unwrap();
        }
        let recovered = reopen(&dir);
        // Damage anywhere may shorten the replay, but every surviving
        // record must still be an exact prefix element.
        assert_exact_prefix(&recovered, &records);
        prop_assert_eq!(reopen(&dir), recovered);
        fs::remove_dir_all(&dir).unwrap();
    }
}
