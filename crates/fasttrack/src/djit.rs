//! DJIT⁺-style full-vector race detector — FastTrack's correctness oracle.
//!
//! Keeps, per variable, the *complete* per-thread clocks of the last write
//! and last read of every thread. Slower (`O(n)` per access) but with no
//! epoch subtleties, so its verdicts are easy to trust; the test suite
//! checks FastTrack against it on thousands of random programs.

use crate::{RaceKind, RaceReport};
use paramount_trace::{Op, OpObserver, VarId};
use paramount_vclock::{Tid, VectorClock};
use std::collections::HashMap;

/// The full-vector detector.
pub struct VectorDetector {
    n: usize,
    clocks: Vec<VectorClock>,
    locks: HashMap<paramount_trace::LockId, VectorClock>,
    /// Per variable: last write clock per thread / last read clock per
    /// thread (component `u` = clock of `u`'s last such access).
    vars: HashMap<VarId, AccessVectors>,
    races: Vec<RaceReport>,
}

struct AccessVectors {
    writes: VectorClock,
    reads: VectorClock,
}

impl VectorDetector {
    /// A detector for `n` threads.
    pub fn new(n: usize) -> Self {
        let mut clocks: Vec<VectorClock> = (0..n).map(|_| VectorClock::zero(n)).collect();
        for (t, c) in clocks.iter_mut().enumerate() {
            c.tick(Tid::from(t));
        }
        VectorDetector {
            n,
            clocks,
            locks: HashMap::new(),
            vars: HashMap::new(),
            races: Vec::new(),
        }
    }

    /// First race per variable, in detection order.
    pub fn races(&self) -> &[RaceReport] {
        &self.races
    }

    /// Distinct racy variables, sorted.
    pub fn racy_vars(&self) -> Vec<VarId> {
        let mut v: Vec<VarId> = self.races.iter().map(|r| r.var).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    fn report(&mut self, var: VarId, kind: RaceKind, tid: Tid, other: Tid) {
        if !self.races.iter().any(|r| r.var == var) {
            self.races.push(RaceReport {
                var,
                kind,
                tid,
                other,
            });
        }
    }

    /// First thread whose recorded access is not ordered before `clock`.
    fn unordered_thread(history: &VectorClock, clock: &VectorClock, me: Tid) -> Option<Tid> {
        for u in 0..history.len() {
            let tu = Tid::from(u);
            if tu != me && history.get(tu) > clock.get(tu) {
                return Some(tu);
            }
        }
        None
    }
}

impl OpObserver for VectorDetector {
    fn op(&mut self, t: Tid, op: Op) {
        let n = self.n;
        match op {
            Op::Read(x) => {
                let clock = self.clocks[t.index()].clone();
                let state = self.vars.entry(x).or_insert_with(|| AccessVectors {
                    writes: VectorClock::zero(n),
                    reads: VectorClock::zero(n),
                });
                let racer = Self::unordered_thread(&state.writes, &clock, t);
                state.reads.set(t, clock.get(t));
                if let Some(other) = racer {
                    self.report(x, RaceKind::WriteRead, t, other);
                }
            }
            Op::Write(x) => {
                let clock = self.clocks[t.index()].clone();
                let state = self.vars.entry(x).or_insert_with(|| AccessVectors {
                    writes: VectorClock::zero(n),
                    reads: VectorClock::zero(n),
                });
                let write_racer = Self::unordered_thread(&state.writes, &clock, t);
                let read_racer = Self::unordered_thread(&state.reads, &clock, t);
                state.writes.set(t, clock.get(t));
                if let Some(other) = write_racer {
                    self.report(x, RaceKind::WriteWrite, t, other);
                } else if let Some(other) = read_racer {
                    self.report(x, RaceKind::ReadWrite, t, other);
                }
            }
            Op::Acquire(l) => {
                let lock = self
                    .locks
                    .entry(l)
                    .or_insert_with(|| VectorClock::zero(n))
                    .clone();
                self.clocks[t.index()].join(&lock);
            }
            Op::Release(l) => {
                let entry = self.locks.entry(l).or_insert_with(|| VectorClock::zero(n));
                entry.clone_from(&self.clocks[t.index()]);
                self.clocks[t.index()].tick(t);
            }
            Op::Fork(u) => {
                let parent = self.clocks[t.index()].clone();
                self.clocks[u.index()].join(&parent);
                self.clocks[t.index()].tick(t);
            }
            Op::Join(u) => {
                let child = self.clocks[u.index()].clone();
                self.clocks[t.index()].join(&child);
                self.clocks[u.index()].tick(u);
            }
            Op::Work(_) => {}
        }
    }

    fn thread_finished(&mut self, _t: Tid) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FastTrack;
    use paramount_trace::gen::{random_program, RandomProgramConfig};
    use paramount_trace::sim::SimScheduler;
    use paramount_trace::{LockId, PairObserver, ProgramBuilder};

    #[test]
    fn basic_race_detected() {
        let mut b = ProgramBuilder::new("racy", 3);
        let x = b.var("x");
        b.push(Tid(1), Op::Write(x));
        b.push(Tid(2), Op::Write(x));
        b.fork_join_all();
        let p = b.build();
        let mut d = VectorDetector::new(3);
        SimScheduler::new(0).run_with(&p, &mut d);
        assert_eq!(d.racy_vars(), vec![x]);
    }

    #[test]
    fn protected_accesses_clean() {
        let mut b = ProgramBuilder::new("clean", 3);
        let x = b.var("x");
        let l = b.lock("m");
        b.critical(Tid(1), l, [Op::Write(x)]);
        b.critical(Tid(2), l, [Op::Write(x)]);
        b.fork_join_all();
        let p = b.build();
        let mut d = VectorDetector::new(3);
        SimScheduler::new(0).run_with(&p, &mut d);
        assert!(d.races().is_empty());
    }

    #[test]
    fn fasttrack_agrees_with_vector_detector_on_random_programs() {
        // The headline cross-validation: identical racy-variable sets on
        // many random programs × schedules.
        let mut checked = 0;
        for seed in 0..120u64 {
            let config = RandomProgramConfig {
                threads: 2 + (seed % 3) as usize,
                steps_per_thread: 6,
                vars: 3,
                locks: 2,
                lock_probability: 0.3 + 0.4 * ((seed % 5) as f64 / 5.0),
                write_probability: 0.5,
            };
            let p = random_program("fuzz", config, seed);
            let pair = {
                let mut pair = PairObserver(
                    FastTrack::new(p.num_threads()),
                    VectorDetector::new(p.num_threads()),
                );
                SimScheduler::new(seed.wrapping_mul(31)).run_with(&p, &mut pair);
                pair
            };
            assert_eq!(
                pair.0.racy_vars(),
                pair.1.racy_vars(),
                "detectors disagree on seed {seed}"
            );
            checked += 1;
        }
        assert_eq!(checked, 120);
    }

    #[test]
    fn manual_interleaving_matches_fasttrack() {
        let (x, l) = (VarId(0), LockId(0));
        let script: Vec<(Tid, Op)> = vec![
            (Tid(0), Op::Write(x)),
            (Tid(0), Op::Release(l)),
            (Tid(1), Op::Acquire(l)),
            (Tid(1), Op::Write(x)),
            (Tid(2), Op::Read(x)), // races with both writes
        ];
        let mut ft = FastTrack::new(3);
        let mut vd = VectorDetector::new(3);
        for &(t, op) in &script {
            ft.op(t, op);
            vd.op(t, op);
        }
        assert_eq!(ft.racy_vars(), vd.racy_vars());
        assert_eq!(vd.racy_vars(), vec![x]);
    }
}
