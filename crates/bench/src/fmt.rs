//! Plain-text table rendering for the harness binaries.

/// A simple aligned-column table printer.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Human formatting for large counts (`42,193,201`).
pub fn group_digits(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "12345".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn digit_grouping() {
        assert_eq!(group_digits(0), "0");
        assert_eq!(group_digits(999), "999");
        assert_eq!(group_digits(1000), "1,000");
        assert_eq!(group_digits(4_962_000_000), "4,962,000,000");
    }
}
