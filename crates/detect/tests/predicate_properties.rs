//! Property tests for the race predicate: on randomly generated posets
//! with random access collections, the owner-based evaluation over the
//! interval partition finds exactly the pairwise oracle's racy variables.

use paramount_detect::RacePredicate;
use paramount_poset::builder::PosetBuilder;
use paramount_poset::{oracle, topo, CutSpace, EventId, Poset, Tid};
use paramount_trace::{Access, EventCollection, TraceEvent, VarId};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct SyntheticTrace {
    n: usize,
    /// Per thread: events, each a set of (var, is_write, init) plus
    /// optional dependency on (thread, index).
    events: Vec<Vec<(Vec<(u8, bool, bool)>, Option<(usize, u32)>)>>,
}

fn arb_trace() -> impl Strategy<Value = SyntheticTrace> {
    let access = (0u8..3, any::<bool>(), prop::bool::weighted(0.15));
    let event = (
        prop::collection::vec(access, 1..3),
        prop::option::weighted(0.3, (0usize..3, 1u32..3)),
    );
    let thread = prop::collection::vec(event, 1..4);
    prop::collection::vec(thread, 2..4).prop_map(|events| SyntheticTrace {
        n: events.len(),
        events,
    })
}

fn build(trace: &SyntheticTrace) -> Poset<TraceEvent> {
    let mut b = PosetBuilder::new(trace.n);
    // Build thread-by-thread round-robin so forward deps usually exist;
    // nonexistent deps are dropped.
    let max_len = trace.events.iter().map(Vec::len).max().unwrap_or(0);
    for round in 0..max_len {
        for (t, thread_events) in trace.events.iter().enumerate() {
            if let Some((accesses, dep)) = thread_events.get(round) {
                let mut ec = EventCollection::new();
                for &(var, write, init) in accesses {
                    let access = match (write, init) {
                        (true, true) => Access::init_write(VarId(var as u32)),
                        (true, false) => Access::write(VarId(var as u32)),
                        (false, _) => Access::read(VarId(var as u32)),
                    };
                    ec.record(access);
                }
                let deps: Vec<EventId> = dep
                    .and_then(|(dt, di)| {
                        // The dependency must already be appended: by the
                        // start of round `round`, thread `dt` has appended
                        // min(round, its length) events.
                        let appended = round.min(trace.events.get(dt)?.len());
                        if dt != t && dt < trace.n && (di as usize) <= appended {
                            Some(EventId::new(Tid::from(dt), di))
                        } else {
                            None
                        }
                    })
                    .into_iter()
                    .collect();
                b.append_after(Tid::from(t), &deps, TraceEvent::Accesses(ec));
            }
        }
    }
    b.finish()
}

/// Pairwise oracle: racy vars = conflicting accesses on concurrent events.
fn oracle_vars(poset: &Poset<TraceEvent>, ignore_init: bool) -> Vec<VarId> {
    let ids: Vec<EventId> = poset.events().map(|e| e.id).collect();
    let mut racy = Vec::new();
    for (i, &a) in ids.iter().enumerate() {
        for &b in &ids[i + 1..] {
            if a.tid == b.tid || !poset.concurrent(a, b) {
                continue;
            }
            let (Some(ca), Some(cb)) =
                (poset.payload(a).collection(), poset.payload(b).collection())
            else {
                continue;
            };
            for x in ca.accesses() {
                for y in cb.accesses() {
                    if x.conflicts_with(y) && !(ignore_init && (x.init || y.init)) {
                        racy.push(x.var);
                    }
                }
            }
        }
    }
    racy.sort_unstable();
    racy.dedup();
    racy
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Owner-based evaluation over the canonical interval partition
    /// equals the pairwise oracle, in both init modes.
    #[test]
    fn partitioned_race_predicate_equals_oracle(trace in arb_trace()) {
        let poset = build(&trace);
        let order = topo::weight_order(&poset);
        let intervals = paramount::partition(&poset, &order);
        for ignore_init in [false, true] {
            let predicate = RacePredicate::new(4, ignore_init);
            for iv in &intervals {
                let mut bridge = |cut: paramount_poset::CutRef<'_>| {
                    predicate.evaluate(&poset, cut, iv.event)
                };
                iv.enumerate(&poset, paramount::Algorithm::Lexical, &mut bridge)
                    .unwrap();
            }
            prop_assert_eq!(
                predicate.racy_vars(),
                oracle_vars(&poset, ignore_init),
                "ignore_init={}", ignore_init
            );
        }
    }

    /// The all-pairs (Figure 3 / RV) form over the full lattice agrees
    /// with the owner-based form.
    #[test]
    fn all_pairs_equals_owner_form(trace in arb_trace()) {
        let poset = build(&trace);
        prop_assume!(CutSpace::num_threads(&poset) <= 3);
        let all_cuts = oracle::enumerate_product_scan(&poset);
        let all_pairs = RacePredicate::new(4, true);
        for cut in &all_cuts {
            let _ = all_pairs.evaluate_all_pairs(&poset, cut);
        }
        prop_assert_eq!(all_pairs.racy_vars(), oracle_vars(&poset, true));
    }
}
