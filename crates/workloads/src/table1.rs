//! The enumeration inputs of Table 1: the `d-*` posets plus the traces of
//! `bank`, `tsp`, `hedc` and `elevator` at enumeration scale.
//!
//! Table 1 measures *pure enumeration* (no predicate), so these are plain
//! posets. Sizes were calibrated against the paper (see `EXPERIMENTS.md`):
//!
//! | input | paper cuts | [`Scale::Default`] cuts | notes |
//! |---|---|---|---|
//! | d-300 | 42 M | ~42.5 M | paper-exact events (10×30) and size |
//! | d-500 | 237 M | ~222 M | paper-exact events (10×50), −6% size |
//! | d-10K | 4,962 M | ~1,130 M | paper-exact events (10×1000), 4.4× down |
//! | bank | 815.7 M (=13⁸) | 43.0 M (=9⁸) | same full-product shape, scaled |
//! | tsp | 13 M | ~13 M | same order, deep-pruning trace |
//! | hedc | 4,486 M | ~61 M | same wide shape, scaled |
//! | elevator | 27,643 M | see `EXPERIMENTS.md` | same long-wide shape, scaled |
//!
//! The paper's `bank`, `hedc` and `elevator` rows exhaust BFS memory; the
//! scaled lattices preserve that by keeping their BFS peak width above
//! the harness's frontier budget while the `d-*`/`tsp` widths stay below.
//! [`Scale::Full`] restores paper-exact `bank` (13⁸) for long runs.

use crate::{banking, elevator, hedc, tsp};
use paramount_poset::Poset;
use paramount_trace::sim::SimScheduler;
use paramount_trace::TraceEvent;

/// Benchmark sizing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long smoke runs (CI, tests).
    Smoke,
    /// The default harness size (minutes for the full table).
    Default,
    /// Paper-exact `bank` and larger `hedc`/`elevator` (hours).
    Full,
}

/// One Table 1 input.
pub struct Table1Input {
    /// Row name, matching the paper.
    pub name: &'static str,
    /// Threads/processes (the paper's `n` column).
    pub n: usize,
    /// The poset to enumerate.
    pub poset: Poset<TraceEvent>,
}

fn erase(p: Poset<()>) -> Poset<TraceEvent> {
    // Random posets carry no payloads; give them empty collections so the
    // whole table is one poset type.
    Poset::from_threads(
        (0..paramount_poset::CutSpace::num_threads(&p))
            .map(|t| {
                p.thread_events(paramount_poset::Tid::from(t))
                    .map(|e| paramount_poset::Event {
                        id: e.id,
                        vc: e.vc.clone(),
                        payload: TraceEvent::Accesses(paramount_trace::EventCollection::new()),
                    })
                    .collect()
            })
            .collect(),
    )
}

/// Builds every Table 1 row at the given scale.
pub fn inputs(scale: Scale) -> Vec<Table1Input> {
    // (d300 events, d500 events, d10k events, bank rounds, tsp subs,
    //  hedc segments, elevator (trips, moves))
    let (d300, d500, d10k, bank, tsp_sub, hedc_seg, elev) = match scale {
        Scale::Smoke => (10usize, 12, 16, 2, 4, 2, (2usize, 2usize)),
        Scale::Default => (30, 50, 1000, 4, 20, 4, (3, 3)),
        Scale::Full => (30, 50, 1000, 6, 40, 5, (3, 4)),
    };
    vec![
        Table1Input {
            name: "d-300",
            n: 10,
            poset: erase(crate::distributed::scaled(d300, 0.83, 300).generate()),
        },
        Table1Input {
            name: "d-500",
            n: 10,
            poset: erase(crate::distributed::scaled(d500, 0.705, 500).generate()),
        },
        Table1Input {
            name: "d-10K",
            n: 10,
            poset: erase(crate::distributed::scaled(d10k, 0.98, 10_000).generate()),
        },
        Table1Input {
            name: "bank",
            n: 9,
            poset: SimScheduler::new(17).run(&banking::wide_program(8, bank)),
        },
        Table1Input {
            name: "tsp",
            n: 9,
            poset: SimScheduler::new(17).run(&tsp::program(&tsp::Params {
                workers: 8,
                subproblems: tsp_sub,
                prune_depth: 2,
            })),
        },
        Table1Input {
            name: "hedc",
            n: 12,
            poset: SimScheduler::new(17).run(&hedc::wide_program(11, hedc_seg)),
        },
        Table1Input {
            name: "elevator",
            n: 12,
            poset: SimScheduler::new(17).run(&elevator::wide_program(11, elev.0, elev.1)),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_inputs_have_expected_shapes() {
        let inputs = inputs(Scale::Smoke);
        assert_eq!(inputs.len(), 7);
        for input in &inputs {
            assert_eq!(
                paramount_poset::CutSpace::num_threads(&input.poset),
                input.n,
                "{}",
                input.name
            );
            assert!(input.poset.num_events() > 0, "{}", input.name);
        }
    }

    #[test]
    fn smoke_lattices_are_enumerable_and_nontrivial() {
        use paramount_enumerate::{lexical, EnumError};
        use std::ops::ControlFlow;
        // Cap the walk: the test asserts non-degeneracy, not the exact
        // size (full sizes are the harness's job and take minutes).
        const CAP: u64 = 2_000_000;
        for input in inputs(Scale::Smoke) {
            let mut count = 0u64;
            let mut sink = |_: paramount_poset::CutRef<'_>| {
                count += 1;
                if count >= CAP {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            };
            match lexical::enumerate(&input.poset, &mut sink) {
                Ok(_) | Err(EnumError::Stopped) => {}
                Err(e) => panic!("{}: {e}", input.name),
            }
            assert!(
                count > input.poset.num_events() as u64,
                "{}: lattice degenerate ({count} cuts)",
                input.name
            );
        }
    }

    #[test]
    fn default_events_match_paper_counts() {
        // The d-* rows keep the paper's event counts exactly.
        let inputs = inputs(Scale::Default);
        assert_eq!(inputs[0].poset.num_events(), 300);
        assert_eq!(inputs[1].poset.num_events(), 500);
        assert_eq!(inputs[2].poset.num_events(), 10_000);
    }
}
