//! End-to-end durability acceptance: sessions on a `--data-dir` daemon
//! survive disconnects and full daemon restarts, resume via `RESUME`,
//! and finish with reports identical to an unbroken control session
//! (Theorem 3 exactness is a function of the accepted event sequence
//! alone, so "identical report" is the whole durability contract).

use paramount_durable::FsyncPolicy;
use paramount_ingest::{
    session_dir, Client, ClientError, EndReason, ErrCode, Hello, Server, ServerConfig,
    SessionReport, WireOp,
};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Duration;

fn temp_root(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("paramount-durability-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_config(root: &Path) -> ServerConfig {
    ServerConfig {
        data_dir: Some(root.to_path_buf()),
        // Small enough that an eight-op trace crosses checkpoint boundaries.
        checkpoint_every_events: 3,
        // The tests kill connections, not the OS; skip the fsync latency.
        fsync: FsyncPolicy::Never,
        ..ServerConfig::default()
    }
}

fn spawn_daemon(
    config: ServerConfig,
) -> (
    SocketAddr,
    paramount_ingest::ServerHandle,
    mpsc::Receiver<SessionReport>,
    std::thread::JoinHandle<paramount_ingest::ServeSummary>,
) {
    let mut server = Server::new(config);
    let addr = server.bind_tcp("127.0.0.1:0").expect("bind loopback");
    let handle = server.handle();
    let (tx, rx) = mpsc::channel();
    let tx = Mutex::new(tx);
    let daemon = std::thread::spawn(move || {
        server
            .run(move |report: &SessionReport| {
                let _ = tx.lock().unwrap().send(report.clone());
            })
            .expect("daemon run")
    });
    (addr, handle, rx, daemon)
}

/// A legal eight-op two-thread trace: t0 works under a lock, then t1
/// takes the same lock.
fn ops() -> Vec<(usize, WireOp)> {
    vec![
        (0, WireOp::Write("x".into())),
        (0, WireOp::Acquire("m".into())),
        (0, WireOp::Write("y".into())),
        (0, WireOp::Release("m".into())),
        (1, WireOp::Write("z".into())),
        (1, WireOp::Acquire("m".into())),
        (1, WireOp::Write("w".into())),
        (1, WireOp::Release("m".into())),
    ]
}

fn send_range(client: &mut Client, ops: &[(usize, WireOp)]) {
    for (tid, op) in ops {
        client.event(*tid, op).expect("event");
    }
}

/// The unbroken control run: one session, all ops, clean END.
fn control_report(addr: SocketAddr) -> paramount_ingest::WireReport {
    let mut client = Client::connect_tcp(addr).expect("connect control");
    client.hello(&Hello::new(2)).expect("hello");
    send_range(&mut client, &ops());
    client.finish().expect("finish control")
}

/// A cleanly ENDed durable session leaves nothing behind: the per-session
/// store directory is deleted the moment the final report is cut.
#[test]
fn clean_end_deletes_the_session_store() {
    let root = temp_root("clean-end");
    let (addr, handle, _rx, daemon) = spawn_daemon(durable_config(&root));

    let mut client = Client::connect_tcp(addr).expect("connect");
    let session = client.hello(&Hello::new(2)).expect("hello");
    send_range(&mut client, &ops());
    let report = client.finish().expect("finish");
    assert_eq!(report.reason, EndReason::End);
    assert!(report.complete);
    assert!(
        !session_dir(&root, session).exists(),
        "clean END must delete the session store"
    );

    handle.shutdown();
    let summary = daemon.join().expect("daemon");
    assert!(
        summary.ingest.checkpoint_writes >= 1,
        "eight ops at checkpoint_every=3 must write checkpoints"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// A client dies mid-stream; a second connection `RESUME`s the session
/// on the same (still-running) daemon, streams only the tail, and the
/// final report matches the unbroken control run exactly.
#[test]
fn resume_after_disconnect_matches_the_unbroken_control() {
    let root = temp_root("resume-disconnect");
    let (addr, handle, rx, daemon) = spawn_daemon(durable_config(&root));
    let expected = control_report(addr);
    let all = ops();

    // First attempt: four ops, a barrier so the daemon holds them, then
    // a dead socket.
    let session = {
        let mut client = Client::connect_tcp(addr).expect("connect");
        let session = client.hello(&Hello::new(2)).expect("hello");
        send_range(&mut client, &all[..4]);
        client.flush_sync().expect("flush");
        session
    };
    // Wait for the daemon to finalize the drop — the store must outlive
    // the session (that is the durability contract for `disconnect`).
    let dropped = loop {
        let report = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("disconnect report");
        if report.reason == EndReason::Disconnect {
            break report;
        }
    };
    assert!(dropped.complete, "the partial prefix is still exact");
    assert!(
        session_dir(&root, session).exists(),
        "disconnect must keep the store for resumption"
    );

    // Second attempt: RESUME, trust the server's acked count, send only
    // what it has not seen.
    let mut client = Client::connect_tcp(addr).expect("reconnect");
    let acked = client.resume(session).expect("resume");
    assert_eq!(acked, 4, "server acknowledged exactly the flushed prefix");
    send_range(&mut client, &all[acked as usize..]);
    let report = client.finish().expect("finish resumed");

    assert_eq!(report.reason, EndReason::End);
    assert!(report.complete);
    assert_eq!(report.events, expected.events, "resumed events == control");
    assert_eq!(report.cuts, expected.cuts, "resumed cuts == control");
    assert!(!session_dir(&root, session).exists());

    handle.shutdown();
    daemon.join().expect("daemon");
    let _ = std::fs::remove_dir_all(&root);
}

/// Full daemon restart: the first daemon is shut down with a session
/// still open (reason `shutdown`, store kept). A second daemon booted on
/// the same `--data-dir` recovers the session at startup; `RESUME`
/// continues it and the report matches the control.
#[test]
fn daemon_restart_recovers_and_resumes_persisted_sessions() {
    let root = temp_root("restart");
    let all = ops();

    // Daemon #1: take five ops, then drain with the session open.
    let (addr, handle, rx, daemon) = spawn_daemon(durable_config(&root));
    let expected = control_report(addr);
    let mut client = Client::connect_tcp(addr).expect("connect");
    let session = client.hello(&Hello::new(2)).expect("hello");
    send_range(&mut client, &all[..5]);
    client.flush_sync().expect("flush");
    handle.shutdown();
    let drained = loop {
        let report = rx.recv_timeout(Duration::from_secs(10)).expect("report");
        if report.reason == EndReason::Shutdown {
            break report;
        }
    };
    assert!(drained.complete);
    daemon.join().expect("daemon #1");
    drop(client);
    assert!(
        session_dir(&root, session).exists(),
        "shutdown must keep the store for the next boot"
    );

    // Daemon #2, same data-dir: boot recovery parks the session.
    let (addr, handle, _rx, daemon) = spawn_daemon(durable_config(&root));
    let mut client = Client::connect_tcp(addr).expect("reconnect");
    let acked = client.resume(session).expect("resume across restart");
    assert_eq!(acked, 5);
    send_range(&mut client, &all[acked as usize..]);
    let report = client.finish().expect("finish resumed");
    assert_eq!(report.reason, EndReason::End);
    assert!(report.complete);
    assert_eq!(report.events, expected.events);
    assert_eq!(
        report.cuts, expected.cuts,
        "restart-resumed cuts == control"
    );

    handle.shutdown();
    let summary = daemon.join().expect("daemon #2");
    assert!(
        summary.ingest.sessions_recovered >= 1,
        "boot must count the recovered session"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// `RESUME` of a session the daemon does not know is a *state* error —
/// non-fatal by contract, so the same connection can fall back to a
/// fresh `HELLO` (exactly what `send_trace_with_retry` does).
#[test]
fn resume_of_unknown_session_falls_back_to_hello() {
    let root = temp_root("unknown-resume");
    let (addr, handle, _rx, daemon) = spawn_daemon(durable_config(&root));

    let mut client = Client::connect_tcp(addr).expect("connect");
    let err = client.resume(999_999).expect_err("unknown session");
    match err {
        ClientError::Rejected(e) => assert_eq!(e.code, ErrCode::State),
        other => panic!("expected a state rejection, got {other}"),
    }
    // Same connection, fresh session: the rejection was survivable.
    client.hello(&Hello::new(2)).expect("hello after rejection");
    send_range(&mut client, &ops());
    let report = client.finish().expect("finish");
    assert_eq!(report.reason, EndReason::End);
    assert!(report.complete);

    handle.shutdown();
    daemon.join().expect("daemon");
    let _ = std::fs::remove_dir_all(&root);
}

/// Recovery replay routes through the cold disk tier: a restarted
/// daemon whose memory watermarks sit far below the resumed prefix must
/// spill the backlog to disk during boot replay (not hold it all in
/// RAM) and still finish the session with the control's exact counts.
/// Chaos-gated: the seeded `worker_delay_us` fault stalls the pool so
/// the replay backlog deterministically outruns the drain (a fast
/// machine would otherwise keep the one-slot queue empty and never
/// exercise the spill path).
#[cfg(feature = "chaos")]
#[test]
fn recovery_replay_spills_to_the_cold_disk_tier() {
    let root = temp_root("replay-spill");
    // A big backlog of *poset* events: the recorder merges consecutive
    // same-thread accesses into one segment, so plain write runs
    // collapse to a single event per thread. Bracketing every write
    // with a per-thread lock closes the segment each iteration — two
    // threads on distinct locks stay pairwise concurrent, and 50
    // iterations × 3 ops × 2 threads yields hundreds of poset events
    // (and a large cut grid) for replay to re-enumerate.
    let mut big: Vec<(usize, WireOp)> = Vec::new();
    for _ in 0..50 {
        for t in 0..2usize {
            let (lock, var) = if t == 0 { ("l0", "x") } else { ("l1", "y") };
            big.push((t, WireOp::Acquire(lock.into())));
            big.push((t, WireOp::Write(var.into())));
            big.push((t, WireOp::Release(lock.into())));
        }
    }

    // Daemon #1: generous config takes the whole stream, then drains
    // with the session open (store kept).
    let (addr, handle, rx, daemon) = spawn_daemon(durable_config(&root));
    let expected = {
        let mut client = Client::connect_tcp(addr).expect("connect control");
        client.hello(&Hello::new(2)).expect("hello");
        send_range(&mut client, &big);
        client.finish().expect("finish control")
    };
    let mut client = Client::connect_tcp(addr).expect("connect");
    let session = client.hello(&Hello::new(2)).expect("hello");
    send_range(&mut client, &big);
    client.flush_sync().expect("flush");
    handle.shutdown();
    loop {
        let report = rx.recv_timeout(Duration::from_secs(10)).expect("report");
        if report.reason == EndReason::Shutdown {
            break;
        }
    }
    daemon.join().expect("daemon #1");
    drop(client);

    // Daemon #2: watermarks of a few KiB — far below the backlog — but
    // an ample disk tier. Boot replay must spill instead of ballooning.
    // A one-slot dispatch queue plus a per-interval worker stall makes
    // the backlog deterministic: replay inserts events as fast as the
    // WAL decodes while the single worker crawls, so overflow intervals
    // land in the spill deque, cross the soft watermark, and freeze to
    // disk.
    let mut tight = durable_config(&root);
    tight.governor.soft_spill_bytes = Some(2048);
    tight.governor.hard_spill_bytes = Some(4096);
    tight.governor.disk_spill_bytes = Some(64 * 1024 * 1024);
    tight.session.engine.workers = 1;
    tight.session.engine.queue_capacity = 1;
    tight.session.engine.faults.worker_delay_us = Some(500);
    let (addr, handle, rx, daemon) = spawn_daemon(tight);
    let mut client = Client::connect_tcp(addr).expect("reconnect");
    let acked = client.resume(session).expect("resume under tight budget");
    assert_eq!(acked, big.len() as u64);
    let report = client.finish().expect("finish resumed");
    assert!(report.complete, "spilled replay must stay exact");
    assert_eq!(report.events, expected.events);
    assert_eq!(report.cuts, expected.cuts, "spilled replay cuts == control");
    let finalized = loop {
        let report = rx.recv_timeout(Duration::from_secs(10)).expect("report");
        if report.reason == EndReason::End {
            break report;
        }
    };
    assert!(
        finalized.metrics.disk_spill_batches >= 1,
        "a {}-event replay against a 4 KiB hard watermark must hit disk \
         (got {} disk batches)",
        big.len(),
        finalized.metrics.disk_spill_batches
    );

    handle.shutdown();
    daemon.join().expect("daemon #2");
    let _ = std::fs::remove_dir_all(&root);
}

/// The quarantine ledger's exact `[Gmin, Gbnd]` bounds survive a daemon
/// restart: checkpointed QUAR lines are restored into the recovered
/// session and lead its final report's ledger, while replay itself
/// re-enumerates those intervals (so the resumed run is complete).
#[cfg(feature = "chaos")]
#[test]
fn quarantine_bounds_survive_restart_and_resume() {
    let root = temp_root("quarantine-bounds");
    let all = ops();

    // Daemon #1: every 3rd interval dispatch fails by injection, so the
    // stream quarantines intervals with exact bounds; checkpoint every
    // event so the ledger is persisted as it grows.
    let mut faulty = durable_config(&root);
    faulty.checkpoint_every_events = 1;
    faulty.session.engine.faults.send_fail_every = Some(3);
    let (addr, handle, rx, daemon) = spawn_daemon(faulty);
    let mut client = Client::connect_tcp(addr).expect("connect");
    let session = client.hello(&Hello::new(2)).expect("hello");
    send_range(&mut client, &all);
    client.flush_sync().expect("flush");
    drop(client);
    let dropped = loop {
        let report = rx.recv_timeout(Duration::from_secs(10)).expect("report");
        if report.reason == EndReason::Disconnect {
            break report;
        }
    };
    assert!(
        !dropped.faults.is_empty(),
        "the injection must have quarantined intervals"
    );
    handle.shutdown();
    daemon.join().expect("daemon #1");

    // Daemon #2, clean config: recovery restores the checkpointed
    // ledger; RESUME + END must report those historical bounds exactly.
    let (addr, handle, rx, daemon) = spawn_daemon(durable_config(&root));
    let mut client = Client::connect_tcp(addr).expect("reconnect");
    let acked = client.resume(session).expect("resume across restart");
    assert_eq!(acked, all.len() as u64);
    let report = client.finish().expect("finish resumed");
    assert_eq!(report.reason, EndReason::End);
    assert!(
        report.complete,
        "replay re-enumerates quarantined intervals; the ledger is history"
    );
    // The wire report does not carry the ledger; read it off the
    // daemon's final session report.
    let finalized = loop {
        let report = rx.recv_timeout(Duration::from_secs(10)).expect("report");
        if report.reason == EndReason::End {
            break report;
        }
    };
    assert!(
        !finalized.faults.is_empty(),
        "checkpointed quarantine bounds must survive the restart"
    );
    for entry in &finalized.faults.quarantined {
        assert!(
            dropped.faults.quarantined.contains(entry),
            "recovered bounds must match a pre-crash quarantine exactly: {entry:?}"
        );
    }
    handle.shutdown();
    daemon.join().expect("daemon #2");
    let _ = std::fs::remove_dir_all(&root);
}

/// A daemon with no `--data-dir` rejects `RESUME` the same survivable
/// way: in-memory deployments keep working with resume-capable clients.
#[test]
fn in_memory_daemon_rejects_resume_survivably() {
    let (addr, handle, _rx, daemon) = spawn_daemon(ServerConfig::default());

    let mut client = Client::connect_tcp(addr).expect("connect");
    let err = client.resume(1).expect_err("no durable store");
    match err {
        ClientError::Rejected(e) => assert_eq!(e.code, ErrCode::State),
        other => panic!("expected a state rejection, got {other}"),
    }
    client.hello(&Hello::new(1)).expect("hello still works");
    client.event(0, &WireOp::Write("x".into())).expect("event");
    let report = client.finish().expect("finish");
    assert_eq!(report.cuts, 2);

    handle.shutdown();
    daemon.join().expect("daemon");
}
