//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`) — the checksum guarding
//! every WAL and spill record.
//!
//! Table-driven, one byte per step, table built at compile time. The
//! point is torn-write *detection*, not cryptographic integrity: a
//! record whose stored CRC disagrees with its recomputed CRC marks the
//! end of the committed prefix.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes` (init `!0`, final xor `!0` — the standard zlib
/// convention).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Standard check value for the ASCII digits.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = b"the committed prefix".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference);
            }
        }
    }
}
