//! **Table 3** — qualitative comparison of the three detectors.

use paramount_bench::Table;
use paramount_detect::offline::table3_rows;

fn main() {
    println!("Table 3: comparison of the detectors\n");
    let rows = table3_rows();
    let header: Vec<&str> = rows[0].to_vec();
    let mut table = Table::new(&header);
    for row in &rows[1..] {
        table.row(row.iter().map(|s| s.to_string()).collect());
    }
    table.print();
}
