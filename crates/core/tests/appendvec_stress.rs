//! Heavier concurrency stress for the lock-free append store than the
//! inline unit tests: multiple writers racing with scanning readers, and
//! chunk-boundary torture at several sizes.

use paramount::store::AppendVec;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

#[test]
fn writers_and_scanning_readers() {
    const PER_WRITER: usize = 20_000;
    const WRITERS: usize = 3;
    let store: AppendVec<(usize, usize)> = AppendVec::new();
    let done = AtomicBool::new(false);
    let max_seen = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let store = &store;
            scope.spawn(move || {
                for i in 0..PER_WRITER {
                    store.push((w, i));
                }
            });
        }
        for _ in 0..2 {
            let store = &store;
            let done = &done;
            let max_seen = &max_seen;
            scope.spawn(move || {
                loop {
                    // Full scan of the currently published prefix: every
                    // element must be fully initialized and plausible.
                    let len = store.len();
                    let mut count = 0;
                    for item in store.iter().take(len) {
                        assert!(item.0 < WRITERS);
                        assert!(item.1 < PER_WRITER);
                        count += 1;
                    }
                    assert!(count >= len, "iter shrank below published len");
                    max_seen.fetch_max(len, Ordering::Relaxed);
                    if done.load(Ordering::Acquire) {
                        break;
                    }
                    std::hint::spin_loop();
                }
            });
        }
        // Writers finish first (scope joins writer threads when their
        // closures return); then signal readers.
        scope.spawn(|| {
            // Poll until all elements are in, then stop the readers.
            while store.len() < WRITERS * PER_WRITER {
                std::thread::yield_now();
            }
            done.store(true, Ordering::Release);
        });
    });
    assert_eq!(store.len(), WRITERS * PER_WRITER);
    // Per-writer sequences must each appear exactly once.
    let mut per_writer = [0usize; WRITERS];
    for &(w, _) in store.iter() {
        per_writer[w] += 1;
    }
    assert!(per_writer.iter().all(|&c| c == PER_WRITER));
}

#[test]
fn boundary_sizes_round_trip() {
    // Chunk layout is 512, 1024, 2048, ...: hit every boundary ±1.
    for &size in &[1usize, 511, 512, 513, 1535, 1536, 1537, 3584, 3585, 10_000] {
        let store: AppendVec<usize> = AppendVec::new();
        for i in 0..size {
            assert_eq!(store.push(i), i);
        }
        assert_eq!(store.len(), size);
        for i in (0..size).step_by(7) {
            assert_eq!(*store.get(i).unwrap(), i);
        }
        assert_eq!(*store.get(size - 1).unwrap(), size - 1);
        assert!(store.get(size).is_none());
    }
}

#[test]
fn readers_never_observe_torn_values() {
    // Values with internal redundancy: (x, !x). A torn read would break
    // the invariant.
    let store: AppendVec<(u64, u64)> = AppendVec::new();
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            for i in 0..100_000u64 {
                store.push((i, !i));
            }
            done.store(true, Ordering::Release);
        });
        for _ in 0..2 {
            let store = &store;
            let done = &done;
            scope.spawn(move || loop {
                let len = store.len();
                if len > 0 {
                    // Check a stride of published entries.
                    for idx in (0..len).step_by(97) {
                        let &(a, b) = store.get(idx).unwrap();
                        assert_eq!(b, !a, "torn value at {idx}");
                    }
                }
                if done.load(Ordering::Acquire) {
                    break;
                }
            });
        }
    });
}
