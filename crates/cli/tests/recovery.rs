//! `kill -9` end-to-end acceptance (the acceptance gate of the durable
//! session store): a real `paramount serve --data-dir` process takes
//! half a trace and is SIGKILLed mid-session; a second process on the
//! same data-dir recovers the session at boot, a `RESUME` continues it
//! from the server-acknowledged prefix, and the final report matches
//! `paramount count` on the full trace.
#![cfg(unix)]

use paramount_ingest::{parse_client_line, Client, ClientFrame, Hello, WireOp};
use paramount_trace::textfmt::{parse_trace, render_op};
use std::io::{BufRead, BufReader};
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const TRACE: &str = "\
threads 2
0 write x
0 acquire m
0 write y
0 release m
1 read x
1 acquire m
1 write z
1 release m
0 write w
1 read y
";

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_paramount")
}

/// Spawns `paramount serve --data-dir <root>` on an ephemeral port and
/// waits for the "listening on tcp" banner to learn the bound address.
fn spawn_serve(root: &Path) -> (Child, String) {
    let mut child = Command::new(bin())
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--data-dir",
            root.to_str().expect("utf-8 tmp path"),
            "--checkpoint-events",
            "3",
            "--fsync",
            "always",
            "--quiet",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn paramount serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("daemon exited before binding")
            .expect("daemon stdout");
        if let Some(addr) = line.strip_prefix("listening on tcp ") {
            break addr.to_string();
        }
    };
    // Keep draining stdout so the daemon never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

fn connect(addr: &str) -> Client {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match Client::connect_tcp(addr) {
            Ok(client) => return client,
            Err(err) if Instant::now() < deadline => {
                let _ = err;
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(err) => panic!("cannot connect to {addr}: {err}"),
        }
    }
}

/// `paramount count <trace>` — the sequential ground truth, via the
/// same binary under test.
fn oracle_count(trace_path: &Path) -> u64 {
    let out = Command::new(bin())
        .arg("count")
        .arg(trace_path)
        .output()
        .expect("run paramount count");
    assert!(out.status.success(), "count failed: {out:?}");
    let text = String::from_utf8(out.stdout).expect("utf-8 count output");
    // "10 events, N consistent global states (...)"
    let mut words = text.split_whitespace();
    while let Some(word) = words.next() {
        if word == "events," {
            return words
                .next()
                .expect("cut count after 'events,'")
                .parse()
                .expect("numeric cut count");
        }
    }
    panic!("unparseable count output: {text}");
}

#[test]
fn sigkilled_daemon_recovers_resumes_and_matches_count() {
    let root = std::env::temp_dir().join(format!("paramount-e2e-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("tmp root");
    let trace_path = root.join("trace.txt");
    std::fs::write(&trace_path, TRACE).expect("write trace");
    let data_dir = root.join("data");

    let expected = oracle_count(&trace_path);
    let trace = parse_trace(TRACE).expect("parse trace");
    let wire: Vec<(usize, WireOp)> = trace
        .ops
        .iter()
        .map(|&(tid, op)| {
            let body = render_op(op, &trace.var_names, &trace.lock_names);
            match parse_client_line(&format!("EVENT {} {body}", tid.index())) {
                Ok(ClientFrame::Event { tid, op }) => (tid, op),
                other => panic!("unparseable wire op: {other:?}"),
            }
        })
        .collect();
    let half = wire.len() / 2;

    // Daemon #1: half the trace, a FLUSH barrier (fsync=always makes the
    // acked prefix durable), then SIGKILL — no shutdown handler runs.
    let (mut daemon, addr) = spawn_serve(&data_dir);
    let mut client = connect(&addr);
    let session = client.hello(&Hello::new(trace.threads)).expect("hello");
    for (tid, op) in &wire[..half] {
        client.event(*tid, op).expect("event");
    }
    client.flush_sync().expect("flush");
    daemon.kill().expect("SIGKILL daemon");
    daemon.wait().expect("reap daemon");
    drop(client);

    // Daemon #2, same data-dir: boot recovery + RESUME + the tail.
    let (daemon, addr) = spawn_serve(&data_dir);
    let mut client = connect(&addr);
    let acked = client.resume(session).expect("resume across kill -9") as usize;
    assert_eq!(acked, half, "fsync=always must preserve the flushed prefix");
    for (tid, op) in &wire[acked..] {
        client.event(*tid, op).expect("resumed event");
    }
    let report = client.finish().expect("final report");
    assert!(report.complete, "resumed session must be Theorem-3 exact");
    assert_eq!(
        report.cuts, expected,
        "kill -9 + recover + resume must match `paramount count`"
    );

    // Clean END deleted the store; shut the daemon down politely.
    let admin = connect(&addr);
    admin.request_shutdown().expect("shutdown");
    let mut daemon = daemon;
    let status = daemon.wait().expect("daemon exit");
    assert!(status.success(), "daemon #2 must drain cleanly: {status}");
    let _ = std::fs::remove_dir_all(&root);
}
