//! Durable session store: a crash-safe WAL + checkpoint subsystem.
//!
//! # What is persisted, and why it is enough
//!
//! Theorem 3 makes the engine's entire deliverable — every cut of the
//! observed prefix, exactly once — a *pure function of the accepted
//! event sequence*. So the store persists exactly that: the `HELLO`
//! that opened the session (one `META` record) followed by one `EVENT`
//! record per accepted operation, in acceptance order. Recovery replays
//! the sequence through a fresh [`Session`](crate::Session) and lands,
//! deterministically, in the same lattice position the crashed daemon
//! held. Pending intervals, recorder frontiers, and engine queues are
//! all derived state and are never written down.
//!
//! # LSM-style checkpoints
//!
//! An ever-growing WAL would make recovery O(session length) in disk
//! reads *and* keep every segment alive. Every
//! [`StoreConfig::checkpoint_every`] accepted events the store folds the
//! log: a `CHECKPOINT` record — the full accepted prefix plus the acked
//! count and quarantine tally — is written as the sole record of a
//! fresh segment and every earlier segment is deleted
//! ([`Wal::compact`]). A crash between the checkpoint append and the
//! deletions leaves stale segments whose records all precede the
//! checkpoint; replay applies **last-checkpoint-wins**, resetting the
//! event list whenever a later checkpoint appears, so the leftovers are
//! harmless. The `chaos` feature's `checkpoint_panic_at` fault crashes
//! inside exactly that window to prove it.
//!
//! # Record encoding
//!
//! Payloads reuse the wire protocol's line grammar verbatim — a `META`
//! record is `<id> <HELLO line>`, an `EVENT` record is the `EVENT` line
//! itself, and a `CHECKPOINT` is a header line followed by `EVENT`
//! lines. The WAL's length-prefix + CRC framing supplies integrity; the
//! text form means one codec ([`crate::proto`]) serves the socket and
//! the disk, and `strings wal-0000000001.log` shows a legible session.
//!
//! # Fencing epochs
//!
//! Fleet daemons hold a time-bounded lease carrying a monotonically
//! increasing epoch ([`crate::lease`]). The store participates in the
//! fencing protocol at the WAL layer: the owner's shard space and epoch
//! are stamped into every `META` (and checkpoint) record, appends are
//! refused while the owning daemon is fenced *or* once its lease epoch
//! falls below the stamp, and recovery by the *same* shard space under a
//! strictly lower (non-zero) epoch than the stamp is refused outright —
//! a later incarnation replaying the log re-stamps it and wins, and the
//! stale incarnation's writes can never land afterwards. Epochs granted
//! to *different* shards are incomparable (the router grants them from
//! one counter, but each shard's history is its own), so a store whose
//! stamp names a foreign owner is adopted unconditionally: the router
//! only moves a session's directory after fencing its old owner, and
//! the rename itself is the transfer of authority. Epoch 0 means "never
//! leased" (standalone daemons), which disables all of this.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use paramount::{
    EventId, FaultLog, FaultPlan, Frontier, IngestMetrics, Interval, QuarantinedInterval, Tid,
};
use paramount_durable::{FsyncPolicy, Record, Wal, WalConfig};

use crate::lease::FenceGuard;
use crate::proto::{parse_client_line, ClientFrame, Hello, WireOp};

/// Record kind byte: session identity + `HELLO` parameters.
pub const META_KIND: u8 = b'M';
/// Record kind byte: one accepted event (text `EVENT` line payload).
pub const EVENT_KIND: u8 = b'E';
/// Record kind byte: one accepted event, `paramount/2` binary body
/// ([`crate::wire2::encode_event_record`] — a self-contained frame, no
/// cross-record interning, so checkpoints can rewrite any subset).
pub const EVENT2_KIND: u8 = b'F';
/// Record kind byte: LSM checkpoint (full accepted prefix).
pub const CHECKPOINT_KIND: u8 = b'C';

/// Knobs a [`SessionStore`] is built with (server-level policy).
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Write a checkpoint (and drop superseded WAL segments) every this
    /// many accepted events. `0` disables automatic checkpoints.
    pub checkpoint_every: u64,
    /// When WAL appends reach stable storage. `FLUSH` and checkpoints
    /// force regardless under [`FsyncPolicy::OnDemand`].
    pub fsync: FsyncPolicy,
    /// Seeded fault plan; the store honors `checkpoint_panic_at` when
    /// the `chaos` feature is compiled in.
    pub faults: FaultPlan,
    /// Registry for `checkpoint_writes` / `wal_segments`; `None` keeps
    /// the store silent (library embedders, tests).
    pub metrics: Option<Arc<IngestMetrics>>,
    /// Append events as binary [`EVENT2_KIND`] records instead of text
    /// `EVENT` lines (the daemon sets this for sessions negotiated at
    /// `paramount/2`). Purely a write-side policy: recovery replays both
    /// kinds regardless, so a session's log may mix them across resumes.
    pub binary_events: bool,
    /// The owning daemon's fencing epoch at store creation/recovery; it
    /// is stamped into `META` so a later incarnation of the same shard
    /// can prove precedence. `0` means the daemon was never leased
    /// (standalone mode) and disables epoch checks.
    pub epoch: u64,
    /// The owning daemon's shard space (`first_session_id >> 32`),
    /// stamped alongside the epoch. Epochs only order incarnations of
    /// the *same* shard; a store stamped by a foreign space was migrated
    /// in by the router and is adopted regardless of the numeric stamp.
    pub own_space: u64,
    /// The owning daemon's live fence state. When set, appends and
    /// checkpoints are refused while the daemon is fenced or once its
    /// lease epoch falls below the stamped [`StoreConfig::epoch`].
    pub guard: Option<Arc<FenceGuard>>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            checkpoint_every: 4096,
            fsync: FsyncPolicy::OnDemand,
            faults: FaultPlan::default(),
            metrics: None,
            binary_events: false,
            epoch: 0,
            own_space: 0,
            guard: None,
        }
    }
}

/// Everything recovery rebuilt from disk: the session identity, the
/// accepted event prefix to replay, and the store re-opened for further
/// appends.
#[derive(Debug)]
pub struct RecoveredState {
    /// Persisted session id.
    pub id: u64,
    /// The `HELLO` the session was opened with.
    pub hello: Hello,
    /// Accepted events in acceptance order (`(tid, op)`).
    pub events: Vec<(usize, WireOp)>,
    /// Quarantine tally recorded by the last checkpoint (diagnostic;
    /// replay regenerates the live value).
    pub quarantined: u64,
    /// The quarantine ledger as of the last checkpoint: exact
    /// `[Gmin, Gbnd]` bounds of every interval the session's engine gave
    /// up on before the crash. Replay cannot regenerate these (the
    /// recovered engine retries the work and usually succeeds), so the
    /// checkpoint is their only home across a restart.
    pub quarantine: Vec<QuarantinedInterval>,
    /// The store, positioned to append event `events.len() + 1`.
    pub store: SessionStore,
}

/// One session's crash-safe log. See the module docs for the model.
#[derive(Debug)]
pub struct SessionStore {
    dir: PathBuf,
    wal: Wal,
    cfg: StoreConfig,
    /// Session identity, re-embedded in every checkpoint so compaction
    /// (which deletes the segment holding the original `META` record)
    /// keeps the log self-contained.
    id: u64,
    hello: Hello,
    /// The fencing epoch stamped in the store's `META` record — the
    /// epoch of the incarnation that owns this log. Appends are refused
    /// once the guard's live epoch falls below it.
    epoch: u64,
    /// The shard space stamped alongside the epoch: whose grant history
    /// the stamp belongs to.
    owner: u64,
    /// The full accepted prefix — what the next checkpoint embeds.
    events: Vec<(usize, WireOp)>,
    since_checkpoint: u64,
    /// 1-based checkpoint ordinal, for the chaos kill point.
    checkpoints: u64,
    /// Segments currently charged to the `wal_segments` gauge.
    charged_segments: u64,
}

/// The per-session store directory under a daemon `--data-dir` root.
pub fn session_dir(root: &Path, id: u64) -> PathBuf {
    root.join(format!("session-{id:010}"))
}

/// Session ids with a store directory under `root`, ascending. Missing
/// roots scan as empty (first boot).
pub fn scan_sessions(root: &Path) -> io::Result<Vec<u64>> {
    let mut ids = Vec::new();
    let entries = match std::fs::read_dir(root) {
        Ok(entries) => entries,
        Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok(ids),
        Err(err) => return Err(err),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(id) = name
            .strip_prefix("session-")
            .and_then(|s| s.parse::<u64>().ok())
        {
            if entry.path().is_dir() {
                ids.push(id);
            }
        }
    }
    ids.sort_unstable();
    Ok(ids)
}

impl SessionStore {
    /// Creates a fresh store in `dir` (wiping any stale incarnation) and
    /// durably records the session identity.
    pub fn create(
        dir: &Path,
        id: u64,
        hello: &Hello,
        cfg: StoreConfig,
    ) -> io::Result<SessionStore> {
        fence_check(&cfg.guard)?;
        let _ = std::fs::remove_dir_all(dir);
        let wal_config = WalConfig {
            fsync: cfg.fsync,
            ..WalConfig::default()
        };
        let (wal, _) = Wal::open(dir, wal_config)?;
        let epoch = cfg.epoch;
        let owner = cfg.own_space;
        let mut store = SessionStore {
            dir: dir.to_path_buf(),
            wal,
            cfg,
            id,
            hello: hello.clone(),
            epoch,
            owner,
            events: Vec::new(),
            since_checkpoint: 0,
            checkpoints: 0,
            charged_segments: 0,
        };
        let meta = encode_meta_line(id, epoch, owner, hello);
        store.wal.append(META_KIND, meta.as_bytes())?;
        store.wal.sync()?;
        store.publish_segments();
        Ok(store)
    }

    /// Re-opens the store in `dir` and replays it: torn-tail repair is
    /// the WAL's job, last-checkpoint-wins is ours. Returns `Ok(None)`
    /// when `dir` holds no committed `META` record (absent or empty
    /// store — nothing to resume).
    ///
    /// Fencing rules: recovery is refused while the recovering daemon is
    /// fenced, and a *leased* daemon (epoch > 0) cannot recover a store
    /// its own shard space stamped with a higher epoch — that log
    /// already belongs to a later incarnation of itself. A store stamped
    /// by a *foreign* space was migrated in by the router (which fenced
    /// the old owner before moving the directory) and is adopted
    /// regardless of the stamp. Recovering under a different admissible
    /// stamp re-stamps the log (a fresh `META` record) so the recoverer
    /// becomes the sole writer.
    pub fn recover(dir: &Path, cfg: StoreConfig) -> io::Result<Option<RecoveredState>> {
        if !dir.is_dir() {
            return Ok(None);
        }
        fence_check(&cfg.guard)?;
        let wal_config = WalConfig {
            fsync: cfg.fsync,
            ..WalConfig::default()
        };
        let (wal, records) = Wal::open(dir, wal_config)?;
        let mut meta: Option<(u64, u64, u64, Hello)> = None;
        let mut events: Vec<(usize, WireOp)> = Vec::new();
        let mut quarantined = 0u64;
        let mut quarantine: Vec<QuarantinedInterval> = Vec::new();
        let mut since_checkpoint = 0u64;
        for record in &records {
            match record.kind {
                META_KIND => meta = decode_meta(record),
                EVENT_KIND => {
                    if let Some(ev) = decode_event_line(std::str::from_utf8(&record.payload).ok()) {
                        events.push(ev);
                        since_checkpoint += 1;
                    }
                }
                EVENT2_KIND => {
                    if let Ok(ev) = crate::wire2::decode_event_record(&record.payload) {
                        events.push(ev);
                        since_checkpoint += 1;
                    }
                }
                CHECKPOINT_KIND => {
                    if let Some(ckpt) = decode_checkpoint(record) {
                        debug_assert_eq!(ckpt.acked, ckpt.events.len() as u64);
                        meta = Some(ckpt.meta);
                        events = ckpt.events;
                        quarantined = ckpt.quarantined;
                        quarantine = ckpt.quarantine;
                        since_checkpoint = 0;
                    }
                }
                _ => {} // forward compatibility: unknown kinds are skipped
            }
        }
        let Some((id, stored_epoch, stored_owner, hello)) = meta else {
            return Ok(None);
        };
        if cfg.epoch > 0 && stored_owner == cfg.own_space && cfg.epoch < stored_epoch {
            return Err(io::Error::other(format!(
                "stale epoch: store is stamped epoch {stored_epoch}, recovering daemon holds {}",
                cfg.epoch
            )));
        }
        let epoch = cfg.epoch;
        let owner = cfg.own_space;
        let mut store = SessionStore {
            dir: dir.to_path_buf(),
            wal,
            cfg,
            id,
            hello: hello.clone(),
            epoch,
            owner,
            events: Vec::new(),
            since_checkpoint,
            checkpoints: 0,
            charged_segments: 0,
        };
        if epoch != stored_epoch || owner != stored_owner {
            // Claim the log for this incarnation: a durably re-stamped
            // META (last-META-wins on replay) is the recoverer's proof of
            // ownership — any lower-epoch incarnation of the same space
            // that later tries to recover this log is refused above.
            let meta = encode_meta_line(id, epoch, owner, &store.hello);
            store.wal.append(META_KIND, meta.as_bytes())?;
            store.wal.sync()?;
        }
        store.events.clone_from(&events);
        store.publish_segments();
        Ok(Some(RecoveredState {
            id,
            hello,
            events,
            quarantined,
            quarantine,
            store,
        }))
    }

    /// Appends one accepted event. The caller checks
    /// [`SessionStore::should_checkpoint`] afterwards — splitting the
    /// two keeps the per-event path free of the checkpoint's inputs (the
    /// quarantine tally is a metrics fold).
    pub fn append_event(&mut self, tid: usize, op: &WireOp) -> io::Result<()> {
        self.epoch_check()?;
        if self.cfg.binary_events {
            let body = crate::wire2::encode_event_record(tid, op);
            self.wal.append(EVENT2_KIND, &body)?;
        } else {
            let line = format!("EVENT {tid} {}", op.render());
            self.wal.append(EVENT_KIND, line.as_bytes())?;
        }
        self.events.push((tid, op.clone()));
        self.since_checkpoint += 1;
        self.publish_segments();
        Ok(())
    }

    /// Has the checkpoint interval elapsed since the last fold?
    pub fn should_checkpoint(&self) -> bool {
        self.cfg.checkpoint_every > 0 && self.since_checkpoint >= self.cfg.checkpoint_every
    }

    /// Forces every accepted event so far to stable storage (the `FLUSH`
    /// durability point the acked count is measured at).
    pub fn sync(&mut self) -> io::Result<()> {
        self.wal.sync()
    }

    /// Events durably accepted — the `acked=` count `FLUSH` and `RESUME`
    /// report, and exactly how many leading trace ops a resuming client
    /// must skip.
    pub fn acked(&self) -> u64 {
        self.events.len() as u64
    }

    /// The fencing epoch stamped in the store's `META` record.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Refuses writes from a fenced daemon or a stale incarnation: the
    /// guard's live lease epoch must still match the stamp taken at
    /// create/recover time. This is the WAL-layer fencing check the
    /// lease protocol relies on — every durable mutation funnels
    /// through it.
    fn epoch_check(&self) -> io::Result<()> {
        let Some(guard) = &self.cfg.guard else {
            return Ok(());
        };
        if guard.is_fenced() {
            return Err(io::Error::other(format!(
                "daemon is fenced at epoch {}; durable appends refused",
                guard.epoch()
            )));
        }
        let live = guard.epoch();
        if live < self.epoch {
            return Err(io::Error::other(format!(
                "stale epoch: store is stamped epoch {}, daemon now holds {live}",
                self.epoch
            )));
        }
        Ok(())
    }

    /// Re-stamps the store under `epoch` (a durably appended fresh
    /// `META`, owned by the daemon's own shard space). Used when a
    /// daemon adopts a session under a lease newer than the one the
    /// store was stamped with — a resumed session on a re-joined shard,
    /// or a migrated-in store claimed by its new home — so the stamp
    /// names the lease that actually owns the log now.
    pub fn restamp(&mut self, epoch: u64) -> io::Result<()> {
        if epoch == self.epoch && self.owner == self.cfg.own_space {
            return Ok(());
        }
        fence_check(&self.cfg.guard)?;
        let owner = self.cfg.own_space;
        let meta = encode_meta_line(self.id, epoch, owner, &self.hello);
        self.wal.append(META_KIND, meta.as_bytes())?;
        self.wal.sync()?;
        self.epoch = epoch;
        self.owner = owner;
        Ok(())
    }

    /// Live WAL segment files.
    pub fn segment_count(&self) -> usize {
        self.wal.segment_count()
    }

    /// Folds the log: one `CHECKPOINT` record carrying the full accepted
    /// prefix supersedes — and deletes — every earlier segment. The
    /// quarantine ledger rides along so a recovered session reports the
    /// exact `[Gmin, Gbnd]` bounds of pre-crash quarantines, not just
    /// their tally. Returns the number of segments removed.
    pub fn checkpoint(&mut self, quarantined: u64, ledger: &FaultLog) -> io::Result<usize> {
        self.epoch_check()?;
        let payload = encode_checkpoint(
            self.id,
            self.epoch,
            self.owner,
            &self.hello,
            &self.events,
            quarantined,
            ledger,
        );
        self.checkpoints += 1;
        #[cfg(feature = "chaos")]
        if self.cfg.faults.checkpoint_panic_at == Some(self.checkpoints) {
            // The compaction crash window: checkpoint durably written,
            // superseded segments still on disk. Recovery must apply
            // last-checkpoint-wins over the leftovers.
            self.wal
                .append(CHECKPOINT_KIND, &payload)
                .expect("chaos checkpoint append");
            self.wal.sync().expect("chaos checkpoint sync");
            panic!("chaos: checkpoint_panic_at={} fired", self.checkpoints);
        }
        let removed = self.wal.compact(CHECKPOINT_KIND, &payload)?;
        self.since_checkpoint = 0;
        if let Some(metrics) = &self.cfg.metrics {
            metrics.checkpoint_writes.add(1);
        }
        self.publish_segments();
        Ok(removed)
    }

    /// Deletes the store from disk (clean `END`: nothing left to
    /// resume). Consumes the store; the session directory — including
    /// any interval spill files beside the WAL — is removed.
    pub fn delete(mut self) -> io::Result<()> {
        self.release_gauge();
        let dir = std::mem::take(&mut self.dir);
        drop(self); // close the active segment before unlinking it
        std::fs::remove_dir_all(&dir)
    }

    /// Reconciles the `wal_segments` gauge with the live segment count.
    fn publish_segments(&mut self) {
        let now = self.wal.segment_count() as u64;
        if let Some(metrics) = &self.cfg.metrics {
            if now > self.charged_segments {
                metrics.wal_segments.add(now - self.charged_segments);
            } else {
                metrics.wal_segments.sub(self.charged_segments - now);
            }
        }
        self.charged_segments = now;
    }

    fn release_gauge(&mut self) {
        if let Some(metrics) = &self.cfg.metrics {
            metrics.wal_segments.sub(self.charged_segments);
        }
        self.charged_segments = 0;
    }
}

impl Drop for SessionStore {
    fn drop(&mut self) {
        self.release_gauge();
    }
}

/// Refuses a durable mutation while the owning daemon is fenced.
fn fence_check(guard: &Option<Arc<FenceGuard>>) -> io::Result<()> {
    if let Some(guard) = guard {
        if guard.is_fenced() {
            return Err(io::Error::other(format!(
                "daemon is fenced at epoch {}; durable writes refused",
                guard.epoch()
            )));
        }
    }
    Ok(())
}

/// The `META` line: `<id> [epoch=<e> [owner=<s>]] <HELLO line>`. The
/// epoch token is omitted at 0 so unleased daemons write (and old logs
/// remain) the original grammar; the owner token is omitted when the
/// stamping daemon's shard space matches the id's birth space, so it
/// only appears on migrated-in stores.
fn encode_meta_line(id: u64, epoch: u64, owner: u64, hello: &Hello) -> String {
    let mut head = id.to_string();
    if epoch > 0 {
        head.push_str(&format!(" epoch={epoch}"));
        if owner != id >> 32 {
            head.push_str(&format!(" owner={owner}"));
        }
    }
    format!("{head} {}", hello.encode())
}

/// `META` payload → `(id, epoch, owner, hello)`. Malformed records are
/// dropped (the CRC already vouched for integrity; this only rejects
/// foreign data). A missing `epoch=` token reads as 0 (pre-fencing
/// logs); a missing `owner=` token reads as the id's birth space.
fn decode_meta(record: &Record) -> Option<(u64, u64, u64, Hello)> {
    let text = std::str::from_utf8(&record.payload).ok()?;
    decode_meta_line(text)
}

fn decode_meta_line(text: &str) -> Option<(u64, u64, u64, Hello)> {
    let (id, mut hello_line) = text.split_once(' ')?;
    let id = id.parse::<u64>().ok()?;
    let mut epoch = 0u64;
    let mut owner = id >> 32;
    if let Some(rest) = hello_line.strip_prefix("epoch=") {
        let (value, after) = rest.split_once(' ')?;
        epoch = value.parse::<u64>().ok()?;
        hello_line = after;
    }
    if let Some(rest) = hello_line.strip_prefix("owner=") {
        let (value, after) = rest.split_once(' ')?;
        owner = value.parse::<u64>().ok()?;
        hello_line = after;
    }
    match parse_client_line(hello_line) {
        Ok(ClientFrame::Hello(hello)) => Some((id, epoch, owner, hello)),
        _ => None,
    }
}

/// One `EVENT <tid> <op>` line → `(tid, op)`.
fn decode_event_line(line: Option<&str>) -> Option<(usize, WireOp)> {
    match parse_client_line(line?) {
        Ok(ClientFrame::Event { tid, op }) => Some((tid, op)),
        _ => None,
    }
}

/// `CHECKPOINT` payload: the `META` line (compaction deletes the segment
/// holding the original, so every checkpoint re-embeds identity), an
/// `acked=<n> quarantined=<q>` header line, one `QUAR` line per entry in
/// the quarantine ledger, then one `EVENT` line per accepted event.
fn encode_checkpoint(
    id: u64,
    epoch: u64,
    owner: u64,
    hello: &Hello,
    events: &[(usize, WireOp)],
    quarantined: u64,
    ledger: &FaultLog,
) -> Vec<u8> {
    let mut out = encode_meta_line(id, epoch, owner, hello);
    out.push('\n');
    out.push_str(&format!("acked={} quarantined={quarantined}", events.len()));
    for entry in &ledger.quarantined {
        out.push('\n');
        out.push_str(&encode_quarantine_line(entry));
    }
    for (tid, op) in events {
        out.push('\n');
        out.push_str(&format!("EVENT {tid} {}", op.render()));
    }
    out.into_bytes()
}

/// Everything [`decode_checkpoint`] reads back out of one record.
struct Checkpoint {
    meta: (u64, u64, u64, Hello),
    acked: u64,
    quarantined: u64,
    quarantine: Vec<QuarantinedInterval>,
    events: Vec<(usize, WireOp)>,
}

fn decode_checkpoint(record: &Record) -> Option<Checkpoint> {
    let text = std::str::from_utf8(&record.payload).ok()?;
    let mut lines = text.lines();
    let meta = decode_meta_line(lines.next()?)?;
    let header = lines.next()?;
    let mut acked = None;
    let mut quarantined = 0u64;
    for token in header.split_whitespace() {
        if let Some(v) = token.strip_prefix("acked=") {
            acked = v.parse::<u64>().ok();
        } else if let Some(v) = token.strip_prefix("quarantined=") {
            quarantined = v.parse::<u64>().ok()?;
        }
    }
    let mut quarantine = Vec::new();
    let mut events = Vec::new();
    for line in lines {
        if line.starts_with("QUAR ") {
            quarantine.push(decode_quarantine_line(line)?);
        } else {
            events.push(decode_event_line(Some(line))?);
        }
    }
    Some(Checkpoint {
        meta,
        acked: acked?,
        quarantined,
        quarantine,
        events,
    })
}

/// `QUAR <tid> <index> <empty> <cuts_emitted> <attempts> <gmin> <gbnd>
/// <message...>` — frontiers as comma-joined per-thread counts, message
/// as the (newline-sanitized) rest of the line.
fn encode_quarantine_line(q: &QuarantinedInterval) -> String {
    let message: String = q
        .message
        .chars()
        .map(|c| if c.is_control() { ' ' } else { c })
        .collect();
    format!(
        "QUAR {} {} {} {} {} {} {} {message}",
        q.interval.event.tid.0,
        q.interval.event.index,
        u8::from(q.interval.include_empty),
        q.cuts_emitted,
        q.attempts,
        encode_counts(q.interval.gmin.as_slice()),
        encode_counts(q.interval.gbnd.as_slice()),
    )
}

fn decode_quarantine_line(line: &str) -> Option<QuarantinedInterval> {
    let rest = line.strip_prefix("QUAR ")?;
    let mut parts = rest.splitn(8, ' ');
    let tid = parts.next()?.parse::<u32>().ok()?;
    let index = parts.next()?.parse::<u32>().ok()?;
    let include_empty = match parts.next()? {
        "0" => false,
        "1" => true,
        _ => return None,
    };
    let cuts_emitted = parts.next()?.parse::<u64>().ok()?;
    let attempts = parts.next()?.parse::<u32>().ok()?;
    let gmin = decode_counts(parts.next()?)?;
    let gbnd = decode_counts(parts.next()?)?;
    let message = parts.next().unwrap_or("").to_string();
    Some(QuarantinedInterval {
        interval: Interval {
            event: EventId {
                tid: Tid(tid),
                index,
            },
            gmin: Frontier::from_counts(gmin),
            gbnd: Frontier::from_counts(gbnd),
            include_empty,
        },
        cuts_emitted,
        attempts,
        message,
    })
}

/// Per-thread counts as `c0,c1,...`; `-` for the (degenerate) empty
/// frontier so the token never vanishes from the line.
fn encode_counts(counts: &[u32]) -> String {
    if counts.is_empty() {
        return "-".to_string();
    }
    counts
        .iter()
        .map(|c| c.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn decode_counts(text: &str) -> Option<Vec<u32>> {
    if text == "-" {
        return Some(Vec::new());
    }
    text.split(',').map(|c| c.parse::<u32>().ok()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("paramount-store-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn ops(n: usize) -> Vec<(usize, WireOp)> {
        (0..n)
            .map(|i| {
                let tid = i % 2;
                let op = match i % 4 {
                    0 => WireOp::Write(format!("x{i}")),
                    1 => WireOp::Read(format!("x{}", i - 1)),
                    2 => WireOp::Acquire("m".to_string()),
                    _ => WireOp::Release("m".to_string()),
                };
                (tid, op)
            })
            .collect()
    }

    #[test]
    fn create_append_recover_round_trips_the_prefix() {
        let dir = scratch_dir("roundtrip");
        let hello = Hello {
            threads: 2,
            capture_sync: true,
            label: Some("trial".to_string()),
            ..Hello::new(2)
        };
        let trace = ops(9);
        let mut store = SessionStore::create(&dir, 7, &hello, StoreConfig::default()).unwrap();
        for (tid, op) in &trace {
            store.append_event(*tid, op).unwrap();
        }
        store.sync().unwrap();
        assert_eq!(store.acked(), 9);
        drop(store);

        let rec = SessionStore::recover(&dir, StoreConfig::default())
            .unwrap()
            .expect("store exists");
        assert_eq!(rec.id, 7);
        assert_eq!(rec.hello, hello);
        assert_eq!(rec.events, trace);
        assert_eq!(rec.store.acked(), 9);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_compacts_and_recovery_honors_last_checkpoint_wins() {
        let dir = scratch_dir("ckpt");
        let cfg = StoreConfig {
            checkpoint_every: 4,
            ..StoreConfig::default()
        };
        let trace = ops(10);
        let mut store = SessionStore::create(&dir, 1, &Hello::new(2), cfg.clone()).unwrap();
        for (tid, op) in &trace {
            store.append_event(*tid, op).unwrap();
            if store.should_checkpoint() {
                store.checkpoint(3, &FaultLog::default()).unwrap();
            }
        }
        // 10 events at checkpoint_every=4 → checkpoints at 4 and 8; the
        // log is one compacted segment plus the 2-event tail.
        assert_eq!(store.segment_count(), 1);
        drop(store);

        let rec = SessionStore::recover(&dir, cfg)
            .unwrap()
            .expect("store exists");
        assert_eq!(
            rec.events, trace,
            "checkpoint prefix + WAL tail replay exactly"
        );
        assert_eq!(rec.quarantined, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_round_trips_quarantine_ledger_bounds() {
        let dir = scratch_dir("quar");
        let ledger = FaultLog {
            quarantined: vec![
                QuarantinedInterval {
                    interval: Interval {
                        event: EventId {
                            tid: Tid(1),
                            index: 3,
                        },
                        gmin: Frontier::from_counts(vec![2, 3]),
                        gbnd: Frontier::from_counts(vec![5, 4]),
                        include_empty: false,
                    },
                    cuts_emitted: 11,
                    attempts: 2,
                    message: "worker panic:\nboom at depth 4".to_string(),
                },
                QuarantinedInterval {
                    interval: Interval {
                        event: EventId {
                            tid: Tid(0),
                            index: 1,
                        },
                        gmin: Frontier::from_counts(vec![1, 0]),
                        gbnd: Frontier::from_counts(vec![1, 2]),
                        include_empty: true,
                    },
                    cuts_emitted: 0,
                    attempts: 1,
                    message: String::new(),
                },
            ],
        };
        let trace = ops(5);
        let mut store =
            SessionStore::create(&dir, 9, &Hello::new(2), StoreConfig::default()).unwrap();
        for (tid, op) in &trace {
            store.append_event(*tid, op).unwrap();
        }
        store.checkpoint(2, &ledger).unwrap();
        drop(store);

        let rec = SessionStore::recover(&dir, StoreConfig::default())
            .unwrap()
            .expect("store exists");
        assert_eq!(rec.events, trace);
        assert_eq!(rec.quarantined, 2);
        assert_eq!(rec.quarantine.len(), 2);
        let q = &rec.quarantine[0];
        assert_eq!(q.interval, ledger.quarantined[0].interval);
        assert_eq!(q.cuts_emitted, 11);
        assert_eq!(q.attempts, 2);
        // Newlines are sanitized to spaces to keep the record line-oriented.
        assert_eq!(q.message, "worker panic: boom at depth 4");
        assert_eq!(rec.quarantine[1], ledger.quarantined[1]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn binary_event_records_recover_and_mix_with_text_ones() {
        let dir = scratch_dir("binary");
        let trace = ops(9);
        // First incarnation appends binary EVENT2 records.
        let cfg = StoreConfig {
            binary_events: true,
            ..StoreConfig::default()
        };
        let mut store = SessionStore::create(&dir, 5, &Hello::new(2), cfg).unwrap();
        for (tid, op) in &trace[..5] {
            store.append_event(*tid, op).unwrap();
        }
        store.sync().unwrap();
        drop(store);

        // Recovery replays them; the re-opened store appends text EVENT
        // lines, so the log now mixes kinds (a v1 resume of a v2 session).
        let rec = SessionStore::recover(&dir, StoreConfig::default())
            .unwrap()
            .expect("store exists");
        assert_eq!(rec.events, trace[..5]);
        let mut store = rec.store;
        for (tid, op) in &trace[5..] {
            store.append_event(*tid, op).unwrap();
        }
        store.sync().unwrap();
        drop(store);

        let rec = SessionStore::recover(&dir, StoreConfig::default())
            .unwrap()
            .expect("store exists");
        assert_eq!(rec.events, trace, "mixed-kind log replays in order");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recover_of_missing_or_deleted_store_is_none() {
        let dir = scratch_dir("absent");
        assert!(SessionStore::recover(&dir, StoreConfig::default())
            .unwrap()
            .is_none());

        let store = SessionStore::create(&dir, 3, &Hello::new(1), StoreConfig::default()).unwrap();
        store.delete().unwrap();
        assert!(!dir.exists(), "delete removes the session directory");
        assert!(SessionStore::recover(&dir, StoreConfig::default())
            .unwrap()
            .is_none());
    }

    #[test]
    fn scan_lists_persisted_sessions_ascending() {
        let root = scratch_dir("scan");
        assert_eq!(scan_sessions(&root).unwrap(), Vec::<u64>::new());
        for id in [12u64, 3, 7] {
            let dir = session_dir(&root, id);
            drop(SessionStore::create(&dir, id, &Hello::new(1), StoreConfig::default()).unwrap());
        }
        assert_eq!(scan_sessions(&root).unwrap(), vec![3, 7, 12]);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn fenced_daemon_is_refused_at_every_store_entry_point() {
        let dir = scratch_dir("fence");
        let guard = Arc::new(FenceGuard::new());
        guard.grant_at(0, 5, 1_000);
        let cfg = StoreConfig {
            epoch: 5,
            guard: Some(Arc::clone(&guard)),
            ..StoreConfig::default()
        };
        let mut store = SessionStore::create(&dir, 1, &Hello::new(2), cfg.clone()).unwrap();
        store.append_event(0, &WireOp::Write("x".into())).unwrap();
        store.sync().unwrap();

        guard.fence();
        assert!(store.append_event(1, &WireOp::Read("x".into())).is_err());
        assert!(store.checkpoint(0, &FaultLog::default()).is_err());
        drop(store);
        assert!(SessionStore::recover(&dir, cfg.clone()).is_err());
        let other = scratch_dir("fence-create");
        assert!(SessionStore::create(&other, 2, &Hello::new(2), cfg).is_err());

        // The fenced prefix is intact and resumable by an unfenced owner.
        let rec = SessionStore::recover(&dir, StoreConfig::default())
            .unwrap()
            .expect("store exists");
        assert_eq!(rec.events.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_epoch_writes_and_recovery_are_refused() {
        let dir = scratch_dir("stale");
        let guard = Arc::new(FenceGuard::new());
        guard.grant_at(0, 3, 1_000);
        let cfg = StoreConfig {
            epoch: 3,
            guard: Some(Arc::clone(&guard)),
            ..StoreConfig::default()
        };
        let mut store = SessionStore::create(&dir, 1, &Hello::new(2), cfg).unwrap();
        store.append_event(0, &WireOp::Write("x".into())).unwrap();

        // While fenced every write is refused; a re-join under a fresh
        // epoch restores the handle (ownership is monotone: the same
        // daemon under a *higher* lease still owns its log), and the
        // adopter re-stamps so the log names the lease that owns it now.
        guard.fence();
        let err = store
            .append_event(1, &WireOp::Read("x".into()))
            .unwrap_err();
        assert!(err.to_string().contains("fenced"), "{err}");
        guard.grant_at(1, 4, 1_000);
        store.restamp(4).unwrap();
        store.append_event(1, &WireOp::Read("x".into())).unwrap();
        store.sync().unwrap();
        assert_eq!(store.epoch(), 4);
        drop(store);

        // A survivor under a higher epoch re-stamps the log on recovery…
        let survivor = Arc::new(FenceGuard::new());
        survivor.grant_at(0, 6, 1_000);
        let rec = SessionStore::recover(
            &dir,
            StoreConfig {
                epoch: 6,
                guard: Some(survivor),
                ..StoreConfig::default()
            },
        )
        .unwrap()
        .expect("store exists");
        assert_eq!(rec.events.len(), 2);
        assert_eq!(rec.store.epoch(), 6);
        drop(rec);

        // …after which the epoch-4 incarnation is refused outright.
        let stale = Arc::new(FenceGuard::new());
        stale.grant_at(0, 4, 1_000);
        let err = SessionStore::recover(
            &dir,
            StoreConfig {
                epoch: 4,
                guard: Some(stale),
                ..StoreConfig::default()
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("stale epoch"), "{err}");

        // Epoch 0 (standalone, never leased) may still reclaim the log.
        let rec = SessionStore::recover(&dir, StoreConfig::default())
            .unwrap()
            .expect("store exists");
        assert_eq!(rec.events.len(), 2);
        assert_eq!(rec.store.epoch(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreign_space_stores_are_adopted_regardless_of_stamp() {
        let dir = scratch_dir("adopt");
        // Shard 1's daemon (id space 1) creates the store at epoch 5.
        let home = Arc::new(FenceGuard::new());
        home.grant_at(0, 5, 1_000);
        let id = (1u64 << 32) + 7;
        let cfg = StoreConfig {
            epoch: 5,
            own_space: 1,
            guard: Some(home),
            ..StoreConfig::default()
        };
        let mut store = SessionStore::create(&dir, id, &Hello::new(2), cfg).unwrap();
        store.append_event(0, &WireOp::Write("x".into())).unwrap();
        store.sync().unwrap();
        drop(store);

        // Shard 0's daemon holds a *numerically lower* epoch — epochs
        // from different shards are incomparable, so the migrated-in
        // store is adopted and re-stamped, not refused.
        let survivor = Arc::new(FenceGuard::new());
        survivor.grant_at(0, 2, 1_000);
        let rec = SessionStore::recover(
            &dir,
            StoreConfig {
                epoch: 2,
                own_space: 0,
                guard: Some(survivor),
                ..StoreConfig::default()
            },
        )
        .unwrap()
        .expect("store exists");
        assert_eq!(rec.events.len(), 1);
        assert_eq!(rec.store.epoch(), 2);
        let mut store = rec.store;
        store.append_event(1, &WireOp::Read("x".into())).unwrap();
        store.sync().unwrap();
        drop(store);

        // The adopter's own space now orders recoveries: a stale shard-0
        // incarnation is refused, the current one is not.
        let stale = Arc::new(FenceGuard::new());
        stale.grant_at(0, 1, 1_000);
        let err = SessionStore::recover(
            &dir,
            StoreConfig {
                epoch: 1,
                own_space: 0,
                guard: Some(stale),
                ..StoreConfig::default()
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("stale epoch"), "{err}");
        let rec = SessionStore::recover(
            &dir,
            StoreConfig {
                epoch: 2,
                own_space: 0,
                ..StoreConfig::default()
            },
        )
        .unwrap()
        .expect("store exists");
        assert_eq!(rec.events.len(), 2, "the adopted log replays in full");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn epoch_stamp_survives_checkpoint_compaction() {
        let dir = scratch_dir("epoch-ckpt");
        let guard = Arc::new(FenceGuard::new());
        guard.grant_at(0, 9, 1_000);
        let cfg = StoreConfig {
            epoch: 9,
            guard: Some(Arc::clone(&guard)),
            ..StoreConfig::default()
        };
        let trace = ops(6);
        let mut store = SessionStore::create(&dir, 2, &Hello::new(2), cfg).unwrap();
        for (tid, op) in &trace {
            store.append_event(*tid, op).unwrap();
        }
        // Compaction deletes the segment holding the original META; the
        // checkpoint must carry the stamp forward.
        store.checkpoint(0, &FaultLog::default()).unwrap();
        assert_eq!(store.segment_count(), 1);
        drop(store);

        let err = SessionStore::recover(
            &dir,
            StoreConfig {
                epoch: 8,
                ..StoreConfig::default()
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("stale epoch"), "{err}");
        let rec = SessionStore::recover(
            &dir,
            StoreConfig {
                epoch: 9,
                ..StoreConfig::default()
            },
        )
        .unwrap()
        .expect("store exists");
        assert_eq!(rec.events, trace);
        assert_eq!(rec.store.epoch(), 9);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_segments_gauge_tracks_live_stores() {
        let dir = scratch_dir("gauge");
        let metrics = Arc::new(IngestMetrics::new());
        let cfg = StoreConfig {
            metrics: Some(Arc::clone(&metrics)),
            ..StoreConfig::default()
        };
        let mut store = SessionStore::create(&dir, 1, &Hello::new(2), cfg).unwrap();
        assert_eq!(metrics.wal_segments.get(), 1);
        store.checkpoint(0, &FaultLog::default()).unwrap();
        assert_eq!(metrics.checkpoint_writes.sum(), 1);
        drop(store);
        assert_eq!(metrics.wal_segments.get(), 0, "drop releases the gauge");
        assert!(metrics.wal_segments.high_water() >= 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
