//! Online-and-parallel data-race detection — the paper's §4/§5.2 use
//! case, on three of its benchmarks.
//!
//! Each program runs on real threads; every captured event streams into
//! the online ParaMount engine whose workers enumerate the new event's
//! interval of global states and evaluate the race predicate
//! (Algorithm 6) on each. FastTrack runs on the same executions for
//! comparison. Note the `set (correct)` row: FastTrack flags the benign
//! initialization write, the ParaMount detector does not (§5.2).
//!
//! Run with: `cargo run --example race_detection`

use paramount_suite::paramount_detect::online::detect_races_threaded;
use paramount_suite::paramount_detect::DetectorConfig;
use paramount_suite::paramount_fasttrack::FastTrack;
use paramount_suite::paramount_trace::exec::run_threads_observed;
use paramount_suite::paramount_workloads as workloads;

fn main() {
    let programs = vec![
        ("banking", workloads::banking::program(&Default::default())),
        ("set (faulty)", workloads::set::program(true)),
        ("set (correct)", workloads::set::program(false)),
    ];

    for (name, program) in &programs {
        println!(
            "== {name} ({} threads, {} monitored variables)",
            program.num_threads(),
            program.num_vars()
        );

        // ParaMount online detector: real threads + concurrent interval
        // enumeration + race predicate.
        let report = detect_races_threaded(program, 50, &DetectorConfig::default());
        println!(
            "  ParaMount: {} global states enumerated from {} events in {:.1} ms",
            report.cuts,
            report.events,
            report.wall.as_secs_f64() * 1e3
        );
        if report.racy_vars.is_empty() {
            println!("  ParaMount: no races");
        }
        for d in &report.detections {
            println!(
                "  ParaMount: RACE on '{}' — {} vs {} witnessed at global state {}",
                program.var_name(d.var),
                d.event,
                d.other,
                d.cut
            );
        }

        // FastTrack over an identical (fresh) execution.
        let ft = run_threads_observed(program, 50, FastTrack::new(program.num_threads()));
        for r in ft.races() {
            println!("  FastTrack: {} ({})", r, program.var_name(r.var));
        }
        if ft.races().is_empty() {
            println!("  FastTrack: no races");
        }
        println!();
    }
    println!("note the disagreement on `set (correct)`: the initialization write is");
    println!("benign (no other thread could hold a reference yet) — the ParaMount");
    println!("detector applies that rule, FastTrack reports the race.");
}
