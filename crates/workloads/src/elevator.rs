//! `elevator` — the discrete-event elevator simulator.
//!
//! Elevators poll a shared request board under the controller lock and
//! spend most of their time "moving" (heavy `Work` ops — the paper notes
//! the benchmark's running time is dominated by `sleep()` calls, which is
//! why every detector clocks in at ~16 s there). All shared state is
//! properly locked: zero races.

use paramount_trace::{Op, Program, ProgramBuilder, Tid};

/// Workload size.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Elevator cars.
    pub cars: usize,
    /// Trips per car.
    pub trips: usize,
    /// Weight of the per-trip movement delay (`Op::Work`).
    pub travel_work: u32,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            cars: 3,
            trips: 2,
            travel_work: 200,
        }
    }
}

/// Builds the elevator program.
pub fn program(params: &Params) -> Program {
    let mut b = ProgramBuilder::new("elevator", params.cars + 1);
    let pending = b.var("controller.pendingRequests");
    let log = b.var("controller.tripLog");
    let positions: Vec<_> = (0..params.cars)
        .map(|c| b.var(format!("car{c}.floor")))
        .collect();
    let ctrl = b.lock("controller.lock");

    for (c, &position) in positions.iter().enumerate() {
        let tid = Tid::from(c + 1);
        for _ in 0..params.trips {
            // Claim a request under the controller lock.
            b.critical(tid, ctrl, [Op::Read(pending), Op::Write(pending)]);
            // Travel: time passes, only own position changes.
            b.push(tid, Op::Work(params.travel_work));
            b.push(tid, Op::Write(position));
            // Report the completed trip.
            b.critical(tid, ctrl, [Op::Write(log)]);
        }
    }
    let mut init = vec![Op::Write(pending), Op::Write(log)];
    init.extend(positions.iter().map(|&v| Op::Write(v)));
    b.fork_join_all_with_init(init);
    b.build()
}

/// The Table 1 trace variant: long runs of per-car movement segments
/// (split by a private pace lock) between controller interactions — the
/// long-and-wide shape of the paper's 27.6-billion-cut elevator poset.
pub fn wide_program(cars: usize, trips: usize, moves: usize) -> Program {
    let mut b = ProgramBuilder::new("elevator", cars + 1);
    let pending = b.var("controller.pendingRequests");
    let ctrl = b.lock("controller.lock");
    let positions: Vec<_> = (0..cars).map(|c| b.var(format!("car{c}.floor"))).collect();
    for (c, &position) in positions.iter().enumerate() {
        let tid = Tid::from(c + 1);
        let pace = b.lock(format!("car{c}.pace"));
        for _ in 0..trips {
            b.critical(tid, ctrl, [Op::Read(pending), Op::Write(pending)]);
            for _ in 0..moves {
                b.push(tid, Op::Write(position));
                b.critical(tid, pace, []);
            }
        }
    }
    let mut init = vec![Op::Write(pending)];
    init.extend(positions.iter().map(|&v| Op::Write(v)));
    b.fork_join_all_with_init(init);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use paramount_detect::online::detect_races_sim;
    use paramount_detect::DetectorConfig;

    #[test]
    fn elevator_is_race_free() {
        for seed in 0..5 {
            let report = detect_races_sim(
                &program(&Params::default()),
                seed,
                &DetectorConfig::default(),
            );
            assert!(report.racy_vars.is_empty(), "seed {seed}");
        }
    }

    #[test]
    fn wide_variant_scales_with_moves() {
        use paramount_trace::sim::SimScheduler;
        let narrow = SimScheduler::new(3).run(&wide_program(4, 2, 1));
        let wide = SimScheduler::new(3).run(&wide_program(4, 2, 3));
        assert!(wide.num_events() > narrow.num_events());
        let narrow_cuts = paramount_poset::oracle::count_ideals(&narrow);
        let wide_cuts = paramount_poset::oracle::count_ideals(&wide);
        assert!(
            wide_cuts > narrow_cuts,
            "more movement segments must widen the lattice ({narrow_cuts} vs {wide_cuts})"
        );
    }

    #[test]
    fn work_dominates_op_mix() {
        let p = program(&Params::default());
        let work: u64 = (0..p.num_threads())
            .flat_map(|t| p.script(Tid::from(t)).iter())
            .map(|op| match op {
                Op::Work(w) => *w as u64,
                _ => 0,
            })
            .sum();
        assert!(work >= 1000, "travel time should dominate");
    }
}
