//! Linear extensions of the poset — the paper's total order `→p`.
//!
//! ParaMount may use *any* topological order of the event DAG (§3.1); the
//! choice only affects how the lattice is carved into intervals, never
//! correctness. Two orders are provided:
//!
//! * [`weight_order`] — sort events by vector-clock weight. If `e → f`
//!   then `e.vc ≨ f.vc`, so `weight(e) < weight(f)`: the sort is a valid
//!   linear extension, computed in `O(|E| log |E|)` with no graph walk.
//! * [`kahn_order`] — classic Kahn's algorithm over the covering edges,
//!   `O(|E| + |H|)` as analyzed in §3.4 of the paper.
//!
//! Both are deterministic (ties broken by `(tid, index)`), which keeps
//! interval partitions — and therefore benchmark numbers — reproducible.

use crate::{CutSpace, EventId};
use paramount_vclock::Tid;
use std::collections::VecDeque;

/// Linear extension by vector-clock weight (sum of components).
///
/// Ties (necessarily concurrent or equal-weight-incomparable events) are
/// broken by `(tid, index)` for determinism.
pub fn weight_order<S: CutSpace + ?Sized>(poset: &S) -> Vec<EventId> {
    let mut ids: Vec<(u64, EventId)> = all_event_ids(poset)
        .map(|id| (poset.vc(id).weight(), id))
        .collect();
    ids.sort_unstable_by_key(|&(w, id)| (w, id.tid, id.index));
    ids.into_iter().map(|(_, id)| id).collect()
}

/// Linear extension via Kahn's algorithm over the covering edges exposed by
/// [`crate::Poset::immediate_predecessors`].
pub fn kahn_order<S: CutSpace + ?Sized>(poset: &S) -> Vec<EventId> {
    let n = poset.num_threads();
    // Dense index for events: offsets[t] + (index-1).
    let mut offsets = vec![0usize; n + 1];
    for t in 0..n {
        offsets[t + 1] = offsets[t] + poset.events_of(Tid::from(t));
    }
    let total = offsets[n];
    let dense = |id: EventId| offsets[id.tid.index()] + (id.index - 1) as usize;

    let mut indegree = vec![0u32; total];
    let mut successors: Vec<Vec<usize>> = vec![Vec::new(); total];
    for id in all_event_ids(poset) {
        let d = dense(id);
        for pred in immediate_predecessors(poset, id) {
            indegree[d] += 1;
            successors[dense(pred)].push(d);
        }
    }

    // Seed with all zero-indegree events, in (tid, index) order for
    // determinism.
    let mut queue: VecDeque<EventId> = VecDeque::new();
    for t in 0..n {
        for k in 1..=poset.events_of(Tid::from(t)) as u32 {
            let id = EventId::new(Tid::from(t), k);
            if indegree[dense(id)] == 0 {
                queue.push_back(id);
            }
        }
    }

    // Map dense index back to EventId once, for the successor walk.
    let mut id_of = vec![EventId::new(Tid(0), 1); total];
    for id in all_event_ids(poset) {
        id_of[dense(id)] = id;
    }

    let mut order = Vec::with_capacity(total);
    while let Some(id) = queue.pop_front() {
        order.push(id);
        for &s in &successors[dense(id)] {
            indegree[s] -= 1;
            if indegree[s] == 0 {
                queue.push_back(id_of[s]);
            }
        }
    }
    debug_assert_eq!(order.len(), total, "poset contained a cycle?");
    order
}

/// Checks that `order` is a permutation of all events satisfying the
/// paper's Property 1: `e → f ⇒ e →p f`. O(|E|²); intended for tests.
pub fn is_linear_extension<S: CutSpace + ?Sized>(poset: &S, order: &[EventId]) -> bool {
    let total: usize = (0..poset.num_threads())
        .map(|t| poset.events_of(Tid::from(t)))
        .sum();
    if order.len() != total {
        return false;
    }
    let mut position = std::collections::HashMap::new();
    for (pos, &id) in order.iter().enumerate() {
        if position.insert(id, pos).is_some() {
            return false; // duplicate
        }
    }
    for &e in order {
        for &f in order {
            if poset.hb(e, f) && position[&e] >= position[&f] {
                return false;
            }
        }
    }
    true
}

/// All event ids of a space, thread by thread, in program order.
fn all_event_ids<S: CutSpace + ?Sized>(space: &S) -> impl Iterator<Item = EventId> + '_ {
    (0..space.num_threads()).flat_map(move |t| {
        let tid = Tid::from(t);
        (1..=space.events_of(tid) as u32).map(move |k| EventId::new(tid, k))
    })
}

/// Covering-edge predecessors derived from the vector clock (the
/// `CutSpace` twin of [`crate::Poset::immediate_predecessors`]).
fn immediate_predecessors<S: CutSpace + ?Sized>(space: &S, id: EventId) -> Vec<EventId> {
    // An event's own component is its (nonzero) index, so every thread with
    // a predecessor shows up in the nonzero walk — O(causal fan-in), not
    // O(n), when the clock is sparse.
    let mut preds = Vec::new();
    for (j, k) in space.vc(id).iter_nonzero() {
        let k = if j == id.tid.index() { id.index - 1 } else { k };
        if k >= 1 {
            preds.push(EventId::new(Tid::from(j), k));
        }
    }
    preds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PosetBuilder;
    use crate::random::RandomComputation;
    use crate::Poset;

    fn figure4() -> Poset {
        let mut b = PosetBuilder::new(2);
        let a = b.append(Tid(0), ());
        let bb = b.append(Tid(1), ());
        b.append_after(Tid(0), &[bb], ());
        b.append_after(Tid(1), &[a], ());
        b.finish()
    }

    #[test]
    fn weight_order_is_linear_extension() {
        let p = figure4();
        let order = weight_order(&p);
        assert!(is_linear_extension(&p, &order));
    }

    #[test]
    fn kahn_order_is_linear_extension() {
        let p = figure4();
        let order = kahn_order(&p);
        assert!(is_linear_extension(&p, &order));
    }

    #[test]
    fn orders_on_random_computations() {
        for seed in 0..20 {
            let p = RandomComputation::new(4, 6, 0.5, seed).generate();
            let w = weight_order(&p);
            let k = kahn_order(&p);
            assert!(
                is_linear_extension(&p, &w),
                "weight order failed seed {seed}"
            );
            assert!(is_linear_extension(&p, &k), "kahn order failed seed {seed}");
        }
    }

    #[test]
    fn is_linear_extension_rejects_bad_orders() {
        let p = figure4();
        let mut order = weight_order(&p);
        // Swapping the first and last events must break Property 1 (the
        // first event of a thread happens before the last of the same
        // thread in this poset).
        order.swap(0, 3);
        assert!(!is_linear_extension(&p, &order));
        // Truncated order is not a permutation.
        assert!(!is_linear_extension(&p, &order[..3]));
    }

    #[test]
    fn empty_poset_orders() {
        let p: Poset = Poset::empty(3);
        assert!(weight_order(&p).is_empty());
        assert!(kahn_order(&p).is_empty());
        assert!(is_linear_extension(&p, &[]));
    }
}
