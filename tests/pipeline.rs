//! End-to-end cross-crate tests: program → trace → enumeration →
//! predicate, validated against brute-force oracles and FastTrack.

use paramount_suite::paramount_detect::online::detect_races_sim;
use paramount_suite::paramount_detect::DetectorConfig;
use paramount_suite::paramount_fasttrack::{FastTrack, VectorDetector};
use paramount_suite::paramount_trace::gen::{random_program, RandomProgramConfig};
use paramount_suite::paramount_trace::sim::SimScheduler;
use paramount_suite::paramount_trace::{TraceEvent, VarId};
use paramount_suite::prelude::*;

/// Brute-force race oracle on a captured poset: a variable is racy iff
/// two *events* (collections) of different threads are concurrent and
/// hold conflicting accesses to it. `include_init` controls the §5.2
/// rule.
fn oracle_racy_vars(poset: &Poset<TraceEvent>, include_init: bool) -> Vec<VarId> {
    let ids: Vec<EventId> = poset.events().map(|e| e.id).collect();
    let mut racy = Vec::new();
    for (i, &a) in ids.iter().enumerate() {
        for &b in &ids[i + 1..] {
            if a.tid == b.tid || !poset.concurrent(a, b) {
                continue;
            }
            let (Some(ca), Some(cb)) =
                (poset.payload(a).collection(), poset.payload(b).collection())
            else {
                continue;
            };
            for x in ca.accesses() {
                for y in cb.accesses() {
                    if x.conflicts_with(y) && (include_init || (!x.init && !y.init)) {
                        racy.push(x.var);
                    }
                }
            }
        }
    }
    racy.sort_unstable();
    racy.dedup();
    racy
}

/// The headline cross-validation: on random programs, the online
/// ParaMount detector (strict mode) finds exactly the oracle's racy
/// variables, and FastTrack agrees with its own full-vector oracle.
#[test]
fn detectors_agree_with_oracles_on_random_programs() {
    for seed in 0..40u64 {
        let config = RandomProgramConfig {
            threads: 2 + (seed % 2) as usize,
            steps_per_thread: 5,
            vars: 3,
            locks: 2,
            lock_probability: 0.2 + 0.5 * ((seed % 4) as f64 / 4.0),
            write_probability: 0.5,
        };
        let program = random_program("fuzz", config, seed);
        let schedule_seed = seed.wrapping_mul(977);

        // Oracle over the exact captured poset.
        let poset = SimScheduler::new(schedule_seed).run(&program);
        let expected_strict = oracle_racy_vars(&poset, true);

        // ParaMount online detector, strict (no init rule), same schedule.
        let report = detect_races_sim(
            &program,
            schedule_seed,
            &DetectorConfig {
                ignore_init_races: false,
                workers: 1 + (seed % 4) as usize,
                ..DetectorConfig::default()
            },
        );
        assert_eq!(
            report.racy_vars, expected_strict,
            "ParaMount vs oracle, seed {seed}"
        );

        // Refined mode must equal the init-filtered oracle.
        let refined = detect_races_sim(&program, schedule_seed, &DetectorConfig::default());
        assert_eq!(
            refined.racy_vars,
            oracle_racy_vars(&poset, false),
            "ParaMount refined vs oracle, seed {seed}"
        );

        // FastTrack vs the DJIT+-style vector detector on the identical
        // interleaving.
        let mut pair = paramount_suite::paramount_trace::PairObserver(
            FastTrack::new(program.num_threads()),
            VectorDetector::new(program.num_threads()),
        );
        SimScheduler::new(schedule_seed).run_with(&program, &mut pair);
        assert_eq!(
            pair.0.racy_vars(),
            pair.1.racy_vars(),
            "FastTrack vs DJIT+, seed {seed}"
        );

        // FastTrack must agree with the *poset-level* oracle too: the
        // event-collection merge preserves per-variable racyness.
        assert_eq!(
            pair.1.racy_vars(),
            expected_strict,
            "vector detector vs poset oracle, seed {seed}"
        );
    }
}

/// The online engine's cut count equals the offline lattice size, for
/// real workload traces.
#[test]
fn online_cut_count_equals_offline_lattice_size() {
    use paramount_suite::paramount_workloads as workloads;
    for (name, program) in [
        (
            "banking",
            workloads::banking::program(&workloads::banking::Params::default()),
        ),
        ("set", workloads::set::program(true)),
        (
            "tsp",
            workloads::tsp::program(&workloads::tsp::Params::default()),
        ),
    ] {
        for seed in [2u64, 4] {
            let report = detect_races_sim(&program, seed, &DetectorConfig::default());
            let poset = SimScheduler::new(seed).run(&program);
            let expected = oracle::count_ideals(&poset);
            assert_eq!(report.cuts, expected, "{name} seed {seed}");
        }
    }
}

/// Offline ParaMount over every algorithm and thread count matches the
/// oracle on captured workload posets (not just synthetic random ones).
#[test]
fn offline_enumeration_of_workload_traces_matches_oracle() {
    use paramount_suite::paramount_workloads as workloads;
    let program = workloads::hedc::program(&workloads::hedc::Params {
        workers: 4,
        tasks: 1,
    });
    let poset = SimScheduler::new(3).run(&program);
    let expected = oracle::count_ideals(&poset);
    for algorithm in Algorithm::ALL {
        for threads in [1usize, 4] {
            let sink = AtomicCountSink::new();
            ParaMount::new(algorithm)
                .with_threads(threads)
                .enumerate(&poset, &sink)
                .unwrap();
            assert_eq!(sink.count(), expected, "{algorithm:?} x{threads}");
        }
    }
}

/// Real-thread (nondeterministic) online detection still counts exactly
/// the lattice of whatever poset it observed.
#[test]
fn threaded_online_detection_is_exactly_once() {
    use paramount_suite::paramount_detect::online::detect_races_threaded;
    use paramount_suite::paramount_workloads as workloads;
    let program = workloads::banking::program(&workloads::banking::Params::default());
    for _ in 0..5 {
        let report = detect_races_threaded(&program, 0, &DetectorConfig::default());
        // The observed poset varies run to run, but exactly-once means
        // cuts == i(observed poset); we can't re-observe it, so check the
        // invariants that don't depend on the schedule:
        assert!(report.outcome.completed());
        assert_eq!(report.racy_vars.len(), 1, "balance always races");
        assert!(report.cuts >= report.events, "lattice at least chain-sized");
    }
}
