//! Stress tests for the online engine under real concurrency: many
//! producer threads, many enumeration workers, one CPU or many — the
//! exactly-once guarantee must hold regardless.

use paramount_suite::prelude::*;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Hammer the engine with concurrent producers that interleave
/// cross-thread dependencies, then verify the cut count against an
/// offline recount of whatever poset was actually observed.
#[test]
fn concurrent_producers_exactly_once() {
    for round in 0..3u64 {
        const PRODUCERS: usize = 4;
        const EVENTS_PER_PRODUCER: usize = 12;
        let counter = Arc::new(AtomicU64::new(0));
        let sink_counter = Arc::clone(&counter);
        let engine = Arc::new(OnlineEngine::new(
            PRODUCERS,
            OnlineEngineConfig {
                workers: 3,
                ..OnlineEngineConfig::default()
            },
            move |_: CutRef<'_>, _: EventId| {
                sink_counter.fetch_add(1, Ordering::Relaxed);
                ControlFlow::Continue(())
            },
        ));
        let barrier = Arc::new(std::sync::Barrier::new(PRODUCERS));
        std::thread::scope(|scope| {
            for p in 0..PRODUCERS {
                let engine = Arc::clone(&engine);
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    for k in 0..EVENTS_PER_PRODUCER {
                        // Mix in dependencies on whatever a neighbor has
                        // published (racy reads of progress are fine: any
                        // already-published event is a valid dependency).
                        let deps: Vec<EventId> = if (k + p + round as usize) % 4 == 3 {
                            let other = Tid::from((p + 1) % PRODUCERS);
                            let published = engine.poset().events_of(other) as u32;
                            if published > 0 {
                                vec![EventId::new(other, published)]
                            } else {
                                vec![]
                            }
                        } else {
                            vec![]
                        };
                        engine.observe_after(Tid::from(p), &deps, ());
                    }
                });
            }
        });
        let engine = Arc::try_unwrap(engine).unwrap_or_else(|_| panic!("still shared"));
        let report = engine.finish();
        assert_eq!(report.events as usize, PRODUCERS * EVENTS_PER_PRODUCER);
        let expected = oracle::count_ideals(&report.poset);
        assert_eq!(report.cuts, expected, "round {round}");
        assert_eq!(counter.load(Ordering::Relaxed), expected, "round {round}");
        assert!(report.error.is_none());
    }
}

/// Budgeted online engine: if an interval exceeds the BFS budget the
/// engine reports it (and never silently drops cuts when it completes).
#[test]
fn online_budget_is_reported_not_swallowed() {
    // Wide poset: one event per thread across 12 threads, inserted from
    // one producer. With the BFS subroutine and a tiny budget, some
    // interval must blow the limit.
    let engine = OnlineEngine::new(
        12,
        OnlineEngineConfig {
            algorithm: Algorithm::Bfs,
            workers: 2,
            frontier_budget: Some(16),
            ..OnlineEngineConfig::default()
        },
        move |_: CutRef<'_>, _: EventId| ControlFlow::Continue(()),
    );
    for t in 0..12 {
        engine.observe_after(Tid::from(t as usize), &[], ());
    }
    let report = engine.finish();
    assert!(
        report.error.is_some(),
        "a 2^11-cut interval must exceed 16 frontiers"
    );

    // Same stream with the lexical subroutine: no budget, must complete
    // with the exact count 2^12.
    let engine = OnlineEngine::new(
        12,
        OnlineEngineConfig {
            algorithm: Algorithm::Lexical,
            workers: 2,
            frontier_budget: Some(16),
            ..OnlineEngineConfig::default()
        },
        move |_: CutRef<'_>, _: EventId| ControlFlow::Continue(()),
    );
    for t in 0..12 {
        engine.observe_after(Tid::from(t as usize), &[], ());
    }
    let report = engine.finish();
    assert!(report.error.is_none());
    assert_eq!(report.cuts, 1 << 12);
}

/// Interleaving insertion with enumeration must never deadlock even when
/// the sink itself is slow (workers busy while producers insert).
#[test]
fn slow_sink_does_not_deadlock() {
    let engine = OnlineEngine::new(
        3,
        OnlineEngineConfig {
            workers: 1,
            ..OnlineEngineConfig::default()
        },
        move |_: CutRef<'_>, _: EventId| {
            std::thread::yield_now();
            ControlFlow::Continue(())
        },
    );
    for k in 0..30 {
        engine.observe_after(Tid(k % 3), &[], ());
    }
    let report = engine.finish();
    assert_eq!(report.events, 30);
    assert_eq!(report.cuts, 11 * 11 * 11);
}

/// The backpressure acceptance test: a deliberately slow sink saturates a
/// tiny bounded queue under `BackpressurePolicy::Block` while concurrent
/// producers hammer the engine. The blocking sends must throttle the
/// producers — never drop work — so the final count has to match a
/// sequential BFS recount of the very poset that was observed.
#[test]
fn blocked_backpressure_loses_no_cuts_under_saturation() {
    const PRODUCERS: usize = 4;
    const EVENTS_PER_PRODUCER: usize = 8;
    let counter = Arc::new(AtomicU64::new(0));
    let sink_counter = Arc::clone(&counter);
    let engine = Arc::new(OnlineEngine::new(
        PRODUCERS,
        OnlineEngineConfig {
            workers: 2,
            queue_capacity: 2, // tiny on purpose: saturate immediately
            backpressure: BackpressurePolicy::Block,
            ..OnlineEngineConfig::default()
        },
        move |_: CutRef<'_>, _: EventId| {
            // Slow consumer: enumeration lags far behind insertion.
            std::thread::sleep(std::time::Duration::from_micros(20));
            sink_counter.fetch_add(1, Ordering::Relaxed);
            ControlFlow::Continue(())
        },
    ));
    let barrier = Arc::new(std::sync::Barrier::new(PRODUCERS));
    std::thread::scope(|scope| {
        for p in 0..PRODUCERS {
            let engine = Arc::clone(&engine);
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                barrier.wait();
                for k in 0..EVENTS_PER_PRODUCER {
                    let deps: Vec<EventId> = if (k + p) % 4 == 3 {
                        let other = Tid::from((p + 1) % PRODUCERS);
                        let published = engine.poset().events_of(other) as u32;
                        if published > 0 {
                            vec![EventId::new(other, published)]
                        } else {
                            vec![]
                        }
                    } else {
                        vec![]
                    };
                    engine.observe_after(Tid::from(p), &deps, ());
                }
            });
        }
    });
    let engine = Arc::try_unwrap(engine).unwrap_or_else(|_| panic!("still shared"));
    let report = engine.finish();
    assert_eq!(report.events as usize, PRODUCERS * EVENTS_PER_PRODUCER);

    // Zero lost cuts: the sequential BFS baseline on the same poset is the
    // ground truth (Theorem 2 — the interval partition covers the lattice).
    let mut baseline_sink = paramount_suite::paramount_enumerate::CountSink::default();
    let baseline = paramount_suite::paramount_enumerate::bfs::enumerate(
        &report.poset,
        &Default::default(),
        &mut baseline_sink,
    )
    .expect("baseline BFS must complete");
    assert_eq!(report.cuts, baseline.cuts, "cuts lost under backpressure");
    assert_eq!(counter.load(Ordering::Relaxed), baseline.cuts);

    // The observability story: every interval dispatched and completed,
    // nothing shed, and the queue really did fill up.
    let m = &report.metrics;
    assert_eq!(m.intervals_dispatched, report.events);
    assert_eq!(m.intervals_completed, report.events);
    assert_eq!(m.intervals_rejected, 0);
    assert_eq!(m.cuts_emitted, report.cuts);
    assert!(
        m.queue_depth_high_water >= 2,
        "a 2-slot queue under a slow sink must hit its high-water mark"
    );
    assert!(report.is_complete());
}

/// Drain-on-finish with a slow consumer and a saturated 1-slot queue under
/// `SpillToDeque`: overflow intervals park in the spill deque and MUST all
/// be enumerated before `finish` returns (channel closes first, spill
/// drains after — Theorem 3's no-missed-cuts through the overflow path).
#[test]
fn spill_deque_drains_completely_on_finish() {
    let engine = OnlineEngine::new(
        2,
        OnlineEngineConfig {
            workers: 1,
            queue_capacity: 1,
            backpressure: BackpressurePolicy::SpillToDeque,
            ..OnlineEngineConfig::default()
        },
        move |_: CutRef<'_>, _: EventId| {
            std::thread::sleep(std::time::Duration::from_micros(30));
            ControlFlow::Continue(())
        },
    );
    // Burst 40 events from one thread as fast as possible: the single slow
    // worker cannot keep up, so most intervals overflow into the deque.
    for k in 0..40u32 {
        engine.observe_after(Tid(k % 2), &[], ());
    }
    let report = engine.finish();
    assert_eq!(report.events, 40);
    let expected = oracle::count_ideals(&report.poset);
    assert_eq!(report.cuts, expected, "spilled intervals were dropped");
    let m = &report.metrics;
    assert!(
        m.intervals_spilled > 0,
        "queue never overflowed: not a stress"
    );
    assert_eq!(m.intervals_completed, m.intervals_dispatched);
    assert!(report.is_complete());
}

/// Owner attribution: every visited cut's owner event must be on the
/// cut's frontier of its own thread (the §predicate contract).
#[test]
fn owner_is_frontier_event_of_its_thread() {
    let violations = Arc::new(AtomicU64::new(0));
    let sink_violations = Arc::clone(&violations);
    let engine = OnlineEngine::new(
        3,
        OnlineEngineConfig::default(),
        move |cut: CutRef<'_>, owner: EventId| {
            // Exception: the empty cut reports the first event as owner.
            if cut.total_events() > 0 && cut.get(owner.tid) != owner.index {
                sink_violations.fetch_add(1, Ordering::Relaxed);
            }
            ControlFlow::Continue(())
        },
    );
    let mut prev: Option<EventId> = None;
    for k in 0..18 {
        let deps: Vec<EventId> = prev.into_iter().filter(|_| k % 3 == 0).collect();
        prev = Some(engine.observe_after(Tid(k % 3), &deps, ()));
    }
    let report = engine.finish();
    assert!(report.cuts > 0);
    assert_eq!(violations.load(Ordering::Relaxed), 0);
}
