use paramount_trace::VarId;
use paramount_vclock::Tid;
use std::fmt;

/// What kind of conflicting pair was caught.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RaceKind {
    /// Current write conflicts with a previous write.
    WriteWrite,
    /// Current read conflicts with a previous write.
    WriteRead,
    /// Current write conflicts with a previous read.
    ReadWrite,
}

impl fmt::Display for RaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaceKind::WriteWrite => write!(f, "write-write"),
            RaceKind::WriteRead => write!(f, "write-read"),
            RaceKind::ReadWrite => write!(f, "read-write"),
        }
    }
}

/// One reported race (the first detected per variable).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RaceReport {
    /// The racy variable.
    pub var: VarId,
    /// The conflict shape.
    pub kind: RaceKind,
    /// The thread whose access completed the race.
    pub tid: Tid,
    /// The thread that performed the earlier conflicting access.
    pub other: Tid,
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} race on {} between {} and {}",
            self.kind, self.var, self.tid, self.other
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let r = RaceReport {
            var: VarId(3),
            kind: RaceKind::WriteRead,
            tid: Tid(1),
            other: Tid(0),
        };
        assert_eq!(r.to_string(), "write-read race on v3 between t2 and t1");
    }
}
