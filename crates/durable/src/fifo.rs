//! An on-disk FIFO of checksummed byte batches — the cold tier behind
//! the interval spill queue.
//!
//! Each pushed batch becomes one file `spill-<seq>.bin` holding a
//! single record in the WAL framing (`kind len payload crc`); popping
//! reads, verifies, and deletes the oldest file. Batches are large
//! (a whole hot-queue flush), so file-per-batch keeps both ends O(1)
//! and makes reclamation a plain unlink.
//!
//! The queue is deliberately **not** fsynced and **not** recovered
//! across restarts: the session WAL is the authoritative record and a
//! restart regenerates any spilled intervals by replay. [`DiskQueue::create`]
//! therefore clears leftovers from a previous incarnation.

use crate::crc32::crc32;
use crate::varint;
use std::collections::VecDeque;
use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Record-kind byte for spill batches (there is only one kind; the
/// framing is shared with the WAL for uniformity).
const BATCH_KIND: u8 = 0x51;

/// An on-disk FIFO of opaque byte batches.
#[derive(Debug)]
pub struct DiskQueue {
    dir: PathBuf,
    next_seq: u64,
    /// Live batches, oldest first: (sequence, payload bytes).
    segments: VecDeque<(u64, u64)>,
    /// Total payload bytes across live batches.
    bytes: u64,
}

fn batch_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("spill-{seq:010}.bin"))
}

impl DiskQueue {
    /// Creates an empty queue in `dir`, removing any batches a previous
    /// process left behind (they are regenerable; see module docs).
    pub fn create(dir: &Path) -> io::Result<DiskQueue> {
        fs::create_dir_all(dir)?;
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with("spill-") && name.ends_with(".bin") {
                fs::remove_file(entry.path())?;
            }
        }
        Ok(DiskQueue {
            dir: dir.to_path_buf(),
            next_seq: 1,
            segments: VecDeque::new(),
            bytes: 0,
        })
    }

    /// Number of live batches.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True when no batches are on disk.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Total payload bytes currently on disk.
    pub fn byte_len(&self) -> u64 {
        self.bytes
    }

    /// Appends one batch; returns the payload bytes now attributable to
    /// the disk tier (the caller folds this into its budget).
    pub fn push(&mut self, payload: &[u8]) -> io::Result<u64> {
        let seq = self.next_seq;
        let mut buf = Vec::with_capacity(payload.len() + 16);
        buf.push(BATCH_KIND);
        varint::push_u64(&mut buf, payload.len() as u64);
        buf.extend_from_slice(payload);
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        let path = batch_path(&self.dir, seq);
        File::create(&path)?.write_all(&buf)?;
        self.next_seq += 1;
        self.segments.push_back((seq, payload.len() as u64));
        self.bytes += payload.len() as u64;
        Ok(payload.len() as u64)
    }

    /// Removes and returns the oldest batch, or `None` when empty. A
    /// batch that fails verification (impossible without external
    /// interference, since this tier never survives a crash) surfaces
    /// as `InvalidData`.
    pub fn pop(&mut self) -> io::Result<Option<Vec<u8>>> {
        let Some((seq, payload_len)) = self.segments.pop_front() else {
            return Ok(None);
        };
        self.bytes -= payload_len;
        let path = batch_path(&self.dir, seq);
        let mut bytes = Vec::new();
        File::open(&path)?.read_to_end(&mut bytes)?;
        fs::remove_file(&path)?;
        let bad = || io::Error::new(io::ErrorKind::InvalidData, "corrupt spill batch");
        if bytes.len() < 5 || bytes[0] != BATCH_KIND {
            return Err(bad());
        }
        let mut pos = 1usize;
        let len = varint::read_u64_at(&bytes, &mut pos).ok_or_else(bad)?;
        let len = usize::try_from(len).map_err(|_| bad())?;
        if bytes.len() != pos + len + 4 {
            return Err(bad());
        }
        let stored = u32::from_le_bytes(bytes[pos + len..].try_into().unwrap());
        if crc32(&bytes[..pos + len]) != stored {
            return Err(bad());
        }
        bytes.truncate(pos + len);
        bytes.drain(..pos);
        Ok(Some(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("paramount-fifo-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fifo_order_and_byte_accounting() {
        let dir = scratch_dir("order");
        let mut q = DiskQueue::create(&dir).unwrap();
        assert!(q.is_empty());
        q.push(b"oldest").unwrap();
        q.push(b"middle").unwrap();
        q.push(b"newest").unwrap();
        assert_eq!(q.len(), 3);
        assert_eq!(q.byte_len(), 18);
        assert_eq!(q.pop().unwrap().unwrap(), b"oldest");
        assert_eq!(q.byte_len(), 12);
        assert_eq!(q.pop().unwrap().unwrap(), b"middle");
        assert_eq!(q.pop().unwrap().unwrap(), b"newest");
        assert_eq!(q.pop().unwrap(), None);
        assert_eq!(q.byte_len(), 0);
        // All batch files reclaimed.
        let leftovers = fs::read_dir(&dir).unwrap().count();
        assert_eq!(leftovers, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_clears_a_previous_incarnation() {
        let dir = scratch_dir("clear");
        let mut q = DiskQueue::create(&dir).unwrap();
        q.push(b"stale").unwrap();
        drop(q);
        let mut q = DiskQueue::create(&dir).unwrap();
        assert!(q.is_empty(), "stale batches are regenerable, not replayed");
        assert_eq!(q.pop().unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }
}
