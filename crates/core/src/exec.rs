//! The shared interval-execution core.
//!
//! Both execution modes — offline (Algorithm 1) and online (Algorithm 4)
//! — reduce to the same job: run a bounded subroutine over intervals
//! `I(e) = [Gmin(e), Gbnd(e)]`, survive sink faults without losing or
//! double-delivering cuts, and account for everything in one metrics
//! registry. This module is the single implementation of that job:
//!
//! * [`IntervalExecutor`] — the per-interval machinery: subroutine
//!   dispatch, delivery metering, the `catch_unwind` isolation boundary
//!   with its clean-slate-retry/quarantine protocol, and the chaos
//!   injection site at the sink.
//! * **Batch mode** (`IntervalExecutor::run_batch`) — fan a
//!   pre-partitioned interval list over a Rayon pool with work stealing
//!   (the offline engine is a thin front-end over this).
//! * **Streaming mode** (`StreamExecutor`) — a supervised worker pool
//!   draining a bounded channel of intervals as they are created, with an
//!   explicit [`BackpressurePolicy`] and a delta-coded spill buffer (the
//!   online engine feeds this incrementally).
//!
//! The isolation contract (identical in both modes): a panic unwinding
//! out of the sink is caught at the interval boundary; the interval is
//! retried once i*f and only if* nothing of it had been delivered
//! (re-running a partial interval would double-deliver its prefix —
//! Theorem 2's exactly-once guarantee outranks completeness), and
//! otherwise quarantined with the exact delivered-prefix length on
//! record. Interval disjointness (Lemmas 2–3) is what makes the blast
//! radius of a fault one interval, never the run.

use crate::faults::{FaultLog, FaultPlan, QuarantinedInterval};
use crate::governor::{MemoryBudget, OverloadError, Pressure};
use crate::interval::Interval;
use crate::metrics::{MetricsSnapshot, ParaMetrics};
use crate::sink::{MeteredSink, ParallelCutSink, SinkBridge};
use crate::store::DurableIntervalQueue;
use crossbeam_channel::TrySendError;
use paramount_enumerate::{panic_message, Algorithm, CutSink, EnumError, EnumStats};
use paramount_poset::CutSpace;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::ops::ControlFlow;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Box-size threshold used by `Algorithm::Auto` while the spill deque is
/// non-empty: under memory pressure everything but near-degenerate
/// intervals runs in the `O(n)`-space leveled walk.
const AUTO_PRESSURE_THRESHOLD: u128 = 64;

/// Observations required in the cut-count histogram before `Auto` trusts
/// it for threshold calibration (avoids steering on the first few,
/// possibly unrepresentative, intervals).
const AUTO_CALIBRATION_MIN_INTERVALS: u64 = 32;

/// Box-size ceiling for an interval to be coalesced into a tiny-interval
/// batch instead of occupying its own dispatch-queue slot. Wide-but-
/// shallow posets produce floods of near-degenerate intervals whose
/// enumeration is cheaper than a channel round-trip; batching amortizes
/// that overhead without touching the per-interval isolation contract.
const BATCH_TINY_BOX: u128 = 16;

/// Coalesced intervals per batch before the pending buffer is flushed to
/// the channel as one entry. Bounded so a stalled producer can only ever
/// delay (never lose) this many tiny intervals until the next flush
/// trigger: a full buffer, a non-tiny submission, or `finish`.
const BATCH_MAX_INTERVALS: usize = 32;

/// One streaming dispatch-queue entry: a single interval, or a coalesced
/// run of consecutive tiny intervals sharing the channel slot. Workers
/// unroll a batch at pickup, so everything downstream of the queue (the
/// isolation boundary, preemption, quarantine) stays per-interval.
enum Job {
    /// An interval big enough to be worth its own slot.
    One(Interval),
    /// A coalesced run of tiny intervals (see [`BATCH_TINY_BOX`]).
    Many(Vec<Interval>),
}

impl Job {
    /// Intervals carried by this queue entry.
    fn len(&self) -> usize {
        match self {
            Job::One(_) => 1,
            Job::Many(batch) => batch.len(),
        }
    }

    /// Consumes the job, applying `f` to each carried interval in
    /// submission order.
    fn for_each(self, mut f: impl FnMut(Interval)) {
        match self {
            Job::One(interval) => f(interval),
            Job::Many(batch) => batch.into_iter().for_each(&mut f),
        }
    }
}

/// The interval-execution core shared by both engines: subroutine
/// configuration plus the one `catch_unwind` retry/quarantine
/// implementation in the crate.
///
/// Plain `Copy` data — engines embed one and the worker pool reads it
/// through shared state.
///
/// # Adaptive subroutine dispatch
///
/// With `algorithm: Algorithm::Auto` the executor re-decides the
/// subroutine for **every interval** right before running it: big/wide
/// intervals (by [`Interval::box_size`]) take the space-efficient
/// leveled walk, tiny ones the lexical scan, and the threshold between
/// them adapts to two live [`ParaMetrics`] signals — a non-empty spill
/// deque (memory pressure ⇒ prefer `O(n)`-space traversal now) and the
/// per-interval cut-count histogram (observed interval sizes calibrate
/// how much to trust the box-size estimate). Decisions are counted in
/// `intervals_auto_leveled` / `intervals_auto_lexical`. A resolution is
/// made once per interval, so the single-retry path re-runs the same
/// subroutine it first picked.
#[derive(Clone, Copy, Debug)]
pub struct IntervalExecutor {
    /// Bounded sequential subroutine run on each interval —
    /// [`Algorithm::Auto`] enables per-interval adaptive dispatch (see
    /// the type-level docs).
    pub algorithm: Algorithm,
    /// Per-interval frontier budget for the stateful subroutines
    /// (BFS/DFS); the lexical subroutine is stateless and ignores it.
    pub frontier_budget: Option<usize>,
    /// Liveness deadline for one in-flight interval (`None` = never
    /// preempt). Workers check a cooperative cancellation token — and
    /// this deadline inline — once per visited cut; an interval that
    /// overstays is preempted and split or quarantined
    /// ([`crate::governor`]).
    pub interval_deadline: Option<Duration>,
    /// Deterministic fault-injection plan (inert unless the `chaos`
    /// feature compiles the sites in).
    pub faults: FaultPlan,
}

impl IntervalExecutor {
    /// An executor over the given subroutine, with no budget, no
    /// deadline and no injected faults.
    pub fn new(algorithm: Algorithm) -> Self {
        IntervalExecutor {
            algorithm,
            frontier_budget: None,
            interval_deadline: None,
            faults: FaultPlan::default(),
        }
    }

    /// Enumerates one interval into `sink`, metering every completed
    /// delivery into `emitted` so a fault knows the exact prefix length
    /// that reached the sink. With a preemption guard, the cancellation
    /// token and deadline are checked *before* each delivery, so a
    /// preempted attempt's meter is still exactly the delivered prefix.
    fn run_interval<Sp, K>(
        &self,
        space: &Sp,
        iv: &Interval,
        algorithm: Algorithm,
        sink: &K,
        emitted: &AtomicU64,
        preempt: Option<&PreemptGuard<'_>>,
    ) -> Result<EnumStats, EnumError>
    where
        Sp: CutSpace + ?Sized,
        K: ParallelCutSink + ?Sized,
    {
        let bridge = MeteredSink::new(SinkBridge::new(sink, iv.event), emitted);
        match preempt {
            Some(guard) => {
                let mut wrapped = PreemptSink {
                    inner: bridge,
                    guard,
                };
                iv.enumerate_budgeted(space, algorithm, self.frontier_budget, &mut wrapped)
            }
            None => {
                let mut bridge = bridge;
                iv.enumerate_budgeted(space, algorithm, self.frontier_budget, &mut bridge)
            }
        }
    }

    /// Resolves the configured subroutine for one concrete interval —
    /// the §5e adaptive dispatch point. Concrete algorithms pass through
    /// unchanged; [`Algorithm::Auto`] picks per interval:
    ///
    /// * The base signal is the interval's [`Interval::box_size`] — the
    ///   potential-cut volume of `[Gmin, Gbnd]`. Big/wide boxes take the
    ///   space-efficient leveled walk, tiny ones the lexical scan (whose
    ///   per-cut constant is lower on short intervals).
    /// * Any spill backlog ([`ParaMetrics::spill_bytes`]) is a live
    ///   memory-pressure signal: the threshold collapses so *every*
    ///   non-trivial interval runs in `O(n)` space until the backlog
    ///   drains.
    /// * Once enough intervals have completed, the observed cut-count
    ///   histogram ([`ParaMetrics::interval_cuts`]) calibrates the
    ///   threshold: if real intervals are running much larger than the
    ///   base threshold assumes (mean observed cuts above it), the
    ///   threshold halves — box size *under*-estimates nothing, so large
    ///   observed means say the workload is in the wide regime where
    ///   frontier storage, not per-cut constants, dominates.
    ///
    /// Every `Auto` decision is counted in `intervals_auto_leveled` /
    /// `intervals_auto_lexical`, so a run's dispatch mix is visible in
    /// `paramount stats` and the bench metrics JSON.
    fn resolve_algorithm(&self, iv: &Interval, metrics: &ParaMetrics) -> Algorithm {
        if self.algorithm != Algorithm::Auto {
            return self.algorithm;
        }
        let mut threshold = paramount_enumerate::AUTO_BOX_THRESHOLD;
        if metrics.spill_bytes.get() > 0 {
            // Memory pressure: only genuinely tiny intervals may keep the
            // lexical path's constant-factor advantage.
            threshold = AUTO_PRESSURE_THRESHOLD;
        } else {
            let seen = metrics.interval_cuts.count();
            if seen >= AUTO_CALIBRATION_MIN_INTERVALS
                && metrics.interval_cuts.sum() / seen
                    > paramount_enumerate::AUTO_BOX_THRESHOLD as u64
            {
                threshold /= 2;
            }
        }
        let resolved = if iv.box_size() >= threshold {
            Algorithm::Leveled
        } else {
            Algorithm::Lexical
        };
        match resolved {
            Algorithm::Leveled => metrics.intervals_auto_leveled.add(1),
            _ => metrics.intervals_auto_lexical.add(1),
        }
        resolved
    }

    /// One interval under the `catch_unwind` boundary — the single
    /// retry/quarantine decision point for both execution modes. At most
    /// one retry, and only from a clean slate (`emitted == 0`).
    ///
    /// `emitted` is reset at the start of every attempt; in streaming
    /// mode it doubles as the in-flight slot's meter, observable by the
    /// supervisor across a worker-body panic.
    fn run_isolated<Sp, K>(
        &self,
        space: &Sp,
        iv: &Interval,
        sink: &K,
        metrics: &ParaMetrics,
        emitted: &AtomicU64,
        preempt: Option<&PreemptControl<'_>>,
    ) -> Result<EnumStats, IntervalFault>
    where
        Sp: CutSpace + ?Sized,
        K: ParallelCutSink + ?Sized,
    {
        let tripped = AtomicBool::new(false);
        // Resolve `Auto` once per interval (not per attempt): the retry
        // must re-run the identical subroutine, or the delivered-prefix
        // bookkeeping would compare apples to oranges.
        let algorithm = self.resolve_algorithm(iv, metrics);
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            emitted.store(0, Ordering::Relaxed);
            let guard = preempt.map(|p| PreemptGuard {
                cancel: p.cancel,
                deadline_at: p.deadline_at,
                tripped: &tripped,
            });
            // The sink is reachable after the catch by design (shared,
            // `&self`-based, synchronized internally), so
            // `AssertUnwindSafe` asserts exactly the contract
            // `ParallelCutSink` already demands of implementations.
            let run = catch_unwind(AssertUnwindSafe(|| {
                self.run_interval(space, iv, algorithm, sink, emitted, guard.as_ref())
            }));
            match run {
                Ok(Ok(stats)) => return Ok(stats),
                // The preemption guard stops an enumeration with the same
                // `Break` a sink uses; the tripped flag is what separates
                // "deadline expired" from "sink asked for a global stop".
                Ok(Err(EnumError::Stopped)) if tripped.load(Ordering::Relaxed) => {
                    return Err(IntervalFault::Preempted {
                        emitted: emitted.load(Ordering::Relaxed),
                    })
                }
                Ok(Err(err)) => return Err(IntervalFault::Error(err)),
                Err(payload) => {
                    metrics.worker_panics.add(1);
                    let delivered = emitted.load(Ordering::Relaxed);
                    if delivered == 0 && attempts == 1 {
                        metrics.intervals_retried.add(1);
                        continue;
                    }
                    return Err(IntervalFault::Panicked {
                        emitted: delivered,
                        attempts,
                        message: panic_message(payload.as_ref()),
                    });
                }
            }
        }
    }

    /// Batch mode: fans a pre-partitioned interval list over a Rayon
    /// pool. `threads == 0` uses the global pool; any other value builds
    /// a dedicated pool of exactly that size (degrading to the caller's
    /// pool — counted in `worker_spawn_failures` — if the build fails).
    pub(crate) fn run_batch<Sp, K>(
        &self,
        threads: usize,
        space: &Sp,
        intervals: &[Interval],
        sink: &K,
        metrics: &ParaMetrics,
    ) -> Result<BatchOutcome, EnumError>
    where
        Sp: CutSpace + Sync + ?Sized,
        K: ParallelCutSink + ?Sized,
    {
        #[cfg(feature = "chaos")]
        if self.faults.arms_sink() {
            let chaos = ChaosSink::new(self.faults, sink);
            return self.run_batch_inner(threads, space, intervals, &chaos, metrics);
        }
        self.run_batch_inner(threads, space, intervals, sink, metrics)
    }

    fn run_batch_inner<Sp, K>(
        &self,
        threads: usize,
        space: &Sp,
        intervals: &[Interval],
        sink: &K,
        metrics: &ParaMetrics,
    ) -> Result<BatchOutcome, EnumError>
    where
        Sp: CutSpace + Sync + ?Sized,
        K: ParallelCutSink + ?Sized,
    {
        metrics.intervals_dispatched.add(intervals.len() as u64);
        let cuts = AtomicU64::new(0);
        let peak = AtomicUsize::new(0);
        let fault_log = Mutex::new(FaultLog::default());
        let run = || -> Result<(), EnumError> {
            use rayon::prelude::*;
            intervals.par_iter().try_for_each(|iv| {
                // Rayon pool threads have a stable index; work stolen onto
                // a non-pool thread (possible with the global pool) is
                // tallied on slot 0.
                let widx = rayon::current_thread_index().unwrap_or(0);
                self.run_batch_interval(
                    space,
                    iv,
                    sink,
                    metrics,
                    &cuts,
                    &peak,
                    &fault_log,
                    widx,
                    self.interval_deadline,
                )
            })
        };

        let result = if threads == 0 {
            run()
        } else {
            match rayon::ThreadPoolBuilder::new().num_threads(threads).build() {
                Ok(pool) => pool.install(run),
                Err(_) => {
                    // Degrade to the caller's (global) pool instead of
                    // aborting a run whose inputs are perfectly fine.
                    metrics.worker_spawn_failures.add(1);
                    run()
                }
            }
        };
        result?;

        Ok(BatchOutcome {
            cuts: cuts.load(Ordering::Relaxed),
            peak_frontiers: peak.load(Ordering::Relaxed),
            faults: fault_log.into_inner(),
        })
    }

    /// One batch interval end to end: isolated run, tallies, and the
    /// fault/preemption disposition. Preemption recurses — a deadline
    /// expiry with a clean slate splits the interval and runs both
    /// halves (each under a fresh deadline), an unsplittable single-cut
    /// box re-runs without a deadline (one cut must not starve the run),
    /// and a partially delivered interval is quarantined with its exact
    /// prefix, exactly like a partial panic.
    #[allow(clippy::too_many_arguments)]
    fn run_batch_interval<Sp, K>(
        &self,
        space: &Sp,
        iv: &Interval,
        sink: &K,
        metrics: &ParaMetrics,
        cuts: &AtomicU64,
        peak: &AtomicUsize,
        fault_log: &Mutex<FaultLog>,
        widx: usize,
        deadline: Option<Duration>,
    ) -> Result<(), EnumError>
    where
        Sp: CutSpace + Sync + ?Sized,
        K: ParallelCutSink + ?Sized,
    {
        let started = Instant::now();
        let emitted = AtomicU64::new(0);
        let cancel = AtomicBool::new(false);
        let control = deadline.map(|d| PreemptControl {
            cancel: &cancel,
            deadline_at: Some(Instant::now() + d),
        });
        let outcome = self.run_isolated(space, iv, sink, metrics, &emitted, control.as_ref());
        let tally = metrics.worker(widx);
        tally.add_busy(started.elapsed().as_nanos() as u64);
        tally.add_interval();
        match outcome {
            Ok(stats) => {
                metrics.intervals_completed.add_on(widx, 1);
                metrics.cuts_emitted.add_on(widx, stats.cuts);
                metrics.interval_cuts.record(stats.cuts);
                cuts.fetch_add(stats.cuts, Ordering::Relaxed);
                peak.fetch_max(stats.peak_frontiers, Ordering::Relaxed);
                Ok(())
            }
            Err(IntervalFault::Error(err)) => Err(err),
            Err(IntervalFault::Panicked {
                emitted,
                attempts,
                message,
            }) => {
                cuts.fetch_add(emitted, Ordering::Relaxed);
                record_quarantine(metrics, fault_log, iv, emitted, attempts, message, widx);
                Ok(())
            }
            Err(IntervalFault::Preempted { emitted: delivered }) => {
                metrics.intervals_preempted.add(1);
                if delivered == 0 {
                    if let Some((lo, hi)) = iv.split(space) {
                        metrics.intervals_split.add(1);
                        metrics.intervals_dispatched.add(2);
                        self.run_batch_interval(
                            space, &lo, sink, metrics, cuts, peak, fault_log, widx, deadline,
                        )?;
                        self.run_batch_interval(
                            space, &hi, sink, metrics, cuts, peak, fault_log, widx, deadline,
                        )
                    } else {
                        self.run_batch_interval(
                            space, iv, sink, metrics, cuts, peak, fault_log, widx, None,
                        )
                    }
                } else {
                    cuts.fetch_add(delivered, Ordering::Relaxed);
                    record_quarantine(
                        metrics,
                        fault_log,
                        iv,
                        delivered,
                        1,
                        format!("preempted: deadline expired after {delivered} delivered cuts"),
                        widx,
                    );
                    Ok(())
                }
            }
        }
    }
}

/// How one interval's processing ended when it did not end cleanly.
pub(crate) enum IntervalFault {
    /// A real enumeration error (`Stopped`, `OutOfBudget`).
    Error(EnumError),
    /// A panic unwound out of the sink; the interval is quarantined.
    Panicked {
        /// Cuts the sink saw before the fault.
        emitted: u64,
        /// Attempts made (2 means the clean-slate retry also failed).
        attempts: u32,
        /// Stringified panic payload.
        message: String,
    },
    /// The interval's deadline expired (watchdog token or inline check):
    /// split and rescheduled if nothing was delivered, quarantined with
    /// the exact prefix otherwise.
    Preempted {
        /// Cuts the sink saw before the preemption.
        emitted: u64,
    },
}

/// Preemption inputs for one interval attempt: the cancellation token the
/// watchdog sets, and an inline deadline for attempts with no watchdog
/// behind them (batch mode, and the exact-trip determinism tests rely on
/// it).
pub(crate) struct PreemptControl<'a> {
    /// Cooperative cancellation token, checked once per visited cut.
    pub cancel: &'a AtomicBool,
    /// Absolute deadline, checked inline alongside the token.
    pub deadline_at: Option<Instant>,
}

///// Per-attempt view of a [`PreemptControl`]: adds the `tripped` flag the
/// run uses to tell a preemption `Break` apart from a sink-requested
/// stop.
struct PreemptGuard<'a> {
    cancel: &'a AtomicBool,
    deadline_at: Option<Instant>,
    tripped: &'a AtomicBool,
}

/// [`CutSink`] wrapper enforcing preemption: checks the token and the
/// deadline *before* delegating, so a tripped visit delivers nothing and
/// the emission meter still reads the exact delivered prefix.
struct PreemptSink<'a, S> {
    inner: S,
    guard: &'a PreemptGuard<'a>,
}

impl<S: CutSink> CutSink for PreemptSink<'_, S> {
    fn visit(&mut self, cut: paramount_poset::CutRef<'_>) -> ControlFlow<()> {
        if self.guard.cancel.load(Ordering::Relaxed)
            || self
                .guard
                .deadline_at
                .is_some_and(|at| Instant::now() >= at)
        {
            self.guard.tripped.store(true, Ordering::Relaxed);
            return ControlFlow::Break(());
        }
        self.inner.visit(cut)
    }
}

/// What a batch fan-out produced; the offline front-end folds this into
/// its public stats.
pub(crate) struct BatchOutcome {
    pub cuts: u64,
    pub peak_frontiers: usize,
    pub faults: FaultLog,
}

/// Abandons an interval into the fault log. The prefix the sink already
/// saw (`emitted` cuts, delivered before the fault) is added to the cut
/// total so the headline count stays exactly "cuts the sink received".
fn record_quarantine(
    metrics: &ParaMetrics,
    fault_log: &Mutex<FaultLog>,
    interval: &Interval,
    emitted: u64,
    attempts: u32,
    message: String,
    widx: usize,
) {
    metrics.intervals_quarantined.add(1);
    if emitted > 0 {
        metrics.cuts_emitted.add_on(widx, emitted);
    }
    fault_log.lock().push(QuarantinedInterval {
        interval: interval.clone(),
        cuts_emitted: emitted,
        attempts,
        message,
    });
}

/// What `submit` does when the streaming dispatch queue is full.
///
/// The queue fills exactly when insertions outpace enumeration — with
/// exponentially sized intervals that is a *when*, not an *if*, on heavy
/// traffic. The policy decides who absorbs the overload.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Block the observing thread until a worker frees a slot. Slows the
    /// observed program down (the paper's implicit model: instrumentation
    /// is allowed to throttle execution) but loses nothing — Theorem 3's
    /// "every cut exactly once" holds unconditionally.
    #[default]
    Block,
    /// Never block: divert overflow intervals to an unbounded buffer that
    /// workers drain with priority. Keeps the observed program at full
    /// speed and still loses nothing, at the cost of re-admitting the
    /// unbounded memory the queue bound was meant to cap — the spill
    /// counter in [`ParaMetrics`] makes that cost visible, and the
    /// buffer stores delta-coded descriptors
    /// ([`crate::store::PackedIntervalQueue`]) to keep it small.
    SpillToDeque,
    /// Never block and never buffer: drop the interval and count it in
    /// [`ParaMetrics::intervals_rejected`]. The cut count is then a lower
    /// bound, not Theorem 2's exact `i(P)` — for load-shedding monitors
    /// that prefer losing data over perturbing the program.
    Fail,
}

/// Streaming-mode pool parameters (the executor-facing subset of the
/// online engine's public config).
#[derive(Clone, Debug)]
pub(crate) struct StreamParams {
    /// Enumeration worker threads (≥ 1).
    pub workers: usize,
    /// Capacity of the bounded dispatch channel (≥ 1).
    pub queue_capacity: usize,
    /// What `submit` does when the channel is full.
    pub backpressure: BackpressurePolicy,
    /// Shared supervisor restart budget for panics that escape the
    /// per-interval boundary.
    pub worker_restart_budget: u32,
    /// Directory for the cold spill tier. `None` keeps the spill deque
    /// RAM-only; with a directory, memory pressure freezes the deque to
    /// disk instead of shedding work.
    pub spill_dir: Option<std::path::PathBuf>,
}

/// Per-worker-slot in-flight tracking: which interval the slot is
/// processing and how many of its cuts the sink has already seen. The
/// supervisor reads it when a panic escapes the per-interval boundary,
/// so even a dying worker body cannot lose an interval — it gets
/// quarantined with an exact emission count instead.
#[derive(Default)]
struct InFlightSlot {
    interval: Mutex<Option<Interval>>,
    /// The unprocessed tail of a coalesced [`Job::Many`] this slot is
    /// unrolling. Parked here (not held on the worker's stack) so a
    /// panic that escapes the per-interval boundary mid-batch cannot
    /// drop the remainder — the respawned body, a survivor, or
    /// `finish`'s inline drain picks it back up.
    backlog: Mutex<VecDeque<Interval>>,
    emitted: AtomicU64,
    /// Cooperative cancellation token the watchdog sets when the slot's
    /// interval overstays its deadline; cleared at every pickup.
    cancel: AtomicBool,
    /// When the slot went busy, as milliseconds since the executor's
    /// epoch *plus one* (0 = idle) — what the watchdog ages against.
    busy_since_ms: AtomicU64,
}

struct StreamShared<Sp> {
    space: Arc<Sp>,
    exec: IntervalExecutor,
    sink: Box<dyn ParallelCutSink>,
    stopped: AtomicBool,
    error: Mutex<Option<EnumError>>,
    metrics: ParaMetrics,
    /// Overflow intervals under [`BackpressurePolicy::SpillToDeque`],
    /// delta-coded, with an optional cold tier on disk. Workers drain it
    /// with priority; `finish` closes the channel only after producers
    /// stop, so leftover spill is drained post-close.
    spill: Mutex<DurableIntervalQueue>,
    fault_log: Mutex<FaultLog>,
    in_flight: Box<[InFlightSlot]>,
    /// Remaining supervisor restarts, shared across the pool. Signed so
    /// concurrent decrements past zero stay well-defined.
    restart_budget: AtomicI64,
    /// The byte account backing adaptive backpressure — possibly shared
    /// with other engines (the daemon threads one budget through every
    /// session).
    budget: Arc<MemoryBudget>,
    /// First typed overload error, if the hard watermark ever shed work.
    overload: Mutex<Option<OverloadError>>,
    /// Time zero for the watchdog's millisecond arithmetic.
    epoch: Instant,
    /// Tells the watchdog thread to exit.
    watchdog_stop: AtomicBool,
    /// Ordinal counters backing the fault plan's "k-th call" sites.
    #[cfg(feature = "chaos")]
    fault_state: crate::faults::FaultState,
}

impl<Sp> StreamShared<Sp> {
    fn slot(&self, index: usize) -> &InFlightSlot {
        &self.in_flight[index % self.in_flight.len()]
    }
}

/// Pops one spilled interval, never holding the lock across enumeration.
/// Byte deltas are settled against both tiers: popping shrinks the RAM
/// account, thawing a cold batch moves its bytes disk → RAM — the
/// accounting mirror of [`spill_push`] and [`freeze_spill_to_disk`].
///
/// A cold batch that cannot be read back is a real loss (its intervals
/// are unrecoverable in-process), so the failure stops the stream with a
/// typed error instead of silently under-counting.
fn pop_spill<Sp>(shared: &StreamShared<Sp>) -> Option<Interval> {
    let mut queue = shared.spill.lock();
    let ram_before = queue.ram_byte_len();
    let disk_before = queue.disk_byte_len();
    let popped = queue.pop_front();
    let ram_after = queue.ram_byte_len();
    let disk_after = queue.disk_byte_len();
    drop(queue);
    let disk_freed = disk_before.saturating_sub(disk_after);
    if disk_freed > 0 {
        shared.budget.credit_disk(disk_freed);
        shared.metrics.disk_spill_bytes.sub(disk_freed as u64);
    }
    if ram_after > ram_before {
        // Thawed a cold batch: its packed bytes are resident again.
        shared.budget.charge_spill(ram_after - ram_before);
        shared
            .metrics
            .spill_bytes
            .add((ram_after - ram_before) as u64);
    } else if ram_before > ram_after {
        shared.budget.credit_spill(ram_before - ram_after);
        shared
            .metrics
            .spill_bytes
            .sub((ram_before - ram_after) as u64);
    }
    match popped {
        Ok(interval) => interval,
        Err(err) => {
            shared.error.lock().get_or_insert(EnumError::Panicked {
                message: format!("durable spill: {err}"),
            });
            shared.stopped.store(true, Ordering::Relaxed);
            None
        }
    }
}

/// Pushes one interval into the spill deque, charging the encoded byte
/// delta to the shared budget (watermark input) and the per-engine
/// spill-size gauge. Under memory pressure the hot deque then freezes
/// onto the cold disk tier, if one is attached with headroom.
fn spill_push<Sp>(shared: &StreamShared<Sp>, interval: &Interval) {
    let mut queue = shared.spill.lock();
    let before = queue.ram_byte_len();
    queue.push_back(interval);
    let delta = queue.ram_byte_len() - before;
    shared.budget.charge_spill(delta);
    shared.metrics.spill_bytes.add(delta as u64);
    if shared.budget.pressure() >= Pressure::Soft {
        freeze_spill_to_disk(shared, &mut queue);
    }
}

/// Freezes the hot spill deque onto the cold disk tier, migrating its
/// bytes from the RAM watermarks to the disk account. Returns `false`
/// when no cold tier is attached, the disk cap has no headroom, the hot
/// deque is empty, or the write failed — every one of those leaves the
/// deque in RAM, losing nothing, and the caller falls back to the
/// RAM-only behavior.
fn freeze_spill_to_disk<Sp>(shared: &StreamShared<Sp>, queue: &mut DurableIntervalQueue) -> bool {
    // The batch payload is the hot bytes plus a small varint header.
    if !queue.has_disk() || !shared.budget.disk_can_accept(queue.hot_byte_len() + 8) {
        return false;
    }
    let disk_before = queue.disk_byte_len();
    match queue.spill_to_disk() {
        Ok(0) => false,
        Ok(moved) => {
            let disk_delta = queue.disk_byte_len() - disk_before;
            shared.budget.credit_spill(moved);
            shared.metrics.spill_bytes.sub(moved as u64);
            shared.budget.charge_disk(disk_delta);
            shared.metrics.disk_spill_bytes.add(disk_delta as u64);
            shared.metrics.disk_spill_batches.add(1);
            true
        }
        // Write failure: the queue restored its hot tier; keep running
        // RAM-only (the watermarks stay honest, nothing is lost).
        Err(_) => false,
    }
}

/// Hard-pressure escape hatch: admits `interval` into the spill deque
/// only when a cold tier is attached with headroom for the hot deque
/// behind it, then freezes the deque to disk. Returns `false` (the
/// caller sheds) when that path is closed. If the freeze itself fails
/// after admission, the interval stays queued in RAM — over budget but
/// exact — because reporting it shed *and* later enumerating it would
/// break Theorem 2's exactly-once accounting.
fn spill_through_disk<Sp>(shared: &StreamShared<Sp>, interval: &Interval) -> bool {
    let mut queue = shared.spill.lock();
    if !queue.has_disk() || !shared.budget.disk_can_accept(queue.hot_byte_len() + 8) {
        return false;
    }
    let before = queue.ram_byte_len();
    queue.push_back(interval);
    let delta = queue.ram_byte_len() - before;
    shared.budget.charge_spill(delta);
    shared.metrics.spill_bytes.add(delta as u64);
    freeze_spill_to_disk(shared, &mut queue);
    true
}

/// Streaming mode: a supervised worker pool draining a bounded channel
/// of intervals as a front-end `submit`s them. The online engine wraps
/// this around its growing poset; any `CutSpace` whose published prefix
/// is stable under concurrent growth works.
pub(crate) struct StreamExecutor<Sp: CutSpace + Send + Sync + 'static> {
    shared: Arc<StreamShared<Sp>>,
    sender: Option<crossbeam_channel::Sender<Job>>,
    /// Tiny intervals awaiting coalescence into one queue entry; flushed
    /// when full, when a non-tiny interval arrives (order-preserving),
    /// and unconditionally by `finish`.
    pending: Mutex<Vec<Interval>>,
    /// Kept so `finish` can drain intervals no worker lived to process
    /// (total pool death past the restart budget, or zero spawned
    /// workers): the report is exact even with a dead pool.
    receiver: crossbeam_channel::Receiver<Job>,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// Liveness supervisor, running only when an interval deadline is
    /// configured; stopped and joined by `finish`/`Drop`.
    watchdog: Option<std::thread::JoinHandle<()>>,
    backpressure: BackpressurePolicy,
}

/// What a finished stream produced; the online front-end folds this into
/// its public report.
pub(crate) struct StreamOutcome {
    pub error: Option<EnumError>,
    pub faults: FaultLog,
    pub metrics: MetricsSnapshot,
    /// Set when the hard watermark forced work to be shed mid-stream.
    pub overload: Option<OverloadError>,
}

impl<Sp: CutSpace + Send + Sync + 'static> StreamExecutor<Sp> {
    /// Starts the pool. Spawn failures degrade the pool instead of
    /// aborting construction: whatever workers did start carry the load,
    /// and with zero workers `submit` falls back to enumerating inline
    /// on the calling thread (slow, but complete and alive).
    pub fn new(
        space: Arc<Sp>,
        exec: IntervalExecutor,
        params: StreamParams,
        sink: Box<dyn ParallelCutSink>,
        budget: Arc<MemoryBudget>,
    ) -> Self {
        assert!(params.workers >= 1, "need at least one worker");
        assert!(params.queue_capacity >= 1, "queue capacity must be >= 1");
        #[cfg(feature = "chaos")]
        let sink: Box<dyn ParallelCutSink> = if exec.faults.arms_sink() {
            Box::new(ChaosSink::new(exec.faults, sink))
        } else {
            sink
        };
        let n = space.num_threads();
        // A cold tier that fails to open degrades to the RAM-only deque,
        // mirroring how worker spawn failures degrade the pool: the run
        // stays alive and correct, just without the relief valve.
        let spill = match params.spill_dir.as_deref() {
            Some(dir) => DurableIntervalQueue::with_disk(n, dir)
                .unwrap_or_else(|_| DurableIntervalQueue::new(n)),
            None => DurableIntervalQueue::new(n),
        };
        let shared = Arc::new(StreamShared {
            space,
            exec,
            sink,
            stopped: AtomicBool::new(false),
            error: Mutex::new(None),
            metrics: ParaMetrics::new(params.workers),
            spill: Mutex::new(spill),
            fault_log: Mutex::new(FaultLog::default()),
            in_flight: (0..params.workers)
                .map(|_| InFlightSlot::default())
                .collect(),
            restart_budget: AtomicI64::new(i64::from(params.worker_restart_budget)),
            budget,
            overload: Mutex::new(None),
            epoch: Instant::now(),
            watchdog_stop: AtomicBool::new(false),
            #[cfg(feature = "chaos")]
            fault_state: crate::faults::FaultState::default(),
        });
        let (sender, receiver) = crossbeam_channel::bounded::<Job>(params.queue_capacity);
        let mut workers = Vec::with_capacity(params.workers);
        for w in 0..params.workers {
            #[cfg(feature = "chaos")]
            if exec.faults.spawn_faults(shared.fault_state.next_spawn()) {
                shared.metrics.worker_spawn_failures.add(1);
                continue;
            }
            let worker_shared = Arc::clone(&shared);
            let receiver = receiver.clone();
            let spawned = std::thread::Builder::new()
                .name(format!("paramount-worker-{w}"))
                .spawn(move || worker_entry(&worker_shared, &receiver, w));
            match spawned {
                Ok(handle) => workers.push(handle),
                Err(_) => shared.metrics.worker_spawn_failures.add(1),
            }
        }
        // The watchdog only exists when a deadline is configured. If its
        // spawn fails, preemption still works: workers check the deadline
        // inline at every visited cut; only a *stuck* sink (one that never
        // returns control) escapes detection without the external thread.
        let watchdog = exec.interval_deadline.and_then(|deadline| {
            let watchdog_shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("paramount-watchdog".to_string())
                .spawn(move || watchdog_entry(&watchdog_shared, deadline))
                .ok()
        });
        StreamExecutor {
            shared,
            sender: Some(sender),
            pending: Mutex::new(Vec::new()),
            receiver,
            workers,
            watchdog,
            backpressure: params.backpressure,
        }
    }

    /// The metrics registry the pool records into (live while running).
    pub fn metrics(&self) -> &ParaMetrics {
        &self.shared.metrics
    }

    /// True once the sink has requested a global stop.
    pub fn is_stopped(&self) -> bool {
        self.shared.stopped.load(Ordering::Relaxed)
    }

    /// Snapshot of the quarantine ledger accumulated so far (live while
    /// running; `finish` returns the final, settled copy).
    pub fn fault_log(&self) -> FaultLog {
        self.shared.fault_log.lock().clone()
    }

    /// Hands one freshly created interval to the pool, applying the
    /// configured backpressure policy when the queue is full.
    ///
    /// Tiny intervals (box size ≤ [`BATCH_TINY_BOX`]) are coalesced into
    /// a pending batch that occupies a single queue slot when flushed —
    /// wide-but-shallow posets stop paying one channel round-trip per
    /// near-degenerate interval. A non-tiny interval flushes the batch
    /// ahead of itself, so queue order tracks submission order.
    pub fn submit(&self, interval: Interval) {
        if self.shared.stopped.load(Ordering::Relaxed) {
            return; // sink asked for a global stop; drop new work
        }
        // Receivers only disappear after `finish`, which consumes self, so
        // send failures below mean shutdown raced a stop — safe to drop.
        let Some(sender) = &self.sender else { return };
        let m = &self.shared.metrics;
        m.intervals_dispatched.add(1);
        if self.workers.is_empty() {
            // Degraded mode (no worker could be spawned): enumerate on
            // the calling thread so nothing queues unserved.
            process_interval(&self.shared, &interval, 0);
            return;
        }
        #[cfg(feature = "chaos")]
        if self
            .shared
            .exec
            .faults
            .send_faults(self.shared.fault_state.next_send())
        {
            record_quarantine(
                m,
                &self.shared.fault_log,
                &interval,
                0,
                1,
                "chaos: queue send failed".to_string(),
                0,
            );
            return;
        }
        if interval.box_size() <= BATCH_TINY_BOX {
            let mut pending = self.pending.lock();
            pending.push(interval);
            if pending.len() < BATCH_MAX_INTERVALS {
                return; // coalescing: wait for a flush trigger
            }
            let batch = std::mem::take(&mut *pending);
            drop(pending);
            self.dispatch(sender, Job::Many(batch));
            return;
        }
        let flushed = std::mem::take(&mut *self.pending.lock());
        if !flushed.is_empty() {
            self.dispatch(sender, Job::Many(flushed));
        }
        self.dispatch(sender, Job::One(interval));
    }

    /// Sends one queue entry, applying the backpressure policy when the
    /// channel is full. Overflow handling degrades to per-interval
    /// granularity (the spill deque and the reject counter both account
    /// in intervals), so a batched entry spills or sheds exactly like the
    /// same intervals would have individually.
    fn dispatch(&self, sender: &crossbeam_channel::Sender<Job>, job: Job) {
        let m = &self.shared.metrics;
        if matches!(job, Job::Many(_)) {
            m.queue_batches.add(1);
        }
        let carried = job.len() as u64;
        // The gauge goes up *before* the send and back down if the send
        // fails: a worker may receive (and decrement) the instant the
        // entry lands in the channel, before a post-send increment
        // would run, underflowing the gauge. The channel's send/recv
        // synchronization orders this increment before that decrement.
        m.queue_depth.add(carried);
        match self.backpressure {
            BackpressurePolicy::Block => {
                if sender.send(job).is_err() {
                    m.queue_depth.sub(carried);
                }
            }
            // Under SpillToDeque the budget's pressure reading adapts the
            // policy at the moment the channel is full: nominal pressure
            // spills as before, soft pressure *promotes* the submit to a
            // blocking send (the producer slows to the consumers' pace
            // instead of growing the spill), and hard pressure reaches
            // for the cold disk tier — the durable relief valve — before
            // shedding the intervals with a typed overload error.
            BackpressurePolicy::SpillToDeque => match sender.try_send(job) {
                Ok(()) => {}
                Err(TrySendError::Full(job)) => match self.shared.budget.pressure() {
                    Pressure::Nominal => {
                        m.queue_depth.sub(carried);
                        job.for_each(|interval| {
                            spill_push(&self.shared, &interval);
                            m.intervals_spilled.add(1);
                        });
                    }
                    Pressure::Soft => {
                        m.backpressure_promotions.add(1);
                        if sender.send(job).is_err() {
                            m.queue_depth.sub(carried);
                        }
                    }
                    Pressure::Hard => {
                        m.queue_depth.sub(carried);
                        job.for_each(|interval| {
                            if spill_through_disk(&self.shared, &interval) {
                                m.intervals_spilled.add(1);
                            } else {
                                m.intervals_rejected.add(1);
                                self.shared
                                    .overload
                                    .lock()
                                    .get_or_insert_with(|| self.shared.budget.overload_error());
                            }
                        });
                    }
                },
                Err(TrySendError::Disconnected(_)) => m.queue_depth.sub(carried),
            },
            BackpressurePolicy::Fail => match sender.try_send(job) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    m.queue_depth.sub(carried);
                    m.intervals_rejected.add(carried);
                    if self.shared.budget.pressure() >= Pressure::Hard {
                        self.shared
                            .overload
                            .lock()
                            .get_or_insert_with(|| self.shared.budget.overload_error());
                    }
                }
                Err(TrySendError::Disconnected(_)) => m.queue_depth.sub(carried),
            },
        }
    }

    /// Closes the stream, waits for all pending intervals — queued *and*
    /// spilled — to drain, and reports the final tallies.
    pub fn finish(mut self) -> StreamOutcome {
        // Dropping the sender closes the channel; workers drain what is
        // queued, then (channel closed ⇒ no producer ⇒ spill is frozen)
        // drain the spill buffer, then exit. No interval is lost.
        // A part-filled coalescing buffer never reached the channel.
        // With a live pool it is flushed as one final batch *before* the
        // channel closes, so the tail of a stream takes the same
        // supervised worker path (watchdog, quarantine, fault-injection
        // sites) as every other interval. Only when the queue is full or
        // the pool never spawned does it fall back to the inline drain
        // below.
        let mut leftover = std::mem::take(&mut *self.pending.lock());
        if !leftover.is_empty() && !self.workers.is_empty() {
            if let Some(sender) = &self.sender {
                let m = &self.shared.metrics;
                let carried = leftover.len() as u64;
                m.queue_depth.add(carried);
                match sender.try_send(Job::Many(std::mem::take(&mut leftover))) {
                    Ok(()) => m.queue_batches.add(1),
                    Err(TrySendError::Full(job)) | Err(TrySendError::Disconnected(job)) => {
                        m.queue_depth.sub(carried);
                        leftover = match job {
                            Job::Many(batch) => batch,
                            Job::One(interval) => vec![interval],
                        };
                    }
                }
            }
        }
        drop(self.sender.take());
        for handle in self.workers.drain(..) {
            // A worker that died past the supervisor's restart budget is
            // already accounted for (its in-flight interval was
            // quarantined); joining must not re-raise its panic.
            let _ = handle.join();
        }
        // Whatever could not be flushed is enumerated inline (after the
        // join, so no worker slot is contended) to keep the exactly-once
        // cover complete.
        for interval in &leftover {
            process_interval(&self.shared, interval, 0);
        }
        // If the whole pool died (or never spawned), queued and spilled
        // intervals are still pending — drain them inline so the report
        // covers every dispatched interval regardless of pool health.
        while let Ok(job) = self.receiver.try_recv() {
            self.shared.metrics.queue_depth.sub(job.len() as u64);
            job.for_each(|interval| process_interval(&self.shared, &interval, 0));
        }
        // A worker that died past its restart budget may have parked the
        // tail of a coalesced batch in its slot — no survivor reads
        // another slot's backlog, so it drains here.
        for slot in self.shared.in_flight.iter() {
            loop {
                let next = slot.backlog.lock().pop_front();
                let Some(interval) = next else { break };
                process_interval(&self.shared, &interval, 0);
            }
        }
        while let Some(interval) = pop_spill(&self.shared) {
            process_interval(&self.shared, &interval, 0);
        }
        self.shared.watchdog_stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.watchdog.take() {
            let _ = handle.join();
        }
        let shared = Arc::clone(&self.shared);
        drop(self); // Drop is a no-op now: sender taken, workers joined.
                    // Deliberately no `Arc::try_unwrap`: everything the outcome needs
                    // is readable through the shared handle, so a leaked clone (a
                    // worker body still unwinding, an embedder's debug handle)
                    // degrades nothing and can no longer abort finalize.
        let outcome = StreamOutcome {
            error: shared.error.lock().take(),
            faults: shared.fault_log.lock().clone(),
            metrics: shared.metrics.snapshot(),
            overload: shared.overload.lock().take(),
        };
        outcome
    }
}

impl<Sp: CutSpace + Send + Sync + 'static> Drop for StreamExecutor<Sp> {
    fn drop(&mut self) {
        drop(self.sender.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        self.shared.watchdog_stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.watchdog.take() {
            let _ = handle.join();
        }
    }
}

/// Worker thread entry: supervises [`worker_loop`], restarting the body
/// when a panic escapes the per-interval isolation (which only happens
/// for faults *outside* the executor's own `catch_unwind` — e.g. an
/// injected worker kill, or a panic in the queue plumbing). The
/// in-flight interval is quarantined before the restart, so even a dying
/// worker never loses work; the restart budget is shared across the pool
/// and a worker that exhausts it simply exits, leaving its queue share
/// to the survivors (and ultimately to `finish`'s inline drain).
fn worker_entry<Sp: CutSpace>(
    shared: &StreamShared<Sp>,
    receiver: &crossbeam_channel::Receiver<Job>,
    index: usize,
) {
    loop {
        let run = catch_unwind(AssertUnwindSafe(|| worker_loop(shared, receiver, index)));
        let payload = match run {
            Ok(()) => return, // clean exit: channel closed and spill drained
            Err(payload) => payload,
        };
        shared.metrics.worker_panics.add(1);
        let slot = shared.slot(index);
        if let Some(interval) = slot.interval.lock().take() {
            let emitted = slot.emitted.load(Ordering::Relaxed);
            record_quarantine(
                &shared.metrics,
                &shared.fault_log,
                &interval,
                emitted,
                1,
                panic_message(payload.as_ref()),
                index,
            );
        }
        if shared.restart_budget.fetch_sub(1, Ordering::Relaxed) > 0 {
            shared.metrics.worker_restarts.add(1);
            continue; // phoenix: the same thread resumes as a fresh body
        }
        return; // budget exhausted: die quietly, survivors take over
    }
}

/// Watchdog thread body: periodically ages every in-flight slot against
/// the configured deadline and raises the slot's cooperative cancel
/// token when an interval overstays. Workers observe the token once per
/// visited cut, so a tripped slot preempts at the next emission — the
/// watchdog never kills a thread, it only asks.
///
/// A benign race exists by design: the watchdog may read a stale
/// `busy_since_ms` and cancel a slot that just picked up a *fresh*
/// interval. That early preemption is sound — the interval is split or
/// quarantined exactly like a genuine timeout — so no extra
/// synchronization is spent preventing it.
fn watchdog_entry<Sp>(shared: &StreamShared<Sp>, deadline: Duration) {
    let deadline_ms = deadline.as_millis() as u64;
    let tick = (deadline / 4).clamp(Duration::from_millis(1), Duration::from_millis(50));
    loop {
        std::thread::sleep(tick);
        if shared.watchdog_stop.load(Ordering::Relaxed) {
            return;
        }
        shared.metrics.watchdog_wakeups.add(1);
        let now_ms = shared.epoch.elapsed().as_millis() as u64;
        for slot in shared.in_flight.iter() {
            let started = slot.busy_since_ms.load(Ordering::Relaxed);
            if started != 0 && now_ms.saturating_sub(started - 1) >= deadline_ms {
                slot.cancel.store(true, Ordering::Relaxed);
            }
        }
    }
}

fn worker_loop<Sp: CutSpace>(
    shared: &StreamShared<Sp>,
    receiver: &crossbeam_channel::Receiver<Job>,
    index: usize,
) {
    loop {
        // Batch remainder first: these intervals were already dequeued
        // and accounted, and may be the tail of a batch a previous body
        // of this slot died inside.
        if drain_backlog(shared, index) {
            continue;
        }
        // Spill next: overflow intervals are the oldest backlog, and
        // checking here guarantees the buffer drains while the channel is
        // busy (spill only grows when the channel is full, so there is
        // always traffic to piggyback on).
        if let Some(interval) = pop_spill(shared) {
            process_worker_pickup(shared, &interval, index);
            continue;
        }
        let wait = Instant::now();
        match receiver.recv() {
            Ok(job) => {
                shared
                    .metrics
                    .worker(index)
                    .add_idle(wait.elapsed().as_nanos() as u64);
                shared.metrics.queue_depth.sub(job.len() as u64);
                match job {
                    Job::One(interval) => process_worker_pickup(shared, &interval, index),
                    // Park the batch in the slot before touching any of
                    // it: the per-interval pop below is what keeps a
                    // mid-batch worker death from losing the tail.
                    Job::Many(batch) => {
                        shared.slot(index).backlog.lock().extend(batch);
                        drain_backlog(shared, index);
                    }
                }
            }
            Err(_) => break, // channel closed: producers are done
        }
    }
    // The channel is closed, so no new spill can appear: whatever is left
    // in the buffer is the final backlog — drain it to completion.
    while let Some(interval) = pop_spill(shared) {
        process_worker_pickup(shared, &interval, index);
    }
}

/// Drains the slot's parked batch tail one interval at a time, popping
/// *before* processing so the in-flight interval is never duplicated in
/// the backlog. Returns true if it processed anything.
fn drain_backlog<Sp: CutSpace>(shared: &StreamShared<Sp>, index: usize) -> bool {
    let mut any = false;
    loop {
        let next = shared.slot(index).backlog.lock().pop_front();
        let Some(interval) = next else { return any };
        any = true;
        process_worker_pickup(shared, &interval, index);
    }
}

/// Processes one interval picked up on a worker thread. The chaos
/// worker-kill injection lives here rather than in [`process_interval`]
/// because the fault models a dying *worker*: it must land under
/// [`worker_entry`]'s supervisor, never on the inline drain paths
/// (degraded-mode `submit`, `finish`) where the caller thread has no
/// quarantine-and-respawn boundary above it.
fn process_worker_pickup<Sp: CutSpace>(
    shared: &StreamShared<Sp>,
    interval: &Interval,
    index: usize,
) {
    #[cfg(feature = "chaos")]
    chaos_maybe_kill_worker(shared, interval, index);
    process_interval(shared, interval, index);
}

/// Injection point for the "kill a worker mid-interval" fault: records
/// the interval in the slot first, so the supervisor quarantines it —
/// the injected death must not be able to lose work either.
#[cfg(feature = "chaos")]
fn chaos_maybe_kill_worker<Sp>(shared: &StreamShared<Sp>, interval: &Interval, index: usize) {
    if shared
        .exec
        .faults
        .pickup_kills_worker(shared.fault_state.next_pickup())
    {
        let slot = shared.slot(index);
        slot.emitted.store(0, Ordering::Relaxed);
        *slot.interval.lock() = Some(interval.clone());
        panic!("chaos: worker killed at interval pickup");
    }
}

fn process_interval<Sp: CutSpace>(shared: &StreamShared<Sp>, interval: &Interval, index: usize) {
    process_with_deadline(shared, interval, index, shared.exec.interval_deadline);
}

/// Runs one interval under an optional deadline. On preemption the
/// disposition depends on the delivered prefix:
///
/// * nothing delivered and the interval splits — reschedule both halves
///   (each gets a fresh deadline, and each is strictly smaller, so
///   repeated splitting terminates at single-cut leaves);
/// * nothing delivered and the interval is a single cut — rerun it once
///   with the deadline off (a one-cut enumeration cannot be usefully
///   split, and zero cuts were delivered so a rerun cannot duplicate);
/// * some cuts delivered — quarantine with the exact delivered prefix:
///   rerunning would double-deliver, and exactly-once (Theorem 2/3)
///   outranks completeness.
fn process_with_deadline<Sp: CutSpace>(
    shared: &StreamShared<Sp>,
    interval: &Interval,
    index: usize,
    deadline: Option<Duration>,
) {
    if shared.stopped.load(Ordering::Relaxed) {
        return; // drain without enumerating
    }
    #[cfg(feature = "chaos")]
    if let Some(us) = shared.exec.faults.worker_delay_us {
        std::thread::sleep(std::time::Duration::from_micros(us));
    }
    let m = &shared.metrics;
    let slot = shared.slot(index);
    let start = Instant::now();
    // Register the in-flight interval so the supervisor can quarantine
    // it if this body dies outside the executor's isolation boundary;
    // the slot's meter makes the delivered prefix observable across any
    // unwind. Marking the slot busy (and clearing any stale cancel)
    // arms the watchdog for this pickup.
    slot.cancel.store(false, Ordering::Relaxed);
    slot.busy_since_ms.store(
        shared.epoch.elapsed().as_millis() as u64 + 1,
        Ordering::Relaxed,
    );
    *slot.interval.lock() = Some(interval.clone());
    let control = deadline.map(|d| PreemptControl {
        cancel: &slot.cancel,
        deadline_at: Some(Instant::now() + d),
    });
    let outcome = shared.exec.run_isolated(
        shared.space.as_ref(),
        interval,
        shared.sink.as_ref(),
        m,
        &slot.emitted,
        control.as_ref(),
    );
    *slot.interval.lock() = None;
    slot.busy_since_ms.store(0, Ordering::Relaxed);
    let tally = m.worker(index);
    tally.add_busy(start.elapsed().as_nanos() as u64);
    tally.add_interval();
    match outcome {
        Ok(stats) => {
            m.cuts_emitted.add_on(index, stats.cuts);
            m.intervals_completed.add_on(index, 1);
            m.interval_cuts.record(stats.cuts);
        }
        Err(IntervalFault::Error(EnumError::Stopped)) => {
            shared.stopped.store(true, Ordering::Relaxed);
        }
        Err(IntervalFault::Error(err)) => {
            shared.stopped.store(true, Ordering::Relaxed);
            shared.error.lock().get_or_insert(err);
        }
        Err(IntervalFault::Panicked {
            emitted,
            attempts,
            message,
        }) => {
            record_quarantine(
                m,
                &shared.fault_log,
                interval,
                emitted,
                attempts,
                message,
                index,
            );
        }
        Err(IntervalFault::Preempted { emitted }) => {
            m.intervals_preempted.add(1);
            if emitted == 0 {
                if let Some((lo, hi)) = interval.split(shared.space.as_ref()) {
                    // Both halves go through the spill buffer: workers
                    // drain it with priority, and `finish`'s inline drain
                    // covers a dead pool, so neither half can be lost.
                    m.intervals_split.add(1);
                    m.intervals_dispatched.add(2);
                    spill_push(shared, &lo);
                    spill_push(shared, &hi);
                } else {
                    process_with_deadline(shared, interval, index, None);
                }
            } else {
                record_quarantine(
                    m,
                    &shared.fault_log,
                    interval,
                    emitted,
                    1,
                    format!("preempted after {emitted} delivered cuts (deadline expired)"),
                    index,
                );
            }
        }
    }
}

/// Chaos wrapper over a sink handle: panics *before* delegating on
/// plan-selected calls, so an injected fault never half-delivers a cut —
/// the emission meter and the real sink agree exactly on what was seen.
/// One type serves both modes: batch wraps `&K`, streaming wraps
/// `Box<dyn ParallelCutSink>`.
#[cfg(feature = "chaos")]
struct ChaosSink<H> {
    plan: FaultPlan,
    calls: AtomicU64,
    inner: H,
}

#[cfg(feature = "chaos")]
impl<H> ChaosSink<H> {
    fn new(plan: FaultPlan, inner: H) -> Self {
        ChaosSink {
            plan,
            calls: AtomicU64::new(0),
            inner,
        }
    }
}

#[cfg(feature = "chaos")]
impl<H> ParallelCutSink for ChaosSink<H>
where
    H: std::ops::Deref + Send + Sync,
    H::Target: ParallelCutSink,
{
    fn visit(
        &self,
        cut: paramount_poset::CutRef<'_>,
        owner: paramount_poset::EventId,
    ) -> std::ops::ControlFlow<()> {
        let call = self.calls.fetch_add(1, Ordering::Relaxed) + 1;
        if self.plan.sink_call_faults(call) {
            panic!("chaos: sink panic injected at call {call}");
        }
        self.inner.visit(cut, owner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paramount_poset::{EventId, Frontier, Tid};

    fn interval_with_box(width: u32) -> Interval {
        // Two threads; the owner thread is pinned, the other spans
        // `width` values, so box_size == width.
        Interval {
            event: EventId::new(Tid(0), 1),
            gmin: Frontier::from_counts(vec![1, 0]),
            gbnd: Frontier::from_counts(vec![1, width - 1]),
            include_empty: false,
        }
    }

    #[test]
    fn concrete_algorithms_pass_through_untouched() {
        let metrics = ParaMetrics::new(0);
        let iv = interval_with_box(1 << 20);
        for algo in Algorithm::CONCRETE {
            let exec = IntervalExecutor::new(algo);
            assert_eq!(exec.resolve_algorithm(&iv, &metrics), algo);
        }
        let snap = metrics.snapshot();
        assert_eq!(snap.intervals_auto_leveled + snap.intervals_auto_lexical, 0);
    }

    #[test]
    fn auto_routes_by_box_size_and_counts_decisions() {
        let metrics = ParaMetrics::new(0);
        let exec = IntervalExecutor::new(Algorithm::Auto);
        let threshold = paramount_enumerate::AUTO_BOX_THRESHOLD as u32;
        assert_eq!(
            exec.resolve_algorithm(&interval_with_box(threshold), &metrics),
            Algorithm::Leveled,
            "at-threshold box takes the space-efficient walk"
        );
        assert_eq!(
            exec.resolve_algorithm(&interval_with_box(16), &metrics),
            Algorithm::Lexical,
            "tiny box keeps the lexical scan"
        );
        let snap = metrics.snapshot();
        assert_eq!(snap.intervals_auto_leveled, 1);
        assert_eq!(snap.intervals_auto_lexical, 1);
    }

    #[test]
    fn spill_pressure_collapses_the_threshold() {
        let metrics = ParaMetrics::new(0);
        let exec = IntervalExecutor::new(Algorithm::Auto);
        let iv = interval_with_box(AUTO_PRESSURE_THRESHOLD as u32);
        assert_eq!(
            exec.resolve_algorithm(&iv, &metrics),
            Algorithm::Lexical,
            "well under the base threshold without pressure"
        );
        metrics.spill_bytes.add(1);
        assert_eq!(
            exec.resolve_algorithm(&iv, &metrics),
            Algorithm::Leveled,
            "a spill backlog routes the same interval to O(n) space"
        );
        metrics.spill_bytes.sub(1);
        assert_eq!(
            exec.resolve_algorithm(&iv, &metrics),
            Algorithm::Lexical,
            "drained backlog restores the base threshold"
        );
    }

    #[test]
    fn observed_large_intervals_calibrate_the_threshold_down() {
        let metrics = ParaMetrics::new(0);
        let exec = IntervalExecutor::new(Algorithm::Auto);
        let base = paramount_enumerate::AUTO_BOX_THRESHOLD as u32;
        let iv = interval_with_box(base / 2 + 1); // between base/2 and base
        assert_eq!(exec.resolve_algorithm(&iv, &metrics), Algorithm::Lexical);
        // Not enough observations yet: still lexical.
        for _ in 0..(AUTO_CALIBRATION_MIN_INTERVALS - 1) {
            metrics.interval_cuts.record(10 * u64::from(base));
        }
        assert_eq!(exec.resolve_algorithm(&iv, &metrics), Algorithm::Lexical);
        // One more pushes past the warmup; the observed mean (10× the
        // base threshold) halves it, flipping this interval to leveled.
        metrics.interval_cuts.record(10 * u64::from(base));
        assert_eq!(exec.resolve_algorithm(&iv, &metrics), Algorithm::Leveled);
    }
}
