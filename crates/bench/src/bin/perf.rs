//! **CI perf gate** — machine-readable per-algorithm numbers on two
//! pinned workloads, checked against `bench_results/baseline.json`.
//!
//! For every (workload, algorithm) cell this measures visited cuts,
//! wall clock, peak stored frontiers (from [`paramount::EnumStats`]),
//! peak heap growth (counting allocator), and allocation events; the
//! JSON schema and the pass/fail rules live in
//! [`paramount_bench::perf_report`]. Absolute wall clock never gates —
//! only within-run throughput *ratios* (normalized to the lexical scan)
//! and deterministic counts do, so the gate is meaningful across
//! machines.
//!
//! ```text
//! perf [--algos lexical,bfs,...] [--out DIR] [--check BASELINE.json]
//!      [--write-baseline PATH] [--tolerance 0.15]
//! ```
//!
//! * `--out DIR` — write `DIR/BENCH_perf.json` (created if missing).
//! * `--check PATH` — enforce self-consistency invariants, then compare
//!   against the baseline at PATH; exit 1 on any failure. A baseline
//!   with `"bootstrap": true` skips the value comparison (invariants
//!   still gate) — freeze real numbers with `--write-baseline` on the
//!   reference machine and commit the result.
//! * `--write-baseline PATH` — write this run as a non-bootstrap
//!   baseline.
//!
//! Workloads are pinned by seed: `d8-dense` is the allocs-per-cut
//! workload from the `allocs` binary (n=8, inside the inline-frontier
//! regime); `w10-wide` is a sparse n=10 computation whose wide levels
//! are exactly the regime the leveled traversal exists for — stored
//! frontiers cost megabytes there, regeneration costs `O(n)`.

use paramount_bench::alloc_track::{self, CountingAllocator};
use paramount_bench::perf_report::{self, Record, Report};
use paramount_enumerate::{Algorithm, CountSink};
use paramount_poset::random::RandomComputation;
use paramount_poset::Poset;
use std::process::ExitCode;
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn pinned_workloads() -> Vec<(&'static str, Poset)> {
    vec![
        // Keep in sync with the `allocs` binary's d8-dense definition.
        ("d8-dense", RandomComputation::new(8, 4, 0.6, 7).generate()),
        (
            "w10-wide",
            RandomComputation::new(10, 3, 0.2, 13).generate(),
        ),
    ]
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_algos(args: &[String]) -> Result<Vec<Algorithm>, String> {
    match flag_value(args, "--algos") {
        None => Ok(Algorithm::ALL.to_vec()),
        Some(list) => list
            .split(',')
            .map(|name| {
                Algorithm::from_name(name.trim())
                    .ok_or_else(|| format!("unknown algorithm `{name}`"))
            })
            .collect(),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let algos = match parse_algos(&args) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let tolerance: f64 = match flag_value(&args, "--tolerance").map(|v| v.parse()) {
        None => 0.15,
        Some(Ok(t)) => t,
        Some(Err(_)) => {
            eprintln!("error: invalid --tolerance");
            return ExitCode::FAILURE;
        }
    };

    let mut report = Report::default();
    println!(
        "{:<10} {:<8} {:>10} {:>10} {:>9} {:>12} {:>10} {:>9}",
        "workload", "algo", "cuts", "cuts/s", "frontiers", "peak bytes", "allocs", "rel"
    );
    for (name, poset) in pinned_workloads() {
        let mut rows: Vec<Record> = Vec::new();
        for &algorithm in &algos {
            let start = Instant::now();
            let ((cuts, peak_frontiers), allocs, peak_bytes) = {
                let ((inner, allocs), peak) = alloc_track::measure_peak(|| {
                    alloc_track::measure_allocs(|| {
                        let mut sink = CountSink::default();
                        let stats = algorithm.run(&poset, &mut sink).expect("unbounded run");
                        (sink.count, stats.peak_frontiers as u64)
                    })
                });
                (inner, allocs as u64, peak as u64)
            };
            let elapsed = start.elapsed();
            let secs = elapsed.as_secs_f64().max(1e-9);
            rows.push(Record {
                workload: name.to_string(),
                algo: algorithm.name().to_string(),
                cuts,
                elapsed_ns: elapsed.as_nanos() as u64,
                cuts_per_sec: cuts as f64 / secs,
                peak_frontiers,
                peak_frontier_bytes: peak_bytes,
                allocs,
                allocs_per_cut: if cuts == 0 {
                    0.0
                } else {
                    allocs as f64 / cuts as f64
                },
                rel_throughput: 0.0, // filled once the workload's lexical row exists
            });
        }
        let reference = rows
            .iter()
            .find(|r| r.algo == "lexical")
            .or_else(|| rows.first())
            .map_or(1.0, |r| r.cuts_per_sec)
            .max(1e-9);
        for r in &mut rows {
            r.rel_throughput = r.cuts_per_sec / reference;
            println!(
                "{:<10} {:<8} {:>10} {:>10.0} {:>9} {:>12} {:>10} {:>9.3}",
                r.workload,
                r.algo,
                r.cuts,
                r.cuts_per_sec,
                r.peak_frontiers,
                r.peak_frontier_bytes,
                r.allocs,
                r.rel_throughput
            );
        }
        report.records.extend(rows);
    }

    if let Some(dir) = flag_value(&args, "--out") {
        let path = format!("{dir}/BENCH_perf.json");
        if let Err(e) =
            std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, report.to_json()))
        {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("\nwrote {path}");
    }
    if let Some(path) = flag_value(&args, "--write-baseline") {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote baseline {path}");
    }

    // Machine-independent invariants always gate, baseline or not.
    let invariant_failures = perf_report::self_check(&report);
    for f in &invariant_failures {
        eprintln!("INVARIANT FAILED: {f}");
    }
    if !invariant_failures.is_empty() {
        return ExitCode::FAILURE;
    }

    if let Some(path) = flag_value(&args, "--check") {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let baseline = match Report::from_json(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: cannot parse baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if baseline.bootstrap {
            println!(
                "\nbaseline {path} is bootstrap — invariants enforced, value comparison \
                 skipped.\nTo freeze real numbers: run `perf --write-baseline {path}` on the \
                 reference machine and commit the result."
            );
            return ExitCode::SUCCESS;
        }
        let failures = perf_report::compare(&report, &baseline, tolerance);
        for f in &failures {
            eprintln!("PERF REGRESSION: {f}");
        }
        if !failures.is_empty() {
            return ExitCode::FAILURE;
        }
        println!(
            "\nperf check passed against {path} (±{:.0}%)",
            tolerance * 100.0
        );
    }
    ExitCode::SUCCESS
}
