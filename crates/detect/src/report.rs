use crate::RaceDetection;
use paramount_trace::VarId;
use std::time::Duration;

/// How a detection run ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DetectorOutcome {
    /// Ran to completion over every global state.
    Completed,
    /// The enumerator exhausted its memory budget — the reproduction of
    /// the paper's `o.o.m.` entries (RV runtime on `raytracer`).
    OutOfMemory {
        /// Live frontiers when the budget tripped.
        live_frontiers: usize,
        /// The configured budget.
        budget: usize,
    },
    /// The predicate (or a sink wrapping it) panicked and the panic was
    /// contained at the enumeration boundary. Detections gathered before
    /// the fault are still in the report.
    Faulted {
        /// The stringified panic payload.
        message: String,
    },
}

impl DetectorOutcome {
    /// Did the run finish?
    pub fn completed(&self) -> bool {
        matches!(self, DetectorOutcome::Completed)
    }
}

/// The result of one race-detection run (one Table 2 cell).
#[derive(Clone, Debug)]
pub struct RaceDetectionReport {
    /// Detector label ("ParaMount", "BFS-offline", …) for table output.
    pub detector: &'static str,
    /// Distinct variables with at least one detected race, sorted.
    pub racy_vars: Vec<VarId>,
    /// First detection per racy variable.
    pub detections: Vec<RaceDetection>,
    /// Consistent cuts enumerated.
    pub cuts: u64,
    /// Captured poset events.
    pub events: u64,
    /// Wall-clock time of the whole run (capture + enumeration +
    /// predicate).
    pub wall: Duration,
    /// Completion status.
    pub outcome: DetectorOutcome,
    /// Engine observability snapshot, when the detector ran through a
    /// metered engine (online or offline ParaMount). `None` for the
    /// sequential BFS analog, which has no worker pool or queue.
    pub metrics: Option<paramount::MetricsSnapshot>,
}

impl RaceDetectionReport {
    /// Number of racy variables (the paper's "# Detection" column).
    pub fn num_detections(&self) -> usize {
        self.racy_vars.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_helpers() {
        assert!(DetectorOutcome::Completed.completed());
        assert!(!DetectorOutcome::OutOfMemory {
            live_frontiers: 10,
            budget: 5
        }
        .completed());
        assert!(!DetectorOutcome::Faulted {
            message: "boom".into()
        }
        .completed());
    }
}
