//! Criterion version of Figures 10/11: ParaMount speedup over thread
//! counts, per subroutine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use paramount::{Algorithm, AtomicCountSink, ParaMount};
use paramount_poset::{oracle, Poset};

fn speedup_poset() -> Poset {
    // Size-guarded in paramount_bench::tests::bench_posets_are_modest.
    paramount_bench::bench_poset_speedup()
}

fn bench_thread_sweep(c: &mut Criterion) {
    let poset = speedup_poset();
    let cuts = oracle::count_ideals(&poset);

    for algorithm in [Algorithm::Lexical, Algorithm::Bfs] {
        let mut group = c.benchmark_group(format!("paramount-{}", algorithm.name()));
        group.throughput(Throughput::Elements(cuts));
        group.sample_size(10);
        for threads in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::from_parameter(threads),
                &threads,
                |b, &threads| {
                    b.iter(|| {
                        let sink = AtomicCountSink::new();
                        ParaMount::new(algorithm)
                            .with_threads(threads)
                            .enumerate(&poset, &sink)
                            .unwrap();
                        assert_eq!(sink.count(), cuts);
                    })
                },
            );
        }
        group.finish();
    }
}

fn bench_partition_overhead(c: &mut Criterion) {
    // The O(n) per-event interval computation — ParaMount's entire
    // non-enumeration overhead (§3.4's work-optimality argument).
    let poset = speedup_poset();
    let order = paramount_poset::topo::weight_order(&poset);
    c.bench_function("interval-partition", |b| {
        b.iter(|| paramount::partition(&poset, &order).len())
    });
}

criterion_group!(benches, bench_thread_sweep, bench_partition_overhead);
criterion_main!(benches);
