use crate::Tid;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Index;

/// Outcome of comparing two vector clocks under happened-before.
///
/// Unlike `std::cmp::Ordering`, vector clocks form a *partial* order: two
/// clocks taken from concurrent events are mutually incomparable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ClockOrdering {
    /// Componentwise equal.
    Equal,
    /// Strictly less on at least one component, greater on none
    /// (the left event happened before the right one).
    Before,
    /// Strictly greater on at least one component, less on none.
    After,
    /// Less on some component and greater on another (concurrent events).
    Concurrent,
}

/// Widths up to this stay dense under [`VectorClock::zero`]; wider clocks
/// start sparse. Narrow posets (every workload of the paper runs at n ≤ 10)
/// keep the branch-predictable linear-scan representation; wide posets pay
/// per *causal neighbor* instead of per thread.
pub const DENSE_WIDTH_MAX: usize = 64;

/// A sparse clock whose live-entry count reaches ¾ of its width promotes to
/// dense: at that density the `(tid, count)` pairs cost more than the flat
/// vector and the merge loops lose their skip advantage.
const PROMOTE_NUM: usize = 3;
const PROMOTE_DEN: usize = 4;

/// Referenced by `Index<Tid>` for components a sparse clock does not store.
static ZERO_COMPONENT: u32 = 0;

/// Storage for the components. `Dense` is the classic flat vector indexed
/// by thread id. `Sparse` is a *neighborhood clock* (in the sense of
/// ekotrace's compact causal logs): only threads actually heard from are
/// stored, as `(tid, count)` pairs sorted by tid with counts strictly
/// positive — every unlisted thread is implicitly at 0. The logical value
/// is identical either way; representation is unobservable through the
/// public API.
#[derive(Clone)]
enum Repr {
    Dense(Vec<u32>),
    Sparse {
        /// Logical width (number of threads), fixed at construction.
        n: u32,
        /// Nonzero components, sorted by tid, no duplicates, no zeros.
        entries: Vec<(u32, u32)>,
    },
}

/// A Fidge/Mattern vector clock.
///
/// Component `i` counts events of thread `i` known to have happened before
/// (or at) the point this clock stamps. For an event `e` executed by thread
/// `t`, `e.vc[t]` is the 1-based index of `e` within `t`'s event sequence,
/// and for `j != t`, `e.vc[j]` is the index of the latest event of thread
/// `j` with `e_j → e` (0 if none) — exactly the encoding of §2.2 of the
/// paper. Consequently the frontier of the least consistent cut containing
/// `e`, `Gmin(e)`, *is* `e.vc` verbatim, which is what makes the ParaMount
/// interval computation O(n) per event.
///
/// # Representation
///
/// Clocks up to [`DENSE_WIDTH_MAX`] threads wide are a flat `Vec<u32>`;
/// wider clocks start as a sparse sorted `(tid, count)` neighborhood form
/// storing only the threads heard from, and promote back to dense when
/// they have heard from ¾ of the computation. All operations — `join`,
/// `le`, [`VectorClock::partial_cmp_hb`] — are defined on the logical
/// component vector, so equality, hashing and ordering never observe the
/// representation. Borrow a [`ClockRef`] with [`VectorClock::view`] to
/// compare clocks on hot paths without materializing dense vectors.
#[derive(Clone)]
pub struct VectorClock {
    repr: Repr,
}

impl Default for VectorClock {
    fn default() -> Self {
        VectorClock {
            repr: Repr::Dense(Vec::new()),
        }
    }
}

/// A borrowed, `Copy` view of a clock — the comparison currency of the hot
/// paths (mirroring `CutRef` for frontiers).
///
/// Consumers that only *read* components — consistency checks, interval
/// bound computation, wire encoding — take a `ClockRef` and stay
/// allocation-free regardless of which representation backs the clock.
#[derive(Clone, Copy)]
pub enum ClockRef<'a> {
    /// View of a dense clock: thread id is the slice index.
    Dense(&'a [u32]),
    /// View of a sparse neighborhood clock.
    Sparse {
        /// Logical width.
        n: usize,
        /// Nonzero `(tid, count)` pairs, sorted by tid.
        entries: &'a [(u32, u32)],
    },
}

impl VectorClock {
    /// The zero clock for an `n`-thread computation. Narrow clocks
    /// (n ≤ [`DENSE_WIDTH_MAX`]) are dense; wider ones start sparse.
    pub fn zero(n: usize) -> Self {
        if n <= DENSE_WIDTH_MAX {
            Self::zero_dense(n)
        } else {
            Self::zero_sparse(n)
        }
    }

    /// The zero clock, forced dense (benchmarks and width-threshold tests;
    /// normal callers use [`VectorClock::zero`]).
    pub fn zero_dense(n: usize) -> Self {
        VectorClock {
            repr: Repr::Dense(vec![0; n]),
        }
    }

    /// The zero clock, forced sparse (benchmarks and width-threshold
    /// tests; normal callers use [`VectorClock::zero`]).
    pub fn zero_sparse(n: usize) -> Self {
        VectorClock {
            repr: Repr::Sparse {
                n: n as u32,
                entries: Vec::new(),
            },
        }
    }

    /// Builds a dense clock directly from its components.
    pub fn from_components(components: Vec<u32>) -> Self {
        VectorClock {
            repr: Repr::Dense(components),
        }
    }

    /// Builds a sparse clock of width `n` from nonzero `(tid, count)`
    /// entries. Entries are sorted and deduplicated (last wins); zero
    /// counts and out-of-range tids are dropped.
    pub fn from_entries(n: usize, mut entries: Vec<(u32, u32)>) -> Self {
        entries.retain(|&(t, c)| (t as usize) < n && c > 0);
        entries.sort_by_key(|&(t, _)| t);
        entries.dedup_by(|later, earlier| {
            if later.0 == earlier.0 {
                earlier.1 = later.1;
                true
            } else {
                false
            }
        });
        VectorClock {
            repr: Repr::Sparse {
                n: n as u32,
                entries,
            },
        }
    }

    /// True when the clock is in the sparse neighborhood representation.
    #[inline]
    pub fn is_sparse(&self) -> bool {
        matches!(self.repr, Repr::Sparse { .. })
    }

    /// Number of threads this clock spans.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Dense(c) => c.len(),
            Repr::Sparse { n, .. } => *n as usize,
        }
    }

    /// True for the zero-width clock (no threads).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of nonzero components — the size of the causal neighborhood.
    pub fn nonzero_len(&self) -> usize {
        match &self.repr {
            Repr::Dense(c) => c.iter().filter(|&&v| v != 0).count(),
            Repr::Sparse { entries, .. } => entries.len(),
        }
    }

    /// Heap bytes backing this clock (capacity, not just length) — what
    /// the dense-vs-sparse benchmark meters.
    pub fn heap_bytes(&self) -> usize {
        match &self.repr {
            Repr::Dense(c) => c.capacity() * std::mem::size_of::<u32>(),
            Repr::Sparse { entries, .. } => entries.capacity() * std::mem::size_of::<(u32, u32)>(),
        }
    }

    /// A borrowed [`ClockRef`] view of this clock.
    #[inline]
    pub fn view(&self) -> ClockRef<'_> {
        match &self.repr {
            Repr::Dense(c) => ClockRef::Dense(c),
            Repr::Sparse { n, entries } => ClockRef::Sparse {
                n: *n as usize,
                entries,
            },
        }
    }

    /// Component for thread `t`.
    #[inline]
    pub fn get(&self, t: Tid) -> u32 {
        self.component(t.index())
    }

    /// Component for thread index `j` (the slice-index analog for loops
    /// that already hold a `usize`).
    #[inline]
    pub fn component(&self, j: usize) -> u32 {
        match &self.repr {
            Repr::Dense(c) => c[j],
            Repr::Sparse { n, entries } => {
                assert!(j < *n as usize, "thread index {j} out of width {n}");
                match entries.binary_search_by_key(&(j as u32), |&(t, _)| t) {
                    Ok(i) => entries[i].1,
                    Err(_) => 0,
                }
            }
        }
    }

    /// Sets the component for thread `t`.
    pub fn set(&mut self, t: Tid, value: u32) {
        match &mut self.repr {
            Repr::Dense(c) => c[t.index()] = value,
            Repr::Sparse { n, entries } => {
                let j = t.index();
                assert!(j < *n as usize, "thread index {j} out of width {n}");
                match entries.binary_search_by_key(&(j as u32), |&(t, _)| t) {
                    Ok(i) => {
                        if value == 0 {
                            entries.remove(i);
                        } else {
                            entries[i].1 = value;
                        }
                    }
                    Err(i) => {
                        if value != 0 {
                            entries.insert(i, (j as u32, value));
                        }
                    }
                }
                self.maybe_promote();
            }
        }
    }

    /// Iterates the logical components in thread order (zeros included).
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        let view = self.view();
        (0..self.len()).map(move |j| view.component(j))
    }

    /// Iterates the nonzero components as `(thread index, count)` in
    /// thread order — O(neighborhood) for sparse clocks, the accessor hot
    /// consistency checks should prefer.
    pub fn iter_nonzero(&self) -> NonzeroComponents<'_> {
        self.view().iter_nonzero()
    }

    /// Materializes the logical component vector (tests, wire encoding).
    pub fn to_dense(&self) -> Vec<u32> {
        match &self.repr {
            Repr::Dense(c) => c.clone(),
            Repr::Sparse { n, entries } => {
                let mut out = vec![0u32; *n as usize];
                for &(t, c) in entries {
                    out[t as usize] = c;
                }
                out
            }
        }
    }

    /// Consumes the clock, yielding its dense component vector.
    pub fn into_components(self) -> Vec<u32> {
        match self.repr {
            Repr::Dense(c) => c,
            Repr::Sparse { .. } => self.to_dense(),
        }
    }

    /// Advances thread `t`'s own component by one (a local event).
    pub fn tick(&mut self, t: Tid) {
        match &mut self.repr {
            Repr::Dense(c) => c[t.index()] += 1,
            Repr::Sparse { n, entries } => {
                let j = t.index();
                assert!(j < *n as usize, "thread index {j} out of width {n}");
                match entries.binary_search_by_key(&(j as u32), |&(t, _)| t) {
                    Ok(i) => entries[i].1 += 1,
                    Err(i) => entries.insert(i, (j as u32, 1)),
                }
                self.maybe_promote();
            }
        }
    }

    /// Promotes a sparse clock whose density crossed the threshold. Dense
    /// clocks never demote: the width was judged worth a flat vector once
    /// and the entries only grow.
    fn maybe_promote(&mut self) {
        if let Repr::Sparse { n, entries } = &self.repr {
            if entries.len() * PROMOTE_DEN >= (*n as usize) * PROMOTE_NUM {
                self.repr = Repr::Dense(self.to_dense());
            }
        }
    }

    /// Componentwise maximum with `other` (the lattice join).
    ///
    /// This is the message-receive / lock-acquire update of vector-clock
    /// algorithms: after `self.join(other)`, `self` dominates both inputs.
    pub fn join(&mut self, other: &VectorClock) {
        debug_assert_eq!(self.len(), other.len(), "clock width mismatch");
        match (&mut self.repr, other.view()) {
            (Repr::Dense(c), ClockRef::Dense(o)) => {
                for (a, b) in c.iter_mut().zip(o) {
                    if *b > *a {
                        *a = *b;
                    }
                }
            }
            // A sparse other only constrains its stored neighbors.
            (Repr::Dense(c), ClockRef::Sparse { entries, .. }) => {
                for &(t, v) in entries {
                    let slot = &mut c[t as usize];
                    if v > *slot {
                        *slot = v;
                    }
                }
            }
            (Repr::Sparse { entries, .. }, view) => {
                merge_max(entries, view);
                self.maybe_promote();
            }
        }
    }

    /// Componentwise minimum with `other` (the lattice meet).
    pub fn meet(&mut self, other: &VectorClock) {
        debug_assert_eq!(self.len(), other.len(), "clock width mismatch");
        match (&mut self.repr, other.view()) {
            (Repr::Dense(c), view) => {
                for (j, a) in c.iter_mut().enumerate() {
                    let b = view.component(j);
                    if b < *a {
                        *a = b;
                    }
                }
            }
            (Repr::Sparse { entries, .. }, view) => {
                // min with an implicit 0 is 0: only tids nonzero on BOTH
                // sides survive, at the smaller count.
                entries.retain_mut(|(t, c)| {
                    let b = view.component(*t as usize);
                    if b < *c {
                        *c = b;
                    }
                    *c > 0
                });
            }
        }
    }

    /// The paper's Algorithm 3, `calculateVectorClock(vc_i, vc_j)`.
    ///
    /// `self` is the acquiring side's clock (a thread's clock, `vc_i`);
    /// `other` is the clock of the resource being synchronized with (a lock
    /// or another thread, `vc_j`). The thread ticks its own component,
    /// joins in the resource's knowledge, and the resource's clock is
    /// brought up to date with the result. The returned clock is the stamp
    /// for the new event.
    pub fn acquire_merge(&mut self, own: Tid, other: &mut VectorClock) -> VectorClock {
        self.tick(own);
        self.join(other);
        other.clone_from(self);
        self.clone()
    }

    /// `self ≤ other` under the product order (every component ≤).
    pub fn le(&self, other: &VectorClock) -> bool {
        self.view().le(other.view())
    }

    /// Full four-way comparison under the happened-before partial order.
    pub fn partial_cmp_hb(&self, other: &VectorClock) -> ClockOrdering {
        self.view().partial_cmp_hb(other.view())
    }

    /// True iff the event stamped `self` happened before the event stamped
    /// `other` (strictly).
    pub fn happened_before(&self, other: &VectorClock) -> bool {
        self.partial_cmp_hb(other) == ClockOrdering::Before
    }

    /// True iff the two stamps belong to concurrent events.
    pub fn concurrent_with(&self, other: &VectorClock) -> bool {
        self.partial_cmp_hb(other) == ClockOrdering::Concurrent
    }

    /// Sum of all components — a cheap measure of "how much happened".
    pub fn weight(&self) -> u64 {
        match &self.repr {
            Repr::Dense(c) => c.iter().map(|&c| c as u64).sum(),
            Repr::Sparse { entries, .. } => entries.iter().map(|&(_, c)| c as u64).sum(),
        }
    }
}

/// In-place componentwise max of sorted nonzero `entries` with `other`.
fn merge_max(entries: &mut Vec<(u32, u32)>, other: ClockRef<'_>) {
    match other {
        ClockRef::Sparse {
            entries: theirs, ..
        } => {
            if theirs.is_empty() {
                return;
            }
            // Single merge walk; out-of-place because insertions into the
            // middle of `entries` would be quadratic.
            let mut merged = Vec::with_capacity(entries.len().max(theirs.len()));
            let (mut i, mut j) = (0, 0);
            while i < entries.len() && j < theirs.len() {
                match entries[i].0.cmp(&theirs[j].0) {
                    Ordering::Less => {
                        merged.push(entries[i]);
                        i += 1;
                    }
                    Ordering::Greater => {
                        merged.push(theirs[j]);
                        j += 1;
                    }
                    Ordering::Equal => {
                        merged.push((entries[i].0, entries[i].1.max(theirs[j].1)));
                        i += 1;
                        j += 1;
                    }
                }
            }
            merged.extend_from_slice(&entries[i..]);
            merged.extend_from_slice(&theirs[j..]);
            *entries = merged;
        }
        ClockRef::Dense(o) => {
            let mut merged = Vec::with_capacity(entries.len());
            let mut i = 0;
            for (j, &b) in o.iter().enumerate() {
                while i < entries.len() && (entries[i].0 as usize) < j {
                    merged.push(entries[i]);
                    i += 1;
                }
                let a = if i < entries.len() && entries[i].0 as usize == j {
                    let a = entries[i].1;
                    i += 1;
                    a
                } else {
                    0
                };
                let v = a.max(b);
                if v > 0 {
                    merged.push((j as u32, v));
                }
            }
            merged.extend_from_slice(&entries[i..]);
            *entries = merged;
        }
    }
}

impl<'a> ClockRef<'a> {
    /// Number of threads the clock spans.
    #[inline]
    pub fn len(self) -> usize {
        match self {
            ClockRef::Dense(c) => c.len(),
            ClockRef::Sparse { n, .. } => n,
        }
    }

    /// True for a zero-width clock.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// Component for thread index `j`.
    #[inline]
    pub fn component(self, j: usize) -> u32 {
        match self {
            ClockRef::Dense(c) => c[j],
            ClockRef::Sparse { n, entries } => {
                assert!(j < n, "thread index {j} out of width {n}");
                match entries.binary_search_by_key(&(j as u32), |&(t, _)| t) {
                    Ok(i) => entries[i].1,
                    Err(_) => 0,
                }
            }
        }
    }

    /// Component for thread `t`.
    #[inline]
    pub fn get(self, t: Tid) -> u32 {
        self.component(t.index())
    }

    /// Iterates the nonzero components as `(thread index, count)` in
    /// thread order.
    pub fn iter_nonzero(self) -> NonzeroComponents<'a> {
        match self {
            ClockRef::Dense(c) => NonzeroComponents::Dense(c.iter().enumerate()),
            ClockRef::Sparse { entries, .. } => NonzeroComponents::Sparse(entries.iter()),
        }
    }

    /// `self ≤ other` under the product order (every component ≤).
    ///
    /// Sparse/sparse runs one merge walk over the two neighborhoods: a tid
    /// stored only on the left violates `≤` immediately, a tid stored only
    /// on the right is `0 ≤ c` and free.
    pub fn le(self, other: ClockRef<'_>) -> bool {
        debug_assert_eq!(self.len(), other.len(), "clock width mismatch");
        match (self, other) {
            (ClockRef::Dense(a), ClockRef::Dense(b)) => a.iter().zip(b).all(|(a, b)| a <= b),
            (a, b) => {
                // Only the left side's nonzero components can violate ≤.
                a.iter_nonzero().all(|(j, need)| need <= b.component(j))
            }
        }
    }

    /// Full four-way comparison under the happened-before partial order.
    pub fn partial_cmp_hb(self, other: ClockRef<'_>) -> ClockOrdering {
        debug_assert_eq!(self.len(), other.len(), "clock width mismatch");
        let mut less = false;
        let mut greater = false;
        let mut update = |a: u32, b: u32| -> bool {
            match a.cmp(&b) {
                Ordering::Less => less = true,
                Ordering::Greater => greater = true,
                Ordering::Equal => {}
            }
            less && greater
        };
        let concurrent = match (self, other) {
            (ClockRef::Dense(a), ClockRef::Dense(b)) => {
                a.iter().zip(b).any(|(&a, &b)| update(a, b))
            }
            (ClockRef::Sparse { entries: a, .. }, ClockRef::Sparse { entries: b, .. }) => {
                // Merge walk: tids absent from both sides are 0 = 0 and
                // never touched — the comparison is O(|a| + |b|), not O(n).
                let mut short_circuit = false;
                let (mut i, mut j) = (0, 0);
                while i < a.len() && j < b.len() {
                    let step = match a[i].0.cmp(&b[j].0) {
                        Ordering::Less => {
                            let hit = update(a[i].1, 0);
                            i += 1;
                            hit
                        }
                        Ordering::Greater => {
                            let hit = update(0, b[j].1);
                            j += 1;
                            hit
                        }
                        Ordering::Equal => {
                            let hit = update(a[i].1, b[j].1);
                            i += 1;
                            j += 1;
                            hit
                        }
                    };
                    if step {
                        short_circuit = true;
                        break;
                    }
                }
                if !short_circuit {
                    short_circuit = a[i..].iter().any(|&(_, v)| update(v, 0))
                        || b[j..].iter().any(|&(_, v)| update(0, v));
                }
                short_circuit
            }
            (a, b) => (0..self.len()).any(|j| update(a.component(j), b.component(j))),
        };
        if concurrent {
            return ClockOrdering::Concurrent;
        }
        match (less, greater) {
            (false, false) => ClockOrdering::Equal,
            (true, false) => ClockOrdering::Before,
            (false, true) => ClockOrdering::After,
            (true, true) => unreachable!("short-circuited above"),
        }
    }
}

/// Iterator over a clock's nonzero `(thread index, count)` pairs — see
/// [`VectorClock::iter_nonzero`].
pub enum NonzeroComponents<'a> {
    /// Scanning a dense component slice.
    Dense(std::iter::Enumerate<std::slice::Iter<'a, u32>>),
    /// Walking stored sparse entries.
    Sparse(std::slice::Iter<'a, (u32, u32)>),
}

impl Iterator for NonzeroComponents<'_> {
    type Item = (usize, u32);

    fn next(&mut self) -> Option<(usize, u32)> {
        match self {
            NonzeroComponents::Dense(it) => it.find_map(|(j, &v)| (v != 0).then_some((j, v))),
            NonzeroComponents::Sparse(it) => it.next().map(|&(t, v)| (t as usize, v)),
        }
    }
}

// Equality and hashing are defined on the logical component vector (width
// plus the nonzero components in thread order) so that a dense and a
// sparse clock holding the same value are interchangeable in maps and
// assertions — the representation can never leak through a collection.
impl PartialEq for VectorClock {
    fn eq(&self, other: &Self) -> bool {
        match (&self.repr, &other.repr) {
            (Repr::Dense(a), Repr::Dense(b)) => a == b,
            (Repr::Sparse { n: an, entries: a }, Repr::Sparse { n: bn, entries: b }) => {
                an == bn && a == b
            }
            _ => self.len() == other.len() && self.iter_nonzero().eq(other.iter_nonzero()),
        }
    }
}

impl Eq for VectorClock {}

impl Hash for VectorClock {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.len().hash(state);
        for (j, v) in self.iter_nonzero() {
            j.hash(state);
            v.hash(state);
        }
    }
}

impl Index<Tid> for VectorClock {
    type Output = u32;

    #[inline]
    fn index(&self, t: Tid) -> &u32 {
        match &self.repr {
            Repr::Dense(c) => &c[t.index()],
            Repr::Sparse { n, entries } => {
                let j = t.index();
                assert!(j < *n as usize, "thread index {j} out of width {n}");
                match entries.binary_search_by_key(&(j as u32), |&(t, _)| t) {
                    Ok(i) => &entries[i].1,
                    Err(_) => &ZERO_COMPONENT,
                }
            }
        }
    }
}

impl fmt::Debug for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vc{:?}", self.to_dense())
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, c) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc(components: &[u32]) -> VectorClock {
        VectorClock::from_components(components.to_vec())
    }

    /// The same logical clock in the sparse representation.
    fn sp(components: &[u32]) -> VectorClock {
        let entries = components
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v != 0)
            .map(|(j, &v)| (j as u32, v))
            .collect();
        VectorClock::from_entries(components.len(), entries)
    }

    #[test]
    fn zero_clock_is_all_zero() {
        let c = VectorClock::zero(3);
        assert_eq!(c.to_dense(), &[0, 0, 0]);
        assert_eq!(c.weight(), 0);
    }

    #[test]
    fn zero_picks_the_representation_by_width() {
        assert!(!VectorClock::zero(DENSE_WIDTH_MAX).is_sparse());
        assert!(VectorClock::zero(DENSE_WIDTH_MAX + 1).is_sparse());
        assert!(VectorClock::zero_sparse(2).is_sparse());
        assert!(!VectorClock::zero_dense(4096).is_sparse());
    }

    #[test]
    fn tick_advances_only_own_component() {
        for mut c in [VectorClock::zero_dense(3), VectorClock::zero_sparse(3)] {
            c.tick(Tid(1));
            c.tick(Tid(1));
            c.tick(Tid(2));
            assert_eq!(c.to_dense(), &[0, 2, 1]);
        }
    }

    #[test]
    fn join_takes_componentwise_max_across_modes() {
        for a0 in [vc(&[3, 0, 5]), sp(&[3, 0, 5])] {
            for b in [vc(&[1, 4, 5]), sp(&[1, 4, 5])] {
                let mut a = a0.clone();
                a.join(&b);
                assert_eq!(a.to_dense(), &[3, 4, 5]);
            }
        }
    }

    #[test]
    fn meet_takes_componentwise_min_across_modes() {
        for a0 in [vc(&[3, 0, 5]), sp(&[3, 0, 5])] {
            for b in [vc(&[1, 4, 5]), sp(&[1, 4, 5])] {
                let mut a = a0.clone();
                a.meet(&b);
                assert_eq!(a.to_dense(), &[1, 0, 5]);
            }
        }
    }

    #[test]
    fn paper_figure_4d_example() {
        // Figure 4(d): e1[1].vc = [1,0], e2[1].vc = [0,1],
        // e1[2].vc = [2,1], e2[2].vc = [1,2].
        let e1_1 = vc(&[1, 0]);
        let e2_1 = vc(&[0, 1]);
        let e1_2 = vc(&[2, 1]);
        let e2_2 = vc(&[1, 2]);
        assert!(e1_1.happened_before(&e1_2));
        assert!(e2_1.happened_before(&e1_2));
        assert!(e1_1.happened_before(&e2_2));
        assert!(e1_1.concurrent_with(&e2_1));
        assert!(e1_2.concurrent_with(&e2_2));
    }

    #[test]
    fn algorithm_3_lock_acquire() {
        // A thread t0 with clock [2,0] acquires a lock whose clock is [0,3]
        // (last released by t1 after its third event). Algorithm 3: tick own,
        // join, copy back to the lock.
        let mut thread = vc(&[2, 0]);
        let mut lock = vc(&[0, 3]);
        let event = thread.acquire_merge(Tid(0), &mut lock);
        assert_eq!(event.to_dense(), &[3, 3]);
        assert_eq!(thread.to_dense(), &[3, 3]);
        assert_eq!(lock.to_dense(), &[3, 3]);
    }

    #[test]
    fn algorithm_3_works_sparse() {
        let mut thread = sp(&[2, 0, 0, 0, 0]);
        let mut lock = sp(&[0, 3, 0, 0, 0]);
        let event = thread.acquire_merge(Tid(0), &mut lock);
        assert_eq!(event.to_dense(), &[3, 3, 0, 0, 0]);
        assert_eq!(lock, thread);
    }

    #[test]
    fn partial_cmp_all_four_outcomes() {
        for make in [vc as fn(&[u32]) -> VectorClock, sp] {
            assert_eq!(
                make(&[1, 2]).partial_cmp_hb(&make(&[1, 2])),
                ClockOrdering::Equal
            );
            assert_eq!(
                make(&[1, 2]).partial_cmp_hb(&make(&[1, 3])),
                ClockOrdering::Before
            );
            assert_eq!(
                make(&[1, 3]).partial_cmp_hb(&make(&[1, 2])),
                ClockOrdering::After
            );
            assert_eq!(
                make(&[0, 3]).partial_cmp_hb(&make(&[1, 2])),
                ClockOrdering::Concurrent
            );
        }
        // Mixed-mode comparisons agree too.
        assert_eq!(
            sp(&[1, 2]).partial_cmp_hb(&vc(&[1, 3])),
            ClockOrdering::Before
        );
        assert_eq!(
            vc(&[0, 3]).partial_cmp_hb(&sp(&[1, 2])),
            ClockOrdering::Concurrent
        );
    }

    #[test]
    fn le_is_reflexive_and_matches_cmp() {
        let a = vc(&[1, 2, 3]);
        let b = sp(&[1, 3, 3]);
        assert!(a.le(&a));
        assert!(a.le(&b));
        assert!(!b.le(&a));
    }

    #[test]
    fn display_formats_like_the_paper() {
        assert_eq!(vc(&[2, 1]).to_string(), "[2,1]");
        assert_eq!(sp(&[2, 0, 1]).to_string(), "[2,0,1]");
        assert_eq!(VectorClock::zero(0).to_string(), "[]");
    }

    #[test]
    fn equality_and_hash_ignore_representation() {
        use std::collections::hash_map::DefaultHasher;
        let hash = |c: &VectorClock| {
            let mut h = DefaultHasher::new();
            c.hash(&mut h);
            h.finish()
        };
        let d = vc(&[0, 7, 0, 2]);
        let s = sp(&[0, 7, 0, 2]);
        assert_eq!(d, s);
        assert_eq!(hash(&d), hash(&s));
        assert_ne!(d, vc(&[0, 7, 0, 3]));
        assert_ne!(s, sp(&[0, 7, 1, 2]));
        // Width matters even when the nonzero entries agree.
        assert_ne!(vc(&[1, 0]), vc(&[1, 0, 0]));
        assert_ne!(sp(&[1, 0]), sp(&[1, 0, 0]));
    }

    #[test]
    fn sparse_promotes_to_dense_at_the_density_threshold() {
        let mut c = VectorClock::zero_sparse(8);
        for t in 0..5 {
            c.tick(Tid(t));
        }
        assert!(c.is_sparse(), "5/8 live is below the ¾ threshold");
        c.tick(Tid(5));
        assert!(!c.is_sparse(), "6/8 live promotes");
        assert_eq!(c.to_dense(), &[1, 1, 1, 1, 1, 1, 0, 0]);
    }

    #[test]
    fn set_maintains_the_sparse_invariants() {
        let mut c = VectorClock::zero_sparse(100);
        c.set(Tid(40), 7);
        c.set(Tid(3), 2);
        c.set(Tid(40), 9);
        assert_eq!(c.get(Tid(40)), 9);
        assert_eq!(c.get(Tid(3)), 2);
        assert_eq!(c.nonzero_len(), 2);
        c.set(Tid(3), 0);
        assert_eq!(c.nonzero_len(), 1);
        assert_eq!(c.get(Tid(3)), 0);
        assert_eq!(c[Tid(3)], 0, "Index works for unstored components");
        assert_eq!(c[Tid(40)], 9);
    }

    #[test]
    fn iter_nonzero_agrees_across_modes() {
        let d = vc(&[0, 4, 0, 0, 9]);
        let s = sp(&[0, 4, 0, 0, 9]);
        let want = vec![(1usize, 4u32), (4, 9)];
        assert_eq!(d.iter_nonzero().collect::<Vec<_>>(), want);
        assert_eq!(s.iter_nonzero().collect::<Vec<_>>(), want);
        assert_eq!(d.nonzero_len(), 2);
        assert_eq!(s.nonzero_len(), 2);
    }

    #[test]
    fn wide_sparse_clock_is_cheaper_than_dense() {
        let n = 1024;
        let mut d = VectorClock::zero_dense(n);
        let mut s = VectorClock::zero_sparse(n);
        for t in [0u32, 17, 400, 1023] {
            d.tick(Tid(t));
            s.tick(Tid(t));
        }
        assert_eq!(d, s);
        assert!(s.heap_bytes() < d.heap_bytes());
        assert_eq!(s.nonzero_len(), 4);
    }
}
