//! Property tests for the fencing-epoch lease state machine.
//!
//! [`FenceGuard`] is the shard-side half of the fleet lease protocol: the
//! router offers `(epoch, ttl)` pairs and the guard must (a) never let the
//! epoch regress, (b) fence itself exactly once when a lease lapses, and
//! (c) stay fenced until a strictly higher epoch arrives. These tests
//! drive random operation sequences through the clock-injected API
//! (`grant_at` / `check_expiry_at`) against a trivial shadow model, and
//! then check the downstream promise: a fenced guard refuses durable
//! writes at every [`SessionStore`] entry point.

use std::path::PathBuf;
use std::sync::Arc;

use paramount::FaultLog;
use paramount_ingest::{FenceGuard, Hello, LeaseAck, SessionStore, StoreConfig, WireOp};
use proptest::prelude::*;

/// One step of the lease state machine as seen by a shard.
#[derive(Clone, Debug)]
enum LeaseStep {
    /// Router offers a lease: `LEASE paramount/1 epoch=<e> ttl-ms=<t>`.
    Grant { epoch: u64, ttl_ms: u64 },
    /// Wall clock advances and the shard runs its expiry sweep.
    Tick { advance_ms: u64 },
    /// Operator or shutdown path force-fences the shard.
    Fence,
}

fn arb_steps() -> impl Strategy<Value = Vec<LeaseStep>> {
    prop::collection::vec(
        prop_oneof![
            4 => (0u64..8, 0u64..400)
                .prop_map(|(epoch, ttl_ms)| LeaseStep::Grant { epoch, ttl_ms }),
            4 => (0u64..600).prop_map(|advance_ms| LeaseStep::Tick { advance_ms }),
            1 => Just(LeaseStep::Fence),
        ],
        1..48,
    )
}

/// Shadow model of the guard: the spec in three fields.
#[derive(Clone, Copy, Debug, Default)]
struct Model {
    epoch: u64,
    fenced: bool,
    /// Lease deadline in model-clock ms; `0` means never leased.
    deadline: u64,
}

impl Model {
    fn grant(&mut self, now: u64, epoch: u64, ttl_ms: u64) -> LeaseAck {
        if epoch > self.epoch {
            self.epoch = epoch;
            self.fenced = false;
            self.deadline = now.saturating_add(ttl_ms).max(1);
        } else if epoch == self.epoch && !self.fenced && self.epoch != 0 {
            self.deadline = now.saturating_add(ttl_ms).max(1);
        }
        LeaseAck {
            epoch: self.epoch,
            fenced: self.fenced,
        }
    }

    fn tick(&mut self, now: u64) -> bool {
        let fires = self.deadline != 0 && now >= self.deadline && !self.fenced;
        if fires {
            self.fenced = true;
        }
        fires
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("paramount-lease-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The guard tracks the shadow model exactly: epochs never regress,
    /// acks echo `max(current, offered)`, a fence fires at most once per
    /// lapse, and only a strictly higher epoch clears it.
    #[test]
    fn guard_matches_model_and_epochs_never_regress(steps in arb_steps()) {
        let guard = FenceGuard::new();
        let mut model = Model::default();
        let mut now = 0u64;
        for step in &steps {
            let epoch_before = guard.epoch();
            let fenced_before = guard.is_fenced();
            match step {
                LeaseStep::Grant { epoch, ttl_ms } => {
                    let ack = guard.grant_at(now, *epoch, *ttl_ms);
                    let want = model.grant(now, *epoch, *ttl_ms);
                    prop_assert_eq!(ack, want);
                    prop_assert_eq!(ack.epoch, epoch_before.max(*epoch));
                    if fenced_before && *epoch <= epoch_before {
                        prop_assert!(
                            guard.is_fenced(),
                            "only a strictly higher epoch may clear a fence"
                        );
                    }
                }
                LeaseStep::Tick { advance_ms } => {
                    now = now.saturating_add(*advance_ms);
                    let fired = guard.check_expiry_at(now);
                    prop_assert_eq!(fired, model.tick(now));
                    if fired {
                        prop_assert!(
                            !guard.check_expiry_at(now),
                            "check_expiry reports each fence exactly once"
                        );
                    }
                }
                LeaseStep::Fence => {
                    guard.fence();
                    model.fenced = true;
                }
            }
            prop_assert!(guard.epoch() >= epoch_before, "epochs never regress");
            prop_assert_eq!(guard.epoch(), model.epoch);
            prop_assert_eq!(guard.is_fenced(), model.fenced);
        }
    }

    /// A guard that was never granted a lease has nothing to lose and
    /// never self-fences, no matter how far the clock advances.
    #[test]
    fn unleased_guards_never_expire(advances in prop::collection::vec(0u64..u64::MAX / 64, 1..16)) {
        let guard = FenceGuard::new();
        let mut now = 0u64;
        for advance in advances {
            now = now.saturating_add(advance);
            prop_assert!(!guard.check_expiry_at(now));
            prop_assert!(!guard.is_fenced());
        }
        prop_assert_eq!(guard.epoch(), 0);
    }

    /// Whatever sequence of grants, lapses, and force-fences a shard
    /// lives through, the durable layer obeys the guard: appends succeed
    /// exactly while unfenced, and once fenced every entry point —
    /// append, checkpoint, create, recover — refuses.
    #[test]
    fn fenced_guards_refuse_durable_writes_at_every_entry_point(steps in arb_steps()) {
        let dir = scratch_dir("entry");
        let guard = Arc::new(FenceGuard::new());
        let cfg = StoreConfig {
            guard: Some(Arc::clone(&guard)),
            ..StoreConfig::default()
        };
        let mut store = SessionStore::create(&dir, 1, &Hello::new(2), cfg.clone()).unwrap();
        let mut now = 0u64;
        let mut accepted = 0u64;
        for (i, step) in steps.iter().enumerate() {
            match step {
                LeaseStep::Grant { epoch, ttl_ms } => {
                    guard.grant_at(now, *epoch, *ttl_ms);
                }
                LeaseStep::Tick { advance_ms } => {
                    now = now.saturating_add(*advance_ms);
                    guard.check_expiry_at(now);
                }
                LeaseStep::Fence => guard.fence(),
            }
            let fenced = guard.is_fenced();
            let append = store.append_event(0, &WireOp::Write(format!("x{i}")));
            prop_assert_eq!(
                append.is_err(),
                fenced,
                "append must succeed exactly while unfenced"
            );
            if !fenced {
                accepted += 1;
            }
        }
        if guard.is_fenced() {
            prop_assert!(store.checkpoint(0, &FaultLog::default()).is_err());
            let other = scratch_dir("entry-create");
            prop_assert!(
                SessionStore::create(&other, 2, &Hello::new(2), cfg.clone()).is_err()
            );
            let _ = std::fs::remove_dir_all(&other);
            drop(store);
            prop_assert!(SessionStore::recover(&dir, cfg).is_err());
        } else {
            drop(store);
            let recovered = SessionStore::recover(&dir, cfg).unwrap().unwrap();
            prop_assert_eq!(recovered.events.len() as u64, accepted);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
