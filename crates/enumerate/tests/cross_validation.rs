//! Heavier cross-validation than the inline unit tests: medium-sized
//! posets where brute-force collection is still affordable but the
//! algorithms already stress level storage and the lexical successor.

use paramount_enumerate::bfs::{self, BfsOptions};
use paramount_enumerate::dfs::{self, DfsOptions};
use paramount_enumerate::{leveled, lexical, Algorithm, CountSink};
use paramount_poset::random::RandomComputation;
use paramount_poset::{oracle, CutRef, Frontier};
use std::collections::HashMap;
use std::ops::ControlFlow;

/// Every algorithm (and the `auto` selector) agrees on counts across a
/// grid of shapes — wide, narrow, sparse, dense.
#[test]
fn counts_agree_across_shapes() {
    let shapes = [
        (2usize, 10usize, 0.1f64),
        (3, 8, 0.3),
        (5, 5, 0.5),
        (8, 3, 0.2),
        (4, 7, 0.8),
        (6, 4, 0.0),
    ];
    for (i, &(n, events, frac)) in shapes.iter().enumerate() {
        let p = RandomComputation::new(n, events, frac, i as u64 * 101 + 7).generate();
        let mut counts = Vec::new();
        for algorithm in Algorithm::ALL {
            let mut sink = CountSink::default();
            algorithm.run(&p, &mut sink).unwrap();
            counts.push(sink.count);
        }
        for w in counts.windows(2) {
            assert_eq!(w[0], w[1], "shape {i}: {counts:?}");
        }
    }
}

/// Exactly-once as a *multiset* property on a medium poset: every cut
/// appears with multiplicity one for every algorithm.
#[test]
fn multiset_exactly_once_medium() {
    let p = RandomComputation::new(5, 6, 0.45, 424242).generate();
    let reference = oracle::count_ideals(&p);
    for algorithm in Algorithm::ALL {
        let mut seen: HashMap<Frontier, u32> = HashMap::new();
        let mut sink = |cut: CutRef<'_>| {
            *seen.entry(cut.to_frontier()).or_insert(0) += 1;
            ControlFlow::<()>::Continue(())
        };
        algorithm.run(&p, &mut sink).unwrap();
        assert_eq!(seen.len() as u64, reference, "{algorithm:?} set size");
        assert!(
            seen.values().all(|&m| m == 1),
            "{algorithm:?} emitted a duplicate"
        );
    }
}

/// Bounded enumeration over a random interval agrees across algorithms
/// (not just intervals from the canonical partition).
#[test]
fn arbitrary_intervals_agree() {
    let p = RandomComputation::new(4, 5, 0.4, 99).generate();
    let cuts = oracle::enumerate_product_scan(&p);
    // Use consistent cut pairs (lo ≤ hi) as interval bounds.
    let mut checked = 0;
    for (i, lo) in cuts.iter().enumerate().step_by(7) {
        for hi in cuts.iter().skip(i).step_by(11) {
            if !lo.leq(hi) {
                continue;
            }
            let expected: Vec<&Frontier> = cuts.iter().filter(|g| lo.leq(g) && g.leq(hi)).collect();

            let mut lex = Vec::new();
            let mut sink = |g: CutRef<'_>| {
                lex.push(g.to_frontier());
                ControlFlow::<()>::Continue(())
            };
            lexical::enumerate_bounded(&p, lo, hi, &mut sink).unwrap();

            let mut bfs_cuts = Vec::new();
            let mut sink = |g: CutRef<'_>| {
                bfs_cuts.push(g.to_frontier());
                ControlFlow::<()>::Continue(())
            };
            bfs::enumerate_bounded(&p, lo, hi, &BfsOptions::default(), &mut sink).unwrap();

            let mut dfs_cuts = Vec::new();
            let mut sink = |g: CutRef<'_>| {
                dfs_cuts.push(g.to_frontier());
                ControlFlow::<()>::Continue(())
            };
            dfs::enumerate_bounded(&p, lo, hi, &DfsOptions::default(), &mut sink).unwrap();

            let mut lvl_cuts = Vec::new();
            let mut sink = |g: CutRef<'_>| {
                lvl_cuts.push(g.to_frontier());
                ControlFlow::<()>::Continue(())
            };
            leveled::enumerate_bounded(&p, lo, hi, &mut sink).unwrap();

            assert_eq!(lex.len(), expected.len(), "lexical vs filter");
            bfs_cuts.sort_unstable();
            dfs_cuts.sort_unstable();
            lvl_cuts.sort_unstable();
            let mut expected_sorted: Vec<Frontier> =
                expected.iter().map(|g| (*g).clone()).collect();
            expected_sorted.sort_unstable();
            assert_eq!(bfs_cuts, expected_sorted);
            assert_eq!(dfs_cuts, expected_sorted);
            assert_eq!(lvl_cuts, expected_sorted);
            checked += 1;
        }
    }
    assert!(checked > 20, "only {checked} intervals checked");
}

/// The lexical enumerator on a long two-thread pipeline (a worst case
/// for successor scans: deep resets on every carry).
#[test]
fn deep_carry_chain() {
    // Two threads, 40 events each, sparse messages: lots of lexical
    // "carries" from thread 1 back to thread 0.
    let p = RandomComputation::new(2, 40, 0.15, 5).generate();
    let mut sink = CountSink::default();
    let stats = lexical::enumerate(&p, &mut sink).unwrap();
    assert_eq!(stats.cuts, oracle::count_ideals(&p));
    assert!(stats.cuts > 100, "degenerate input");
}

/// Budgeted BFS reports the *same* peak as unbudgeted BFS when it fits —
/// the budget must not change behavior below the limit.
#[test]
fn budget_is_observationally_transparent() {
    let p = RandomComputation::new(5, 4, 0.3, 31).generate();
    let mut free = CountSink::default();
    let free_stats = bfs::enumerate(&p, &BfsOptions::default(), &mut free).unwrap();
    let mut capped = CountSink::default();
    let capped_stats = bfs::enumerate(
        &p,
        &BfsOptions {
            frontier_budget: Some(free_stats.peak_frontiers),
        },
        &mut capped,
    )
    .unwrap();
    assert_eq!(free.count, capped.count);
    assert_eq!(free_stats.peak_frontiers, capped_stats.peak_frontiers);
}
