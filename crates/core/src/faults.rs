//! Fault containment and deterministic fault injection.
//!
//! The interval decomposition (Lemmas 1–3, Theorem 2) makes intervals
//! `I(e) = [Gmin(e), Gbnd(e)]` *disjoint* and *covering*: every
//! consistent cut belongs to exactly one interval. That independence is
//! what makes graceful degradation sound — a panic while enumerating one
//! interval cannot corrupt any other interval's output, so the engine
//! can quarantine the failed interval, keep enumerating the rest, and
//! report an **exact** account of what was skipped instead of aborting
//! the whole run.
//!
//! Two halves live here:
//!
//! * **Containment** (always compiled): [`QuarantinedInterval`],
//!   [`FaultLog`], and [`Outcome`] — the record of faults survived and
//!   the degraded-result contract carried by `OnlineReport`/`ParaStats`.
//! * **Injection** (sites gated behind the `chaos` cargo feature):
//!   [`FaultPlan`] and [`FaultState`] — a seeded, `Copy` plan of
//!   deterministic faults (panic the sink at the k-th call, fail queue
//!   sends, delay workers, fail worker spawns, kill a daemon session
//!   mid-stream) threaded through engine and daemon config. The plan
//!   type exists on every build so configs stay feature-independent;
//!   without `chaos` no injection site is compiled and the plan is
//!   inert.

use crate::interval::Interval;
use std::sync::atomic::{AtomicU64, Ordering};

/// One interval the engine gave up on after a contained panic (or an
/// injected dispatch fault). Carries everything needed to account for —
/// or later re-enumerate — the skipped work.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuarantinedInterval {
    /// The quarantined interval: its `Gmin`/`Gbnd` pair (and owner
    /// event). `interval.box_size()` bounds the cuts it contains.
    pub interval: Interval,
    /// Cuts from this interval that *were* delivered to the sink before
    /// the fault (counted after each sink call returned). Deterministic
    /// subroutines enumerate a fixed order per interval, so this prefix
    /// length identifies exactly which cuts the sink saw.
    pub cuts_emitted: u64,
    /// Processing attempts made (1 = failed first try with partial
    /// output, so no retry; 2 = clean retry also failed).
    pub attempts: u32,
    /// Stringified panic payload (or injection-site description).
    pub message: String,
}

impl QuarantinedInterval {
    /// Upper bound on cuts this quarantine skipped: the interval's box
    /// volume (including the empty cut when the interval owns it) minus
    /// the prefix already delivered. The box volume over-approximates
    /// the *consistent* cuts in the interval, so the true loss is ≤
    /// this; re-enumerating `[gmin, gbnd]` offline recovers it exactly.
    pub fn skipped_cuts_bound(&self) -> u128 {
        let total = self.interval.box_size() + u128::from(self.interval.include_empty);
        total.saturating_sub(u128::from(self.cuts_emitted))
    }
}

/// The record of every fault a run survived. Empty on a clean run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultLog {
    /// Quarantined intervals, in the order they were abandoned.
    pub quarantined: Vec<QuarantinedInterval>,
}

impl FaultLog {
    /// No faults recorded?
    pub fn is_empty(&self) -> bool {
        self.quarantined.is_empty()
    }

    /// Number of quarantined intervals.
    pub fn len(&self) -> usize {
        self.quarantined.len()
    }

    /// Exact upper bound on cuts lost to quarantine across the run
    /// (sum of per-interval bounds).
    pub fn skipped_cuts_bound(&self) -> u128 {
        self.quarantined
            .iter()
            .map(QuarantinedInterval::skipped_cuts_bound)
            .sum()
    }

    /// The run's outcome view: [`Outcome::Complete`] iff nothing was
    /// quarantined.
    pub fn outcome(&self) -> Outcome<'_> {
        if self.is_empty() {
            Outcome::Complete
        } else {
            Outcome::Degraded(self)
        }
    }

    pub(crate) fn push(&mut self, entry: QuarantinedInterval) {
        self.quarantined.push(entry);
    }
}

/// Did an enumeration deliver the whole lattice, or survive faults by
/// quarantining intervals?
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome<'a> {
    /// Every interval completed: the emitted cut set is exactly the
    /// lattice (Theorem 2 / Theorem 3 semantics, unchanged).
    Complete,
    /// Some intervals were quarantined. The emitted cut set is exactly
    /// the lattice **minus** the quarantined intervals' remainders; the
    /// log bounds the loss and carries each `Gmin`/`Gbnd` for offline
    /// recovery.
    Degraded(&'a FaultLog),
}

impl Outcome<'_> {
    /// `true` for [`Outcome::Complete`].
    pub fn is_complete(&self) -> bool {
        matches!(self, Outcome::Complete)
    }
}

/// A seeded, deterministic plan of faults to inject. Plain `Copy` data
/// so it can ride inside the engine/session/server config structs; all
/// fields default to "inject nothing".
///
/// Injection sites only exist when the crate is built with the `chaos`
/// feature; release builds carry the plan but never consult it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed mixed into the pseudo-random injections (`sink_panic_every`)
    /// and the client backoff jitter, so every chaos run is replayable.
    pub seed: u64,
    /// Panic the sink boundary on exactly the k-th cut delivery
    /// (1-based, counted across all workers).
    pub sink_panic_at: Option<u64>,
    /// Panic the sink boundary pseudo-randomly at rate ~1/n, seeded —
    /// the "many intervals quarantined" stressor.
    pub sink_panic_every: Option<u64>,
    /// Panic the worker *outside* the per-interval catch (simulating a
    /// dying worker thread) when it picks up the k-th interval
    /// (1-based, counted across all workers). Exercises the supervisor
    /// respawn path.
    pub worker_kill_at: Option<u64>,
    /// Treat every n-th queue send as failed at dispatch (1-based): the
    /// interval is quarantined with zero emitted cuts instead of being
    /// enqueued.
    pub send_fail_every: Option<u64>,
    /// Sleep this many microseconds before processing each interval —
    /// widens race windows for the other injections.
    pub worker_delay_us: Option<u64>,
    /// Fail the first k worker-spawn attempts at engine construction,
    /// exercising the degrade-to-fewer-workers path (all spawns failing
    /// degrades to inline enumeration on the observer thread).
    pub spawn_fail_first: u32,
    /// Daemon only: panic the session's connection thread after it has
    /// applied this many EVENT frames — the "session killed mid-stream"
    /// fault. Exercises `EndReason::Fault` finalization.
    pub session_panic_after: Option<u64>,
    /// Durable store only: crash the k-th checkpoint (1-based) *after*
    /// its record is durably appended but *before* the WAL segments it
    /// supersedes are deleted — the widest compaction crash window.
    /// Recovery must apply last-checkpoint-wins over the leftovers.
    pub checkpoint_panic_at: Option<u64>,
}

impl FaultPlan {
    /// Does this plan inject anything at the sink boundary?
    pub fn arms_sink(&self) -> bool {
        self.sink_panic_at.is_some() || self.sink_panic_every.is_some()
    }

    /// Does this plan inject anything at all? (Used by tests and the
    /// engine to skip wrapper setup on inert plans.)
    pub fn is_inert(&self) -> bool {
        *self == FaultPlan::default()
    }

    /// Should the k-th sink call (1-based) panic under this plan?
    pub fn sink_call_faults(&self, call: u64) -> bool {
        if self.sink_panic_at == Some(call) {
            return true;
        }
        match self.sink_panic_every {
            Some(every) if every > 0 => splitmix64(self.seed ^ call) % every == 0,
            _ => false,
        }
    }

    /// Should the k-th dispatched send (1-based) fail under this plan?
    pub fn send_faults(&self, send: u64) -> bool {
        matches!(self.send_fail_every, Some(every) if every > 0 && send % every == 0)
    }

    /// Should the k-th interval pickup (1-based) kill its worker?
    pub fn pickup_kills_worker(&self, pickup: u64) -> bool {
        self.worker_kill_at == Some(pickup)
    }

    /// Should the k-th worker-spawn attempt (1-based) fail?
    pub fn spawn_faults(&self, attempt: u64) -> bool {
        attempt <= u64::from(self.spawn_fail_first)
    }
}

/// Shared runtime counters backing a [`FaultPlan`]'s "k-th call" sites.
/// Lives in the engine/daemon shared state; always compiled (a few
/// atomics) so the struct layout doesn't change with the feature.
#[derive(Debug, Default)]
pub struct FaultState {
    /// Sink deliveries attempted (pre-increment, so the first call is 1).
    pub sink_calls: AtomicU64,
    /// Intervals picked up by workers.
    pub pickups: AtomicU64,
    /// Queue sends attempted at dispatch.
    pub sends: AtomicU64,
    /// Worker-spawn attempts.
    pub spawns: AtomicU64,
}

impl FaultState {
    /// Next 1-based sink-call ordinal.
    pub fn next_sink_call(&self) -> u64 {
        self.sink_calls.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Next 1-based interval-pickup ordinal.
    pub fn next_pickup(&self) -> u64 {
        self.pickups.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Next 1-based send ordinal.
    pub fn next_send(&self) -> u64 {
        self.sends.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Next 1-based spawn ordinal.
    pub fn next_spawn(&self) -> u64 {
        self.spawns.fetch_add(1, Ordering::Relaxed) + 1
    }
}

/// SplitMix64 mixer — the standard 64-bit finalizer (Steele et al.),
/// used for seeded injection decisions and backoff jitter. Deterministic
/// and dependency-free.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paramount_poset::Frontier;

    fn sample_interval(include_empty: bool) -> Interval {
        Interval {
            event: paramount_poset::EventId {
                tid: paramount_poset::Tid(0),
                index: 0,
            },
            gmin: Frontier::from_counts(vec![1, 0]),
            gbnd: Frontier::from_counts(vec![2, 3]),
            include_empty,
        }
    }

    #[test]
    fn skipped_bound_subtracts_emitted_prefix() {
        let q = QuarantinedInterval {
            interval: sample_interval(false),
            cuts_emitted: 3,
            attempts: 1,
            message: "boom".into(),
        };
        // box: (2-1+1) * (3-0+1) = 8; minus 3 emitted.
        assert_eq!(q.skipped_cuts_bound(), 5);
        let with_empty = QuarantinedInterval {
            interval: sample_interval(true),
            ..q
        };
        assert_eq!(with_empty.skipped_cuts_bound(), 6);
    }

    #[test]
    fn fault_log_outcome_and_totals() {
        let mut log = FaultLog::default();
        assert!(log.outcome().is_complete());
        assert_eq!(log.skipped_cuts_bound(), 0);
        log.push(QuarantinedInterval {
            interval: sample_interval(false),
            cuts_emitted: 0,
            attempts: 2,
            message: "boom".into(),
        });
        assert_eq!(log.len(), 1);
        assert!(!log.outcome().is_complete());
        assert_eq!(log.skipped_cuts_bound(), 8);
        match log.outcome() {
            Outcome::Degraded(l) => assert_eq!(l.len(), 1),
            Outcome::Complete => panic!("log is non-empty"),
        }
    }

    #[test]
    fn plan_injection_decisions_are_deterministic() {
        let plan = FaultPlan {
            seed: 42,
            sink_panic_at: Some(7),
            sink_panic_every: Some(16),
            send_fail_every: Some(5),
            worker_kill_at: Some(3),
            spawn_fail_first: 2,
            ..FaultPlan::default()
        };
        assert!(!plan.is_inert());
        assert!(plan.arms_sink());
        assert!(plan.sink_call_faults(7));
        assert!(plan.send_faults(5) && plan.send_faults(10) && !plan.send_faults(4));
        assert!(plan.pickup_kills_worker(3) && !plan.pickup_kills_worker(4));
        assert!(plan.spawn_faults(1) && plan.spawn_faults(2) && !plan.spawn_faults(3));
        // Seeded decisions replay identically.
        let replay: Vec<bool> = (1..=100).map(|c| plan.sink_call_faults(c)).collect();
        assert_eq!(
            replay,
            (1..=100)
                .map(|c| plan.sink_call_faults(c))
                .collect::<Vec<_>>()
        );
        assert!(
            replay.iter().any(|&b| b),
            "rate ~1/16 over 100 calls should fire"
        );
        assert!(FaultPlan::default().is_inert());
        assert!(!FaultPlan::default().sink_call_faults(1));
        assert!(!FaultPlan::default().send_faults(1));
        assert!(!FaultPlan::default().spawn_faults(1));
    }

    #[test]
    fn fault_state_counters_are_one_based() {
        let st = FaultState::default();
        assert_eq!(st.next_sink_call(), 1);
        assert_eq!(st.next_sink_call(), 2);
        assert_eq!(st.next_pickup(), 1);
        assert_eq!(st.next_send(), 1);
        assert_eq!(st.next_spawn(), 1);
    }

    #[test]
    fn splitmix_is_a_bijective_mixer() {
        // Distinct inputs give distinct outputs (sanity on a small set).
        let outs: std::collections::HashSet<u64> = (0..1000).map(splitmix64).collect();
        assert_eq!(outs.len(), 1000);
    }
}
