//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! the choice of `→p` order, the cost of the online store vs. a naive
//! locked vector, and the FxHash vs. SipHash dedup in BFS.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use paramount::store::AppendVec;
use paramount::{Algorithm, AtomicCountSink, ParaMount};
use paramount_bench::schedule::simulated_speedup;
use paramount_poset::{topo, Poset};
use parking_lot::Mutex;

fn poset() -> Poset {
    paramount_bench::bench_poset_speedup()
}

/// Does the choice of linear extension (weight-sort vs Kahn) matter for
/// enumeration time and partition balance? (The paper says any
/// topological order is correct; this quantifies the performance side.)
fn bench_order_choice(c: &mut Criterion) {
    let p = poset();
    let mut group = c.benchmark_group("ablation-order");
    for (name, order) in [
        ("weight", topo::weight_order(&p)),
        ("kahn", topo::kahn_order(&p)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let sink = AtomicCountSink::new();
                ParaMount::new(Algorithm::Lexical)
                    .enumerate_with_order(&p, &order, &sink)
                    .unwrap();
                sink.count()
            })
        });
    }
    group.finish();

    // Report partition balance once (not a timing benchmark): the
    // simulated 8-way speedup each order's partition permits.
    for (name, order) in [
        ("weight", topo::weight_order(&p)),
        ("kahn", topo::kahn_order(&p)),
    ] {
        let intervals = paramount::partition(&p, &order);
        let work: Vec<u64> = intervals
            .iter()
            .map(|iv| {
                let mut sink = paramount_enumerate::CountSink::default();
                paramount_enumerate::lexical::enumerate_bounded(&p, &iv.gmin, &iv.gbnd, &mut sink)
                    .unwrap();
                sink.count
            })
            .collect();
        eprintln!(
            "[ablation] {name} order: {} intervals, simulated 8-way speedup {:.2}x",
            intervals.len(),
            simulated_speedup(&work, 8)
        );
    }
}

/// The online store against the obvious alternative (a mutex-protected
/// `Vec`), on the engine's actual access pattern: single writer
/// appending, readers hammering published elements.
fn bench_store_vs_mutex(c: &mut Criterion) {
    const N: usize = 8_192;
    let mut group = c.benchmark_group("ablation-store");
    group.throughput(Throughput::Elements(N as u64));

    group.bench_function("appendvec-mixed", |b| {
        b.iter(|| {
            let store: AppendVec<u64> = AppendVec::new();
            let mut acc = 0u64;
            for i in 0..N {
                store.push(i as u64);
                // Reader pattern: touch an already-published element.
                acc = acc.wrapping_add(*store.get(i / 2).unwrap());
            }
            acc
        })
    });
    group.bench_function("mutex-vec-mixed", |b| {
        b.iter(|| {
            let store: Mutex<Vec<u64>> = Mutex::new(Vec::new());
            let mut acc = 0u64;
            for i in 0..N {
                store.lock().push(i as u64);
                acc = acc.wrapping_add(store.lock()[i / 2]);
            }
            acc
        })
    });
    group.finish();
}

/// FxHash vs SipHash for frontier deduplication (the BFS hot path).
fn bench_hash_choice(c: &mut Criterion) {
    use std::collections::HashSet;
    let frontiers: Vec<Vec<u32>> = (0..20_000u32)
        .map(|i| (0..10).map(|j| (i.rotate_left(j) % 17)).collect())
        .collect();
    let mut group = c.benchmark_group("ablation-hash");
    group.throughput(Throughput::Elements(frontiers.len() as u64));
    group.bench_function("fxhash", |b| {
        b.iter(|| {
            let mut set: paramount_enumerate::fxhash::FxHashSet<&[u32]> = Default::default();
            for f in &frontiers {
                set.insert(f.as_slice());
            }
            set.len()
        })
    });
    group.bench_function("siphash", |b| {
        b.iter(|| {
            let mut set: HashSet<&[u32]> = HashSet::new();
            for f in &frontiers {
                set.insert(f.as_slice());
            }
            set.len()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_order_choice,
    bench_store_vs_mutex,
    bench_hash_choice
);
criterion_main!(benches);
