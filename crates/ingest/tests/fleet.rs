//! Fleet acceptance: a router in front of in-process shard daemons
//! routes sessions to shard-encoded ids, health-checks the shards, and
//! on shard death migrates durable sessions so a `RESUME` against the
//! surviving shard finishes with a report identical to an unbroken
//! control run (Theorem 3 exactness is a function of the accepted event
//! prefix alone, so "identical report" is the whole failover contract).

use paramount_durable::FsyncPolicy;
use paramount_ingest::{
    first_session_id, shard_of_session, shard_subroot, Client, FleetConfig, FleetHandle,
    FleetRouter, FleetSummary, Hello, Server, ServerConfig, ServerHandle, ShardSpec, WireOp,
};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("paramount-fleet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct Shard {
    id: usize,
    addr: SocketAddr,
    handle: ServerHandle,
    daemon: std::thread::JoinHandle<paramount_ingest::ServeSummary>,
}

impl Shard {
    /// Simulates a crash well enough for the router: the listener goes
    /// away, probes fail, and the durable stores stay on disk (a real
    /// `kill -9` is exercised by the CLI end-to-end test).
    fn kill(self) {
        self.handle.shutdown();
        let _ = self.daemon.join();
    }
}

fn spawn_shard(root: &Path, id: usize) -> Shard {
    let config = ServerConfig {
        data_dir: Some(shard_subroot(root, id)),
        first_session_id: first_session_id(id),
        // Small enough that an eight-op trace crosses checkpoint boundaries.
        checkpoint_every_events: 3,
        fsync: FsyncPolicy::Never,
        ..ServerConfig::default()
    };
    let mut server = Server::new(config);
    let addr = server.bind_tcp("127.0.0.1:0").expect("bind shard");
    let handle = server.handle();
    let daemon = std::thread::spawn(move || server.run(|_| {}).expect("shard run"));
    Shard {
        id,
        addr,
        handle,
        daemon,
    }
}

fn spawn_fleet(
    root: &Path,
    shards: usize,
) -> (
    Vec<Shard>,
    SocketAddr,
    FleetHandle,
    std::thread::JoinHandle<FleetSummary>,
) {
    let procs: Vec<Shard> = (0..shards).map(|k| spawn_shard(root, k)).collect();
    let specs = procs
        .iter()
        .map(|s| ShardSpec {
            id: s.id,
            addr: s.addr.to_string(),
        })
        .collect();
    let config = FleetConfig {
        probe_interval: Duration::from_millis(50),
        probe_deadline: Duration::from_millis(250),
        suspect_after: 1,
        down_after: 2,
        data_root: Some(root.to_path_buf()),
        ..FleetConfig::default()
    };
    let mut router = FleetRouter::new(specs, config);
    let addr = router.bind_tcp("127.0.0.1:0").expect("bind router");
    let handle = router.handle();
    let join = std::thread::spawn(move || router.run().expect("router run"));
    (procs, addr, handle, join)
}

/// A legal eight-op two-thread trace: t0 works under a lock, then t1
/// takes the same lock.
fn ops() -> Vec<(usize, WireOp)> {
    vec![
        (0, WireOp::Write("x".into())),
        (0, WireOp::Acquire("m".into())),
        (0, WireOp::Write("y".into())),
        (0, WireOp::Release("m".into())),
        (1, WireOp::Write("z".into())),
        (1, WireOp::Acquire("m".into())),
        (1, WireOp::Write("w".into())),
        (1, WireOp::Release("m".into())),
    ]
}

fn send_range(client: &mut Client, ops: &[(usize, WireOp)]) {
    for (tid, op) in ops {
        client.event(*tid, op).expect("event");
    }
}

/// ROUTE against the router, then dial the shard it names — the same
/// two-step dance `paramount send --fleet` does.
fn route_and_dial(router: SocketAddr, session: Option<u64>) -> (u64, Client) {
    let mut routed = Client::connect_tcp(router).expect("connect router");
    let (shard, addr) = routed.route(session).expect("route");
    (
        shard,
        Client::connect_tcp(addr.as_str()).expect("dial shard"),
    )
}

/// Routed sessions carry their shard in the id's high bits, and the
/// router's own STATS endpoint reports fleet metrics plus one
/// `shard_state` line per shard.
#[test]
fn router_places_sessions_on_shard_encoded_ids() {
    let root = temp_root("routing");
    let (procs, router, handle, join) = spawn_fleet(&root, 3);

    for _ in 0..3 {
        let (shard, mut client) = route_and_dial(router, None);
        let session = client.hello(&Hello::new(2)).expect("hello");
        assert_eq!(
            shard_of_session(session),
            shard as usize,
            "session id {session} must encode the shard ROUTE named"
        );
        send_range(&mut client, &ops());
        let report = client.finish().expect("finish");
        assert!(report.complete);
    }

    let mut stats = Client::connect_tcp(router).expect("connect router");
    let lines = stats.stats().expect("fleet stats");
    assert!(
        lines.iter().any(|l| l.contains("\"sessions_routed\"")),
        "router STATS must include fleet counters: {lines:?}"
    );
    assert_eq!(
        lines
            .iter()
            .filter(|l| l.contains("\"metric\":\"shard_state\""))
            .count(),
        3,
        "router STATS must report one shard_state line per shard"
    );

    handle.shutdown();
    let summary = join.join().expect("router join");
    assert_eq!(summary.fleet.sessions_routed, 3);
    assert_eq!(summary.fleet.shards_up, 3);
    for shard in procs {
        shard.kill();
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// The tentpole acceptance: a shard dies with a durable session
/// mid-stream; the router marks it down, migrates the store to a
/// surviving shard, re-ROUTEs the session there, and the resumed run's
/// report equals the unbroken control's exactly.
#[test]
fn shard_death_migrates_sessions_and_resume_is_exact() {
    let root = temp_root("failover");
    let (mut procs, router, handle, join) = spawn_fleet(&root, 3);
    let all = ops();

    // Unbroken control run through the same fleet.
    let expected = {
        let (_, mut client) = route_and_dial(router, None);
        client.hello(&Hello::new(2)).expect("hello control");
        send_range(&mut client, &all);
        client.finish().expect("finish control")
    };

    // Victim run: four ops, synchronously acked, then the client dies.
    let (victim_shard, session) = {
        let (shard, mut client) = route_and_dial(router, None);
        let session = client.hello(&Hello::new(2)).expect("hello victim");
        send_range(&mut client, &all[..4]);
        client.flush_sync().expect("flush");
        (shard as usize, session)
    };
    assert_eq!(shard_of_session(session), victim_shard);

    // Kill the shard that owns the session. Joining the daemon thread
    // guarantees its durable store is final on disk before the router
    // can migrate it.
    let pos = procs
        .iter()
        .position(|s| s.id == victim_shard)
        .expect("victim shard exists");
    procs.remove(pos).kill();

    // The router notices within a few probe sweeps and re-homes the
    // session; until then ROUTE still names the dead shard.
    let deadline = Instant::now() + Duration::from_secs(20);
    let new_addr = loop {
        assert!(
            Instant::now() < deadline,
            "router never migrated session {session} off dead shard {victim_shard}"
        );
        let mut routed = Client::connect_tcp(router).expect("connect router");
        match routed.route(Some(session)) {
            Ok((shard, addr)) if shard as usize != victim_shard => break addr,
            _ => std::thread::sleep(Duration::from_millis(50)),
        }
    };

    // RESUME on the surviving shard: it acked exactly the flushed
    // prefix, so the client re-sends only the tail.
    let mut client = Client::connect_tcp(new_addr.as_str()).expect("dial survivor");
    let acked = client.resume(session).expect("resume migrated session");
    assert_eq!(acked, 4, "survivor acked exactly the flushed prefix");
    send_range(&mut client, &all[acked as usize..]);
    let report = client.finish().expect("finish resumed");
    assert!(report.complete);
    assert_eq!(report.events, expected.events, "migrated events == control");
    assert_eq!(report.cuts, expected.cuts, "migrated cuts == control");

    handle.shutdown();
    let summary = join.join().expect("router join");
    assert!(
        summary.fleet.failovers >= 1,
        "the dead shard must count as a failover"
    );
    assert!(
        summary.fleet.sessions_migrated >= 1,
        "the session must count as migrated"
    );
    assert!(summary.fleet.probe_failures >= 1);
    assert_eq!(summary.fleet.shards_down, 1);
    for shard in procs {
        shard.kill();
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// A session id whose shard prefix is outside the fleet is a state
/// error — survivable, so the caller can fall back to a fresh ROUTE.
#[test]
fn route_of_foreign_session_is_a_state_error() {
    let root = temp_root("foreign");
    let (procs, router, handle, join) = spawn_fleet(&root, 2);

    let mut routed = Client::connect_tcp(router).expect("connect router");
    let err = routed
        .route(Some(first_session_id(7)))
        .expect_err("shard 7 is not in a 2-shard fleet");
    let paramount_ingest::ClientError::Rejected(e) = err else {
        panic!("expected a rejection");
    };
    assert_eq!(e.code, paramount_ingest::ErrCode::State);
    // Same connection, fresh placement: the rejection was survivable.
    let (_, addr) = routed.route(None).expect("route after rejection");
    assert!(!addr.is_empty());

    handle.shutdown();
    join.join().expect("router join");
    for shard in procs {
        shard.kill();
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// Seeded link chaos between client and daemon: injected disconnects
/// and byte-fragmented writes must not change the final report, because
/// every retry resumes from the synchronously acked prefix.
#[cfg(feature = "chaos")]
mod chaos {
    use super::*;
    use paramount_ingest::{send_trace_with_retry, ChaosProxy, LinkFaults, RetryPolicy};
    use paramount_trace::textfmt::parse_trace;

    /// A two-thread trace big enough (~5.5 KiB on the wire) that every
    /// possible cut budget (at most 4 KiB + 64 B of client bytes) fires
    /// before the trace finishes.
    fn big_trace() -> String {
        let mut text = String::from("threads 2\n");
        for _ in 0..250 {
            text.push_str("0 write x\n");
            text.push_str("1 write y\n");
        }
        text
    }

    #[test]
    fn chaotic_link_yields_the_control_report() {
        let root = temp_root("chaos");
        let shard = spawn_shard(&root, 0);
        let trace = parse_trace(&big_trace()).expect("parse");
        let hello = Hello::new(2);

        // Control: a clean link.
        let policy = RetryPolicy::new(1, Duration::from_millis(1));
        let (expected, _, _) =
            send_trace_with_retry(|_| Client::connect_tcp(shard.addr), &hello, &trace, policy)
                .expect("control send");

        // Chaos: cut every connection after a seed-derived byte budget
        // and fragment every forwarded write, with a fixed seed so a
        // failure replays bit-for-bit. Each retry RESUMEs and re-sends
        // only the unacked tail, so the send ratchets forward through
        // the cuts.
        let faults = LinkFaults {
            seed: 0xfee1_dead,
            disconnect_every: Some(1),
            chunk_bytes: 7,
            delay_per_chunk: Duration::from_micros(10),
        };
        let proxy = ChaosProxy::spawn(shard.addr, faults).expect("proxy");
        let policy = RetryPolicy::new(16, Duration::from_millis(1)).with_checkpoint_every(8);
        let (report, _, attempts) = send_trace_with_retry(
            |_| Client::connect_tcp(proxy.addr()),
            &hello,
            &trace,
            policy,
        )
        .expect("chaotic send");

        assert!(attempts > 1, "the chaos plan must actually bite");
        assert!(proxy.connections() > 1);
        assert_eq!(report.events, expected.events);
        assert_eq!(report.cuts, expected.cuts, "chaos cuts == control cuts");

        proxy.stop();
        shard.kill();
        let _ = std::fs::remove_dir_all(&root);
    }
}
