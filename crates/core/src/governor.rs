//! The overload governor: byte-accounted memory budgets shared across
//! engines, with soft/hard watermarks driving adaptive backpressure and
//! admission control.
//!
//! The ROADMAP names the gap this closes: the backpressure policy used to
//! be chosen statically at construction, so a
//! [`SpillToDeque`](crate::online::BackpressurePolicy::SpillToDeque)
//! engine under sustained overload re-admitted exactly the unbounded
//! memory the bounded queue was meant to cap. A [`MemoryBudget`] makes
//! the overload *observable* (atomic byte accounting of the packed spill
//! buffer and of live event retention) and *actionable*:
//!
//! * **Soft watermark** — the streaming executor promotes
//!   `SpillToDeque → Block`: producers slow down instead of growing the
//!   spill, and the promotion is counted in
//!   [`ParaMetrics::backpressure_promotions`].
//! * **Hard watermark** — new work fails fast with a typed
//!   [`OverloadError`] instead of being buffered, and the ingest daemon
//!   refuses new `HELLO`s with a `busy` frame carrying a retry-after
//!   hint.
//!
//! One budget can be shared by many engines (the daemon threads a single
//! `Arc<MemoryBudget>` through every session), which is what makes the
//! watermarks a *process-wide* statement instead of a per-run one.
//!
//! [`ParaMetrics::backpressure_promotions`]:
//!     crate::metrics::ParaMetrics::backpressure_promotions

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Governor knobs carried by engine configs (plain `Copy` data — the
/// shared [`MemoryBudget`] itself travels separately as an `Arc`).
///
/// The default turns everything off: no watermarks, no deadline — the
/// governor is strictly opt-in, and a default-configured engine behaves
/// exactly as before it existed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GovernorConfig {
    /// Soft watermark in accounted bytes. At or above it,
    /// `SpillToDeque` submissions block instead of spilling.
    pub soft_spill_bytes: Option<usize>,
    /// Hard watermark in accounted bytes. At or above it, adaptive
    /// submissions are rejected with an [`OverloadError`] and the daemon
    /// refuses new sessions.
    pub hard_spill_bytes: Option<usize>,
    /// Capacity of the **disk** spill tier in bytes. When an engine has
    /// a spill directory, RAM pressure at or past the watermarks moves
    /// cold spill batches to disk instead of blocking or shedding —
    /// disk bytes are accounted here and do *not* count toward
    /// [`Pressure`], so the hard watermark stops being a ceiling on run
    /// size and becomes a ceiling on *RAM*. Work is shed only once the
    /// disk tier itself would exceed this cap (`None` = uncapped).
    pub disk_spill_bytes: Option<usize>,
    /// Deadline for one in-flight interval. When set, a watchdog thread
    /// (streaming mode) or an inline per-cut check (both modes) preempts
    /// an interval that overstays: it is split into independently
    /// schedulable sub-intervals if nothing was delivered yet, or
    /// quarantined with its exact delivered prefix otherwise.
    pub interval_deadline: Option<Duration>,
}

/// Where the accounted total sits relative to the watermarks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Pressure {
    /// Below the soft watermark: configured policies apply unchanged.
    Nominal,
    /// At or past the soft watermark: spill is promoted to blocking.
    Soft,
    /// At or past the hard watermark: new work is shed.
    Hard,
}

/// Atomic byte account shared across engines (and, in the daemon, across
/// sessions): packed spill-buffer bytes plus live retention, compared
/// against the configured watermarks.
///
/// All operations are relaxed atomics — the budget is advisory
/// flow-control state, not a synchronization point, and a submission
/// racing a credit merely sees pressure one interval late.
#[derive(Debug)]
pub struct MemoryBudget {
    spill: AtomicUsize,
    spill_high_water: AtomicUsize,
    retained: AtomicUsize,
    disk: AtomicUsize,
    disk_high_water: AtomicUsize,
    soft: usize,
    hard: usize,
    disk_cap: usize,
}

impl MemoryBudget {
    /// A budget with the config's watermarks (an unset watermark never
    /// trips). A soft watermark above the hard one is clamped down to it.
    pub fn new(config: GovernorConfig) -> Self {
        let hard = config.hard_spill_bytes.unwrap_or(usize::MAX);
        let soft = config.soft_spill_bytes.unwrap_or(usize::MAX).min(hard);
        MemoryBudget {
            spill: AtomicUsize::new(0),
            spill_high_water: AtomicUsize::new(0),
            retained: AtomicUsize::new(0),
            disk: AtomicUsize::new(0),
            disk_high_water: AtomicUsize::new(0),
            soft,
            hard,
            disk_cap: config.disk_spill_bytes.unwrap_or(usize::MAX),
        }
    }

    /// A budget that never trips (both watermarks unset).
    pub fn unlimited() -> Self {
        Self::new(GovernorConfig::default())
    }

    /// Accounts `bytes` entering the packed spill buffer.
    pub fn charge_spill(&self, bytes: usize) {
        if bytes == 0 {
            return;
        }
        let now = self.spill.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.spill_high_water.fetch_max(now, Ordering::Relaxed);
    }

    /// Accounts `bytes` leaving the packed spill buffer.
    pub fn credit_spill(&self, bytes: usize) {
        if bytes > 0 {
            self.spill.fetch_sub(bytes, Ordering::Relaxed);
        }
    }

    /// Accounts `bytes` of live retention (event storage held by a
    /// running engine).
    pub fn charge_retained(&self, bytes: usize) {
        if bytes > 0 {
            self.retained.fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// Releases retention accounted by [`MemoryBudget::charge_retained`].
    pub fn credit_retained(&self, bytes: usize) {
        if bytes > 0 {
            self.retained.fetch_sub(bytes, Ordering::Relaxed);
        }
    }

    /// Accounts `bytes` entering the disk spill tier. Disk bytes do not
    /// feed [`MemoryBudget::pressure`] — moving cold state to disk is
    /// how an engine *relieves* RAM pressure.
    pub fn charge_disk(&self, bytes: usize) {
        if bytes == 0 {
            return;
        }
        let now = self.disk.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.disk_high_water.fetch_max(now, Ordering::Relaxed);
    }

    /// Accounts `bytes` leaving the disk spill tier.
    pub fn credit_disk(&self, bytes: usize) {
        if bytes > 0 {
            self.disk.fetch_sub(bytes, Ordering::Relaxed);
        }
    }

    /// Bytes currently in the disk spill tier.
    pub fn disk_bytes(&self) -> usize {
        self.disk.load(Ordering::Relaxed)
    }

    /// Largest disk-tier total ever accounted.
    pub fn disk_high_water(&self) -> usize {
        self.disk_high_water.load(Ordering::Relaxed)
    }

    /// Whether the disk tier can take `bytes` more without exceeding its
    /// cap (always true when uncapped).
    pub fn disk_can_accept(&self, bytes: usize) -> bool {
        self.disk_cap == usize::MAX || self.disk_bytes().saturating_add(bytes) <= self.disk_cap
    }

    /// Bytes currently in spill buffers.
    pub fn spill_bytes(&self) -> usize {
        self.spill.load(Ordering::Relaxed)
    }

    /// Largest spill total ever accounted — the "did the cap hold"
    /// number.
    pub fn spill_high_water(&self) -> usize {
        self.spill_high_water.load(Ordering::Relaxed)
    }

    /// Bytes currently accounted as live retention.
    pub fn retained_bytes(&self) -> usize {
        self.retained.load(Ordering::Relaxed)
    }

    /// Total accounted bytes (spill + retention).
    pub fn accounted_bytes(&self) -> usize {
        self.spill_bytes().saturating_add(self.retained_bytes())
    }

    /// Current pressure level against the watermarks.
    pub fn pressure(&self) -> Pressure {
        let total = self.accounted_bytes();
        if total >= self.hard {
            Pressure::Hard
        } else if total >= self.soft {
            Pressure::Soft
        } else {
            Pressure::Nominal
        }
    }

    /// The typed error describing the current overload (for callers that
    /// just observed [`Pressure::Hard`]).
    pub fn overload_error(&self) -> OverloadError {
        OverloadError {
            accounted_bytes: self.accounted_bytes(),
            hard_watermark: self.hard,
        }
    }

    /// Plain-data view of the account for reports and `stats` output.
    pub fn snapshot(&self) -> BudgetSnapshot {
        BudgetSnapshot {
            spill_bytes: self.spill_bytes() as u64,
            spill_bytes_high_water: self.spill_high_water() as u64,
            retained_bytes: self.retained_bytes() as u64,
            disk_spill_bytes: self.disk_bytes() as u64,
            disk_spill_bytes_high_water: self.disk_high_water() as u64,
            disk_watermark: watermark(self.disk_cap),
            soft_watermark: watermark(self.soft),
            hard_watermark: watermark(self.hard),
        }
    }
}

/// An unset watermark is stored as `usize::MAX`; snapshots report it as
/// `None` so renderers can omit it.
fn watermark(raw: usize) -> Option<u64> {
    (raw != usize::MAX).then_some(raw as u64)
}

/// Owned, comparable snapshot of a [`MemoryBudget`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BudgetSnapshot {
    /// Bytes in spill buffers at snapshot time.
    pub spill_bytes: u64,
    /// Largest spill total ever accounted.
    pub spill_bytes_high_water: u64,
    /// Live retention bytes at snapshot time.
    pub retained_bytes: u64,
    /// Bytes in the disk spill tier at snapshot time.
    pub disk_spill_bytes: u64,
    /// Largest disk-tier total ever accounted.
    pub disk_spill_bytes_high_water: u64,
    /// Configured disk-tier cap, if any.
    pub disk_watermark: Option<u64>,
    /// Configured soft watermark, if any.
    pub soft_watermark: Option<u64>,
    /// Configured hard watermark, if any.
    pub hard_watermark: Option<u64>,
}

impl BudgetSnapshot {
    /// One JSON object line in the metrics vocabulary (same shape as the
    /// gauge lines of
    /// [`MetricsSnapshot`](crate::metrics::MetricsSnapshot)).
    pub fn to_json_line(&self, label: &str) -> String {
        let mut out = format!(
            "{{\"label\":\"{}\",\"metric\":\"memory_budget\",\"type\":\"gauge\",\"value\":{},\"high_water\":{},\"retained\":{}",
            label.replace('\\', "\\\\").replace('"', "\\\""),
            self.spill_bytes,
            self.spill_bytes_high_water,
            self.retained_bytes,
        );
        if self.disk_spill_bytes_high_water > 0 || self.disk_watermark.is_some() {
            out.push_str(&format!(
                ",\"disk\":{},\"disk_high_water\":{}",
                self.disk_spill_bytes, self.disk_spill_bytes_high_water
            ));
        }
        if let Some(cap) = self.disk_watermark {
            out.push_str(&format!(",\"disk_cap\":{cap}"));
        }
        if let Some(soft) = self.soft_watermark {
            out.push_str(&format!(",\"soft\":{soft}"));
        }
        if let Some(hard) = self.hard_watermark {
            out.push_str(&format!(",\"hard\":{hard}"));
        }
        out.push('}');
        out
    }
}

/// Typed overload error: the account crossed the hard watermark and new
/// work was shed instead of buffered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OverloadError {
    /// Accounted bytes (spill + retention) when the shed happened.
    pub accounted_bytes: usize,
    /// The configured hard watermark.
    pub hard_watermark: usize,
}

impl std::fmt::Display for OverloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "memory budget exhausted: {} accounted bytes at or past the hard watermark ({})",
            self.accounted_bytes, self.hard_watermark
        )
    }
}

impl std::error::Error for OverloadError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(soft: usize, hard: usize) -> GovernorConfig {
        GovernorConfig {
            soft_spill_bytes: Some(soft),
            hard_spill_bytes: Some(hard),
            ..GovernorConfig::default()
        }
    }

    #[test]
    fn pressure_crosses_watermarks_in_order() {
        let b = MemoryBudget::new(config(100, 200));
        assert_eq!(b.pressure(), Pressure::Nominal);
        b.charge_spill(99);
        assert_eq!(b.pressure(), Pressure::Nominal);
        b.charge_spill(1);
        assert_eq!(b.pressure(), Pressure::Soft);
        b.charge_spill(100);
        assert_eq!(b.pressure(), Pressure::Hard);
        b.credit_spill(150);
        assert_eq!(b.pressure(), Pressure::Nominal);
        assert_eq!(b.spill_high_water(), 200);
        assert_eq!(b.spill_bytes(), 50);
    }

    #[test]
    fn retention_counts_toward_pressure_but_not_spill_high_water() {
        let b = MemoryBudget::new(config(10, 20));
        b.charge_retained(15);
        assert_eq!(b.pressure(), Pressure::Soft);
        assert_eq!(b.spill_high_water(), 0);
        b.charge_retained(5);
        assert_eq!(b.pressure(), Pressure::Hard);
        b.credit_retained(20);
        assert_eq!(b.pressure(), Pressure::Nominal);
    }

    #[test]
    fn unlimited_budget_never_trips() {
        let b = MemoryBudget::unlimited();
        b.charge_spill(usize::MAX / 2);
        b.charge_retained(usize::MAX / 4);
        assert_eq!(b.pressure(), Pressure::Nominal);
        let snap = b.snapshot();
        assert_eq!(snap.soft_watermark, None);
        assert_eq!(snap.hard_watermark, None);
    }

    #[test]
    fn soft_watermark_clamps_to_hard() {
        let b = MemoryBudget::new(GovernorConfig {
            soft_spill_bytes: Some(500),
            hard_spill_bytes: Some(100),
            ..GovernorConfig::default()
        });
        b.charge_spill(100);
        assert_eq!(b.pressure(), Pressure::Hard);
    }

    #[test]
    fn snapshot_renders_one_json_object() {
        let b = MemoryBudget::new(config(64, 256));
        b.charge_spill(10);
        b.charge_retained(7);
        let line = b.snapshot().to_json_line("ingest");
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"metric\":\"memory_budget\""), "{line}");
        assert!(line.contains("\"value\":10"), "{line}");
        assert!(line.contains("\"retained\":7"), "{line}");
        assert!(line.contains("\"soft\":64"), "{line}");
        assert!(line.contains("\"hard\":256"), "{line}");
    }

    #[test]
    fn overload_error_reports_the_numbers() {
        let b = MemoryBudget::new(config(1, 2));
        b.charge_spill(5);
        let err = b.overload_error();
        assert_eq!(err.accounted_bytes, 5);
        assert_eq!(err.hard_watermark, 2);
        let text = err.to_string();
        assert!(text.contains('5') && text.contains('2'), "{text}");
    }

    #[test]
    fn disk_tier_relieves_pressure_and_respects_its_cap() {
        let b = MemoryBudget::new(GovernorConfig {
            soft_spill_bytes: Some(10),
            hard_spill_bytes: Some(20),
            disk_spill_bytes: Some(100),
            ..GovernorConfig::default()
        });
        b.charge_spill(20);
        assert_eq!(b.pressure(), Pressure::Hard);
        // Moving the bytes to disk relieves RAM pressure entirely.
        b.credit_spill(20);
        b.charge_disk(20);
        assert_eq!(b.pressure(), Pressure::Nominal);
        assert_eq!(b.disk_bytes(), 20);
        assert!(b.disk_can_accept(80));
        assert!(!b.disk_can_accept(81));
        b.credit_disk(5);
        assert_eq!(b.disk_bytes(), 15);
        assert_eq!(b.disk_high_water(), 20);
        let line = b.snapshot().to_json_line("x");
        assert!(line.contains("\"disk\":15"), "{line}");
        assert!(line.contains("\"disk_high_water\":20"), "{line}");
        assert!(line.contains("\"disk_cap\":100"), "{line}");
    }

    #[test]
    fn uncapped_disk_tier_accepts_everything_and_stays_out_of_json() {
        let b = MemoryBudget::unlimited();
        assert!(b.disk_can_accept(usize::MAX));
        let line = b.snapshot().to_json_line("x");
        assert!(!line.contains("disk"), "{line}");
    }

    #[test]
    fn pressure_ordering_is_usable_for_comparisons() {
        assert!(Pressure::Nominal < Pressure::Soft);
        assert!(Pressure::Soft < Pressure::Hard);
    }
}
