//! **Figure 11** — speedup of L-Para (ParaMount with the bounded lexical
//! subroutine) relative to the sequential lexical algorithm, for 1-8
//! threads, on `d-300`, `d-10K`, `hedc` and `elevator`.
//!
//! Reports measured wall speedup and the work-stealing makespan model
//! (see fig10 / `paramount_bench::schedule` for why both exist).

use paramount::{Algorithm, AtomicCountSink, ParaMount};
use paramount_bench::schedule::simulated_speedup;
use paramount_bench::timing::speedup;
use paramount_bench::{time, Table, THREAD_SWEEP};
use paramount_enumerate::{lexical, CountSink};
use paramount_poset::topo;
use paramount_workloads::table1;

const SERIES: [&str; 4] = ["d-300", "d-10K", "hedc", "elevator"];

fn main() {
    let scale = paramount_bench::scale_from_args();
    let mut metrics = paramount_bench::metrics_out::from_args();
    println!(
        "Figure 11: speedup of L-Para over the sequential lexical algorithm (scale {scale:?})"
    );
    println!(
        "cores on this host: {}\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );

    let mut table = Table::new(&[
        "Benchmark",
        "wall 1",
        "wall 2",
        "wall 4",
        "wall 8",
        "sim 1",
        "sim 2",
        "sim 4",
        "sim 8",
    ]);
    for input in table1::inputs(scale) {
        if !SERIES.contains(&input.name) {
            continue;
        }
        eprintln!("[fig11] {} ...", input.name);
        let poset = &input.poset;

        let order = topo::weight_order(poset);
        let intervals = paramount::partition(poset, &order);
        let mut work: Vec<u64> = Vec::with_capacity(intervals.len());
        for iv in &intervals {
            let mut sink = CountSink::default();
            lexical::enumerate_bounded(poset, &iv.gmin, &iv.gbnd, &mut sink).expect("stateless");
            work.push(sink.count);
        }

        let (_, base) = time(|| {
            let mut sink = CountSink::default();
            lexical::enumerate(poset, &mut sink).expect("stateless");
        });
        let mut cells = vec![input.name.to_string()];
        for &threads in &THREAD_SWEEP {
            let sink = AtomicCountSink::new();
            let (res, d) = time(|| {
                ParaMount::new(Algorithm::Lexical)
                    .with_threads(threads)
                    .enumerate(poset, &sink)
            });
            let stats = res.expect("stateless");
            paramount_bench::metrics_out::record(
                &mut metrics,
                &format!("fig11.{}.lexical.t{threads}", input.name),
                &stats.metrics,
            );
            cells.push(format!("{:.2}x", speedup(base, d)));
        }
        for &threads in &THREAD_SWEEP {
            cells.push(format!("{:.2}x", simulated_speedup(&work, threads)));
        }
        table.row(cells);
    }
    table.print();
    paramount_bench::metrics_out::flush(metrics);
    println!("\n(wall: measured vs sequential lexical; sim: work-stealing makespan model)");
}
