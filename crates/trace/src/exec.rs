//! Real-thread execution of [`Program`]s.
//!
//! This is the online counterpart of [`crate::sim`]: each program thread is
//! a real `std::thread`, locks are real mutexes, and every captured event
//! is reported to the recorder *before the thread proceeds* — exactly the
//! paper's injected-callback discipline ("a thread cannot execute the next
//! event until it has successfully inserted the current event into P",
//! §4.2). Streaming the recorder's output into an
//! `paramount::OnlineEngine` therefore yields a correct online
//! enumeration while the program genuinely runs in parallel.
//!
//! Ordering guarantees the recorder relies on:
//! * a release is recorded before the real unlock, an acquire after the
//!   real lock — so recorder lock-clock updates follow the real lock
//!   hand-off order;
//! * a fork is recorded before the child is unblocked;
//! * a join is recorded after the child has flushed its final segment.

use crate::observer::{OpObserver, RecorderObserver};
use crate::recorder::EventOut;
use crate::{Op, Program, Recorder, RecorderConfig};
use paramount_poset::Tid;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};

/// Runs `program` on real threads, reporting into a recorder that emits
/// into `out`. Returns `out` when every thread has finished.
///
/// `work_scale` multiplies `Op::Work` weights into spin iterations
/// (0 = skip work entirely; benchmarks use ~100 so "Base" timings are
/// non-trivial).
pub fn run_threads<E: EventOut + Send>(
    program: &Program,
    config: RecorderConfig,
    work_scale: u32,
    out: E,
) -> E {
    let recorder = Recorder::new(program.num_threads(), program.num_locks(), config, out);
    run_threads_observed(program, work_scale, RecorderObserver::new(recorder)).finish()
}

/// As [`run_threads`], but reporting to an arbitrary [`OpObserver`]
/// (serialized behind one mutex, like the paper's atomic callback block).
pub fn run_threads_observed<Ob: OpObserver + Send>(
    program: &Program,
    work_scale: u32,
    observer: Ob,
) -> Ob {
    let problems = program.validate();
    assert!(problems.is_empty(), "invalid program: {problems:?}");

    let n = program.num_threads();
    let recorder = Mutex::new(observer);
    // Real locks backing Op::Acquire/Release. Guards are managed manually
    // (raw lock API) because a guard would borrow the vector inside each
    // closure; raw locking keeps the model code simple and the unlock
    // explicitly paired by the program's own Release ops.
    let locks: Vec<parking_lot::RawMutex> = (0..program.num_locks())
        .map(|_| <parking_lot::RawMutex as parking_lot::lock_api::RawMutex>::INIT)
        .collect();
    // Start gates and completion flags for fork/join.
    let gates: Vec<(Mutex<bool>, Condvar)> = (0..n)
        .map(|_| (Mutex::new(false), Condvar::new()))
        .collect();
    let done: Vec<(Mutex<bool>, Condvar)> = (0..n)
        .map(|_| (Mutex::new(false), Condvar::new()))
        .collect();
    // Shared variables actually touched, so Work/access patterns resemble
    // a real program (atomics: the *model* races are what we detect; the
    // executor itself stays UB-free).
    let vars: Vec<AtomicU64> = (0..program.num_vars()).map(|_| AtomicU64::new(0)).collect();

    // Thread 0 starts unblocked.
    *gates[0].0.lock() = true;

    std::thread::scope(|scope| {
        for t in 0..n {
            let tid = Tid::from(t);
            let recorder = &recorder;
            let locks = &locks;
            let gates = &gates;
            let done = &done;
            let vars = &vars;
            scope.spawn(move || {
                // Wait for our fork (thread 0 passes immediately).
                {
                    let (flag, cond) = &gates[t];
                    let mut started = flag.lock();
                    while !*started {
                        cond.wait(&mut started);
                    }
                }
                for &op in program.script(tid) {
                    match op {
                        Op::Read(v) => {
                            recorder.lock().op(tid, op);
                            let _ = vars[v.index()].load(Ordering::Relaxed);
                        }
                        Op::Write(v) => {
                            recorder.lock().op(tid, op);
                            vars[v.index()].fetch_add(1, Ordering::Relaxed);
                        }
                        Op::Acquire(l) => {
                            use parking_lot::lock_api::RawMutex as _;
                            locks[l.index()].lock();
                            recorder.lock().op(tid, op);
                        }
                        Op::Release(l) => {
                            use parking_lot::lock_api::RawMutex as _;
                            recorder.lock().op(tid, op);
                            // SAFETY: the program validator guarantees
                            // acquire/release pairing per thread, so this
                            // thread holds the raw lock.
                            unsafe { locks[l.index()].unlock() };
                        }
                        Op::Fork(child) => {
                            recorder.lock().op(tid, op);
                            let (flag, cond) = &gates[child.index()];
                            *flag.lock() = true;
                            cond.notify_all();
                        }
                        Op::Join(child) => {
                            let (flag, cond) = &done[child.index()];
                            let mut finished = flag.lock();
                            while !*finished {
                                cond.wait(&mut finished);
                            }
                            drop(finished);
                            recorder.lock().op(tid, op);
                        }
                        Op::Work(w) => {
                            let iters = w as u64 * work_scale as u64;
                            let mut acc = 0u64;
                            for i in 0..iters {
                                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                            }
                            std::hint::black_box(acc);
                        }
                    }
                }
                // Flush the final segment *before* signaling completion so
                // a joiner's recorder.join sees our full clock.
                recorder.lock().thread_finished(tid);
                let (flag, cond) = &done[t];
                *flag.lock() = true;
                cond.notify_all();
            });
        }
    });

    recorder.into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::PosetCollector;
    use crate::{ProgramBuilder, TraceEvent};
    use paramount_poset::{EventId, Poset};

    fn run(program: &Program) -> Poset<TraceEvent> {
        run_threads(
            program,
            RecorderConfig::default(),
            0,
            PosetCollector::new(program.num_threads()),
        )
        .into_poset()
    }

    #[test]
    fn locked_writes_are_ordered() {
        let mut b = ProgramBuilder::new("locked", 3);
        let x = b.var("x");
        let l = b.lock("m");
        for t in 1..3 {
            b.critical(Tid::from(t as usize), l, [Op::Write(x), Op::Work(10)]);
        }
        b.fork_join_all();
        let p = b.build();
        for _ in 0..20 {
            let poset = run(&p);
            let a = EventId::new(Tid(1), 1);
            let c = EventId::new(Tid(2), 1);
            assert!(
                poset.happened_before(a, c) || poset.happened_before(c, a),
                "locked sections must be ordered"
            );
        }
    }

    #[test]
    fn unlocked_writes_are_concurrent_sometimes() {
        let mut b = ProgramBuilder::new("racy", 3);
        let x = b.var("x");
        b.push(Tid(1), Op::Write(x));
        b.push(Tid(2), Op::Write(x));
        b.fork_join_all();
        let p = b.build();
        let mut saw_concurrent = false;
        for _ in 0..50 {
            let poset = run(&p);
            if poset.concurrent(EventId::new(Tid(1), 1), EventId::new(Tid(2), 1)) {
                saw_concurrent = true;
                break;
            }
        }
        assert!(saw_concurrent, "unsynchronized writes never concurrent");
    }

    #[test]
    fn fork_join_edges_always_present() {
        let mut b = ProgramBuilder::new("fj", 2);
        let x = b.var("x");
        b.push(Tid(0), Op::Write(x));
        b.push(Tid(1), Op::Write(x));
        b.fork_join_all();
        b.push(Tid(0), Op::Read(x)); // after joins
        let p = b.build();
        for _ in 0..10 {
            let poset = run(&p);
            // Main's first write precedes... main writes before fork? The
            // builder prepends forks, so main's body is between fork and
            // join: its write is concurrent with the child's. But the
            // post-join read must be after the child's write.
            let child_write = EventId::new(Tid(1), 1);
            let main_last = EventId::new(Tid(0), poset.events_of(Tid(0)) as u32);
            assert!(poset.happened_before(child_write, main_last));
        }
    }

    #[test]
    fn event_counts_match_sim() {
        // The same program yields the same number of captured collections
        // whether simulated or really executed (segment structure is
        // schedule-independent when every thread's ops are fixed).
        let mut b = ProgramBuilder::new("counts", 3);
        let xs = b.vars("x", 4);
        let l = b.lock("m");
        for t in 1..3u32 {
            b.push(Tid(t), Op::Read(xs[0]));
            b.critical(Tid(t), l, [Op::Write(xs[t as usize])]);
            b.push(Tid(t), Op::Write(xs[3]));
        }
        b.fork_join_all();
        let p = b.build();
        let real = run(&p);
        let simulated = crate::sim::SimScheduler::new(1).run(&p);
        assert_eq!(real.num_events(), simulated.num_events());
        for t in 0..3 {
            assert_eq!(
                real.events_of(Tid::from(t as usize)),
                simulated.events_of(Tid::from(t as usize))
            );
        }
    }

    #[test]
    fn work_scale_zero_skips_spinning() {
        let mut b = ProgramBuilder::new("work", 1);
        b.push(Tid(0), Op::Work(1_000_000));
        let p = b.build();
        let start = std::time::Instant::now();
        run_threads(&p, RecorderConfig::default(), 0, PosetCollector::new(1));
        assert!(start.elapsed().as_millis() < 1000);
    }
}
