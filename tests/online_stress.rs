//! Stress tests for the online engine under real concurrency: many
//! producer threads, many enumeration workers, one CPU or many — the
//! exactly-once guarantee must hold regardless.

use paramount_suite::prelude::*;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Hammer the engine with concurrent producers that interleave
/// cross-thread dependencies, then verify the cut count against an
/// offline recount of whatever poset was actually observed.
#[test]
fn concurrent_producers_exactly_once() {
    for round in 0..3u64 {
        const PRODUCERS: usize = 4;
        const EVENTS_PER_PRODUCER: usize = 12;
        let counter = Arc::new(AtomicU64::new(0));
        let sink_counter = Arc::clone(&counter);
        let engine = Arc::new(OnlineEngine::new(
            PRODUCERS,
            OnlineEngineConfig {
                workers: 3,
                ..OnlineEngineConfig::default()
            },
            move |_: &Frontier, _: EventId| {
                sink_counter.fetch_add(1, Ordering::Relaxed);
                ControlFlow::Continue(())
            },
        ));
        let barrier = Arc::new(std::sync::Barrier::new(PRODUCERS));
        std::thread::scope(|scope| {
            for p in 0..PRODUCERS {
                let engine = Arc::clone(&engine);
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    for k in 0..EVENTS_PER_PRODUCER {
                        // Mix in dependencies on whatever a neighbor has
                        // published (racy reads of progress are fine: any
                        // already-published event is a valid dependency).
                        let deps: Vec<EventId> = if (k + p + round as usize) % 4 == 3 {
                            let other = Tid::from((p + 1) % PRODUCERS);
                            let published = engine.poset().events_of(other) as u32;
                            if published > 0 {
                                vec![EventId::new(other, published)]
                            } else {
                                vec![]
                            }
                        } else {
                            vec![]
                        };
                        engine.observe_after(Tid::from(p), &deps, ());
                    }
                });
            }
        });
        let engine = Arc::try_unwrap(engine).unwrap_or_else(|_| panic!("still shared"));
        let report = engine.finish();
        assert_eq!(report.events as usize, PRODUCERS * EVENTS_PER_PRODUCER);
        let expected = oracle::count_ideals(&report.poset);
        assert_eq!(report.cuts, expected, "round {round}");
        assert_eq!(counter.load(Ordering::Relaxed), expected, "round {round}");
        assert!(report.error.is_none());
    }
}

/// Budgeted online engine: if an interval exceeds the BFS budget the
/// engine reports it (and never silently drops cuts when it completes).
#[test]
fn online_budget_is_reported_not_swallowed() {
    // Wide poset: one event per thread across 12 threads, inserted from
    // one producer. With the BFS subroutine and a tiny budget, some
    // interval must blow the limit.
    let engine = OnlineEngine::new(
        12,
        OnlineEngineConfig {
            algorithm: Algorithm::Bfs,
            workers: 2,
            frontier_budget: Some(16),
        },
        move |_: &Frontier, _: EventId| ControlFlow::Continue(()),
    );
    for t in 0..12 {
        engine.observe_after(Tid::from(t as usize), &[], ());
    }
    let report = engine.finish();
    assert!(
        report.error.is_some(),
        "a 2^11-cut interval must exceed 16 frontiers"
    );

    // Same stream with the lexical subroutine: no budget, must complete
    // with the exact count 2^12.
    let engine = OnlineEngine::new(
        12,
        OnlineEngineConfig {
            algorithm: Algorithm::Lexical,
            workers: 2,
            frontier_budget: Some(16),
        },
        move |_: &Frontier, _: EventId| ControlFlow::Continue(()),
    );
    for t in 0..12 {
        engine.observe_after(Tid::from(t as usize), &[], ());
    }
    let report = engine.finish();
    assert!(report.error.is_none());
    assert_eq!(report.cuts, 1 << 12);
}

/// Interleaving insertion with enumeration must never deadlock even when
/// the sink itself is slow (workers busy while producers insert).
#[test]
fn slow_sink_does_not_deadlock() {
    let engine = OnlineEngine::new(
        3,
        OnlineEngineConfig {
            workers: 1,
            ..OnlineEngineConfig::default()
        },
        move |_: &Frontier, _: EventId| {
            std::thread::yield_now();
            ControlFlow::Continue(())
        },
    );
    for k in 0..30 {
        engine.observe_after(Tid(k % 3), &[], ());
    }
    let report = engine.finish();
    assert_eq!(report.events, 30);
    assert_eq!(report.cuts, 11 * 11 * 11);
}

/// Owner attribution: every visited cut's owner event must be on the
/// cut's frontier of its own thread (the §predicate contract).
#[test]
fn owner_is_frontier_event_of_its_thread() {
    let violations = Arc::new(AtomicU64::new(0));
    let sink_violations = Arc::clone(&violations);
    let engine = OnlineEngine::new(
        3,
        OnlineEngineConfig::default(),
        move |cut: &Frontier, owner: EventId| {
            // Exception: the empty cut reports the first event as owner.
            if cut.total_events() > 0 && cut.get(owner.tid) != owner.index {
                sink_violations.fetch_add(1, Ordering::Relaxed);
            }
            ControlFlow::Continue(())
        },
    );
    let mut prev: Option<EventId> = None;
    for k in 0..18 {
        let deps: Vec<EventId> = prev.into_iter().filter(|_| k % 3 == 0).collect();
        prev = Some(engine.observe_after(Tid(k % 3), &deps, ()));
    }
    let report = engine.finish();
    assert!(report.cuts > 0);
    assert_eq!(violations.load(Ordering::Relaxed), 0);
}
