#!/usr/bin/env bash
# Protocol-compat smoke, driven entirely through the shipped binary:
# every (client proto) x (daemon proto cap) pairing must either land on
# the sequential `paramount count` or be refused cleanly — never
# corrupt, never hang.
#
#   v2 daemon  x  {--proto 1, --proto 2, --proto auto}  -> all equal count
#   v1 daemon  x  --proto 2                             -> clean refusal
#   v1 daemon  x  --proto auto                          -> same-socket
#                 fallback to text, equal count
#   v1-capped 2-shard fleet  x  auto --fleet client     -> equal count
#                 (mixed-version fleet: new router, old shards)
#
# The deterministic in-process version of the same matrix is pinned by
# `cargo test -p paramount-ingest --test daemon`.
set -euo pipefail

PM=${PM:-target/release/paramount}
PORT_V2=${PORT_V2:-7672}
PORT_V1=${PORT_V1:-7673}
PORT_FLEET=${PORT_FLEET:-7674}
DATA=$(mktemp -d)
SERVE_PID=""
FLEET_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  [ -n "$FLEET_PID" ] && kill "$FLEET_PID" 2>/dev/null || true
  rm -rf "$DATA"
}
trap cleanup EXIT

extract() { echo "$1" | sed -n 's/.* \([0-9]\+\) consistent global states.*/\1/p'; }

"$PM" gen banking > "$DATA/banking.trace"
WANT=$(extract "$("$PM" count "$DATA/banking.trace")")
test -n "$WANT"
echo "sequential count: $WANT cuts"

wait_listening() {
  for _ in $(seq 1 100); do
    grep -q "listening on" "$1" && return 0
    sleep 0.1
  done
  echo "daemon never came up:"; cat "$1"; return 1
}

# --- v2-capable daemon: all three client framings must agree. ---------
"$PM" serve --listen "127.0.0.1:$PORT_V2" --quiet > "$DATA/serve-v2.log" 2>&1 &
SERVE_PID=$!
wait_listening "$DATA/serve-v2.log"
for proto in 1 2 auto; do
  GOT=$("$PM" send "$DATA/banking.trace" --connect "127.0.0.1:$PORT_V2" \
    --proto "$proto" --label "compat-$proto")
  echo "proto=$proto: $GOT"
  test "$(extract "$GOT")" = "$WANT"
done
# Binary sessions must not have tripped the decoder.
"$PM" stats --connect "127.0.0.1:$PORT_V2" \
  | grep -q '"metric":"decode_errors","type":"counter","value":0'
"$PM" shutdown --connect "127.0.0.1:$PORT_V2"
wait "$SERVE_PID"
SERVE_PID=""

# --- v1-capped daemon: pinned v2 refused, auto falls back. ------------
"$PM" serve --listen "127.0.0.1:$PORT_V1" --quiet --proto-max 1 \
  > "$DATA/serve-v1.log" 2>&1 &
SERVE_PID=$!
wait_listening "$DATA/serve-v1.log"
if "$PM" send "$DATA/banking.trace" --connect "127.0.0.1:$PORT_V1" \
    --proto 2 --retries 0 > "$DATA/v2-refused.out" 2>&1; then
  echo "pinned --proto 2 client must be refused by a --proto-max 1 daemon"
  cat "$DATA/v2-refused.out"
  exit 1
fi
echo "pinned v2 vs v1 daemon: refused cleanly"
GOT=$("$PM" send "$DATA/banking.trace" --connect "127.0.0.1:$PORT_V1" \
  --proto auto --label compat-fallback)
echo "auto vs v1 daemon: $GOT"
test "$(extract "$GOT")" = "$WANT"
"$PM" shutdown --connect "127.0.0.1:$PORT_V1"
wait "$SERVE_PID"
SERVE_PID=""

# --- mixed-version fleet: v2 router fronting v1-capped shards. --------
"$PM" fleet --listen "127.0.0.1:$PORT_FLEET" --shards 2 \
  --data-dir "$DATA/root" --proto-max 1 > "$DATA/fleet.log" 2>&1 &
FLEET_PID=$!
for _ in $(seq 1 100); do
  grep -q "fleet listening on" "$DATA/fleet.log" && break
  sleep 0.1
done
grep "listening on" "$DATA/fleet.log"
GOT=$("$PM" send "$DATA/banking.trace" --connect "127.0.0.1:$PORT_FLEET" \
  --fleet --retries 5 --backoff-ms 200 --label compat-mixed-fleet)
echo "auto vs v1-capped fleet: $GOT"
test "$(extract "$GOT")" = "$WANT"
"$PM" shutdown --connect "127.0.0.1:$PORT_FLEET"
wait "$FLEET_PID" || true
FLEET_PID=""

echo "protocol compat smoke: OK"
