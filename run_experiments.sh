#!/usr/bin/env bash
# Regenerates every table and figure of the paper into bench_results/.
#
#   ./run_experiments.sh           # Default scale (minutes)
#   ./run_experiments.sh --smoke   # quick pass (seconds–minute)
#   ./run_experiments.sh --full    # paper-exact sizes (hours)
set -euo pipefail
cd "$(dirname "$0")"

SCALE="${1:-}"
OUT=bench_results
mkdir -p "$OUT"

echo "building (release)..."
cargo build --release -p paramount-bench --bins

for target in table1 fig10 fig11 fig12 table2 table3; do
    echo "== $target $SCALE"
    cargo run --release -q -p paramount-bench --bin "$target" -- $SCALE \
        | tee "$OUT/$target.txt"
done

echo
echo "results written to $OUT/"
