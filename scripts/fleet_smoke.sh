#!/usr/bin/env bash
# Fleet failover smoke, driven entirely through the shipped binary.
# Three scenarios, each against a fresh fleet:
#
#   1. kill -9:    SIGKILL the shard hosting the session mid-send; the
#                  router health-checks it down, migrates the store, and
#                  the retrying --fleet client finishes on the survivor
#                  with counts equal to `paramount count`.
#   2. partition:  SIGSTOP the home shard (alive but unresponsive — the
#                  case probe evidence alone cannot distinguish from a
#                  crash). The router's lease lapses, the shard is
#                  declared fenced, its session migrates; on SIGCONT the
#                  shard self-fences, the stale client is refused and
#                  resumes on the survivor, and the shard rejoins with a
#                  fresh epoch.
#   3. router:     kill -9 the router mid-send with --router-data-dir
#                  set, restart it from its durable manifest, and
#                  require zero spurious migrations — the restarted
#                  router must not re-home a live session.
#
# (If a kill wins the race with a short trace the send just completes
# before the fault lands — count equality holds either way; the
# deterministic mid-stream cases are pinned by crates/cli/tests/fleet.rs
# and the in-process chaos suite.)
set -euo pipefail

PM=${PM:-target/release/paramount}
PORT=${PORT:-7669}
DATA=$(mktemp -d)
FLEET_PID=""
SHARD_PIDS=""
cleanup() {
  [ -n "$FLEET_PID" ] && kill "$FLEET_PID" 2>/dev/null || true
  for pid in $SHARD_PIDS; do kill -9 "$pid" 2>/dev/null || true; done
  rm -rf "$DATA"
}
trap cleanup EXIT

extract() { echo "$1" | sed -n 's/.* \([0-9]\+\) consistent global states.*/\1/p'; }
# stat_value FILE METRIC -> value of the first matching JSON stats line.
stat_value() { sed -n 's/.*"metric":"'"$2"'".*"value":\([0-9]*\).*/\1/p' "$1" | head -1; }
# wait_stat PORT METRIC MIN: poll the router's STATS until counter >= MIN.
wait_stat() {
  for _ in $(seq 1 150); do
    "$PM" stats --connect "127.0.0.1:$1" > "$DATA/poll.out" 2>/dev/null || true
    v=$(stat_value "$DATA/poll.out" "$2")
    [ -n "$v" ] && [ "$v" -ge "$3" ] && return 0
    sleep 0.2
  done
  echo "timeout waiting for $2 >= $3 on port $1"
  cat "$DATA/poll.out"
  return 1
}
# home_shard ROOT: shard index owning the first live session directory.
home_shard() {
  (ls -d "$1"/shard-*/session-* 2>/dev/null || true) |
    head -1 | sed -n 's/.*shard-\([0-9]*\)\/session.*/\1/p'
}

"$PM" gen banking > "$DATA/banking.trace"

# The paper's `bank` shape at 9^8 = 43M cuts: 8 tellers, 4 rounds each,
# read/write segments split by a private pace lock (no cross edges).
# FINISH enumerates for seconds, which keeps the session verifiably
# live while we partition its shard or restart the router under it.
{
  echo "threads 9"
  echo "0 write balance"
  for t in 1 2 3 4 5 6 7 8; do echo "0 fork $t"; done
  for t in 1 2 3 4 5 6 7 8; do
    for _ in 1 2 3 4; do
      printf '%s read balance\n%s acquire pace%s\n%s release pace%s\n' "$t" "$t" "$t" "$t" "$t"
      printf '%s write balance\n%s acquire pace%s\n%s release pace%s\n' "$t" "$t" "$t" "$t" "$t"
    done
  done
  for t in 1 2 3 4 5 6 7 8; do echo "0 join $t"; done
} > "$DATA/wide.trace"

# ---------------------------------------------------------------- 1. kill -9
LOG="$DATA/fleet.log"
"$PM" fleet --listen "127.0.0.1:$PORT" --shards 3 --data-dir "$DATA/root" \
  --probe-interval-ms 100 --probe-deadline-ms 500 \
  --suspect-after 1 --down-after 2 \
  --checkpoint-events 8 --fsync always > "$LOG" 2>&1 &
FLEET_PID=$!
for _ in $(seq 1 100); do
  grep -q "fleet listening on" "$LOG" && break
  sleep 0.1
done
grep "listening on" "$LOG"

"$PM" send "$DATA/banking.trace" --connect "127.0.0.1:$PORT" --fleet \
  --retries 10 --backoff-ms 200 --checkpoint-every 4 \
  > "$DATA/send.out" 2>&1 &
SEND=$!
sleep 0.3

# Kill the shard that actually owns the in-flight session: its durable
# store lives under that shard's subroot. Falls back to shard 0 if the
# send already finished (no session directory left).
HOME_SHARD=$(home_shard "$DATA/root")
HOME_SHARD=${HOME_SHARD:-0}
VICTIM=$(sed -n "s/^shard $HOME_SHARD pid \([0-9]*\) .*/\1/p" "$LOG")
echo "SIGKILLing shard $HOME_SHARD (pid $VICTIM)"
kill -9 "$VICTIM" || true

wait "$SEND"
SENT=$(cat "$DATA/send.out")
COUNTED=$("$PM" count "$DATA/banking.trace")
echo "send:  $SENT"
echo "count: $COUNTED"
test -n "$(extract "$SENT")"
test "$(extract "$SENT")" = "$(extract "$COUNTED")"

# The router's STATS endpoint must answer like a daemon's, with fleet
# counters and one shard_state line per shard.
"$PM" stats --connect "127.0.0.1:$PORT" | tee "$DATA/stats.out"
grep -q '"metric":"shard_state"' "$DATA/stats.out"
grep -q '"metric":"sessions_routed"' "$DATA/stats.out"

"$PM" shutdown --connect "127.0.0.1:$PORT"
wait "$FLEET_PID"
FLEET_PID=""
echo "kill -9 scenario OK"

# -------------------------------------------------- 2. partition (SIGSTOP)
PORT_P=$((PORT + 1))
LOGP="$DATA/fleet-p.log"
"$PM" fleet --listen "127.0.0.1:$PORT_P" --shards 3 --data-dir "$DATA/root-p" \
  --probe-interval-ms 100 --probe-deadline-ms 300 \
  --suspect-after 1 --down-after 2 --lease-ttl-ms 600 \
  --checkpoint-events 8 --fsync always > "$LOGP" 2>&1 &
FLEET_PID=$!
for _ in $(seq 1 100); do
  grep -q "fleet listening on" "$LOGP" && break
  sleep 0.1
done

"$PM" send "$DATA/wide.trace" --connect "127.0.0.1:$PORT_P" --fleet \
  --retries 10 --backoff-ms 200 --checkpoint-every 4 \
  > "$DATA/send-p.out" 2>&1 &
SEND=$!
sleep 0.3

HOME_SHARD=$(home_shard "$DATA/root-p")
SESSION_LIVE=1
if [ -z "$HOME_SHARD" ]; then
  # The send outran us (no live session left to strand); the partition /
  # fence / rejoin cycle is still asserted, migration can't be.
  SESSION_LIVE=0
  HOME_SHARD=0
fi
VICTIM=$(sed -n "s/^shard $HOME_SHARD pid \([0-9]*\) .*/\1/p" "$LOGP")
echo "SIGSTOPping shard $HOME_SHARD (pid $VICTIM) — partition, not crash"
kill -STOP "$VICTIM"

# The router cannot tell a frozen shard from a dead one — it must wait
# out the lease and fence before migrating.
wait_stat "$PORT_P" shards_fenced 1
wait_stat "$PORT_P" lease_expiries 1
if [ "$SESSION_LIVE" = 1 ]; then
  wait_stat "$PORT_P" sessions_migrated 1
fi

echo "SIGCONTing shard $HOME_SHARD — it must self-fence, not resume writing"
kill -CONT "$VICTIM"

# The thawed shard sees its lease long lapsed, refuses the stale client
# (which re-routes to the survivor), answers probes fenced=1, and is
# re-admitted under a fresh epoch.
wait_stat "$PORT_P" shards_rejoined 1

wait "$SEND"
SENT=$(cat "$DATA/send-p.out")
COUNTED=$("$PM" count "$DATA/wide.trace")
echo "send:  $SENT"
echo "count: $COUNTED"
test -n "$(extract "$SENT")"
test "$(extract "$SENT")" = "$(extract "$COUNTED")"

# The rejoined fleet must take new sessions again, including on the
# thawed shard's fresh epoch.
SENT2=$("$PM" send "$DATA/banking.trace" --connect "127.0.0.1:$PORT_P" --fleet \
  --retries 10 --backoff-ms 200)
test "$(extract "$SENT2")" = "$(extract "$("$PM" count "$DATA/banking.trace")")"

"$PM" stats --connect "127.0.0.1:$PORT_P" | tee "$DATA/stats-p.out"
grep -q '"metric":"fencing_epoch"' "$DATA/stats-p.out"

"$PM" shutdown --connect "127.0.0.1:$PORT_P"
wait "$FLEET_PID"
FLEET_PID=""
echo "partition scenario OK"

# ------------------------------------------- 3. router kill -9 + restart
PORT_R=$((PORT + 2))
LOGR="$DATA/fleet-r.log"
# Lease TTL far above the restart gap: shards must ride out the router
# outage without fencing, and the live session must keep streaming.
"$PM" fleet --listen "127.0.0.1:$PORT_R" --shards 3 --data-dir "$DATA/root-r" \
  --probe-interval-ms 100 --probe-deadline-ms 500 \
  --suspect-after 2 --down-after 4 --lease-ttl-ms 15000 \
  --router-data-dir "$DATA/router-r" \
  --checkpoint-events 8 --fsync always > "$LOGR" 2>&1 &
FLEET_PID=$!
for _ in $(seq 1 100); do
  grep -q "fleet listening on" "$LOGR" && break
  sleep 0.1
done
# The spawned shards outlive the router they came from; remember their
# pids (cleanup) and addresses (the restarted router attaches to them).
SHARD_PIDS=$(sed -n 's/^shard [0-9]* pid \([0-9]*\) .*/\1/p' "$LOGR" | tr '\n' ' ')
sed -n 's/^shard \([0-9]*\) pid [0-9]* listening on tcp \(.*\)$/shard \1 \2/p' \
  "$LOGR" > "$DATA/manifest-r"
cat "$DATA/manifest-r"

wait_stat "$PORT_R" leases_granted 3
wait_stat "$PORT_R" fencing_epoch 1
EPOCH_BEFORE=$(stat_value "$DATA/poll.out" fencing_epoch)

"$PM" send "$DATA/wide.trace" --connect "127.0.0.1:$PORT_R" --fleet \
  --retries 10 --backoff-ms 200 --checkpoint-every 4 \
  > "$DATA/send-r.out" 2>&1 &
SEND=$!
sleep 0.3

echo "SIGKILLing the router (pid $FLEET_PID) mid-send"
kill -9 "$FLEET_PID"
FLEET_PID=""
sleep 0.2

"$PM" fleet --listen "127.0.0.1:$PORT_R" --manifest "$DATA/manifest-r" \
  --data-dir "$DATA/root-r" --probe-interval-ms 100 --probe-deadline-ms 500 \
  --suspect-after 2 --down-after 4 --lease-ttl-ms 15000 \
  --router-data-dir "$DATA/router-r" > "$LOGR.2" 2>&1 &
FLEET_PID=$!
for _ in $(seq 1 100); do
  grep -q "fleet listening on" "$LOGR.2" && break
  sleep 0.1
done

# The event path never crossed the router, so the send must complete
# with exact counts even though the router died under it.
wait "$SEND"
SENT=$(cat "$DATA/send-r.out")
COUNTED=$("$PM" count "$DATA/wide.trace")
echo "send:  $SENT"
echo "count: $COUNTED"
test -n "$(extract "$SENT")"
test "$(extract "$SENT")" = "$(extract "$COUNTED")"

# The restarted router replayed its manifest: epochs resume at (or
# above) the pre-crash high-water mark, every shard is re-leased, and —
# the point of the durable manifest — nothing is spuriously migrated.
wait_stat "$PORT_R" leases_granted 3
wait_stat "$PORT_R" fencing_epoch "$EPOCH_BEFORE"
sleep 1
"$PM" stats --connect "127.0.0.1:$PORT_R" | tee "$DATA/stats-r.out"
MIGRATED=$(stat_value "$DATA/stats-r.out" sessions_migrated)
test "$MIGRATED" = "0"

"$PM" shutdown --connect "127.0.0.1:$PORT_R"
wait "$FLEET_PID"
FLEET_PID=""
echo "router restart scenario OK"

echo "fleet smoke OK"
