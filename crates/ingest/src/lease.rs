//! Fencing-epoch leases: the split-brain guard for fleet mode.
//!
//! Probe evidence alone cannot distinguish a crashed shard from a
//! partitioned-but-alive one, and re-homing a *live* shard's sessions
//! would put two daemons behind one session — breaking the Theorem-3
//! exactness contract (the cut count is a pure function of the accepted
//! event prefix, so the prefix must have exactly one owner). The lease
//! protocol closes that hole with time, not connectivity:
//!
//! - The router grants each shard a time-bounded lease carrying a
//!   monotonically increasing **epoch** (a `LEASE` frame piggybacked on
//!   the STATS probe). Renewals re-offer the same epoch; re-admission
//!   after a fence always offers a strictly higher one.
//! - A shard that cannot renew before the TTL elapses **self-fences**:
//!   it stops admitting `HELLO`/`RESUME`/`EVENT`, finalizes live
//!   sessions to degraded reports, and refuses durable appends. Because
//!   the shard's deadline starts at grant *receipt* and the router waits
//!   a full TTL plus margin after the last acknowledged grant before
//!   re-homing anything, the shard is provably fenced before a survivor
//!   replays its sessions.
//! - Epochs never regress. A fenced shard re-joins only by accepting a
//!   strictly higher epoch, and durable stores stamp their owner's epoch
//!   into META so stale-epoch handles are refused at the WAL layer (see
//!   [`crate::persist`]).
//!
//! A daemon that never receives a `LEASE` (standalone mode) has no
//! deadline and never fences — the protocol is pay-for-what-you-use.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// What a shard tells the router after applying a `LEASE` grant: the
/// epoch it now holds (which may exceed the offer if the shard has seen
/// a later router incarnation) and whether it is currently fenced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeaseAck {
    /// The shard's current fencing epoch after applying the grant.
    pub epoch: u64,
    /// Whether the shard is fenced (true means the offer did not
    /// re-admit it — only a strictly higher epoch clears a fence).
    pub fenced: bool,
}

/// Shared fencing state for one daemon: current epoch, fence flag, and
/// the lease deadline. One `Arc<FenceGuard>` is threaded through the
/// accept loop, every connection, and every durable store so all entry
/// points observe a fence the moment it happens.
///
/// Reads are lock-free atomics (the guard sits on the per-event append
/// path); compound transitions serialize on an internal mutex.
#[derive(Debug)]
pub struct FenceGuard {
    /// Current fencing epoch; 0 until the first grant.
    epoch: AtomicU64,
    /// Set when the lease expired (or was force-fenced) and not yet
    /// cleared by a higher-epoch grant.
    fenced: AtomicBool,
    /// Lease deadline in milliseconds since `origin`; 0 means no lease
    /// was ever granted, and such a guard never self-fences.
    deadline_ms: AtomicU64,
    /// Serializes grant/expiry transitions so epoch, fence flag, and
    /// deadline move together.
    lock: Mutex<()>,
    origin: Instant,
}

impl Default for FenceGuard {
    fn default() -> Self {
        Self::new()
    }
}

impl FenceGuard {
    /// A fresh guard: epoch 0, unfenced, no deadline.
    pub fn new() -> Self {
        FenceGuard {
            epoch: AtomicU64::new(0),
            fenced: AtomicBool::new(false),
            deadline_ms: AtomicU64::new(0),
            lock: Mutex::new(()),
            origin: Instant::now(),
        }
    }

    fn now_ms(&self) -> u64 {
        self.origin.elapsed().as_millis() as u64
    }

    /// The epoch this daemon currently holds (0 = never leased).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Whether the daemon is fenced right now. This does not check the
    /// deadline — call [`FenceGuard::check_expiry`] on a clock tick to
    /// convert an elapsed deadline into a fence.
    pub fn is_fenced(&self) -> bool {
        self.fenced.load(Ordering::Acquire)
    }

    /// Applies a lease grant and returns the resulting ack.
    ///
    /// - Offered epoch **above** the current one: adopt it, clear any
    ///   fence (this is the re-admission handshake), restart the TTL.
    /// - Offered epoch **equal** to the current one: a renewal — restart
    ///   the TTL, unless fenced (a fence is only cleared by a *higher*
    ///   epoch, so a delayed renewal from before the expiry cannot
    ///   resurrect a fenced shard).
    /// - Offered epoch **below** the current one: ignored; epochs never
    ///   regress.
    pub fn grant(&self, epoch: u64, ttl: Duration) -> LeaseAck {
        self.grant_at(self.now_ms(), epoch, ttl.as_millis() as u64)
    }

    /// Clock-injected variant of [`FenceGuard::grant`] for deterministic
    /// tests; `now_ms` is milliseconds on the guard's own timeline.
    pub fn grant_at(&self, now_ms: u64, epoch: u64, ttl_ms: u64) -> LeaseAck {
        let _guard = self.lock.lock().unwrap();
        let current = self.epoch.load(Ordering::Acquire);
        if epoch > current {
            self.epoch.store(epoch, Ordering::Release);
            self.fenced.store(false, Ordering::Release);
            self.deadline_ms
                .store(now_ms.saturating_add(ttl_ms).max(1), Ordering::Release);
        } else if epoch == current && !self.fenced.load(Ordering::Acquire) && current != 0 {
            self.deadline_ms
                .store(now_ms.saturating_add(ttl_ms).max(1), Ordering::Release);
        }
        LeaseAck {
            epoch: self.epoch.load(Ordering::Acquire),
            fenced: self.fenced.load(Ordering::Acquire),
        }
    }

    /// Fences the daemon if its lease deadline has passed. Returns true
    /// exactly once per fence — the tick that crossed the deadline —
    /// so callers can run fence-entry work (draining parked sessions)
    /// exactly once. A guard that never held a lease never fences.
    pub fn check_expiry(&self) -> bool {
        self.check_expiry_at(self.now_ms())
    }

    /// Clock-injected variant of [`FenceGuard::check_expiry`].
    pub fn check_expiry_at(&self, now_ms: u64) -> bool {
        let deadline = self.deadline_ms.load(Ordering::Acquire);
        if deadline == 0 || now_ms < deadline || self.fenced.load(Ordering::Acquire) {
            return false;
        }
        let _guard = self.lock.lock().unwrap();
        if self.fenced.load(Ordering::Acquire) {
            return false;
        }
        self.fenced.store(true, Ordering::Release);
        true
    }

    /// Forces a fence immediately, regardless of the deadline. Used by
    /// tests and by operators shutting a shard out of the fleet.
    pub fn fence(&self) {
        let _guard = self.lock.lock().unwrap();
        self.fenced.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_renew_expire_fence_rejoin() {
        let g = FenceGuard::new();
        assert_eq!(g.epoch(), 0);
        assert!(!g.is_fenced());
        // A guard with no lease never fences, however late the clock.
        assert!(!g.check_expiry_at(1_000_000));

        // First grant.
        let ack = g.grant_at(0, 3, 100);
        assert_eq!(
            ack,
            LeaseAck {
                epoch: 3,
                fenced: false
            }
        );
        // Renewal at the same epoch pushes the deadline.
        let ack = g.grant_at(90, 3, 100);
        assert_eq!(
            ack,
            LeaseAck {
                epoch: 3,
                fenced: false
            }
        );
        assert!(!g.check_expiry_at(120));

        // Deadline passes: exactly one tick reports the fence.
        assert!(g.check_expiry_at(191));
        assert!(!g.check_expiry_at(192));
        assert!(g.is_fenced());

        // A late renewal at the fenced epoch cannot resurrect the shard.
        let ack = g.grant_at(200, 3, 100);
        assert_eq!(
            ack,
            LeaseAck {
                epoch: 3,
                fenced: true
            }
        );
        assert!(g.is_fenced());

        // Re-admission: a strictly higher epoch clears the fence.
        let ack = g.grant_at(210, 4, 100);
        assert_eq!(
            ack,
            LeaseAck {
                epoch: 4,
                fenced: false
            }
        );
        assert!(!g.is_fenced());
        assert!(!g.check_expiry_at(300));
        assert!(g.check_expiry_at(311));
    }

    #[test]
    fn epoch_never_regresses() {
        let g = FenceGuard::new();
        g.grant_at(0, 7, 100);
        let ack = g.grant_at(1, 2, 100);
        assert_eq!(ack.epoch, 7);
        assert_eq!(g.epoch(), 7);
        // A stale lower offer also fails to renew: the deadline set at
        // t=0 still stands, so the lease expires at 100.
        assert!(g.check_expiry_at(101));
    }

    #[test]
    fn force_fence_holds_until_higher_epoch() {
        let g = FenceGuard::new();
        g.grant_at(0, 1, 1000);
        g.fence();
        assert!(g.is_fenced());
        assert_eq!(
            g.grant_at(1, 1, 1000),
            LeaseAck {
                epoch: 1,
                fenced: true
            }
        );
        assert_eq!(
            g.grant_at(2, 2, 1000),
            LeaseAck {
                epoch: 2,
                fenced: false
            }
        );
    }
}
