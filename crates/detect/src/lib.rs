#![warn(missing_docs)]
//! Predicate detection (§4 of the paper): the online-and-parallel detector
//! built on ParaMount, and the offline BFS detector standing in for RV
//! runtime.
//!
//! The detection pipeline mirrors Figure 7:
//!
//! ```text
//! program (paramount-trace) ──► recorder (HB rules, §4.1/§4.4)
//!        │ events + vector clocks, one at a time
//!        ▼
//! online ParaMount (paramount core) ──► bounded enumeration of I(e)
//!        │ consistent cuts, each exactly once, with their owner event e
//!        ▼
//! predicate (this crate) ──► detections (racy variables, witness cuts)
//! ```
//!
//! * [`EventView`] — payload access over either an immutable
//!   `Poset<TraceEvent>` or the growing `OnlinePoset<TraceEvent>`.
//! * [`RacePredicate`] — Algorithms 5/6: the new event's accesses against
//!   the other frontier events' collections, plus an explicit concurrency
//!   check and the §5.2 initialization-write refinement.
//! * [`ConjunctivePredicate`] — conjunctions of per-thread local
//!   predicates (the Garg–Waldecker class), as a second predicate family
//!   demonstrating that the detector makes no assumption about the
//!   predicate.
//! * [`MutexViolationPredicate`] — "two threads inside the same critical
//!   section at once" over sync-captured traces, a third family.
//! * [`modality`] — the Cooper–Marzullo `Possibly(φ)` / `Definitely(φ)`
//!   detection modalities.
//! * [`linear`] — the Garg–Waldecker polynomial-time algorithm for
//!   *linear* predicates (the paper's reference \[13\]): the special-case
//!   escape hatch that avoids enumeration when the predicate allows it.
//! * [`ctl`] — branching-time operators (`EF`/`AG`/`EG`/`AF`) over the
//!   lattice of global states (references \[24\]/\[27\]).
//! * [`online`] — the online-and-parallel detector ("ParaMount" column of
//!   Table 2), driven by the deterministic simulator or by real threads.
//! * [`offline`] — the 2-pass offline BFS detector (the "RV runtime"
//!   column): log the whole execution, then enumerate the full lattice
//!   with Cooper–Marzullo BFS; exponential intermediate storage, with the
//!   budget knob that reproduces the paper's `o.o.m.` rows.

mod conjunctive;
pub mod ctl;
pub mod linear;
pub mod modality;
pub mod mutex;
pub mod offline;
pub mod online;
mod race;
mod report;
mod view;

pub use conjunctive::ConjunctivePredicate;
pub use linear::{
    find_first_satisfying, ConjunctiveLinear, LinearOutcome, LinearPredicate, LocalPredicate,
};
pub use modality::{definitely, possibly};
pub use mutex::{MutexViolation, MutexViolationPredicate};
pub use race::{RaceDetection, RacePredicate};
pub use report::{DetectorOutcome, RaceDetectionReport};
pub use view::EventView;

pub use paramount_enumerate::Algorithm;
pub use paramount_trace::{Program, TraceEvent, VarId};

/// Shared configuration for the detectors.
#[derive(Clone, Copy, Debug)]
pub struct DetectorConfig {
    /// Enumeration worker threads (online detector).
    pub workers: usize,
    /// Bounded subroutine (the paper's online detector uses lexical).
    pub algorithm: Algorithm,
    /// Apply the §5.2 refinement: initialization writes never race.
    pub ignore_init_races: bool,
    /// Frontier budget for stateful enumerators (models the JVM heap cap;
    /// exceeded ⇒ the detector reports out-of-memory instead of crashing).
    pub frontier_budget: Option<usize>,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            workers: 4,
            algorithm: Algorithm::Lexical,
            ignore_init_races: true,
            frontier_budget: None,
        }
    }
}
