//! Property tests for the capture pipeline: random programs × random
//! schedules must always yield well-formed posets.

use paramount_poset::{CutSpace, EventId, Tid};
use paramount_trace::gen::{random_program, RandomProgramConfig};
use paramount_trace::sim::SimScheduler;
use paramount_trace::{Op, TraceEvent};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = (RandomProgramConfig, u64, u64)> {
    (
        2usize..5,
        3usize..9,
        1usize..5,
        0usize..3,
        0.0f64..1.0,
        0.0f64..1.0,
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(
            |(threads, steps, vars, locks, lock_p, write_p, gen_seed, sched_seed)| {
                (
                    RandomProgramConfig {
                        threads,
                        steps_per_thread: steps,
                        vars,
                        locks,
                        lock_probability: lock_p,
                        write_probability: write_p,
                    },
                    gen_seed,
                    sched_seed,
                )
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every captured event's clock indexes it correctly and clocks are
    /// monotone along each thread.
    #[test]
    fn clocks_are_well_formed((config, gen_seed, sched_seed) in arb_config()) {
        let program = random_program("fuzz", config, gen_seed);
        let poset = SimScheduler::new(sched_seed).run(&program);
        for t in 0..CutSpace::num_threads(&poset) {
            let tid = Tid::from(t);
            let mut previous: Option<paramount_vclock::VectorClock> = None;
            for (k, event) in poset.thread_events(tid).enumerate() {
                prop_assert_eq!(event.vc.get(tid), k as u32 + 1, "own component");
                if let Some(prev) = &previous {
                    prop_assert!(prev.le(&event.vc), "clock regression");
                }
                previous = Some(event.vc.clone());
            }
        }
    }

    /// Event collections never hold two accesses to the same variable,
    /// and captured events never exceed executed accesses.
    #[test]
    fn collections_are_merged((config, gen_seed, sched_seed) in arb_config()) {
        let program = random_program("fuzz", config, gen_seed);
        let poset = SimScheduler::new(sched_seed).run(&program);
        let mut captured_accesses = 0usize;
        for event in poset.events() {
            let TraceEvent::Accesses(collection) = &event.payload else {
                prop_assert!(false, "race capture emits only collections");
                continue;
            };
            prop_assert!(!collection.is_empty(), "empty collection emitted");
            let mut vars: Vec<_> = collection.accesses().iter().map(|a| a.var).collect();
            captured_accesses += vars.len();
            vars.sort_unstable();
            vars.dedup();
            prop_assert_eq!(vars.len(), collection.accesses().len(), "duplicate var");
        }
        let executed_accesses = (0..program.num_threads())
            .flat_map(|t| program.script(Tid::from(t)).iter())
            .filter(|op| matches!(op, Op::Read(_) | Op::Write(_)))
            .count();
        prop_assert!(captured_accesses <= executed_accesses);
    }

    /// Exactly one access per written variable carries the init flag, and
    /// it is a write.
    #[test]
    fn one_init_write_per_variable((config, gen_seed, sched_seed) in arb_config()) {
        let program = random_program("fuzz", config, gen_seed);
        let poset = SimScheduler::new(sched_seed).run(&program);
        let mut init_count = vec![0usize; program.num_vars()];
        let mut written = vec![false; program.num_vars()];
        for event in poset.events() {
            if let TraceEvent::Accesses(collection) = &event.payload {
                for access in collection.accesses() {
                    if access.is_write {
                        written[access.var.index()] = true;
                    }
                    if access.init {
                        prop_assert!(access.is_write, "init flag on a read");
                        init_count[access.var.index()] += 1;
                    }
                }
            }
        }
        for v in 0..program.num_vars() {
            if written[v] {
                prop_assert_eq!(init_count[v], 1, "var {} init writes", v);
            } else {
                prop_assert_eq!(init_count[v], 0);
            }
        }
    }

    /// Critical sections of the same lock are never concurrent: any two
    /// collections captured strictly inside them are causally ordered.
    #[test]
    fn same_lock_sections_are_ordered(
        threads in 2usize..4,
        sections in 1usize..4,
        sched_seed in any::<u64>(),
    ) {
        use paramount_trace::{ProgramBuilder};
        let mut b = ProgramBuilder::new("locked", threads + 1);
        let x = b.var("x");
        let l = b.lock("m");
        for t in 1..=threads {
            for _ in 0..sections {
                b.critical(Tid::from(t), l, [Op::Write(x), Op::Read(x)]);
            }
        }
        b.fork_join_all_with_init([Op::Write(x)]);
        let program = b.build();
        let poset = SimScheduler::new(sched_seed).run(&program);
        let ids: Vec<EventId> = poset
            .events()
            .map(|e| e.id)
            .filter(|id| id.tid != Tid(0))
            .collect();
        for &a in &ids {
            for &b in &ids {
                if a.tid != b.tid {
                    prop_assert!(!poset.concurrent(a, b), "{} || {}", a, b);
                }
            }
        }
    }

    /// The simulated and threaded executors capture the same number of
    /// events per thread for lock-free programs (segment structure is
    /// schedule-independent).
    #[test]
    fn sim_and_threads_agree_on_event_counts(
        (config, gen_seed, sched_seed) in arb_config()
    ) {
        let config = RandomProgramConfig { lock_probability: 0.0, locks: 0, ..config };
        let program = random_program("fuzz", config, gen_seed);
        let sim = SimScheduler::new(sched_seed).run(&program);
        let real = paramount_trace::exec::run_threads(
            &program,
            paramount_trace::RecorderConfig::default(),
            0,
            paramount_trace::PosetCollector::new(program.num_threads()),
        )
        .into_poset();
        for t in 0..program.num_threads() {
            let tid = Tid::from(t);
            prop_assert_eq!(
                CutSpace::events_of(&sim, tid),
                CutSpace::events_of(&real, tid)
            );
        }
    }
}
