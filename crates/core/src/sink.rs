//! Shared-state sinks for parallel enumeration.

use paramount_enumerate::CutSink;
use paramount_poset::{CutRef, EventId, Frontier};
use parking_lot::Mutex;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicU64, Ordering};

/// The `Sync` analog of [`CutSink`]: many interval workers feed one sink
/// concurrently, so `visit` takes `&self` and implementations synchronize
/// internally (or not at all, like the atomic counter).
///
/// As with [`CutSink`], the cut is a borrowed [`CutRef`] into the calling
/// worker's scratch frontier — valid only for the duration of the call;
/// retaining sinks copy with [`CutRef::to_frontier`].
///
/// Predicate evaluation in `paramount-detect` happens behind this trait:
/// the "sink" is the predicate, invoked once per consistent cut.
pub trait ParallelCutSink: Send + Sync {
    /// Called once per enumerated cut, from any worker thread.
    ///
    /// `owner` is the event whose interval the cut belongs to — the `e` of
    /// the paper's `predicate(P, G, e)`. Within `I(e)`, `e` is always the
    /// frontier event of its own thread (`Gmin(e)[t] = Gbnd(e)[t] =
    /// e.index` for `t = e.tid`), which is what lets race predicates check
    /// only the new event against the rest of the frontier. The empty cut
    /// reports the first event of `→p` as its owner, mirroring the paper's
    /// special case.
    ///
    /// `Break` requests a global early stop.
    fn visit(&self, cut: CutRef<'_>, owner: EventId) -> ControlFlow<()>;
}

/// Lock-free cut counter (`Relaxed` is enough: the total is only read
/// after the enumeration joins).
#[derive(Debug, Default)]
pub struct AtomicCountSink {
    count: AtomicU64,
}

impl AtomicCountSink {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cuts seen so far (exact once all workers have finished).
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

impl ParallelCutSink for AtomicCountSink {
    #[inline]
    fn visit(&self, _cut: CutRef<'_>, _owner: EventId) -> ControlFlow<()> {
        self.count.fetch_add(1, Ordering::Relaxed);
        ControlFlow::Continue(())
    }
}

/// Collects every cut behind a mutex — tests and small runs only (the lock
/// serializes workers; never benchmark through this).
#[derive(Debug, Default)]
pub struct ConcurrentCollectSink {
    cuts: Mutex<Vec<Frontier>>,
}

impl ConcurrentCollectSink {
    /// A fresh, empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes the collected cuts (unordered across workers).
    pub fn into_cuts(self) -> Vec<Frontier> {
        self.cuts.into_inner()
    }

    /// Takes the collected cuts out of a *shared* handle, leaving the
    /// collector empty. Teardown paths use this instead of
    /// `Arc::try_unwrap(..) + into_cuts()`, so a leaked clone of the
    /// handle cannot abort result extraction.
    pub fn take_cuts(&self) -> Vec<Frontier> {
        std::mem::take(&mut *self.cuts.lock())
    }

    /// Number of cuts collected so far.
    pub fn len(&self) -> usize {
        self.cuts.lock().len()
    }

    /// True when nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl ParallelCutSink for ConcurrentCollectSink {
    fn visit(&self, cut: CutRef<'_>, _owner: EventId) -> ControlFlow<()> {
        self.cuts.lock().push(cut.to_frontier());
        ControlFlow::Continue(())
    }
}

/// Closures (`Fn`, not `FnMut` — they run concurrently) are sinks.
impl<F: Fn(CutRef<'_>, EventId) -> ControlFlow<()> + Send + Sync> ParallelCutSink for F {
    #[inline]
    fn visit(&self, cut: CutRef<'_>, owner: EventId) -> ControlFlow<()> {
        self(cut, owner)
    }
}

/// Adapts a shared [`ParallelCutSink`] to the sequential [`CutSink`]
/// interface the bounded subroutines expect — the glue between one
/// worker's enumeration and the shared consumer.
pub struct SinkBridge<'a, K: ?Sized> {
    shared: &'a K,
    owner: EventId,
}

impl<'a, K: ParallelCutSink + ?Sized> SinkBridge<'a, K> {
    /// Bridges `shared` into a `CutSink` for the interval owned by `owner`.
    pub fn new(shared: &'a K, owner: EventId) -> Self {
        SinkBridge { shared, owner }
    }
}

impl<K: ParallelCutSink + ?Sized> CutSink for SinkBridge<'_, K> {
    #[inline]
    fn visit(&mut self, cut: CutRef<'_>) -> ControlFlow<()> {
        self.shared.visit(cut, self.owner)
    }
}

/// Wraps a sequential [`CutSink`], counting every delivery whose `visit`
/// *returned* into an external atomic. The counter survives a panic
/// unwinding out of the inner sink (the count is visible through the
/// `catch_unwind` boundary), which is what lets the engine know exactly
/// how many cuts of an interval the sink saw before a fault: a delivery
/// that panicked mid-visit is conservatively *not* counted.
pub struct MeteredSink<'a, S> {
    inner: S,
    emitted: &'a AtomicU64,
}

impl<'a, S: CutSink> MeteredSink<'a, S> {
    /// Meters `inner`, adding one to `emitted` per completed delivery.
    pub fn new(inner: S, emitted: &'a AtomicU64) -> Self {
        MeteredSink { inner, emitted }
    }
}

impl<S: CutSink> CutSink for MeteredSink<'_, S> {
    #[inline]
    fn visit(&mut self, cut: CutRef<'_>) -> ControlFlow<()> {
        let flow = self.inner.visit(cut);
        self.emitted.fetch_add(1, Ordering::Relaxed);
        flow
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paramount_poset::Tid;
    use std::sync::atomic::AtomicUsize;

    fn g(counts: &[u32]) -> Frontier {
        Frontier::from_slice(counts)
    }

    fn owner() -> EventId {
        EventId::new(Tid(0), 1)
    }

    #[test]
    fn atomic_count_from_many_threads() {
        let sink = AtomicCountSink::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        let _ = sink.visit(g(&[1, 2]).as_cut(), owner());
                    }
                });
            }
        });
        assert_eq!(sink.count(), 4000);
    }

    #[test]
    fn concurrent_collect_gathers_everything() {
        let sink = ConcurrentCollectSink::new();
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let sink = &sink;
                s.spawn(move || {
                    for k in 0..100 {
                        let _ = sink.visit(g(&[t, k]).as_cut(), owner());
                    }
                });
            }
        });
        assert_eq!(sink.len(), 400);
        assert!(!sink.is_empty());
        let cuts = sink.into_cuts();
        assert_eq!(cuts.len(), 400);
    }

    #[test]
    fn concurrent_collect_preserves_every_distinct_cut() {
        // Content integrity, not just a length check: every thread emits a
        // distinct set of frontiers and each one must come back intact —
        // no torn, duplicated, or lost pushes under contention.
        let sink = ConcurrentCollectSink::new();
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let sink = &sink;
                s.spawn(move || {
                    for k in 0..64 {
                        let _ = sink.visit(g(&[t + 1, k, t * 64 + k]).as_cut(), owner());
                    }
                });
            }
        });
        let mut cuts = sink.into_cuts();
        assert_eq!(cuts.len(), 8 * 64);
        cuts.sort_by_key(|c| c.get(Tid(2)));
        for (i, cut) in cuts.iter().enumerate() {
            let (t, k) = ((i / 64) as u32, (i % 64) as u32);
            assert_eq!(cut, &g(&[t + 1, k, t * 64 + k]), "cut {i} torn or lost");
        }
    }

    #[test]
    fn atomic_count_is_exact_through_concurrent_bridges() {
        // The real call path: each worker wraps the shared sink in its own
        // SinkBridge; the total must still be exact.
        let sink = AtomicCountSink::new();
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let sink = &sink;
                s.spawn(move || {
                    let mut bridge = SinkBridge::new(sink, EventId::new(Tid(t), 1));
                    for k in 0..500 {
                        let _ = bridge.visit(g(&[t, k]).as_cut());
                    }
                });
            }
        });
        assert_eq!(sink.count(), 8 * 500);
    }

    #[test]
    fn closure_sink_and_bridge() {
        let hits = AtomicUsize::new(0);
        let closure = |_: CutRef<'_>, _: EventId| {
            hits.fetch_add(1, Ordering::Relaxed);
            ControlFlow::Continue(())
        };
        let mut bridge = SinkBridge::new(&closure, owner());
        let _ = bridge.visit(g(&[0]).as_cut());
        let _ = bridge.visit(g(&[1]).as_cut());
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn break_propagates_through_bridge() {
        let closure = |_: CutRef<'_>, _: EventId| ControlFlow::Break(());
        let mut bridge = SinkBridge::new(&closure, owner());
        assert!(bridge.visit(g(&[0]).as_cut()).is_break());
    }

    #[test]
    fn take_cuts_reads_through_a_shared_handle() {
        let sink = std::sync::Arc::new(ConcurrentCollectSink::new());
        let _ = sink.visit(g(&[1, 0]).as_cut(), owner());
        let leaked = std::sync::Arc::clone(&sink); // a clone stays alive
        assert_eq!(sink.take_cuts().len(), 1);
        assert!(leaked.is_empty(), "take leaves the collector empty");
    }

    #[test]
    fn metered_sink_counts_only_completed_deliveries() {
        let emitted = AtomicU64::new(0);
        let mut seen = 0u32;
        let mut inner = |_: CutRef<'_>| {
            seen += 1;
            ControlFlow::Continue(())
        };
        {
            let mut metered = MeteredSink::new(&mut inner, &emitted);
            let _ = metered.visit(g(&[1]).as_cut());
            let _ = metered.visit(g(&[2]).as_cut());
        }
        assert_eq!(seen, 2);
        assert_eq!(emitted.load(Ordering::Relaxed), 2);
        // A panicking delivery must not be counted.
        let panicky = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut boom = |_: CutRef<'_>| -> ControlFlow<()> { panic!("boom") };
            let mut metered = MeteredSink::new(&mut boom, &emitted);
            let _ = metered.visit(g(&[3]).as_cut());
        }));
        assert!(panicky.is_err());
        assert_eq!(emitted.load(Ordering::Relaxed), 2);
    }
}
