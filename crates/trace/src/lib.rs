#![warn(missing_docs)]
//! Execution-capture substrate — this repository's replacement for the
//! paper's JVM bytecode injection (§4.1, §4.4).
//!
//! The paper's detector injects monitoring instructions into Java programs
//! at class-load time; what reaches the enumeration layer is only a poset
//! of read/write events whose happened-before edges come from three rules:
//! process order, lock atomicity, and fork–join. This crate produces the
//! same posets from an explicit, portable program model:
//!
//! * [`Op`] / [`Program`] — a concurrent program as per-thread operation
//!   sequences over shared variables and locks, with `fork`/`join`
//!   structure. The workloads crate builds its benchmark programs
//!   (banking, tsp, sor, …) in this form.
//! * [`Recorder`] — the vector-clock bookkeeping of §4.1: thread clocks,
//!   lock clocks, Algorithm 3 at every synchronization, plus the §4.4
//!   *event collection* optimization (consecutive accesses between
//!   synchronizations merge into one event storing only the first write —
//!   or, failing that, the first read — of each variable).
//! * [`sim::SimScheduler`] — a deterministic, seeded interleaving executor:
//!   same program + same seed ⇒ same observed poset. All benchmark tables
//!   are generated this way so rows are reproducible.
//! * [`exec::run_threads`] — a real-thread executor with genuine
//!   `std::sync` locking, used to drive the *online* detector the way the
//!   paper's instrumented JVM threads drive theirs (each program thread
//!   inserts its event, then continues).
//!
//! Captured events are [`TraceEvent`]s; a trace becomes a
//! `Poset<TraceEvent>` (offline) or streams into the online engine.

mod event;
pub mod exec;
pub mod gen;
mod ids;
mod observer;
mod op;
mod recorder;
pub mod sim;
pub mod textfmt;

pub use event::{Access, EventCollection, TraceEvent};
pub use ids::{LockId, VarId};
pub use observer::{CollectOps, NullObserver, OpObserver, PairObserver, RecorderObserver};
pub use op::{Op, Program, ProgramBuilder, ThreadScript};
pub use recorder::{EventOut, PosetCollector, Recorder, RecorderConfig};
pub use textfmt::{parse_trace, write_trace, ParseError, TraceFile};

pub use paramount_poset::{Poset, Tid};
