//! The interval partition of the cut lattice (§3.1, Definitions 1–2).

use crate::sink::{ParallelCutSink, SinkBridge};
use paramount_enumerate::{Algorithm, CutSink, EnumError, EnumStats};
use paramount_poset::{CutSpace, EventId, Frontier};
use std::ops::ControlFlow;

/// The enumeration interval `I(e)` of one event (Definition 2).
///
/// Contains every consistent cut `G` with `gmin ≤ G ≤ gbnd`. The first
/// event in the total order `→p` additionally owns the empty cut
/// (`include_empty`), which no `Gmin(e)` can reach since every `Gmin`
/// contains its event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Interval {
    /// The event this interval belongs to.
    pub event: EventId,
    /// `Gmin(e) = e.vc` — the least cut containing `e`.
    pub gmin: Frontier,
    /// `Gbnd(e)` — the cut of everything at or before `e` in `→p`
    /// (offline), or the insertion-time snapshot of maximal events
    /// (online); consistent by Theorem 1.
    pub gbnd: Frontier,
    /// True only for the first event of `→p`: its worker also emits the
    /// empty cut.
    pub include_empty: bool,
}

impl Interval {
    /// Enumerates exactly the cuts of this interval into `sink`, using the
    /// given bounded subroutine (Lemma 1: each cut exactly once).
    pub fn enumerate<Sp, S>(
        &self,
        space: &Sp,
        algorithm: Algorithm,
        sink: &mut S,
    ) -> Result<EnumStats, EnumError>
    where
        Sp: CutSpace + ?Sized,
        S: CutSink,
    {
        self.enumerate_budgeted(space, algorithm, None, sink)
    }

    /// As [`Interval::enumerate`], with a frontier budget for the stateful
    /// subroutines. This is the one place the empty-cut special case (the
    /// first event of `→p` also owns `{0,…,0}`) is handled; both execution
    /// engines route every interval through here.
    pub fn enumerate_budgeted<Sp, S>(
        &self,
        space: &Sp,
        algorithm: Algorithm,
        frontier_budget: Option<usize>,
        sink: &mut S,
    ) -> Result<EnumStats, EnumError>
    where
        Sp: CutSpace + ?Sized,
        S: CutSink,
    {
        let mut extra = 0;
        if self.include_empty {
            let empty = Frontier::empty(space.num_threads());
            if sink.visit(empty.as_cut()).is_break() {
                return Err(EnumError::Stopped);
            }
            extra = 1;
        }
        let mut stats =
            algorithm.run_bounded_budgeted(space, &self.gmin, &self.gbnd, frontier_budget, sink)?;
        stats.cuts += extra;
        Ok(stats)
    }

    /// As [`Interval::enumerate`], but into a shared [`ParallelCutSink`] —
    /// the worker-side form used by both execution modes.
    pub fn enumerate_shared<Sp, K>(
        &self,
        space: &Sp,
        algorithm: Algorithm,
        sink: &K,
    ) -> Result<EnumStats, EnumError>
    where
        Sp: CutSpace + ?Sized,
        K: ParallelCutSink + ?Sized,
    {
        let mut bridge = SinkBridge::new(sink, self.event);
        self.enumerate(space, algorithm, &mut bridge)
    }

    /// Number of *potential* cuts in the bounding box `[gmin, gbnd]` —
    /// an upper bound on the interval's true size, used for scheduling
    /// heuristics and reporting.
    pub fn box_size(&self) -> u128 {
        self.gmin
            .as_slice()
            .iter()
            .zip(self.gbnd.as_slice())
            .map(|(&lo, &hi)| (hi - lo) as u128 + 1)
            .product()
    }

    /// Does the interval contain the cut (by bounds alone)?
    pub fn contains(&self, g: &Frontier) -> bool {
        self.gmin.leq(g) && g.leq(&self.gbnd)
    }

    /// Splits the interval into two sub-intervals that partition its cut
    /// set — the preemption primitive of the overload governor: a hung
    /// interval whose worker delivered nothing yet is split and both
    /// halves rescheduled independently.
    ///
    /// The cut is made along the widest dimension `t` (the owner thread
    /// always has width 0 — `Gmin(e)[e.tid] = Gbnd(e)[e.tid] = e.index` by
    /// Definitions 1–2 — so `t` is never the owner) at a midpoint `m`:
    ///
    /// * **lower half** `[gmin, down(b)]` where `b` is `gbnd` with
    ///   component `t` lowered to `m`, and `down(b)` is the *maximum*
    ///   consistent cut `≤ b`, computed by the standard iterated-decrement
    ///   fixpoint (drop any frontier event whose causal history escapes
    ///   `b`; every consistent cut `≤ b` survives each step, so the
    ///   fixpoint dominates them all — in particular `gmin`).
    /// * **upper half** `[gmin ∨ Gmin(e_t[m+1]), gbnd]` — raising the
    ///   floor to the least consistent cut containing the pivot event.
    ///   The join of consistent cuts is consistent, and it stays `≤ gbnd`
    ///   because `gbnd` is a consistent cut containing the pivot.
    ///
    /// Every cut of the interval lands in exactly one half (`G[t] ≤ m` ⟹
    /// lower by maximality of `down(b)`; `G[t] > m` ⟹ `G` contains the
    /// pivot, hence dominates its clock, hence the upper floor), both
    /// halves keep consistent bounds as the bounded subroutines require,
    /// and both bounding boxes are strictly smaller, so recursive
    /// splitting terminates. The empty-cut flag rides with the lower half
    /// (which retains `gmin`); both halves keep the owning event, so the
    /// packed-descriptor invariant `gmin[e.tid] = e.index` is preserved.
    ///
    /// Returns `None` when every dimension has width 0 — a single-cut box
    /// that cannot be subdivided.
    pub fn split<Sp: CutSpace + ?Sized>(&self, space: &Sp) -> Option<(Interval, Interval)> {
        let n = self.gmin.len();
        let widths = |i: usize| {
            let t = paramount_poset::Tid::from(i);
            self.gbnd.get(t) - self.gmin.get(t)
        };
        let t = paramount_poset::Tid::from((0..n).max_by_key(|&i| widths(i))?);
        let width = self.gbnd.get(t) - self.gmin.get(t);
        if width == 0 {
            return None;
        }
        let mid = self.gmin.get(t) + (width - 1) / 2;

        let pivot = EventId::new(t, mid + 1);
        let gmin_hi = self.gmin.join(&Frontier::from_clock(space.vc(pivot)));

        let mut gbnd_lo = self.gbnd.clone();
        gbnd_lo.set(t, mid);
        max_consistent_below(space, &mut gbnd_lo);

        debug_assert!(gmin_hi.is_consistent(space), "upper floor inconsistent");
        debug_assert!(gmin_hi.leq(&self.gbnd), "upper floor escaped gbnd");
        debug_assert!(self.gmin.leq(&gbnd_lo), "lower ceiling dropped below gmin");
        debug_assert_eq!(gbnd_lo.get(self.event.tid), self.event.index);

        let lower = Interval {
            event: self.event,
            gmin: self.gmin.clone(),
            gbnd: gbnd_lo,
            include_empty: self.include_empty,
        };
        let upper = Interval {
            event: self.event,
            gmin: gmin_hi,
            gbnd: self.gbnd.clone(),
            include_empty: false,
        };
        Some((lower, upper))
    }

    /// Serializes this interval into a compact delta-coded byte form:
    /// LEB128 varints for the owner thread and each `gmin[t]`, with
    /// `gbnd[t]` stored as its (non-negative, usually tiny) delta above
    /// `gmin[t]`. The owner's index is not stored — `Gmin(e)[e.tid] =
    /// e.index` by definition, so decoding recovers it for free.
    ///
    /// On hot traces the bounds of an interval hug each other (`Gbnd` is
    /// the insertion-time snapshot, `Gmin` the event's own clock), so the
    /// encoding shrinks a descriptor to a handful of bytes — the backing
    /// format of [`crate::store::PackedIntervalQueue`], which keeps the
    /// spill path's unbounded buffer compact.
    pub fn pack_into(&self, out: &mut Vec<u8>) {
        debug_assert_eq!(self.gmin.len(), self.gbnd.len());
        debug_assert_eq!(
            self.gmin.get(self.event.tid),
            self.event.index,
            "Gmin must contain its own event at its thread"
        );
        push_varint(out, self.event.tid.0);
        out.push(u8::from(self.include_empty));
        for (&lo, &hi) in self.gmin.as_slice().iter().zip(self.gbnd.as_slice()) {
            debug_assert!(lo <= hi, "interval bounds inverted");
            push_varint(out, lo);
            push_varint(out, hi - lo);
        }
    }

    /// Decodes one interval of width `n` from a byte stream produced by
    /// [`Interval::pack_into`]. Returns `None` on a truncated stream.
    pub fn unpack(bytes: &mut impl Iterator<Item = u8>, n: usize) -> Option<Interval> {
        let tid = paramount_poset::Tid(read_varint(bytes)?);
        let include_empty = bytes.next()? != 0;
        let mut gmin = Frontier::empty(n);
        let mut gbnd = Frontier::empty(n);
        for t in 0..n {
            let lo = read_varint(bytes)?;
            let delta = read_varint(bytes)?;
            gmin.set(paramount_poset::Tid::from(t), lo);
            gbnd.set(paramount_poset::Tid::from(t), lo + delta);
        }
        let event = EventId::new(tid, gmin.get(tid));
        Some(Interval {
            event,
            gmin,
            gbnd,
            include_empty,
        })
    }
}

/// Lowers `g` in place to the maximum consistent cut `≤ g`: repeatedly
/// drop any frontier event whose vector clock is not dominated by `g`.
/// Any consistent cut `c ≤ g` survives every step (if `c[j] = g[j]` the
/// frontier event's history is inside `c ⊆ g`, so it is not dropped), so
/// the fixpoint — which is consistent by construction and reached because
/// components only decrease — dominates them all.
fn max_consistent_below<Sp: CutSpace + ?Sized>(space: &Sp, g: &mut Frontier) {
    let n = g.len();
    loop {
        let mut changed = false;
        for j in 0..n {
            let t = paramount_poset::Tid::from(j);
            let k = g.get(t);
            if k == 0 {
                continue;
            }
            let dominated = space
                .vc(EventId::new(t, k))
                .iter_nonzero()
                .all(|(j, need)| need <= g.as_slice()[j]);
            if !dominated {
                g.set(t, k - 1);
                changed = true;
            }
        }
        if !changed {
            return;
        }
    }
}

/// LEB128: 7 payload bits per byte, high bit = continuation. The
/// implementation lives in `paramount-durable` (shared with the WAL
/// record framing, so descriptors and durable records speak one codec).
use paramount_durable::varint::{push_u32 as push_varint, read_u32 as read_varint};

/// Computes the interval partition for a complete space under the given
/// total order `→p` (which must be a linear extension — see
/// [`paramount_poset::topo`]).
///
/// Walking `→p` with a running frontier gives each `Gbnd(e)` in `O(1)`
/// amortized: `Gbnd` of the `i`-th event is the running frontier after
/// raising the event's own thread — precisely "`e` plus everything
/// `→p`-before `e`" (Definition 1).
pub fn partition<Sp: CutSpace + ?Sized>(space: &Sp, order: &[EventId]) -> Vec<Interval> {
    let n = space.num_threads();
    let mut running = Frontier::empty(n);
    order
        .iter()
        .enumerate()
        .map(|(i, &e)| {
            debug_assert_eq!(
                e.index,
                running.get(e.tid) + 1,
                "order is not a linear extension (thread sequence broken)"
            );
            running.set(e.tid, e.index);
            Interval {
                event: e,
                gmin: Frontier::from_clock(space.vc(e)),
                gbnd: running.clone(),
                include_empty: i == 0,
            }
        })
        .collect()
}

/// [`partition`], delta-coded: streams each interval straight into a
/// [`PackedIntervalQueue`](crate::store::PackedIntervalQueue) instead of
/// materializing the whole `Vec<Interval>`. Each interval lives as two
/// `Frontier`s only for the instant it takes to pack; the resident
/// representation is one contiguous varint-delta byte buffer, which for
/// wide posets (n > the inline-frontier width) replaces the partition's
/// two heap vectors per event. The offline engine drains it in bounded
/// chunks (see `ParaMount::enumerate_packed`).
pub fn partition_packed<Sp: CutSpace + ?Sized>(
    space: &Sp,
    order: &[EventId],
) -> crate::store::PackedIntervalQueue {
    let n = space.num_threads();
    let mut running = Frontier::empty(n);
    let mut queue = crate::store::PackedIntervalQueue::new(n);
    for (i, &e) in order.iter().enumerate() {
        debug_assert_eq!(
            e.index,
            running.get(e.tid) + 1,
            "order is not a linear extension (thread sequence broken)"
        );
        running.set(e.tid, e.index);
        queue.push_back(&Interval {
            event: e,
            gmin: Frontier::from_clock(space.vc(e)),
            gbnd: running.clone(),
            include_empty: i == 0,
        });
    }
    queue
}

/// Exact per-interval work: the number of consistent cuts in each
/// interval, measured with the stateless lexical subroutine.
///
/// This is the input to load-balance analysis (the simulated-makespan
/// speedup model in the benchmark harness) and sums to `i(P)` minus the
/// empty cut.
pub fn measure_interval_work<Sp: CutSpace + ?Sized>(
    space: &Sp,
    intervals: &[Interval],
) -> Vec<u64> {
    intervals
        .iter()
        .map(|iv| {
            let mut sink = paramount_enumerate::CountSink::default();
            paramount_enumerate::lexical::enumerate_bounded(space, &iv.gmin, &iv.gbnd, &mut sink)
                .expect("lexical is stateless");
            sink.count + u64::from(iv.include_empty)
        })
        .collect()
}

/// A [`CutSink`] that asserts every visited cut lies inside an interval —
/// test helper for the subroutine contract.
pub struct BoundsCheckSink<'a, S> {
    interval: &'a Interval,
    inner: &'a mut S,
}

impl<'a, S: CutSink> BoundsCheckSink<'a, S> {
    /// Wraps `inner`, checking each cut against `interval`'s bounds.
    pub fn new(interval: &'a Interval, inner: &'a mut S) -> Self {
        BoundsCheckSink { interval, inner }
    }
}

impl<S: CutSink> CutSink for BoundsCheckSink<'_, S> {
    fn visit(&mut self, cut: paramount_poset::CutRef<'_>) -> ControlFlow<()> {
        assert!(
            cut.total_events() == 0 || self.interval.contains(&cut.to_frontier()),
            "cut {cut} escaped interval of {}",
            self.interval.event
        );
        self.inner.visit(cut)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paramount_poset::builder::PosetBuilder;
    use paramount_poset::random::RandomComputation;
    use paramount_poset::{oracle, topo, Poset, Tid};
    use std::collections::HashMap;

    fn figure4() -> Poset {
        let mut b = PosetBuilder::new(2);
        let a = b.append(Tid(0), ());
        let bb = b.append(Tid(1), ());
        b.append_after(Tid(0), &[bb], ());
        b.append_after(Tid(1), &[a], ());
        b.finish()
    }

    /// The →p order of Figures 5–6: e1[1], e2[1], e1[2], e2[2].
    fn figure5_order() -> Vec<EventId> {
        vec![
            EventId::new(Tid(0), 1),
            EventId::new(Tid(1), 1),
            EventId::new(Tid(0), 2),
            EventId::new(Tid(1), 2),
        ]
    }

    #[test]
    fn figure5_gbnd_values() {
        let p = figure4();
        let ivs = partition(&p, &figure5_order());
        let gbnds: Vec<&[u32]> = ivs.iter().map(|iv| iv.gbnd.as_slice()).collect();
        // Gbnd(e1[1]) = {1,0}, Gbnd(e2[1]) = {1,1}, Gbnd(e1[2]) = {2,1},
        // Gbnd(e2[2]) = {2,2} — exactly Figure 5.
        assert_eq!(gbnds, vec![&[1, 0][..], &[1, 1], &[2, 1], &[2, 2]]);
        assert!(ivs[0].include_empty);
        assert!(!ivs[1].include_empty);
    }

    #[test]
    fn theorem1_gbnd_is_consistent() {
        for seed in 0..20 {
            let p = RandomComputation::new(4, 5, 0.4, seed).generate();
            for order in [topo::weight_order(&p), topo::kahn_order(&p)] {
                for iv in partition(&p, &order) {
                    assert!(iv.gbnd.is_consistent(&p), "seed {seed}");
                    assert!(iv.gmin.is_consistent(&p), "seed {seed}");
                    assert!(iv.gmin.leq(&iv.gbnd), "seed {seed}");
                }
            }
        }
    }

    #[test]
    fn lemmas_2_and_3_partition_covers_disjointly() {
        // Every consistent cut belongs to exactly one interval.
        for seed in 0..20 {
            let p = RandomComputation::new(3, 5, 0.4, seed).generate();
            let order = topo::weight_order(&p);
            let ivs = partition(&p, &order);
            for g in oracle::enumerate_product_scan(&p) {
                let owners: Vec<EventId> = ivs
                    .iter()
                    .filter(|iv| iv.contains(&g))
                    .map(|iv| iv.event)
                    .collect();
                if g.total_events() == 0 {
                    // Empty cut: owned via include_empty, not bounds.
                    assert!(owners.is_empty(), "seed {seed}: empty cut in an interval");
                } else {
                    assert_eq!(owners.len(), 1, "seed {seed}: cut {g} owned by {owners:?}");
                    // Lemma 2's witness: the owner is the →p-last event in G.
                    let pos: HashMap<EventId, usize> =
                        order.iter().enumerate().map(|(i, &e)| (e, i)).collect();
                    let last = g
                        .frontier_events()
                        .flat_map(|fe| (1..=fe.index).map(move |k| EventId::new(fe.tid, k)))
                        .max_by_key(|e| pos[e])
                        .expect("non-empty cut");
                    assert_eq!(owners[0], last, "seed {seed}");
                }
            }
        }
    }

    #[test]
    fn theorem2_intervals_enumerate_each_cut_exactly_once() {
        use paramount_enumerate::CollectSink;
        for seed in 0..15 {
            let p = RandomComputation::new(3, 4, 0.5, seed).generate();
            let order = topo::kahn_order(&p);
            for algo in Algorithm::ALL {
                let mut all = Vec::new();
                for iv in partition(&p, &order) {
                    let mut sink = CollectSink::default();
                    let mut checked = BoundsCheckSink::new(&iv, &mut sink);
                    iv.enumerate(&p, algo, &mut checked).unwrap();
                    all.extend(sink.cuts);
                }
                assert_eq!(
                    oracle::canonicalize(all),
                    oracle::enumerate_product_scan(&p),
                    "algo {algo:?} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn measured_work_sums_to_lattice_size() {
        for seed in 0..8 {
            let p = RandomComputation::new(3, 4, 0.4, seed).generate();
            let order = topo::weight_order(&p);
            let intervals = partition(&p, &order);
            let work = measure_interval_work(&p, &intervals);
            let total: u64 = work.iter().sum();
            assert_eq!(total, oracle::count_ideals(&p), "seed {seed}");
        }
    }

    #[test]
    fn box_size_upper_bounds() {
        let p = figure4();
        let ivs = partition(&p, &figure5_order());
        // I(e2[2]) spans {1,2}..{2,2}: box = 2×1.
        assert_eq!(ivs[3].box_size(), 2);
        assert_eq!(ivs[0].box_size(), 1);
    }

    #[test]
    fn packed_descriptors_round_trip() {
        for seed in 0..10 {
            let p = RandomComputation::new(5, 6, 0.4, seed).generate();
            let order = topo::weight_order(&p);
            let ivs = partition(&p, &order);
            let mut buf = Vec::new();
            for iv in &ivs {
                iv.pack_into(&mut buf);
            }
            let mut bytes = buf.iter().copied();
            for iv in &ivs {
                let got = Interval::unpack(&mut bytes, p.num_threads()).expect("decode");
                assert_eq!(&got, iv, "seed {seed}");
            }
            assert!(bytes.next().is_none(), "trailing bytes after decode");
        }
    }

    #[test]
    fn packed_descriptors_are_compact_and_reject_truncation() {
        let p = figure4();
        let ivs = partition(&p, &figure5_order());
        let mut buf = Vec::new();
        ivs[3].pack_into(&mut buf);
        // tid + flag + 2 × (varint gmin, varint delta): 6 single-byte
        // varints for Figure 4's small counts.
        assert_eq!(buf.len(), 6);
        for cutoff in 0..buf.len() {
            let mut short = buf[..cutoff].iter().copied();
            assert!(Interval::unpack(&mut short, 2).is_none(), "cutoff {cutoff}");
        }
    }

    /// Enumerates one interval with the lexical subroutine, bounds-checked.
    fn collect_cuts(p: &Poset, iv: &Interval) -> Vec<Frontier> {
        use paramount_enumerate::CollectSink;
        let mut sink = CollectSink::default();
        let mut checked = BoundsCheckSink::new(iv, &mut sink);
        iv.enumerate(p, Algorithm::Lexical, &mut checked).unwrap();
        sink.cuts
    }

    #[test]
    fn split_halves_partition_the_interval_exactly() {
        for seed in 0..15 {
            let p = RandomComputation::new(3, 5, 0.4, seed).generate();
            let order = topo::weight_order(&p);
            for iv in partition(&p, &order) {
                let Some((lo, hi)) = iv.split(&p) else {
                    assert_eq!(iv.box_size(), 1, "seed {seed}: unsplittable wide box");
                    continue;
                };
                assert!(lo.box_size() < iv.box_size(), "seed {seed}");
                assert!(hi.box_size() < iv.box_size(), "seed {seed}");
                let mut halves = collect_cuts(&p, &lo);
                halves.extend(collect_cuts(&p, &hi));
                halves.sort();
                let mut whole = collect_cuts(&p, &iv);
                whole.sort();
                // Sorted with duplicates kept: catches both a missed cut
                // (cover violation) and a double-delivered one (overlap).
                assert_eq!(halves, whole, "seed {seed} event {}", iv.event);
            }
        }
    }

    #[test]
    fn recursive_splitting_terminates_and_loses_nothing() {
        for (threads, events, seed) in [(2, 6, 1u64), (4, 4, 7), (10, 2, 3)] {
            let p = RandomComputation::new(threads, events, 0.3, seed).generate();
            let order = topo::kahn_order(&p);
            for iv in partition(&p, &order) {
                let mut work = vec![iv.clone()];
                let mut leaves = Vec::new();
                while let Some(next) = work.pop() {
                    match next.split(&p) {
                        Some((lo, hi)) => work.extend([lo, hi]),
                        None => leaves.push(next),
                    }
                }
                // Every leaf is a single-cut box; together they are the
                // interval, each cut exactly once.
                let mut from_leaves = Vec::new();
                for leaf in &leaves {
                    assert_eq!(leaf.box_size(), 1);
                    from_leaves.extend(collect_cuts(&p, leaf));
                }
                from_leaves.sort();
                let mut whole = collect_cuts(&p, &iv);
                whole.sort();
                assert_eq!(from_leaves, whole, "threads {threads} seed {seed}");
            }
        }
    }

    #[test]
    fn split_keeps_owner_dimension_and_empty_flag_on_lower_half() {
        let p = figure4();
        let ivs = partition(&p, &figure5_order());
        // I(e2[2]) spans {1,2}..{2,2}: splittable along thread 0.
        let (lo, hi) = ivs[3].split(&p).expect("width-1 box splits");
        assert_eq!(lo.event, ivs[3].event);
        assert_eq!(hi.event, ivs[3].event);
        assert_eq!(lo.gmin, ivs[3].gmin);
        assert_eq!(hi.gbnd, ivs[3].gbnd);
        assert!(!lo.include_empty && !hi.include_empty);
        // I(e1[1]) is a single cut: unsplittable.
        assert!(ivs[0].split(&p).is_none());
    }

    #[test]
    fn empty_cut_emitted_once_via_first_interval() {
        use paramount_enumerate::CollectSink;
        let p = figure4();
        let ivs = partition(&p, &figure5_order());
        let mut sink = CollectSink::default();
        ivs[0].enumerate(&p, Algorithm::Lexical, &mut sink).unwrap();
        assert_eq!(
            sink.cuts,
            vec![Frontier::empty(2), Frontier::from_counts(vec![1, 0])]
        );
    }
}
