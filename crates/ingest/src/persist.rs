//! Durable session store: a crash-safe WAL + checkpoint subsystem.
//!
//! # What is persisted, and why it is enough
//!
//! Theorem 3 makes the engine's entire deliverable — every cut of the
//! observed prefix, exactly once — a *pure function of the accepted
//! event sequence*. So the store persists exactly that: the `HELLO`
//! that opened the session (one `META` record) followed by one `EVENT`
//! record per accepted operation, in acceptance order. Recovery replays
//! the sequence through a fresh [`Session`](crate::Session) and lands,
//! deterministically, in the same lattice position the crashed daemon
//! held. Pending intervals, recorder frontiers, and engine queues are
//! all derived state and are never written down.
//!
//! # LSM-style checkpoints
//!
//! An ever-growing WAL would make recovery O(session length) in disk
//! reads *and* keep every segment alive. Every
//! [`StoreConfig::checkpoint_every`] accepted events the store folds the
//! log: a `CHECKPOINT` record — the full accepted prefix plus the acked
//! count and quarantine tally — is written as the sole record of a
//! fresh segment and every earlier segment is deleted
//! ([`Wal::compact`]). A crash between the checkpoint append and the
//! deletions leaves stale segments whose records all precede the
//! checkpoint; replay applies **last-checkpoint-wins**, resetting the
//! event list whenever a later checkpoint appears, so the leftovers are
//! harmless. The `chaos` feature's `checkpoint_panic_at` fault crashes
//! inside exactly that window to prove it.
//!
//! # Record encoding
//!
//! Payloads reuse the wire protocol's line grammar verbatim — a `META`
//! record is `<id> <HELLO line>`, an `EVENT` record is the `EVENT` line
//! itself, and a `CHECKPOINT` is a header line followed by `EVENT`
//! lines. The WAL's length-prefix + CRC framing supplies integrity; the
//! text form means one codec ([`crate::proto`]) serves the socket and
//! the disk, and `strings wal-0000000001.log` shows a legible session.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use paramount::{
    EventId, FaultLog, FaultPlan, Frontier, IngestMetrics, Interval, QuarantinedInterval, Tid,
};
use paramount_durable::{FsyncPolicy, Record, Wal, WalConfig};

use crate::proto::{parse_client_line, ClientFrame, Hello, WireOp};

/// Record kind byte: session identity + `HELLO` parameters.
pub const META_KIND: u8 = b'M';
/// Record kind byte: one accepted event (text `EVENT` line payload).
pub const EVENT_KIND: u8 = b'E';
/// Record kind byte: one accepted event, `paramount/2` binary body
/// ([`crate::wire2::encode_event_record`] — a self-contained frame, no
/// cross-record interning, so checkpoints can rewrite any subset).
pub const EVENT2_KIND: u8 = b'F';
/// Record kind byte: LSM checkpoint (full accepted prefix).
pub const CHECKPOINT_KIND: u8 = b'C';

/// Knobs a [`SessionStore`] is built with (server-level policy).
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Write a checkpoint (and drop superseded WAL segments) every this
    /// many accepted events. `0` disables automatic checkpoints.
    pub checkpoint_every: u64,
    /// When WAL appends reach stable storage. `FLUSH` and checkpoints
    /// force regardless under [`FsyncPolicy::OnDemand`].
    pub fsync: FsyncPolicy,
    /// Seeded fault plan; the store honors `checkpoint_panic_at` when
    /// the `chaos` feature is compiled in.
    pub faults: FaultPlan,
    /// Registry for `checkpoint_writes` / `wal_segments`; `None` keeps
    /// the store silent (library embedders, tests).
    pub metrics: Option<Arc<IngestMetrics>>,
    /// Append events as binary [`EVENT2_KIND`] records instead of text
    /// `EVENT` lines (the daemon sets this for sessions negotiated at
    /// `paramount/2`). Purely a write-side policy: recovery replays both
    /// kinds regardless, so a session's log may mix them across resumes.
    pub binary_events: bool,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            checkpoint_every: 4096,
            fsync: FsyncPolicy::OnDemand,
            faults: FaultPlan::default(),
            metrics: None,
            binary_events: false,
        }
    }
}

/// Everything recovery rebuilt from disk: the session identity, the
/// accepted event prefix to replay, and the store re-opened for further
/// appends.
#[derive(Debug)]
pub struct RecoveredState {
    /// Persisted session id.
    pub id: u64,
    /// The `HELLO` the session was opened with.
    pub hello: Hello,
    /// Accepted events in acceptance order (`(tid, op)`).
    pub events: Vec<(usize, WireOp)>,
    /// Quarantine tally recorded by the last checkpoint (diagnostic;
    /// replay regenerates the live value).
    pub quarantined: u64,
    /// The quarantine ledger as of the last checkpoint: exact
    /// `[Gmin, Gbnd]` bounds of every interval the session's engine gave
    /// up on before the crash. Replay cannot regenerate these (the
    /// recovered engine retries the work and usually succeeds), so the
    /// checkpoint is their only home across a restart.
    pub quarantine: Vec<QuarantinedInterval>,
    /// The store, positioned to append event `events.len() + 1`.
    pub store: SessionStore,
}

/// One session's crash-safe log. See the module docs for the model.
#[derive(Debug)]
pub struct SessionStore {
    dir: PathBuf,
    wal: Wal,
    cfg: StoreConfig,
    /// Session identity, re-embedded in every checkpoint so compaction
    /// (which deletes the segment holding the original `META` record)
    /// keeps the log self-contained.
    id: u64,
    hello: Hello,
    /// The full accepted prefix — what the next checkpoint embeds.
    events: Vec<(usize, WireOp)>,
    since_checkpoint: u64,
    /// 1-based checkpoint ordinal, for the chaos kill point.
    checkpoints: u64,
    /// Segments currently charged to the `wal_segments` gauge.
    charged_segments: u64,
}

/// The per-session store directory under a daemon `--data-dir` root.
pub fn session_dir(root: &Path, id: u64) -> PathBuf {
    root.join(format!("session-{id:010}"))
}

/// Session ids with a store directory under `root`, ascending. Missing
/// roots scan as empty (first boot).
pub fn scan_sessions(root: &Path) -> io::Result<Vec<u64>> {
    let mut ids = Vec::new();
    let entries = match std::fs::read_dir(root) {
        Ok(entries) => entries,
        Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok(ids),
        Err(err) => return Err(err),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(id) = name
            .strip_prefix("session-")
            .and_then(|s| s.parse::<u64>().ok())
        {
            if entry.path().is_dir() {
                ids.push(id);
            }
        }
    }
    ids.sort_unstable();
    Ok(ids)
}

impl SessionStore {
    /// Creates a fresh store in `dir` (wiping any stale incarnation) and
    /// durably records the session identity.
    pub fn create(
        dir: &Path,
        id: u64,
        hello: &Hello,
        cfg: StoreConfig,
    ) -> io::Result<SessionStore> {
        let _ = std::fs::remove_dir_all(dir);
        let wal_config = WalConfig {
            fsync: cfg.fsync,
            ..WalConfig::default()
        };
        let (wal, _) = Wal::open(dir, wal_config)?;
        let mut store = SessionStore {
            dir: dir.to_path_buf(),
            wal,
            cfg,
            id,
            hello: hello.clone(),
            events: Vec::new(),
            since_checkpoint: 0,
            checkpoints: 0,
            charged_segments: 0,
        };
        let meta = format!("{id} {}", hello.encode());
        store.wal.append(META_KIND, meta.as_bytes())?;
        store.wal.sync()?;
        store.publish_segments();
        Ok(store)
    }

    /// Re-opens the store in `dir` and replays it: torn-tail repair is
    /// the WAL's job, last-checkpoint-wins is ours. Returns `Ok(None)`
    /// when `dir` holds no committed `META` record (absent or empty
    /// store — nothing to resume).
    pub fn recover(dir: &Path, cfg: StoreConfig) -> io::Result<Option<RecoveredState>> {
        if !dir.is_dir() {
            return Ok(None);
        }
        let wal_config = WalConfig {
            fsync: cfg.fsync,
            ..WalConfig::default()
        };
        let (wal, records) = Wal::open(dir, wal_config)?;
        let mut meta: Option<(u64, Hello)> = None;
        let mut events: Vec<(usize, WireOp)> = Vec::new();
        let mut quarantined = 0u64;
        let mut quarantine: Vec<QuarantinedInterval> = Vec::new();
        let mut since_checkpoint = 0u64;
        for record in &records {
            match record.kind {
                META_KIND => meta = decode_meta(record),
                EVENT_KIND => {
                    if let Some(ev) = decode_event_line(std::str::from_utf8(&record.payload).ok()) {
                        events.push(ev);
                        since_checkpoint += 1;
                    }
                }
                EVENT2_KIND => {
                    if let Ok(ev) = crate::wire2::decode_event_record(&record.payload) {
                        events.push(ev);
                        since_checkpoint += 1;
                    }
                }
                CHECKPOINT_KIND => {
                    if let Some(ckpt) = decode_checkpoint(record) {
                        debug_assert_eq!(ckpt.acked, ckpt.events.len() as u64);
                        meta = Some(ckpt.meta);
                        events = ckpt.events;
                        quarantined = ckpt.quarantined;
                        quarantine = ckpt.quarantine;
                        since_checkpoint = 0;
                    }
                }
                _ => {} // forward compatibility: unknown kinds are skipped
            }
        }
        let Some((id, hello)) = meta else {
            return Ok(None);
        };
        let mut store = SessionStore {
            dir: dir.to_path_buf(),
            wal,
            cfg,
            id,
            hello: hello.clone(),
            events: Vec::new(),
            since_checkpoint,
            checkpoints: 0,
            charged_segments: 0,
        };
        store.events.clone_from(&events);
        store.publish_segments();
        Ok(Some(RecoveredState {
            id,
            hello,
            events,
            quarantined,
            quarantine,
            store,
        }))
    }

    /// Appends one accepted event. The caller checks
    /// [`SessionStore::should_checkpoint`] afterwards — splitting the
    /// two keeps the per-event path free of the checkpoint's inputs (the
    /// quarantine tally is a metrics fold).
    pub fn append_event(&mut self, tid: usize, op: &WireOp) -> io::Result<()> {
        if self.cfg.binary_events {
            let body = crate::wire2::encode_event_record(tid, op);
            self.wal.append(EVENT2_KIND, &body)?;
        } else {
            let line = format!("EVENT {tid} {}", op.render());
            self.wal.append(EVENT_KIND, line.as_bytes())?;
        }
        self.events.push((tid, op.clone()));
        self.since_checkpoint += 1;
        self.publish_segments();
        Ok(())
    }

    /// Has the checkpoint interval elapsed since the last fold?
    pub fn should_checkpoint(&self) -> bool {
        self.cfg.checkpoint_every > 0 && self.since_checkpoint >= self.cfg.checkpoint_every
    }

    /// Forces every accepted event so far to stable storage (the `FLUSH`
    /// durability point the acked count is measured at).
    pub fn sync(&mut self) -> io::Result<()> {
        self.wal.sync()
    }

    /// Events durably accepted — the `acked=` count `FLUSH` and `RESUME`
    /// report, and exactly how many leading trace ops a resuming client
    /// must skip.
    pub fn acked(&self) -> u64 {
        self.events.len() as u64
    }

    /// Live WAL segment files.
    pub fn segment_count(&self) -> usize {
        self.wal.segment_count()
    }

    /// Folds the log: one `CHECKPOINT` record carrying the full accepted
    /// prefix supersedes — and deletes — every earlier segment. The
    /// quarantine ledger rides along so a recovered session reports the
    /// exact `[Gmin, Gbnd]` bounds of pre-crash quarantines, not just
    /// their tally. Returns the number of segments removed.
    pub fn checkpoint(&mut self, quarantined: u64, ledger: &FaultLog) -> io::Result<usize> {
        let payload = encode_checkpoint(self.id, &self.hello, &self.events, quarantined, ledger);
        self.checkpoints += 1;
        #[cfg(feature = "chaos")]
        if self.cfg.faults.checkpoint_panic_at == Some(self.checkpoints) {
            // The compaction crash window: checkpoint durably written,
            // superseded segments still on disk. Recovery must apply
            // last-checkpoint-wins over the leftovers.
            self.wal
                .append(CHECKPOINT_KIND, &payload)
                .expect("chaos checkpoint append");
            self.wal.sync().expect("chaos checkpoint sync");
            panic!("chaos: checkpoint_panic_at={} fired", self.checkpoints);
        }
        let removed = self.wal.compact(CHECKPOINT_KIND, &payload)?;
        self.since_checkpoint = 0;
        if let Some(metrics) = &self.cfg.metrics {
            metrics.checkpoint_writes.add(1);
        }
        self.publish_segments();
        Ok(removed)
    }

    /// Deletes the store from disk (clean `END`: nothing left to
    /// resume). Consumes the store; the session directory — including
    /// any interval spill files beside the WAL — is removed.
    pub fn delete(mut self) -> io::Result<()> {
        self.release_gauge();
        let dir = std::mem::take(&mut self.dir);
        drop(self); // close the active segment before unlinking it
        std::fs::remove_dir_all(&dir)
    }

    /// Reconciles the `wal_segments` gauge with the live segment count.
    fn publish_segments(&mut self) {
        let now = self.wal.segment_count() as u64;
        if let Some(metrics) = &self.cfg.metrics {
            if now > self.charged_segments {
                metrics.wal_segments.add(now - self.charged_segments);
            } else {
                metrics.wal_segments.sub(self.charged_segments - now);
            }
        }
        self.charged_segments = now;
    }

    fn release_gauge(&mut self) {
        if let Some(metrics) = &self.cfg.metrics {
            metrics.wal_segments.sub(self.charged_segments);
        }
        self.charged_segments = 0;
    }
}

impl Drop for SessionStore {
    fn drop(&mut self) {
        self.release_gauge();
    }
}

/// `META` payload → `(id, hello)`. Malformed records are dropped (the
/// CRC already vouched for integrity; this only rejects foreign data).
fn decode_meta(record: &Record) -> Option<(u64, Hello)> {
    let text = std::str::from_utf8(&record.payload).ok()?;
    let (id, hello_line) = text.split_once(' ')?;
    let id = id.parse::<u64>().ok()?;
    match parse_client_line(hello_line) {
        Ok(ClientFrame::Hello(hello)) => Some((id, hello)),
        _ => None,
    }
}

/// One `EVENT <tid> <op>` line → `(tid, op)`.
fn decode_event_line(line: Option<&str>) -> Option<(usize, WireOp)> {
    match parse_client_line(line?) {
        Ok(ClientFrame::Event { tid, op }) => Some((tid, op)),
        _ => None,
    }
}

/// `CHECKPOINT` payload: the `META` line (compaction deletes the segment
/// holding the original, so every checkpoint re-embeds identity), an
/// `acked=<n> quarantined=<q>` header line, one `QUAR` line per entry in
/// the quarantine ledger, then one `EVENT` line per accepted event.
fn encode_checkpoint(
    id: u64,
    hello: &Hello,
    events: &[(usize, WireOp)],
    quarantined: u64,
    ledger: &FaultLog,
) -> Vec<u8> {
    let mut out = format!("{id} {}", hello.encode());
    out.push('\n');
    out.push_str(&format!("acked={} quarantined={quarantined}", events.len()));
    for entry in &ledger.quarantined {
        out.push('\n');
        out.push_str(&encode_quarantine_line(entry));
    }
    for (tid, op) in events {
        out.push('\n');
        out.push_str(&format!("EVENT {tid} {}", op.render()));
    }
    out.into_bytes()
}

/// Everything [`decode_checkpoint`] reads back out of one record.
struct Checkpoint {
    meta: (u64, Hello),
    acked: u64,
    quarantined: u64,
    quarantine: Vec<QuarantinedInterval>,
    events: Vec<(usize, WireOp)>,
}

fn decode_checkpoint(record: &Record) -> Option<Checkpoint> {
    let text = std::str::from_utf8(&record.payload).ok()?;
    let mut lines = text.lines();
    let meta_line = lines.next()?;
    let (id, hello_line) = meta_line.split_once(' ')?;
    let id = id.parse::<u64>().ok()?;
    let hello = match parse_client_line(hello_line) {
        Ok(ClientFrame::Hello(hello)) => hello,
        _ => return None,
    };
    let header = lines.next()?;
    let mut acked = None;
    let mut quarantined = 0u64;
    for token in header.split_whitespace() {
        if let Some(v) = token.strip_prefix("acked=") {
            acked = v.parse::<u64>().ok();
        } else if let Some(v) = token.strip_prefix("quarantined=") {
            quarantined = v.parse::<u64>().ok()?;
        }
    }
    let mut quarantine = Vec::new();
    let mut events = Vec::new();
    for line in lines {
        if line.starts_with("QUAR ") {
            quarantine.push(decode_quarantine_line(line)?);
        } else {
            events.push(decode_event_line(Some(line))?);
        }
    }
    Some(Checkpoint {
        meta: (id, hello),
        acked: acked?,
        quarantined,
        quarantine,
        events,
    })
}

/// `QUAR <tid> <index> <empty> <cuts_emitted> <attempts> <gmin> <gbnd>
/// <message...>` — frontiers as comma-joined per-thread counts, message
/// as the (newline-sanitized) rest of the line.
fn encode_quarantine_line(q: &QuarantinedInterval) -> String {
    let message: String = q
        .message
        .chars()
        .map(|c| if c.is_control() { ' ' } else { c })
        .collect();
    format!(
        "QUAR {} {} {} {} {} {} {} {message}",
        q.interval.event.tid.0,
        q.interval.event.index,
        u8::from(q.interval.include_empty),
        q.cuts_emitted,
        q.attempts,
        encode_counts(q.interval.gmin.as_slice()),
        encode_counts(q.interval.gbnd.as_slice()),
    )
}

fn decode_quarantine_line(line: &str) -> Option<QuarantinedInterval> {
    let rest = line.strip_prefix("QUAR ")?;
    let mut parts = rest.splitn(8, ' ');
    let tid = parts.next()?.parse::<u32>().ok()?;
    let index = parts.next()?.parse::<u32>().ok()?;
    let include_empty = match parts.next()? {
        "0" => false,
        "1" => true,
        _ => return None,
    };
    let cuts_emitted = parts.next()?.parse::<u64>().ok()?;
    let attempts = parts.next()?.parse::<u32>().ok()?;
    let gmin = decode_counts(parts.next()?)?;
    let gbnd = decode_counts(parts.next()?)?;
    let message = parts.next().unwrap_or("").to_string();
    Some(QuarantinedInterval {
        interval: Interval {
            event: EventId {
                tid: Tid(tid),
                index,
            },
            gmin: Frontier::from_counts(gmin),
            gbnd: Frontier::from_counts(gbnd),
            include_empty,
        },
        cuts_emitted,
        attempts,
        message,
    })
}

/// Per-thread counts as `c0,c1,...`; `-` for the (degenerate) empty
/// frontier so the token never vanishes from the line.
fn encode_counts(counts: &[u32]) -> String {
    if counts.is_empty() {
        return "-".to_string();
    }
    counts
        .iter()
        .map(|c| c.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn decode_counts(text: &str) -> Option<Vec<u32>> {
    if text == "-" {
        return Some(Vec::new());
    }
    text.split(',').map(|c| c.parse::<u32>().ok()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("paramount-store-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn ops(n: usize) -> Vec<(usize, WireOp)> {
        (0..n)
            .map(|i| {
                let tid = i % 2;
                let op = match i % 4 {
                    0 => WireOp::Write(format!("x{i}")),
                    1 => WireOp::Read(format!("x{}", i - 1)),
                    2 => WireOp::Acquire("m".to_string()),
                    _ => WireOp::Release("m".to_string()),
                };
                (tid, op)
            })
            .collect()
    }

    #[test]
    fn create_append_recover_round_trips_the_prefix() {
        let dir = scratch_dir("roundtrip");
        let hello = Hello {
            threads: 2,
            capture_sync: true,
            label: Some("trial".to_string()),
            ..Hello::new(2)
        };
        let trace = ops(9);
        let mut store = SessionStore::create(&dir, 7, &hello, StoreConfig::default()).unwrap();
        for (tid, op) in &trace {
            store.append_event(*tid, op).unwrap();
        }
        store.sync().unwrap();
        assert_eq!(store.acked(), 9);
        drop(store);

        let rec = SessionStore::recover(&dir, StoreConfig::default())
            .unwrap()
            .expect("store exists");
        assert_eq!(rec.id, 7);
        assert_eq!(rec.hello, hello);
        assert_eq!(rec.events, trace);
        assert_eq!(rec.store.acked(), 9);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_compacts_and_recovery_honors_last_checkpoint_wins() {
        let dir = scratch_dir("ckpt");
        let cfg = StoreConfig {
            checkpoint_every: 4,
            ..StoreConfig::default()
        };
        let trace = ops(10);
        let mut store = SessionStore::create(&dir, 1, &Hello::new(2), cfg.clone()).unwrap();
        for (tid, op) in &trace {
            store.append_event(*tid, op).unwrap();
            if store.should_checkpoint() {
                store.checkpoint(3, &FaultLog::default()).unwrap();
            }
        }
        // 10 events at checkpoint_every=4 → checkpoints at 4 and 8; the
        // log is one compacted segment plus the 2-event tail.
        assert_eq!(store.segment_count(), 1);
        drop(store);

        let rec = SessionStore::recover(&dir, cfg)
            .unwrap()
            .expect("store exists");
        assert_eq!(
            rec.events, trace,
            "checkpoint prefix + WAL tail replay exactly"
        );
        assert_eq!(rec.quarantined, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_round_trips_quarantine_ledger_bounds() {
        let dir = scratch_dir("quar");
        let ledger = FaultLog {
            quarantined: vec![
                QuarantinedInterval {
                    interval: Interval {
                        event: EventId {
                            tid: Tid(1),
                            index: 3,
                        },
                        gmin: Frontier::from_counts(vec![2, 3]),
                        gbnd: Frontier::from_counts(vec![5, 4]),
                        include_empty: false,
                    },
                    cuts_emitted: 11,
                    attempts: 2,
                    message: "worker panic:\nboom at depth 4".to_string(),
                },
                QuarantinedInterval {
                    interval: Interval {
                        event: EventId {
                            tid: Tid(0),
                            index: 1,
                        },
                        gmin: Frontier::from_counts(vec![1, 0]),
                        gbnd: Frontier::from_counts(vec![1, 2]),
                        include_empty: true,
                    },
                    cuts_emitted: 0,
                    attempts: 1,
                    message: String::new(),
                },
            ],
        };
        let trace = ops(5);
        let mut store =
            SessionStore::create(&dir, 9, &Hello::new(2), StoreConfig::default()).unwrap();
        for (tid, op) in &trace {
            store.append_event(*tid, op).unwrap();
        }
        store.checkpoint(2, &ledger).unwrap();
        drop(store);

        let rec = SessionStore::recover(&dir, StoreConfig::default())
            .unwrap()
            .expect("store exists");
        assert_eq!(rec.events, trace);
        assert_eq!(rec.quarantined, 2);
        assert_eq!(rec.quarantine.len(), 2);
        let q = &rec.quarantine[0];
        assert_eq!(q.interval, ledger.quarantined[0].interval);
        assert_eq!(q.cuts_emitted, 11);
        assert_eq!(q.attempts, 2);
        // Newlines are sanitized to spaces to keep the record line-oriented.
        assert_eq!(q.message, "worker panic: boom at depth 4");
        assert_eq!(rec.quarantine[1], ledger.quarantined[1]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn binary_event_records_recover_and_mix_with_text_ones() {
        let dir = scratch_dir("binary");
        let trace = ops(9);
        // First incarnation appends binary EVENT2 records.
        let cfg = StoreConfig {
            binary_events: true,
            ..StoreConfig::default()
        };
        let mut store = SessionStore::create(&dir, 5, &Hello::new(2), cfg).unwrap();
        for (tid, op) in &trace[..5] {
            store.append_event(*tid, op).unwrap();
        }
        store.sync().unwrap();
        drop(store);

        // Recovery replays them; the re-opened store appends text EVENT
        // lines, so the log now mixes kinds (a v1 resume of a v2 session).
        let rec = SessionStore::recover(&dir, StoreConfig::default())
            .unwrap()
            .expect("store exists");
        assert_eq!(rec.events, trace[..5]);
        let mut store = rec.store;
        for (tid, op) in &trace[5..] {
            store.append_event(*tid, op).unwrap();
        }
        store.sync().unwrap();
        drop(store);

        let rec = SessionStore::recover(&dir, StoreConfig::default())
            .unwrap()
            .expect("store exists");
        assert_eq!(rec.events, trace, "mixed-kind log replays in order");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recover_of_missing_or_deleted_store_is_none() {
        let dir = scratch_dir("absent");
        assert!(SessionStore::recover(&dir, StoreConfig::default())
            .unwrap()
            .is_none());

        let store = SessionStore::create(&dir, 3, &Hello::new(1), StoreConfig::default()).unwrap();
        store.delete().unwrap();
        assert!(!dir.exists(), "delete removes the session directory");
        assert!(SessionStore::recover(&dir, StoreConfig::default())
            .unwrap()
            .is_none());
    }

    #[test]
    fn scan_lists_persisted_sessions_ascending() {
        let root = scratch_dir("scan");
        assert_eq!(scan_sessions(&root).unwrap(), Vec::<u64>::new());
        for id in [12u64, 3, 7] {
            let dir = session_dir(&root, id);
            drop(SessionStore::create(&dir, id, &Hello::new(1), StoreConfig::default()).unwrap());
        }
        assert_eq!(scan_sessions(&root).unwrap(), vec![3, 7, 12]);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn wal_segments_gauge_tracks_live_stores() {
        let dir = scratch_dir("gauge");
        let metrics = Arc::new(IngestMetrics::new());
        let cfg = StoreConfig {
            metrics: Some(Arc::clone(&metrics)),
            ..StoreConfig::default()
        };
        let mut store = SessionStore::create(&dir, 1, &Hello::new(2), cfg).unwrap();
        assert_eq!(metrics.wal_segments.get(), 1);
        store.checkpoint(0, &FaultLog::default()).unwrap();
        assert_eq!(metrics.checkpoint_writes.sum(), 1);
        drop(store);
        assert_eq!(metrics.wal_segments.get(), 0, "drop releases the gauge");
        assert!(metrics.wal_segments.high_water() >= 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
