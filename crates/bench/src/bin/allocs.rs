//! **Allocations per cut** — how many heap allocations the enumerators
//! perform per visited global state, on `fig11`-style workloads.
//!
//! Chauhan & Garg (*Space Efficient BFS/Level Traversals of Consistent
//! Global States*) identify per-cut allocation as the dominant constant
//! factor of cut enumeration; the compact-cut work (inline `Frontier`,
//! borrowed-visit sinks, delta-coded intervals) exists to drive this
//! number to ~0 for n ≤ 8. This binary is the before/after instrument:
//! run it on both sides of a change and diff the `allocs/cut` column
//! (numbers are recorded in EXPERIMENTS.md).
//!
//! Counts come from [`alloc_track::CountingAllocator`] installed as the
//! global allocator, so they include *everything* the run touches —
//! sink bookkeeping, hash-table growth, and (for the `L-Para` rows)
//! one-time Rayon pool setup. Ratios are meaningful because the cut
//! counts dwarf the constant overheads.

use paramount::{Algorithm, AtomicCountSink, ParaMount};
use paramount_bench::alloc_track::{self, CountingAllocator};
use paramount_enumerate::{bfs, dfs, lexical, CountSink};
use paramount_poset::random::RandomComputation;
use paramount_poset::Poset;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn report(workload: &str, run: &str, cuts: u64, allocs: usize) {
    let ratio = if cuts == 0 {
        "-".into()
    } else {
        format!("{:.3}", allocs as f64 / cuts as f64)
    };
    println!("{workload:<10} {run:<12} {cuts:>12} {allocs:>12} {ratio:>10}");
}

fn main() {
    println!("Allocations per visited cut (global-allocator event counts)\n");
    println!(
        "{:<10} {:<12} {:>12} {:>12} {:>10}",
        "workload", "run", "cuts", "allocs", "allocs/cut"
    );

    // fig11-style distributed computations. The first two stay within the
    // n <= 8 inline-frontier regime the paper's workloads occupy; d8-wide
    // is message-sparse, so its lattice is wide enough (~100K cuts) that
    // per-cut costs dominate any setup constant. BFS/DFS rows are capped
    // to the d8 posets — their visited sets on d-300's 42M cuts would
    // need gigabytes; the lexical rows cover the big poset.
    let d8_dense = ("d8-dense", RandomComputation::new(8, 4, 0.6, 7).generate());
    let d8_wide = ("d8-wide", RandomComputation::new(8, 4, 0.25, 11).generate());
    let d300 = (
        "d-300",
        paramount_workloads::distributed::scaled(30, 0.83, 300).generate(),
    );

    for (name, poset) in [&d8_dense, &d8_wide] {
        seq_lexical(name, poset);
        let (cuts, allocs) = alloc_track::measure_allocs(|| {
            let mut sink = CountSink::default();
            bfs::enumerate(poset, &bfs::BfsOptions::default(), &mut sink).expect("unbounded");
            sink.count
        });
        report(name, "bfs seq", cuts, allocs);

        let (cuts, allocs) = alloc_track::measure_allocs(|| {
            let mut sink = CountSink::default();
            dfs::enumerate(poset, &dfs::DfsOptions::default(), &mut sink).expect("unbounded");
            sink.count
        });
        report(name, "dfs seq", cuts, allocs);
        l_para(name, poset);
    }

    let (name, poset) = &d300;
    seq_lexical(name, poset);
    l_para(name, poset);

    println!("\n(allocs = successful alloc/realloc calls during the run; L-Para rows include pool setup)");
}

fn seq_lexical(name: &str, poset: &Poset) {
    let (cuts, allocs) = alloc_track::measure_allocs(|| {
        let mut sink = CountSink::default();
        lexical::enumerate(poset, &mut sink).expect("stateless");
        sink.count
    });
    report(name, "lexical seq", cuts, allocs);
}

fn l_para(name: &str, poset: &Poset) {
    for threads in [1usize, 8] {
        let (cuts, allocs) = alloc_track::measure_allocs(|| {
            let sink = AtomicCountSink::new();
            ParaMount::new(Algorithm::Lexical)
                .with_threads(threads)
                .enumerate(poset, &sink)
                .expect("stateless");
            sink.count()
        });
        report(name, &format!("L-Para t={threads}"), cuts, allocs);
    }
}
