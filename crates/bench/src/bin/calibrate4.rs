//! Final calibration pass: lexical counts + BFS peak widths for the
//! committed Table 1 inputs, to choose the frontier budget that cleanly
//! separates the paper's `o.o.m.` rows (bank, hedc, elevator) from the
//! finishing ones (d-*, tsp).

use paramount_bench::fmt::group_digits;
use paramount_enumerate::bfs::{self, BfsOptions};
use paramount_enumerate::{lexical, CountSink, EnumError};
use paramount_poset::{CutRef, CutSpace};
use paramount_trace::sim::SimScheduler;
use paramount_workloads::{banking, distributed, elevator, hedc, tsp};
use std::ops::ControlFlow;
use std::time::Instant;

fn probe<S: CutSpace + ?Sized>(name: &str, poset: &S, cap: u64, bfs_budget: usize) {
    let mut count = 0u64;
    let start = Instant::now();
    let mut sink = |_: CutRef<'_>| {
        count += 1;
        if count >= cap {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    };
    let capped = matches!(
        lexical::enumerate(poset, &mut sink),
        Err(EnumError::Stopped)
    );
    let lex_secs = start.elapsed().as_secs_f64();

    let (peak, oom, bfs_secs) = if capped {
        (0, true, f64::NAN)
    } else {
        let mut c = CountSink::default();
        let start = Instant::now();
        match bfs::enumerate(
            poset,
            &BfsOptions {
                frontier_budget: Some(bfs_budget),
            },
            &mut c,
        ) {
            Ok(stats) => (stats.peak_frontiers, false, start.elapsed().as_secs_f64()),
            Err(EnumError::OutOfBudget { live_frontiers, .. }) => {
                (live_frontiers, true, start.elapsed().as_secs_f64())
            }
            Err(e) => panic!("{e}"),
        }
    };
    println!(
        "{name:>16}: cuts={:>14}{} lex={lex_secs:>7.2}s bfs_peak={:>12} oom={oom} bfs={bfs_secs:>7.2}s",
        group_digits(count),
        if capped { "+" } else { " " },
        group_digits(peak as u64),
    );
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let budget: usize = std::env::args()
        .nth(2)
        .and_then(|v| v.parse().ok())
        .unwrap_or(30_000_000);

    if which == "all" || which == "d" {
        probe(
            "d-300",
            &distributed::scaled(30, 0.83, 300).generate(),
            u64::MAX,
            budget,
        );
        probe(
            "d-500",
            &distributed::scaled(50, 0.705, 500).generate(),
            u64::MAX,
            budget,
        );
    }
    if which == "all" || which == "tsp" {
        for (sub, depth) in [(20usize, 2usize), (20, 3), (40, 2)] {
            let p = SimScheduler::new(17).run(&tsp::program(&tsp::Params {
                workers: 8,
                subproblems: sub,
                prune_depth: depth,
            }));
            probe(&format!("tsp 8x{sub}x{depth}"), &p, u64::MAX, budget);
        }
    }
    if which == "all" || which == "elev" {
        for (trips, moves) in [(3usize, 3usize), (2, 4), (3, 4)] {
            let p = SimScheduler::new(17).run(&elevator::wide_program(11, trips, moves));
            probe(
                &format!("elev-w 11x{trips}x{moves}"),
                &p,
                2_000_000_000,
                budget,
            );
        }
    }
    if which == "d10k" {
        probe(
            "d-10K",
            &distributed::scaled(1000, 0.98, 10_000).generate(),
            u64::MAX,
            budget,
        );
    }
    if which == "bank" {
        let p = SimScheduler::new(17).run(&banking::wide_program(8, 4));
        probe("bank-w 8x4", &p, u64::MAX, budget);
        let h = SimScheduler::new(17).run(&hedc::wide_program(11, 4));
        probe("hedc-w 11x4", &h, u64::MAX, budget);
    }
}
