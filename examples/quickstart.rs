//! Quickstart: build a small poset of events, enumerate every consistent
//! global state with the sequential lexical algorithm, then do it again in
//! parallel with ParaMount and check both agree.
//!
//! The poset is the paper's Figure 4: two threads, two events each, with
//! cross dependencies `e2[1] → e1[2]` and `e1[1] → e2[2]`. Its lattice has
//! exactly 7 consistent cuts (Figure 4(c)).
//!
//! Run with: `cargo run --example quickstart`

use paramount_suite::prelude::*;
use std::ops::ControlFlow;

fn main() {
    // 1. Build the poset. Vector clocks are computed automatically from
    //    the declared dependencies.
    let mut builder = PosetBuilder::new(2);
    let e1_1 = builder.append(Tid(0), "e1[1]");
    let e2_1 = builder.append(Tid(1), "e2[1]");
    let e1_2 = builder.append_after(Tid(0), &[e2_1], "e1[2]");
    let e2_2 = builder.append_after(Tid(1), &[e1_1], "e2[2]");
    let poset = builder.finish();

    println!("events and their vector clocks:");
    for id in [e1_1, e2_1, e1_2, e2_2] {
        println!("  {id}  vc={}", poset.vc(id));
    }

    // 2. Sequential enumeration (Garg/Ganter lexical order).
    println!("\nconsistent global states (lexical order):");
    let mut cuts = Vec::new();
    let mut sink = |cut: CutRef<'_>| {
        println!("  {cut}");
        cuts.push(cut.to_frontier());
        ControlFlow::<()>::Continue(())
    };
    paramount_suite::paramount_enumerate::lexical::enumerate(&poset, &mut sink)
        .expect("lexical enumeration cannot fail");
    assert_eq!(cuts.len(), 7, "Figure 4 has exactly 7 consistent cuts");

    // 3. The same lattice, in parallel: ParaMount partitions it into one
    //    interval per event (run with 4 worker threads here).
    let order = topo::weight_order(&poset);
    println!("\nParaMount partition under ->p = {order:?}:");
    for interval in partition(&poset, &order) {
        println!(
            "  I({})  = [{}, {}]{}",
            interval.event,
            interval.gmin,
            interval.gbnd,
            if interval.include_empty {
                "  (+ empty cut)"
            } else {
                ""
            }
        );
    }

    let sink = ConcurrentCollectSink::new();
    let stats = ParaMount::new(Algorithm::Lexical)
        .with_threads(4)
        .enumerate(&poset, &sink)
        .expect("enumeration failed");
    let mut parallel = sink.into_cuts();
    parallel.sort();
    cuts.sort();
    assert_eq!(
        parallel, cuts,
        "parallel == sequential, each cut exactly once"
    );
    println!(
        "\nParaMount enumerated {} cuts over {} intervals — identical to the sequential run.",
        stats.cuts, stats.intervals
    );
}
