//! `--metrics-out` support for the bench binaries: collect labeled
//! engine [`MetricsSnapshot`]s while a table or figure is measured and
//! emit them as JSON lines at the end of the run.
//!
//! Every snapshot line carries the label passed to [`MetricsOut::record`]
//! (e.g. `table1.d-300.lexical.t4`), so one sweep file stays greppable
//! per benchmark, per subroutine, and per thread count.

use paramount::MetricsSnapshot;

/// Where the JSON lines go: stderr (`--metrics-out -`) or a file.
enum Target {
    Stderr,
    File(String),
}

/// Accumulates JSON lines until [`MetricsOut::flush`].
pub struct MetricsOut {
    target: Target,
    lines: String,
}

/// Parses `--metrics-out <path>` from argv. Absent flag → `None`
/// (binaries record nothing and pay nothing); path `-` → stderr.
pub fn from_args() -> Option<MetricsOut> {
    let args: Vec<String> = std::env::args().collect();
    let i = args.iter().position(|a| a == "--metrics-out")?;
    let path = args.get(i + 1).cloned().unwrap_or_else(|| "-".to_string());
    let target = if path == "-" {
        Target::Stderr
    } else {
        Target::File(path)
    };
    Some(MetricsOut {
        target,
        lines: String::new(),
    })
}

impl MetricsOut {
    /// Appends one run's snapshot under `label`.
    pub fn record(&mut self, label: &str, snapshot: &MetricsSnapshot) {
        snapshot.write_json_lines(label, &mut self.lines);
    }

    /// Writes everything recorded so far to the chosen target.
    pub fn flush(self) {
        match self.target {
            Target::Stderr => eprint!("{}", self.lines),
            Target::File(path) => {
                if let Err(e) = std::fs::write(&path, &self.lines) {
                    eprintln!("cannot write --metrics-out {path}: {e}");
                }
            }
        }
    }
}

/// Records into an optional sink — the no-flag case stays a no-op at the
/// call site without an `if let` per measurement.
pub fn record(out: &mut Option<MetricsOut>, label: &str, snapshot: &MetricsSnapshot) {
    if let Some(m) = out.as_mut() {
        m.record(label, snapshot);
    }
}

/// Flushes an optional sink.
pub fn flush(out: Option<MetricsOut>) {
    if let Some(m) = out {
        m.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optional_sink_is_a_cheap_no_op() {
        let mut none: Option<MetricsOut> = None;
        record(&mut none, "x", &MetricsSnapshot::default());
        flush(none);
    }

    #[test]
    fn recorded_lines_carry_the_label() {
        let mut out = MetricsOut {
            target: Target::Stderr,
            lines: String::new(),
        };
        out.record("fig10.d-300.t4", &MetricsSnapshot::default());
        assert!(out.lines.contains("\"label\":\"fig10.d-300.t4\""));
        for line in out.lines.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }
}
