//! Vector-clock capture of executions — the paper's Part I (§4.1) with the
//! event-collection optimization of §4.4.

use crate::{Access, EventCollection, LockId, TraceEvent, VarId};
use paramount_poset::builder::PosetBuilder;
use paramount_poset::{Poset, Tid};
use paramount_vclock::VectorClock;

/// Where captured events go.
///
/// Offline capture collects into a poset ([`PosetCollector`]); online
/// capture streams each event into the enumeration engine the moment it is
/// complete (any `FnMut` closure works).
pub trait EventOut {
    /// Receives one captured event with its final vector clock.
    fn emit(&mut self, t: Tid, vc: VectorClock, event: TraceEvent);
}

impl<F: FnMut(Tid, VectorClock, TraceEvent)> EventOut for F {
    fn emit(&mut self, t: Tid, vc: VectorClock, event: TraceEvent) {
        self(t, vc, event)
    }
}

/// Collects captured events into a `Poset<TraceEvent>`.
pub struct PosetCollector {
    builder: PosetBuilder<TraceEvent>,
}

impl PosetCollector {
    /// A collector for an `n`-thread execution.
    pub fn new(n: usize) -> Self {
        PosetCollector {
            builder: PosetBuilder::new(n),
        }
    }

    /// The observed poset.
    pub fn into_poset(self) -> Poset<TraceEvent> {
        self.builder.finish()
    }
}

impl EventOut for PosetCollector {
    fn emit(&mut self, t: Tid, vc: VectorClock, event: TraceEvent) {
        self.builder.append_with_clock(t, vc, event);
    }
}

/// Capture configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecorderConfig {
    /// Also capture synchronization operations (acquire/release/fork/join)
    /// as poset events. The race detector leaves this off — §4.4 captures
    /// only predicate-relevant accesses — but general predicate detection
    /// (e.g. the Figure 2 monitor example) wants the sync events visible.
    pub capture_sync: bool,
}

/// The happened-before recorder.
///
/// One instance observes a whole execution. Callers report operations in
/// each thread's program order; cross-thread calls must reflect the real
/// synchronization order (a lock's release reported before the next
/// acquire of that lock, a fork before the child's first operation, a join
/// after the child's last). Both provided executors guarantee this.
///
/// Clock discipline: a thread's clock component ticks exactly once per
/// *emitted* event, so `vc[t]` equals the event's 1-based index on `t` —
/// the invariant the poset layer builds on. Synchronization that is not
/// captured as an event only *joins* clocks (knowledge transfer without a
/// new poset element).
///
/// ```
/// use paramount_trace::{PosetCollector, Recorder, RecorderConfig, VarId, LockId};
/// use paramount_poset::{EventId, Tid};
///
/// let mut r = Recorder::new(2, 1, RecorderConfig::default(), PosetCollector::new(2));
/// r.acquire(Tid(0), LockId(0));
/// r.write(Tid(0), VarId(0));
/// r.release(Tid(0), LockId(0));
/// r.acquire(Tid(1), LockId(0)); // after t0's release: lock-atomicity edge
/// r.read(Tid(1), VarId(0));
/// r.release(Tid(1), LockId(0));
/// let poset = r.finish().into_poset();
/// assert!(poset.happened_before(
///     EventId::new(Tid(0), 1),
///     EventId::new(Tid(1), 1),
/// ));
/// ```
pub struct Recorder<E> {
    config: RecorderConfig,
    clocks: Vec<VectorClock>,
    lock_clocks: Vec<VectorClock>,
    /// Open access segment per thread (clock fixed at open).
    segments: Vec<Option<Segment>>,
    /// Variables that have been written at least once (first writes are
    /// flagged as initialization — §5.2 refinement).
    written: Vec<bool>,
    out: E,
    events_emitted: u64,
}

struct Segment {
    clock: VectorClock,
    collection: EventCollection,
}

impl<E: EventOut> Recorder<E> {
    /// A recorder for `n` threads and `locks` locks, emitting into `out`.
    pub fn new(n: usize, locks: usize, config: RecorderConfig, out: E) -> Self {
        Recorder {
            config,
            clocks: (0..n).map(|_| VectorClock::zero(n)).collect(),
            lock_clocks: (0..locks).map(|_| VectorClock::zero(n)).collect(),
            segments: (0..n).map(|_| None).collect(),
            written: Vec::new(),
            out,
            events_emitted: 0,
        }
    }

    /// Number of threads being observed.
    pub fn num_threads(&self) -> usize {
        self.clocks.len()
    }

    /// Number of locks currently known to the recorder.
    pub fn num_locks(&self) -> usize {
        self.lock_clocks.len()
    }

    /// Grows the lock table so ids `0..n` are valid. Streaming sessions
    /// (the ingest wire protocol) intern locks by name on first use, so
    /// the full lock count is not known when the recorder is created.
    pub fn ensure_locks(&mut self, n: usize) {
        let threads = self.num_threads();
        while self.lock_clocks.len() < n {
            self.lock_clocks.push(VectorClock::zero(threads));
        }
    }

    /// Events emitted so far.
    pub fn events_emitted(&self) -> u64 {
        self.events_emitted
    }

    /// Thread `t` reads variable `v`.
    pub fn read(&mut self, t: Tid, v: VarId) {
        self.record_access(t, Access::read(v));
    }

    /// Thread `t` writes variable `v`.
    pub fn write(&mut self, t: Tid, v: VarId) {
        if self.written.len() <= v.index() {
            self.written.resize(v.index() + 1, false);
        }
        let first = !self.written[v.index()];
        self.written[v.index()] = true;
        let access = if first {
            Access::init_write(v)
        } else {
            Access::write(v)
        };
        self.record_access(t, access);
    }

    fn record_access(&mut self, t: Tid, access: Access) {
        let i = t.index();
        if self.segments[i].is_none() {
            // Open a segment: this is a new poset event — tick now so the
            // collection's shared clock indexes it correctly.
            self.clocks[i].tick(t);
            self.segments[i] = Some(Segment {
                clock: self.clocks[i].clone(),
                collection: EventCollection::new(),
            });
        }
        self.segments[i]
            .as_mut()
            .expect("just opened")
            .collection
            .record(access);
    }

    /// Thread `t` acquired lock `l` (report *after* the real acquisition).
    pub fn acquire(&mut self, t: Tid, l: LockId) {
        self.close_segment(t);
        // Algorithm 3 knowledge transfer: the acquirer learns everything
        // the last releaser knew.
        let lock_vc = self.lock_clocks[l.index()].clone();
        self.clocks[t.index()].join(&lock_vc);
        if self.config.capture_sync {
            self.emit_sync(t, TraceEvent::Acquire(l));
            // The acquire event itself becomes part of the lock's history.
            self.lock_clocks[l.index()] = self.clocks[t.index()].clone();
        }
    }

    /// Thread `t` is about to release lock `l` (report *before* the real
    /// release).
    pub fn release(&mut self, t: Tid, l: LockId) {
        self.close_segment(t);
        if self.config.capture_sync {
            self.emit_sync(t, TraceEvent::Release(l));
        }
        // Everything `t` did up to here flows to the next acquirer.
        self.lock_clocks[l.index()] = self.clocks[t.index()].clone();
    }

    /// Thread `parent` forks `child` (report *before* the child starts).
    pub fn fork(&mut self, parent: Tid, child: Tid) {
        self.close_segment(parent);
        if self.config.capture_sync {
            self.emit_sync(parent, TraceEvent::Fork(child));
        }
        let parent_vc = self.clocks[parent.index()].clone();
        self.clocks[child.index()].join(&parent_vc);
    }

    /// Thread `parent` joined `child` (report *after* the child finished,
    /// including its [`Recorder::finish_thread`]).
    pub fn join(&mut self, parent: Tid, child: Tid) {
        self.close_segment(parent);
        let child_vc = self.clocks[child.index()].clone();
        self.clocks[parent.index()].join(&child_vc);
        if self.config.capture_sync {
            self.emit_sync(parent, TraceEvent::Join(child));
        }
    }

    /// Thread `t` finished: flush its open segment.
    pub fn finish_thread(&mut self, t: Tid) {
        self.close_segment(t);
    }

    /// Flushes every open segment and returns the event consumer.
    pub fn finish(mut self) -> E {
        for t in 0..self.num_threads() {
            self.close_segment(Tid::from(t));
        }
        self.out
    }

    fn close_segment(&mut self, t: Tid) {
        if let Some(segment) = self.segments[t.index()].take() {
            debug_assert!(
                !segment.collection.is_empty(),
                "segments only open on an access"
            );
            self.events_emitted += 1;
            self.out
                .emit(t, segment.clock, TraceEvent::Accesses(segment.collection));
        }
    }

    fn emit_sync(&mut self, t: Tid, event: TraceEvent) {
        self.clocks[t.index()].tick(t);
        self.events_emitted += 1;
        self.out.emit(t, self.clocks[t.index()].clone(), event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paramount_poset::EventId;

    fn access_poset(f: impl FnOnce(&mut Recorder<PosetCollector>)) -> Poset<TraceEvent> {
        let mut r = Recorder::new(2, 2, RecorderConfig::default(), PosetCollector::new(2));
        f(&mut r);
        r.finish().into_poset()
    }

    #[test]
    fn figure9_segment_merging_end_to_end() {
        // t1: w(v1) r(v1) r(v2) r(v2) | acq l | r(v1) w(v2) | rel l
        let p = access_poset(|r| {
            let (v1, v2, l) = (VarId(0), VarId(1), LockId(0));
            r.write(Tid(0), v1);
            r.read(Tid(0), v1);
            r.read(Tid(0), v2);
            r.read(Tid(0), v2);
            r.acquire(Tid(0), l);
            r.read(Tid(0), v1);
            r.write(Tid(0), v2);
            r.release(Tid(0), l);
        });
        assert_eq!(p.num_events(), 2, "two segments, two collections");
        let first = p.payload(EventId::new(Tid(0), 1)).collection().unwrap();
        // Globally first writes carry the §5.2 initialization flag.
        assert_eq!(
            first.accesses(),
            &[Access::init_write(VarId(0)), Access::read(VarId(1))]
        );
        let second = p.payload(EventId::new(Tid(0), 2)).collection().unwrap();
        assert_eq!(
            second.accesses(),
            &[Access::read(VarId(0)), Access::init_write(VarId(1))]
        );
    }

    #[test]
    fn lock_atomicity_creates_hb_edge() {
        // t0 writes x under l; t1 then reads x under l (real order:
        // t0's release before t1's acquire). The two collections must be
        // causally ordered.
        let p = access_poset(|r| {
            let (x, l) = (VarId(0), LockId(0));
            r.acquire(Tid(0), l);
            r.write(Tid(0), x);
            r.release(Tid(0), l);
            r.acquire(Tid(1), l);
            r.read(Tid(1), x);
            r.release(Tid(1), l);
        });
        let e0 = EventId::new(Tid(0), 1);
        let e1 = EventId::new(Tid(1), 1);
        assert!(p.happened_before(e0, e1));
        assert!(!p.concurrent(e0, e1));
    }

    #[test]
    fn unsynchronized_accesses_stay_concurrent() {
        let p = access_poset(|r| {
            r.write(Tid(0), VarId(0));
            r.write(Tid(1), VarId(0));
        });
        assert!(p.concurrent(EventId::new(Tid(0), 1), EventId::new(Tid(1), 1)));
    }

    #[test]
    fn fork_and_join_edges() {
        let p = access_poset(|r| {
            let x = VarId(0);
            r.write(Tid(0), x); // parent event 1
            r.fork(Tid(0), Tid(1));
            r.write(Tid(1), x); // child event 1 — after fork
            r.finish_thread(Tid(1));
            r.join(Tid(0), Tid(1));
            r.read(Tid(0), x); // parent event 2 — after join
        });
        let parent1 = EventId::new(Tid(0), 1);
        let child1 = EventId::new(Tid(1), 1);
        let parent2 = EventId::new(Tid(0), 2);
        assert!(p.happened_before(parent1, child1), "fork edge");
        assert!(p.happened_before(child1, parent2), "join edge");
    }

    #[test]
    fn capture_sync_emits_sync_events() {
        let mut r = Recorder::new(
            2,
            1,
            RecorderConfig { capture_sync: true },
            PosetCollector::new(2),
        );
        let (x, l) = (VarId(0), LockId(0));
        r.acquire(Tid(0), l);
        r.write(Tid(0), x);
        r.release(Tid(0), l);
        r.acquire(Tid(1), l);
        r.read(Tid(1), x);
        r.release(Tid(1), l);
        let p = r.finish().into_poset();
        // t0: acq, accesses, rel ; t1: acq, accesses, rel.
        assert_eq!(p.num_events(), 6);
        assert!(matches!(
            p.payload(EventId::new(Tid(0), 1)),
            TraceEvent::Acquire(_)
        ));
        // Release of t0 happens before acquire of t1 (monitor edge of
        // Figure 2).
        assert!(p.happened_before(EventId::new(Tid(0), 3), EventId::new(Tid(1), 1)));
    }

    #[test]
    fn clock_indices_match_emitted_events() {
        // Sync joins must not tick: emitted event k of a thread has
        // vc[t] == k even with interleaved lock traffic.
        let p = access_poset(|r| {
            let (x, l) = (VarId(0), LockId(0));
            for _ in 0..3 {
                r.acquire(Tid(0), l);
                r.write(Tid(0), x);
                r.release(Tid(0), l);
            }
        });
        assert_eq!(p.num_events(), 3);
        for k in 1..=3u32 {
            let id = EventId::new(Tid(0), k);
            assert_eq!(p.vc(id).get(Tid(0)), k);
        }
    }

    #[test]
    fn events_emitted_counter() {
        let mut r = Recorder::new(1, 0, RecorderConfig::default(), PosetCollector::new(1));
        r.write(Tid(0), VarId(0));
        assert_eq!(r.events_emitted(), 0, "segment still open");
        r.finish_thread(Tid(0));
        assert_eq!(r.events_emitted(), 1);
    }
}
