//! The Cooper–Marzullo detection modalities: `Possibly(φ)` and
//! `Definitely(φ)`.
//!
//! The paper's detector answers `Possibly(φ)` — does *some* consistent
//! cut satisfy the predicate? Cooper and Marzullo's original work \[6\]
//! also defined the stronger `Definitely(φ)`: does **every** execution
//! path (every maximal chain of the cut lattice) pass through a
//! satisfying cut? A bug that is `Possibly` can be scheduled away; a bug
//! that is `Definitely` will happen no matter how the scheduler behaves.
//!
//! * [`possibly`] — one existential witness, via any enumerator with
//!   early stop (ParaMount-parallel when called through the detectors).
//! * [`definitely`] — the classic level-BFS: walk the lattice level by
//!   level keeping only cuts reachable *without* satisfying φ; if the
//!   final cut stays reachable, some full schedule avoids φ, so the
//!   answer is no. `O(n · i(P))` time like the underlying BFS.

use paramount_enumerate::bfs::{self, BfsOptions};
use paramount_enumerate::fxhash::FxHashSet;
use paramount_enumerate::{EnumError, FirstMatchSink};
use paramount_poset::{CutRef, CutSpace, EventId, Frontier, Tid};

/// Does some consistent cut satisfy `phi`? Returns the first witness
/// found (in BFS order).
pub fn possibly<S, F>(space: &S, mut phi: F) -> Option<Frontier>
where
    S: CutSpace + ?Sized,
    F: FnMut(CutRef<'_>) -> bool,
{
    let mut sink = FirstMatchSink::new(&mut phi);
    match bfs::enumerate(space, &BfsOptions::default(), &mut sink) {
        Err(EnumError::Stopped) => sink.witness,
        Ok(_) => None,
        Err(e) => panic!("unbudgeted BFS cannot fail: {e}"),
    }
}

/// Does **every** execution path pass through a cut satisfying `phi`?
///
/// Implementation: breadth-first over lattice levels, tracking the cuts
/// reachable along φ-avoiding paths only. `Definitely(φ)` holds iff the
/// avoiding set dies out before the final cut. (The empty and final cuts
/// participate like any other cut, as in \[6\].)
pub fn definitely<S, F>(space: &S, mut phi: F) -> bool
where
    S: CutSpace + ?Sized,
    F: FnMut(CutRef<'_>) -> bool,
{
    let n = space.num_threads();
    let empty = Frontier::empty(n);
    let last = space.current_frontier();
    if phi(empty.as_cut()) {
        return true; // every path starts here
    }
    let mut level: Vec<Frontier> = vec![empty];
    let mut next: FxHashSet<Frontier> = FxHashSet::default();
    while !level.is_empty() {
        for cut in &level {
            if cut == &last {
                // A complete φ-avoiding schedule exists.
                return false;
            }
            for t in Tid::all(n) {
                let next_index = cut.get(t) + 1;
                if next_index > last.get(t) {
                    continue;
                }
                let e = EventId::new(t, next_index);
                if cut.enables(space, e) {
                    let succ = cut.advanced(t);
                    if !next.contains(&succ) && !phi(succ.as_cut()) {
                        next.insert(succ);
                    }
                }
            }
        }
        level.clear();
        level.extend(next.drain());
    }
    true // the avoiding frontier died out: φ is unavoidable
}

#[cfg(test)]
mod tests {
    use super::*;
    use paramount_poset::builder::PosetBuilder;
    use paramount_poset::Poset;

    /// Figure 4's diamond: two threads, cross deps, 7 cuts.
    fn diamond() -> Poset {
        let mut b = PosetBuilder::new(2);
        let a = b.append(Tid(0), ());
        let bb = b.append(Tid(1), ());
        b.append_after(Tid(0), &[bb], ());
        b.append_after(Tid(1), &[a], ());
        b.finish()
    }

    #[test]
    fn possibly_finds_a_witness() {
        let p = diamond();
        let witness = possibly(&p, |g| g.as_slice() == [1, 1]);
        assert_eq!(witness, Some(Frontier::from_counts(vec![1, 1])));
        assert_eq!(
            possibly(&p, |g| g.as_slice() == [2, 0]),
            None,
            "inconsistent"
        );
    }

    #[test]
    fn definitely_through_a_mandatory_cut() {
        // Every path through the diamond passes {1,1}: after both first
        // events and before either second (the cross dependencies force
        // both firsts before either second).
        let p = diamond();
        assert!(definitely(&p, |g| g.as_slice() == [1, 1]));
    }

    #[test]
    fn possibly_but_not_definitely() {
        // Two independent events: {1,0} is possible, but the path that
        // executes t1 first avoids it.
        let mut b = PosetBuilder::new(2);
        b.append(Tid(0), ());
        b.append(Tid(1), ());
        let p = b.finish();
        let phi = |g: CutRef<'_>| g.as_slice() == [1, 0];
        assert!(possibly(&p, phi).is_some());
        assert!(!definitely(&p, phi));
    }

    #[test]
    fn definitely_on_endpoints() {
        let p = diamond();
        assert!(definitely(&p, |g| g.total_events() == 0), "empty cut");
        assert!(definitely(&p, |g| g.total_events() == 4), "final cut");
        assert!(possibly(&p, |g| g.total_events() == 4).is_some());
    }

    #[test]
    fn unsatisfiable_predicate() {
        let p = diamond();
        assert!(possibly(&p, |_| false).is_none());
        assert!(!definitely(&p, |_| false));
        assert!(definitely(&p, |_| true));
    }

    #[test]
    fn definitely_agrees_with_path_oracle_on_random_posets() {
        use paramount_poset::random::RandomComputation;
        // Oracle: recursively check that every maximal path hits φ.
        fn all_paths_hit<S: CutSpace>(
            space: &S,
            cut: &Frontier,
            last: &Frontier,
            phi: &impl Fn(CutRef<'_>) -> bool,
        ) -> bool {
            if phi(cut.as_cut()) {
                return true;
            }
            if cut == last {
                return false;
            }
            let n = space.num_threads();
            for t in Tid::all(n) {
                let k = cut.get(t) + 1;
                if k <= last.get(t) {
                    let e = EventId::new(t, k);
                    if cut.enables(space, e) && !all_paths_hit(space, &cut.advanced(t), last, phi) {
                        return false;
                    }
                }
            }
            true
        }
        for seed in 0..12 {
            let p = RandomComputation::new(3, 3, 0.4, seed).generate();
            let last = p.final_frontier();
            // A few predicate shapes.
            type Pred = Box<dyn Fn(CutRef<'_>) -> bool>;
            let preds: Vec<Pred> = vec![
                Box::new(|g: CutRef<'_>| g.total_events() == 3),
                Box::new(|g: CutRef<'_>| g.get(Tid(0)) == 2),
                Box::new(|g: CutRef<'_>| g.get(Tid(0)) == 1 && g.get(Tid(1)) == 0),
            ];
            for (i, phi) in preds.iter().enumerate() {
                let fast = definitely(&p, phi);
                let slow = all_paths_hit(&p, &Frontier::empty(3), &last, &|g| phi(g));
                assert_eq!(fast, slow, "seed {seed} pred {i}");
            }
        }
    }
}
