//! Calibration helper: reports lattice sizes (capped) for candidate
//! random-computation densities, used to size the `d-*` inputs so the
//! Table 1 harness finishes in minutes on a laptop. Not part of the
//! paper's tables; kept because re-calibration is needed whenever the
//! generator or scales change.

use paramount_bench::fmt::group_digits;
use paramount_enumerate::{lexical, EnumError};
use paramount_poset::random::RandomComputation;
use paramount_poset::CutRef;
use std::ops::ControlFlow;
use std::time::Instant;

fn count_capped(p: &paramount_poset::Poset, cap: u64) -> (u64, bool, f64) {
    let mut count = 0u64;
    let start = Instant::now();
    let mut sink = |_: CutRef<'_>| {
        count += 1;
        if count >= cap {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    };
    let capped = matches!(lexical::enumerate(p, &mut sink), Err(EnumError::Stopped));
    (count, capped, start.elapsed().as_secs_f64())
}

fn main() {
    let cap: u64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(50_000_000);
    println!("cap = {}", group_digits(cap));
    println!(
        "{:>6} {:>6} {:>5} {:>16} {:>7} {:>8}",
        "events", "n", "frac", "cuts", "capped", "secs"
    );
    for &(events, frac) in &[
        (8usize, 0.70f64),
        (8, 0.78),
        (8, 0.85),
        (12, 0.80),
        (12, 0.86),
        (16, 0.82),
        (16, 0.86),
        (16, 0.90),
        (24, 0.88),
        (24, 0.92),
        (32, 0.92),
        (32, 0.95),
        (50, 0.95),
        (100, 0.97),
        (1000, 0.92),
    ] {
        let p = RandomComputation::new(10, events, frac, 42).generate();
        let (cuts, capped, secs) = count_capped(&p, cap);
        println!(
            "{events:>6} {:>6} {frac:>5} {:>16} {:>7} {secs:>8.2}",
            10,
            group_digits(cuts),
            capped
        );
    }
}
