//! Non-terminating programs: monitoring a "server" that never exits.
//!
//! Offline enumeration algorithms need the complete poset before they can
//! start; ParaMount's online mode enumerates *incrementally*, so a
//! long-running service can be monitored continuously — the paper's
//! motivation for web-server applications (§1, §7).
//!
//! This example simulates a request-processing server: worker threads
//! handle batches of requests indefinitely (here: until we stop them),
//! while the online detector watches for a mutual-exclusion-style
//! condition — two workers simultaneously past their "critical section
//! entered" event — and reports periodically without ever needing the
//! execution to finish.
//!
//! Run with: `cargo run --example online_server`

use paramount_suite::prelude::*;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn main() {
    const WORKERS: usize = 3;
    const BATCHES: usize = 40; // "forever", abridged for the example

    // Condition: all workers' frontier events are odd-indexed — in this
    // toy encoding, "inside request processing" — simultaneously.
    let overlaps = Arc::new(AtomicU64::new(0));
    let cuts_seen = Arc::new(AtomicU64::new(0));
    let sink_overlaps = Arc::clone(&overlaps);
    let sink_cuts = Arc::clone(&cuts_seen);
    let engine = OnlineEngine::new(
        WORKERS,
        OnlineEngineConfig {
            workers: 2,
            ..OnlineEngineConfig::default()
        },
        move |cut: &Frontier, _owner: EventId| {
            sink_cuts.fetch_add(1, Ordering::Relaxed);
            let all_processing = (0..WORKERS).all(|i| {
                let k = cut.get(Tid::from(i));
                k > 0 && k % 2 == 1
            });
            if all_processing {
                sink_overlaps.fetch_add(1, Ordering::Relaxed);
            }
            ControlFlow::Continue(())
        },
    );

    // The "server": each batch, every worker emits a begin-processing
    // event (odd) and an end-processing event (even); occasionally a
    // worker hands work to its neighbor, creating a causal edge. Events
    // stream into the engine as they happen; enumeration runs behind.
    let mut last_end: Vec<Option<EventId>> = vec![None; WORKERS];
    for batch in 0..BATCHES {
        for w in 0..WORKERS {
            let t = Tid::from(w);
            // begin processing (depends on neighbor's last completion
            // every third batch — a hand-off edge)
            let deps: Vec<EventId> = if batch % 3 == 2 {
                last_end[(w + 1) % WORKERS].into_iter().collect()
            } else {
                Vec::new()
            };
            engine.observe_after(t, &deps, ());
            // end processing
            last_end[w] = Some(engine.observe_after(t, &[], ()));
        }
        if batch % 10 == 9 {
            // Periodic report — the poset is still growing, yet counts
            // are exact for everything enumerated so far.
            println!(
                "after batch {:>2}: {:>9} global states inspected, {:>7} all-processing overlaps",
                batch + 1,
                cuts_seen.load(Ordering::Relaxed),
                overlaps.load(Ordering::Relaxed),
            );
        }
    }

    let report = engine.finish();
    println!(
        "\nserver 'ran forever' ({} events); the monitor kept up incrementally:",
        report.events
    );
    println!(
        "  {} consistent global states enumerated exactly once, {} overlap states",
        report.cuts,
        overlaps.load(Ordering::Relaxed)
    );
    // Sanity: the final count matches an offline recount of the frozen
    // poset.
    let expected = oracle::count_ideals(&report.poset);
    assert_eq!(report.cuts, expected);
    println!("  (verified against an offline recount: {expected})");
}
