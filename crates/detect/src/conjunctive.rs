//! Conjunctive predicates — the Garg–Waldecker class, as a second
//! predicate family.
//!
//! A conjunctive predicate is `l₁ ∧ l₂ ∧ … ∧ lₙ` where `lᵢ` depends only
//! on thread `i`'s local state (here: its frontier event). The detector
//! asks whether *some* consistent cut satisfies all locals simultaneously
//! — the classic "weak conjunctive predicate" question. ParaMount being
//! general-purpose, this predicate plugs into the same sinks as the race
//! predicate; no algorithmic change is needed.

use crate::EventView;
use paramount_poset::{CutRef, EventId, Frontier, Tid};
use paramount_trace::TraceEvent;
use parking_lot::Mutex;
use std::ops::ControlFlow;

/// Local-state predicate per thread: receives the thread, the index of its
/// frontier event in the cut (0 = no event yet), and the event payload if
/// any.
pub type LocalPredicate = Box<dyn Fn(Tid, u32, Option<&TraceEvent>) -> bool + Send + Sync>;

/// A conjunction of per-thread local predicates, detected over all
/// consistent cuts.
pub struct ConjunctivePredicate {
    locals: Vec<LocalPredicate>,
    witness: Mutex<Option<Frontier>>,
    stop_at_first: bool,
}

impl ConjunctivePredicate {
    /// Builds the conjunction; `locals[i]` is thread `i`'s predicate.
    pub fn new(locals: Vec<LocalPredicate>) -> Self {
        ConjunctivePredicate {
            locals,
            witness: Mutex::new(None),
            stop_at_first: true,
        }
    }

    /// Keep enumerating after the first witness (for counting questions).
    pub fn detect_all(mut self) -> Self {
        self.stop_at_first = false;
        self
    }

    /// Evaluates the conjunction on one cut.
    pub fn evaluate(
        &self,
        view: &(impl EventView + ?Sized),
        cut: CutRef<'_>,
        _owner: EventId,
    ) -> ControlFlow<()> {
        debug_assert_eq!(self.locals.len(), view.num_threads());
        let all_hold = self.locals.iter().enumerate().all(|(i, local)| {
            let t = Tid::from(i);
            let index = cut.get(t);
            let payload = if index == 0 {
                None
            } else {
                Some(view.payload(EventId::new(t, index)))
            };
            local(t, index, payload)
        });
        if all_hold {
            let mut witness = self.witness.lock();
            if witness.is_none() {
                *witness = Some(cut.to_frontier());
            }
            if self.stop_at_first {
                return ControlFlow::Break(());
            }
        }
        ControlFlow::Continue(())
    }

    /// The first (in detection order) witnessing cut, if any.
    pub fn witness(&self) -> Option<Frontier> {
        self.witness.lock().clone()
    }

    /// Did any cut satisfy the conjunction?
    pub fn detected(&self) -> bool {
        self.witness.lock().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paramount_poset::builder::PosetBuilder;
    use paramount_poset::Poset;
    use paramount_trace::{Access, EventCollection, VarId};

    fn writes(var: u32) -> TraceEvent {
        let mut ec = EventCollection::new();
        ec.record(Access::write(VarId(var)));
        TraceEvent::Accesses(ec)
    }

    /// Local predicate: thread's frontier event writes the given variable.
    fn writes_var(var: u32) -> LocalPredicate {
        Box::new(move |_, _, payload| {
            payload.and_then(TraceEvent::collection).is_some_and(|ec| {
                ec.accesses()
                    .iter()
                    .any(|a| a.is_write && a.var == VarId(var))
            })
        })
    }

    fn two_writer_poset() -> Poset<TraceEvent> {
        // t0: w(v0) then w(v2); t1: w(v1).
        let mut b = PosetBuilder::new(2);
        b.append(Tid(0), writes(0));
        b.append(Tid(0), writes(2));
        b.append(Tid(1), writes(1));
        b.finish()
    }

    #[test]
    fn satisfiable_conjunction_finds_witness() {
        let p = two_writer_poset();
        let pred = ConjunctivePredicate::new(vec![writes_var(0), writes_var(1)]);
        // Walk all cuts manually (tests don't need the full engine).
        let owner = EventId::new(Tid(0), 1);
        let mut stopped = false;
        for g in paramount_poset::oracle::enumerate_product_scan(&p) {
            if pred.evaluate(&p, g.as_cut(), owner).is_break() {
                stopped = true;
                break;
            }
        }
        assert!(stopped);
        assert_eq!(pred.witness(), Some(Frontier::from_counts(vec![1, 1])));
    }

    #[test]
    fn unsatisfiable_conjunction_has_no_witness() {
        let p = two_writer_poset();
        // v0 and v2 are both written by t0 — never simultaneously on two
        // frontiers of different threads.
        let pred = ConjunctivePredicate::new(vec![writes_var(2), writes_var(2)]);
        let owner = EventId::new(Tid(0), 1);
        for g in paramount_poset::oracle::enumerate_product_scan(&p) {
            assert!(pred.evaluate(&p, g.as_cut(), owner).is_continue());
        }
        assert!(!pred.detected());
    }

    #[test]
    fn detect_all_keeps_enumerating() {
        let p = two_writer_poset();
        let pred =
            ConjunctivePredicate::new(vec![Box::new(|_, _, _| true), Box::new(|_, _, _| true)])
                .detect_all();
        let owner = EventId::new(Tid(0), 1);
        let mut visits = 0;
        for g in paramount_poset::oracle::enumerate_product_scan(&p) {
            assert!(pred.evaluate(&p, g.as_cut(), owner).is_continue());
            visits += 1;
        }
        assert!(visits > 1);
        // Witness is the first cut satisfying the (trivial) conjunction.
        assert_eq!(pred.witness(), Some(Frontier::from_counts(vec![0, 0])));
    }
}
