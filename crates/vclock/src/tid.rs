use std::fmt;

/// A dense thread (or, in distributed computations, process) identifier.
///
/// Thread ids index vector-clock components and frontier slots, so they are
/// required to be dense: a computation over `n` threads uses exactly the ids
/// `0..n`. The paper writes threads as `t1..tn` (1-based); this crate is
/// 0-based throughout and the `Display` impl prints the paper's 1-based name.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Tid(pub u32);

impl Tid {
    /// The id as a `usize` index, for vector-clock and frontier slots.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterator over all thread ids of an `n`-thread computation.
    pub fn all(n: usize) -> impl ExactSizeIterator<Item = Tid> {
        (0..n as u32).map(Tid)
    }
}

impl From<usize> for Tid {
    #[inline]
    fn from(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize);
        Tid(i as u32)
    }
}

impl From<u32> for Tid {
    #[inline]
    fn from(i: u32) -> Self {
        Tid(i)
    }
}

impl fmt::Display for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Paper notation: threads are t1, t2, ...
        write!(f, "t{}", self.0 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_one_based() {
        assert_eq!(Tid(0).to_string(), "t1");
        assert_eq!(Tid(7).to_string(), "t8");
    }

    #[test]
    fn all_yields_dense_ids() {
        let ids: Vec<Tid> = Tid::all(4).collect();
        assert_eq!(ids, vec![Tid(0), Tid(1), Tid(2), Tid(3)]);
        assert_eq!(Tid::all(0).len(), 0);
    }

    #[test]
    fn index_round_trips() {
        for i in [0usize, 1, 63, 1000] {
            assert_eq!(Tid::from(i).index(), i);
        }
    }
}
