//! A segmented append-only write-ahead log of checksummed records.
//!
//! # On-disk format
//!
//! A log lives in one directory as numbered segment files
//! `wal-<seq>.log` (`seq` is a zero-padded decimal, strictly
//! increasing; the highest segment is the active one). Each segment is
//! an 8-byte magic header followed by records:
//!
//! ```text
//! segment := "pmwal001" record*
//! record  := kind:u8 len:varint payload:len*u8 crc:u32le
//! ```
//!
//! `crc` is the CRC-32 of everything before it (kind, length varint,
//! payload), so a record is either bit-exact or detectably torn. Record
//! `kind` bytes are owned by the caller — the WAL stores and replays
//! them opaquely.
//!
//! # Crash model & torn-tail truncation
//!
//! [`Wal::open`] scans segments in sequence order and replays every
//! record until the first invalid one (bad magic, short read, or CRC
//! mismatch). The offending segment is truncated at the last valid
//! record boundary and **all later segments are deleted**: the log's
//! contents after open are exactly the committed prefix of what was
//! appended, in order. A kill -9 at any instruction loses at most the
//! records an [`FsyncPolicy`] had not yet forced down.
//!
//! # Compaction
//!
//! [`Wal::compact`] writes one record (a checkpoint, by convention)
//! into a *fresh* segment, fsyncs it, and then deletes every earlier
//! segment — LSM-style supersession. A crash between the fsync and the
//! deletes leaves stale segments *behind* a newer checkpoint; replay
//! order is preserved, so a reader that honors "the last checkpoint
//! wins" recovers identically.

use crate::crc32::crc32;
use crate::varint;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Bytes of segment-file magic: `pmwal001`.
const MAGIC: &[u8; 8] = b"pmwal001";

/// When to force appended records to stable storage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every append — maximum durability, one syscall per
    /// record.
    Always,
    /// fsync only at explicit [`Wal::sync`] points (the daemon calls it
    /// on FLUSH and checkpoint) and on segment rotation. The default:
    /// a crash loses at most the records since the last acknowledged
    /// flush, which is exactly what the resume protocol re-sends.
    #[default]
    OnDemand,
    /// Never fsync (the OS flushes on its own schedule). For
    /// throughput benchmarks and tests; a power loss may lose
    /// acknowledged records.
    Never,
}

impl FsyncPolicy {
    /// Parses the CLI spelling (`always` / `ondemand` / `never`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "ondemand" => Some(FsyncPolicy::OnDemand),
            "never" => Some(FsyncPolicy::Never),
            _ => None,
        }
    }

    /// The CLI spelling of this policy.
    pub fn name(self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::OnDemand => "ondemand",
            FsyncPolicy::Never => "never",
        }
    }
}

/// Tuning knobs for one log.
#[derive(Clone, Copy, Debug)]
pub struct WalConfig {
    /// Rotate the active segment once it exceeds this many bytes.
    pub segment_bytes: usize,
    /// When appends reach stable storage.
    pub fsync: FsyncPolicy,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            segment_bytes: 1 << 20,
            fsync: FsyncPolicy::OnDemand,
        }
    }
}

/// One replayed record: the caller's kind byte plus its payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    pub kind: u8,
    pub payload: Vec<u8>,
}

/// A segmented append-only log (see the module docs for the format and
/// crash model).
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    config: WalConfig,
    /// Sealed (non-active) segment sequence numbers, oldest first.
    sealed: Vec<u64>,
    active_seq: u64,
    active: File,
    active_len: u64,
    /// Appends since the last fsync — lets `sync` skip the syscall when
    /// there is nothing to force down.
    dirty: bool,
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:010}.log"))
}

/// Parses `wal-<seq>.log` back into `seq`.
fn parse_segment_name(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    if rest.len() != 10 || !rest.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    rest.parse().ok()
}

/// Decodes records from one segment's bytes (past the magic). Returns
/// the records and the byte offset of the first invalid record (==
/// `bytes.len()` when the whole segment is valid).
fn decode_segment(bytes: &[u8]) -> (Vec<Record>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        let start = pos;
        if pos >= bytes.len() {
            return (records, start);
        }
        let kind = bytes[pos];
        pos += 1;
        let Some(len) = varint::read_u64_at(bytes, &mut pos) else {
            return (records, start);
        };
        let Ok(len) = usize::try_from(len) else {
            return (records, start);
        };
        if bytes.len() - pos < len + 4 {
            return (records, start); // torn mid-payload or mid-crc
        }
        let payload = &bytes[pos..pos + len];
        pos += len;
        let stored = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        pos += 4;
        if crc32(&bytes[start..start + (pos - 4 - start)]) != stored {
            return (records, start);
        }
        records.push(Record {
            kind,
            payload: payload.to_vec(),
        });
    }
}

/// Encodes one record into `out` (framing + CRC).
fn encode_record(out: &mut Vec<u8>, kind: u8, payload: &[u8]) {
    let start = out.len();
    out.push(kind);
    varint::push_u64(out, payload.len() as u64);
    out.extend_from_slice(payload);
    let crc = crc32(&out[start..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// fsyncs the directory entry metadata (file creations/deletions).
fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

impl Wal {
    /// Opens (creating if necessary) the log in `dir`, repairs any torn
    /// tail, and returns the log positioned for appends plus every
    /// committed record in append order.
    pub fn open(dir: &Path, config: WalConfig) -> io::Result<(Wal, Vec<Record>)> {
        fs::create_dir_all(dir)?;
        let mut seqs: Vec<u64> = fs::read_dir(dir)?
            .filter_map(|entry| {
                let entry = entry.ok()?;
                parse_segment_name(entry.file_name().to_str()?)
            })
            .collect();
        seqs.sort_unstable();

        let mut records = Vec::new();
        let mut kept: Vec<u64> = Vec::new();
        let mut torn = false;
        // Replay is disk-read then CPU-decode per segment, strictly in
        // order. A one-segment read-ahead overlaps the two: while
        // segment `i` decodes (varint walk + CRC over every record), a
        // helper thread already reads segment `i+1`'s bytes, so long
        // resumed prefixes replay at roughly max(read, decode) per
        // segment instead of read + decode.
        let mut pending: Option<(u64, std::thread::JoinHandle<io::Result<Vec<u8>>>)> = None;
        for (i, &seq) in seqs.iter().enumerate() {
            let path = segment_path(dir, seq);
            if torn {
                // Everything past a torn point is uncommitted by
                // definition — delete it, after parking any in-flight
                // read-ahead of it.
                if let Some((_, handle)) = pending.take() {
                    let _ = handle.join();
                }
                fs::remove_file(&path)?;
                continue;
            }
            let prefetched = match pending.take() {
                Some((ready_seq, handle)) if ready_seq == seq => handle.join().ok(),
                Some((_, handle)) => {
                    let _ = handle.join();
                    None
                }
                None => None,
            };
            if i + 1 < seqs.len() {
                let next_seq = seqs[i + 1];
                let next_path = segment_path(dir, next_seq);
                if let Ok(handle) = std::thread::Builder::new()
                    .name("wal-readahead".to_string())
                    .spawn(move || {
                        let mut bytes = Vec::new();
                        File::open(&next_path)?.read_to_end(&mut bytes)?;
                        Ok(bytes)
                    })
                {
                    pending = Some((next_seq, handle));
                }
            }
            let bytes = match prefetched {
                Some(Ok(bytes)) => bytes,
                // Read-ahead missed (panicked helper, transient read
                // error): fall back to the plain direct read, which
                // also surfaces any real io error the normal way.
                _ => {
                    let mut bytes = Vec::new();
                    File::open(&path)?.read_to_end(&mut bytes)?;
                    bytes
                }
            };
            if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
                // A segment created but not yet (fully) headed: rewrite
                // it empty and treat it as the torn point.
                let file = OpenOptions::new().write(true).open(&path)?;
                file.set_len(0)?;
                drop(file);
                let mut file = OpenOptions::new().write(true).open(&path)?;
                file.write_all(MAGIC)?;
                file.sync_all()?;
                torn = true;
                kept.push(seq);
                continue;
            }
            let (segment_records, valid_end) = decode_segment(&bytes[MAGIC.len()..]);
            records.extend(segment_records);
            let valid_len = (MAGIC.len() + valid_end) as u64;
            if valid_len < bytes.len() as u64 {
                OpenOptions::new()
                    .write(true)
                    .open(&path)?
                    .set_len(valid_len)?;
                torn = true;
            } else if i + 1 < seqs.len() {
                // Fully valid non-final segment stays sealed.
            }
            kept.push(seq);
        }

        let active_seq = match kept.last() {
            Some(&seq) => seq,
            None => {
                let seq = 1;
                let mut file = File::create(segment_path(dir, seq))?;
                file.write_all(MAGIC)?;
                if config.fsync != FsyncPolicy::Never {
                    file.sync_all()?;
                    sync_dir(dir)?;
                }
                kept.push(seq);
                seq
            }
        };
        let sealed = kept[..kept.len() - 1].to_vec();
        let mut active = OpenOptions::new()
            .read(true)
            .write(true)
            .open(segment_path(dir, active_seq))?;
        let active_len = active.seek(SeekFrom::End(0))?;
        Ok((
            Wal {
                dir: dir.to_path_buf(),
                config,
                sealed,
                active_seq,
                active,
                active_len,
                dirty: false,
            },
            records,
        ))
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of live segment files (sealed + active).
    pub fn segment_count(&self) -> usize {
        self.sealed.len() + 1
    }

    /// Appends one record, rotating the active segment first if it is
    /// over the configured size.
    pub fn append(&mut self, kind: u8, payload: &[u8]) -> io::Result<()> {
        if self.active_len > MAGIC.len() as u64
            && self.active_len >= self.config.segment_bytes as u64
        {
            self.rotate()?;
        }
        let mut buf = Vec::with_capacity(payload.len() + 16);
        encode_record(&mut buf, kind, payload);
        self.active.write_all(&buf)?;
        self.active_len += buf.len() as u64;
        self.dirty = true;
        if self.config.fsync == FsyncPolicy::Always {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces every appended record to stable storage (no-op under
    /// [`FsyncPolicy::Never`] or when nothing is dirty).
    pub fn sync(&mut self) -> io::Result<()> {
        if self.config.fsync == FsyncPolicy::Never || !self.dirty {
            self.dirty = false;
            return Ok(());
        }
        self.active.sync_data()?;
        self.dirty = false;
        Ok(())
    }

    /// Seals the active segment and starts a fresh one.
    fn rotate(&mut self) -> io::Result<()> {
        if self.config.fsync != FsyncPolicy::Never {
            self.active.sync_data()?;
        }
        let seq = self.active_seq + 1;
        let mut file = File::create(segment_path(&self.dir, seq))?;
        file.write_all(MAGIC)?;
        if self.config.fsync != FsyncPolicy::Never {
            file.sync_all()?;
            sync_dir(&self.dir)?;
        }
        self.sealed.push(self.active_seq);
        self.active_seq = seq;
        self.active = file;
        self.active_len = MAGIC.len() as u64;
        self.dirty = false;
        Ok(())
    }

    /// LSM-style compaction: writes `payload` (a checkpoint record, by
    /// convention) as the sole record of a fresh segment, fsyncs it,
    /// then deletes every earlier segment. On return the log holds
    /// exactly one segment whose first record is the checkpoint; a
    /// crash mid-way leaves extra older segments that replay *before*
    /// the checkpoint, which a last-checkpoint-wins reader ignores.
    pub fn compact(&mut self, kind: u8, payload: &[u8]) -> io::Result<usize> {
        self.rotate()?;
        let mut buf = Vec::with_capacity(payload.len() + 16);
        encode_record(&mut buf, kind, payload);
        self.active.write_all(&buf)?;
        self.active_len += buf.len() as u64;
        self.active.sync_data()?;
        let superseded = std::mem::take(&mut self.sealed);
        let removed = superseded.len();
        for seq in superseded {
            fs::remove_file(segment_path(&self.dir, seq))?;
        }
        if self.config.fsync != FsyncPolicy::Never {
            sync_dir(&self.dir)?;
        }
        self.dirty = false;
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("paramount-wal-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn appends_replay_in_order_across_reopen() {
        let dir = scratch_dir("replay");
        let cfg = WalConfig {
            segment_bytes: 64, // force rotations
            ..WalConfig::default()
        };
        let (mut wal, records) = Wal::open(&dir, cfg).unwrap();
        assert!(records.is_empty());
        for i in 0u8..20 {
            wal.append(7, &[i; 9]).unwrap();
        }
        wal.sync().unwrap();
        assert!(wal.segment_count() > 1, "tiny segments must rotate");
        drop(wal);
        let (_wal, records) = Wal::open(&dir, cfg).unwrap();
        assert_eq!(records.len(), 20);
        for (i, rec) in records.iter().enumerate() {
            assert_eq!(rec.kind, 7);
            assert_eq!(rec.payload, vec![i as u8; 9]);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_to_the_committed_prefix() {
        let dir = scratch_dir("torn");
        let (mut wal, _) = Wal::open(&dir, WalConfig::default()).unwrap();
        wal.append(1, b"first").unwrap();
        wal.append(1, b"second").unwrap();
        wal.sync().unwrap();
        let path = segment_path(&dir, 1);
        let committed = fs::metadata(&path).unwrap().len();
        drop(wal);
        // Simulate a torn append: half a record at the tail.
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(&[1, 200]).unwrap(); // kind + length, no payload
        drop(file);
        let (_wal, records) = Wal::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].payload, b"second");
        assert_eq!(fs::metadata(&path).unwrap().len(), committed);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_record_drops_it_and_everything_after() {
        let dir = scratch_dir("corrupt");
        let cfg = WalConfig {
            segment_bytes: 32,
            ..WalConfig::default()
        };
        let (mut wal, _) = Wal::open(&dir, cfg).unwrap();
        for i in 0u8..12 {
            wal.append(2, &[i; 16]).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        // Flip one payload bit in the second segment.
        let path = segment_path(&dir, 2);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let (_wal, records) = Wal::open(&dir, cfg).unwrap();
        assert!(records.len() < 12, "corruption must shorten the replay");
        for (i, rec) in records.iter().enumerate() {
            assert_eq!(rec.payload, vec![i as u8; 16], "prefix stays exact");
        }
        // Re-opening again is stable: same committed prefix.
        let (_wal, again) = Wal::open(&dir, cfg).unwrap();
        assert_eq!(again, records);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_supersedes_and_deletes_older_segments() {
        let dir = scratch_dir("compact");
        let cfg = WalConfig {
            segment_bytes: 48,
            ..WalConfig::default()
        };
        let (mut wal, _) = Wal::open(&dir, cfg).unwrap();
        for i in 0u8..10 {
            wal.append(2, &[i; 12]).unwrap();
        }
        let before = wal.segment_count();
        assert!(before > 1);
        wal.compact(3, b"checkpoint").unwrap();
        assert_eq!(wal.segment_count(), 1);
        wal.append(2, b"after").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_wal, records) = Wal::open(&dir, cfg).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(
            records[0],
            Record {
                kind: 3,
                payload: b"checkpoint".to_vec()
            }
        );
        assert_eq!(
            records[1],
            Record {
                kind: 2,
                payload: b"after".to_vec()
            }
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_ahead_replays_many_segments_and_respects_torn_tails() {
        let dir = scratch_dir("readahead");
        let cfg = WalConfig {
            segment_bytes: 128, // dozens of segments => the prefetch path runs hot
            ..WalConfig::default()
        };
        let (mut wal, _) = Wal::open(&dir, cfg).unwrap();
        for i in 0u16..200 {
            wal.append(5, &i.to_le_bytes()).unwrap();
        }
        wal.sync().unwrap();
        assert!(wal.segment_count() > 10);
        drop(wal);
        // Corrupt a mid-log segment: everything after it must be
        // discarded even though its read-ahead is already in flight.
        let mut seqs: Vec<u64> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| parse_segment_name(e.unwrap().file_name().to_str()?))
            .collect();
        seqs.sort_unstable();
        let victim = seqs[seqs.len() / 2];
        let path = segment_path(&dir, victim);
        let valid = fs::read(&path).unwrap();
        fs::write(&path, &valid[..valid.len() - 1]).unwrap(); // tear the last CRC byte
        let (_wal, records) = Wal::open(&dir, cfg).unwrap();
        assert!(!records.is_empty() && records.len() < 200);
        for (i, rec) in records.iter().enumerate() {
            assert_eq!(rec.payload, (i as u16).to_le_bytes());
        }
        let (_wal, reopened) = Wal::open(&dir, cfg).unwrap();
        assert_eq!(reopened.len(), records.len(), "repair is idempotent");
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Replay throughput over a long multi-segment prefix, for
    /// EXPERIMENTS.md. Run with
    /// `cargo test -p paramount-durable --release -- --ignored readahead_replay`.
    #[test]
    #[ignore]
    fn readahead_replay_throughput() {
        let dir = scratch_dir("readahead-bench");
        let cfg = WalConfig {
            segment_bytes: 1 << 18, // 256 KiB segments
            fsync: FsyncPolicy::Never,
        };
        let payload = [0xabu8; 512];
        let (mut wal, _) = Wal::open(&dir, cfg).unwrap();
        for _ in 0..200_000 {
            wal.append(9, &payload).unwrap();
        }
        wal.sync().unwrap();
        let segments = wal.segment_count();
        drop(wal);
        let started = std::time::Instant::now();
        let (_wal, records) = Wal::open(&dir, cfg).unwrap();
        let elapsed = started.elapsed();
        assert_eq!(records.len(), 200_000);
        println!(
            "replayed {} records across {segments} segments in {elapsed:?} ({:.1} MB/s)",
            records.len(),
            (records.len() * (payload.len() + 8)) as f64 / elapsed.as_secs_f64() / 1e6
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
