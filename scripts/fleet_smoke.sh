#!/usr/bin/env bash
# Fleet failover smoke, driven entirely through the shipped binary:
# start a 3-shard fleet, stream the banking workload through the router
# with a retrying --fleet client, SIGKILL the shard hosting the session
# mid-send, and require the final report to equal `paramount count`.
# (If the kill wins the race with a short trace the send just completes
# before the shard dies — the equality assertion holds either way; the
# deterministic mid-stream case is pinned by crates/cli/tests/fleet.rs.)
set -euo pipefail

PM=${PM:-target/release/paramount}
PORT=${PORT:-7669}
DATA=$(mktemp -d)
LOG="$DATA/fleet.log"
FLEET_PID=""
cleanup() {
  [ -n "$FLEET_PID" ] && kill "$FLEET_PID" 2>/dev/null || true
  rm -rf "$DATA"
}
trap cleanup EXIT

"$PM" gen banking > "$DATA/banking.trace"

"$PM" fleet --listen "127.0.0.1:$PORT" --shards 3 --data-dir "$DATA/root" \
  --probe-interval-ms 100 --probe-deadline-ms 500 \
  --suspect-after 1 --down-after 2 \
  --checkpoint-events 8 --fsync always > "$LOG" 2>&1 &
FLEET_PID=$!
for _ in $(seq 1 100); do
  grep -q "fleet listening on" "$LOG" && break
  sleep 0.1
done
grep "listening on" "$LOG"

"$PM" send "$DATA/banking.trace" --connect "127.0.0.1:$PORT" --fleet \
  --retries 10 --backoff-ms 200 --checkpoint-every 4 \
  > "$DATA/send.out" 2>&1 &
SEND=$!
sleep 0.3

# Kill the shard that actually owns the in-flight session: its durable
# store lives under that shard's subroot. Falls back to shard 0 if the
# send already finished (no session directory left).
HOME_SHARD=$( (ls -d "$DATA/root"/shard-*/session-* 2>/dev/null || true) |
  head -1 | sed -n 's/.*shard-\([0-9]*\)\/session.*/\1/p')
HOME_SHARD=${HOME_SHARD:-0}
VICTIM=$(sed -n "s/^shard $HOME_SHARD pid \([0-9]*\) .*/\1/p" "$LOG")
echo "SIGKILLing shard $HOME_SHARD (pid $VICTIM)"
kill -9 "$VICTIM" || true

wait "$SEND"
SENT=$(cat "$DATA/send.out")
COUNTED=$("$PM" count "$DATA/banking.trace")
echo "send:  $SENT"
echo "count: $COUNTED"
extract() { echo "$1" | sed -n 's/.* \([0-9]\+\) consistent global states.*/\1/p'; }
test -n "$(extract "$SENT")"
test "$(extract "$SENT")" = "$(extract "$COUNTED")"

# The router's STATS endpoint must answer like a daemon's, with fleet
# counters and one shard_state line per shard.
"$PM" stats --connect "127.0.0.1:$PORT" | tee "$DATA/stats.out"
grep -q '"metric":"shard_state"' "$DATA/stats.out"
grep -q '"metric":"sessions_routed"' "$DATA/stats.out"

"$PM" shutdown --connect "127.0.0.1:$PORT"
wait "$FLEET_PID"
FLEET_PID=""
echo "fleet smoke OK"
