use crate::VarId;
use paramount_poset::Tid;
use std::fmt;

/// One monitored memory access.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Access {
    /// The variable touched.
    pub var: VarId,
    /// Write (`true`) or read (`false`).
    pub is_write: bool,
    /// The globally first write of this variable (set by the recorder).
    ///
    /// The paper's detector (§5.2) never blames initialization writes for
    /// a race — "no other thread can have reference to an uninstantiated
    /// object" — which is how it avoids FastTrack's benign report on
    /// `set (correct)`. The flag carries that information to the race
    /// predicate; FastTrack deliberately ignores it.
    pub init: bool,
}

impl Access {
    /// A read of `var`.
    pub fn read(var: VarId) -> Self {
        Access {
            var,
            is_write: false,
            init: false,
        }
    }

    /// A write of `var`.
    pub fn write(var: VarId) -> Self {
        Access {
            var,
            is_write: true,
            init: false,
        }
    }

    /// The initializing (globally first) write of `var`.
    pub fn init_write(var: VarId) -> Self {
        Access {
            var,
            is_write: true,
            init: true,
        }
    }

    /// Do two accesses conflict (same variable, at least one write)?
    pub fn conflicts_with(&self, other: &Access) -> bool {
        self.var == other.var && (self.is_write || other.is_write)
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", if self.is_write { "w" } else { "r" }, self.var)
    }
}

/// The §4.4 *event collection*: all monitored accesses a thread performed
/// between two synchronization points, merged into one poset event.
///
/// Per variable only the first write is kept; if the segment never writes
/// the variable, its first read is kept instead (Figure 9). Every access
/// in the collection shares the collection's single vector clock.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct EventCollection {
    accesses: Vec<Access>,
}

impl EventCollection {
    /// An empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an access under the first-write-else-first-read rule.
    ///
    /// Returns `true` if the collection changed.
    pub fn record(&mut self, access: Access) -> bool {
        match self.accesses.iter_mut().find(|a| a.var == access.var) {
            None => {
                self.accesses.push(access);
                true
            }
            Some(existing) => {
                if access.is_write && !existing.is_write {
                    // A write arrives for a variable we only read so far:
                    // the write is what must be stored (Figure 9's rule).
                    existing.is_write = true;
                    existing.init = access.init;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// The merged accesses (at most one per variable).
    pub fn accesses(&self) -> &[Access] {
        &self.accesses
    }

    /// True when no access was recorded.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Does any stored access conflict with `access`?
    pub fn conflicts_with(&self, access: &Access) -> bool {
        self.accesses.iter().any(|a| a.conflicts_with(access))
    }
}

/// A captured event — the payload type of observed posets.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TraceEvent {
    /// A merged segment of monitored reads/writes (§4.4).
    Accesses(EventCollection),
    /// A lock acquisition (captured only when
    /// [`crate::RecorderConfig::capture_sync`] is on).
    Acquire(crate::LockId),
    /// A lock release.
    Release(crate::LockId),
    /// This thread forked the given thread.
    Fork(Tid),
    /// This thread joined the given thread.
    Join(Tid),
}

impl TraceEvent {
    /// The collection, if this is an access event.
    pub fn collection(&self) -> Option<&EventCollection> {
        match self {
            TraceEvent::Accesses(c) => Some(c),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_rules() {
        let w = Access::write(VarId(1));
        let r = Access::read(VarId(1));
        let other = Access::read(VarId(2));
        assert!(w.conflicts_with(&r));
        assert!(w.conflicts_with(&w));
        assert!(r.conflicts_with(&w));
        assert!(!r.conflicts_with(&r));
        assert!(!w.conflicts_with(&other));
    }

    #[test]
    fn figure9_merging() {
        // t1: w(v1), r(v1), r(v2), r(v2) → stored: w(v1), r(v2).
        let mut ec = EventCollection::new();
        assert!(ec.record(Access::write(VarId(1))));
        assert!(!ec.record(Access::read(VarId(1))));
        assert!(ec.record(Access::read(VarId(2))));
        assert!(!ec.record(Access::read(VarId(2))));
        assert_eq!(
            ec.accesses(),
            &[Access::write(VarId(1)), Access::read(VarId(2))]
        );
    }

    #[test]
    fn read_then_write_upgrades_to_write() {
        // "Only the first write is stored; if there is no write, the first
        // read" — a later write displaces an earlier read.
        let mut ec = EventCollection::new();
        ec.record(Access::read(VarId(5)));
        assert!(ec.record(Access::write(VarId(5))));
        assert_eq!(ec.accesses(), &[Access::write(VarId(5))]);
        // A second write does not change anything (first write is kept).
        assert!(!ec.record(Access::write(VarId(5))));
    }

    #[test]
    fn collection_conflicts() {
        let mut ec = EventCollection::new();
        ec.record(Access::read(VarId(1)));
        ec.record(Access::write(VarId(2)));
        assert!(ec.conflicts_with(&Access::write(VarId(1))));
        assert!(ec.conflicts_with(&Access::read(VarId(2))));
        assert!(!ec.conflicts_with(&Access::read(VarId(1))));
        assert!(!ec.conflicts_with(&Access::write(VarId(9))));
    }

    #[test]
    fn trace_event_collection_accessor() {
        let ec = EventCollection::new();
        assert!(TraceEvent::Accesses(ec.clone()).collection().is_some());
        assert!(TraceEvent::Fork(Tid(1)).collection().is_none());
    }
}
