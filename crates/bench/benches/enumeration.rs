//! Criterion microbenchmarks for the sequential enumeration algorithms
//! (the per-cut cost behind every Table 1 column).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use paramount_enumerate::bfs::{self, BfsOptions};
use paramount_enumerate::dfs::{self, DfsOptions};
use paramount_enumerate::{lexical, CountSink};
use paramount_poset::{oracle, Poset};

fn medium_poset() -> Poset {
    // Size-guarded in paramount_bench::tests::bench_posets_are_modest.
    paramount_bench::bench_poset_medium()
}

fn bench_full_enumeration(c: &mut Criterion) {
    let poset = medium_poset();
    let cuts = oracle::count_ideals(&poset);
    let mut group = c.benchmark_group("full-enumeration");
    group.throughput(Throughput::Elements(cuts));

    group.bench_function(BenchmarkId::new("lexical", cuts), |b| {
        b.iter(|| {
            let mut sink = CountSink::default();
            lexical::enumerate(&poset, &mut sink).unwrap();
            assert_eq!(sink.count, cuts);
        })
    });
    group.bench_function(BenchmarkId::new("bfs", cuts), |b| {
        b.iter(|| {
            let mut sink = CountSink::default();
            bfs::enumerate(&poset, &BfsOptions::default(), &mut sink).unwrap();
            assert_eq!(sink.count, cuts);
        })
    });
    group.bench_function(BenchmarkId::new("dfs", cuts), |b| {
        b.iter(|| {
            let mut sink = CountSink::default();
            dfs::enumerate(&poset, &DfsOptions::default(), &mut sink).unwrap();
            assert_eq!(sink.count, cuts);
        })
    });
    group.finish();
}

fn bench_bounded_interval(c: &mut Criterion) {
    // The ParaMount subroutine cost: enumerate the largest interval of
    // the partition (the worst single task a worker can steal).
    let poset = medium_poset();
    let order = paramount_poset::topo::weight_order(&poset);
    let intervals = paramount::partition(&poset, &order);
    let largest = intervals
        .iter()
        .max_by_key(|iv| iv.box_size())
        .expect("non-empty");

    let mut group = c.benchmark_group("bounded-interval");
    group.bench_function("lexical", |b| {
        b.iter(|| {
            let mut sink = CountSink::default();
            lexical::enumerate_bounded(&poset, &largest.gmin, &largest.gbnd, &mut sink).unwrap();
            sink.count
        })
    });
    group.bench_function("bfs", |b| {
        b.iter(|| {
            let mut sink = CountSink::default();
            bfs::enumerate_bounded(
                &poset,
                &largest.gmin,
                &largest.gbnd,
                &BfsOptions::default(),
                &mut sink,
            )
            .unwrap();
            sink.count
        })
    });
    group.finish();
}

criterion_group!(benches, bench_full_enumeration, bench_bounded_interval);
criterion_main!(benches);
