//! Machine-readable perf records for the CI regression gate (the `perf`
//! binary): serialization, a dependency-free JSON reader, and the
//! comparison logic that decides pass/fail against a committed baseline.
//!
//! Two kinds of checks, deliberately separated:
//!
//! * **Self-consistency invariants** ([`self_check`]) hold on *any*
//!   machine and are always enforced — every algorithm visits the same
//!   cut set, the leveled walk's live state stays `O(n)`
//!   (`peak_frontiers == 1`), on wide workloads its heap peak stays
//!   below stored-frontier BFS, sparse clocks hold strictly less heap
//!   than dense vectors once the width reaches 256 (`clock-n*`
//!   workloads), and binary `paramount/2` framing moves events at least
//!   2× as fast as the text protocol over the same loopback socket
//!   (`ingest-loopback`). These are the properties the subsystems exist
//!   to deliver; a run that violates them is wrong regardless of how
//!   fast the machine is.
//! * **Baseline comparison** ([`compare`]) checks *relative* numbers
//!   (within-run throughput ratios, allocs/cut, frontier bytes) against
//!   `bench_results/baseline.json` inside a tolerance band. Absolute
//!   wall-clock never crosses machines, so only machine-stable ratios
//!   and deterministic counts are gated. A baseline marked
//!   `"bootstrap": true` has placeholder values: comparison is skipped
//!   (invariants still run) and CI uploads the fresh report as the
//!   candidate baseline to commit.

use std::fmt::Write as _;

/// One measured (workload, algorithm) cell.
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// Workload name (e.g. `d8-dense`, `w10-wide`).
    pub workload: String,
    /// Algorithm name as printed by `Algorithm::name()`.
    pub algo: String,
    /// Visited cuts — deterministic, compared exactly.
    pub cuts: u64,
    /// Wall-clock nanoseconds for the enumeration (machine-local;
    /// recorded for humans, never compared).
    pub elapsed_ns: u64,
    /// Visited cuts per second (machine-local; never compared directly).
    pub cuts_per_sec: f64,
    /// Peak stored frontiers reported by the enumerator — deterministic,
    /// compared exactly. The leveled walk must report 1.
    pub peak_frontiers: u64,
    /// Peak heap growth (bytes) during the run, from the counting
    /// allocator. Dominated by frontier storage; compared with
    /// tolerance.
    pub peak_frontier_bytes: u64,
    /// Allocation events during the run.
    pub allocs: u64,
    /// Allocation events per visited cut; compared with tolerance.
    pub allocs_per_cut: f64,
    /// Throughput normalized to the lexical scan on the same workload in
    /// the same run — the machine-independent speed signal the gate
    /// compares.
    pub rel_throughput: f64,
}

/// A full perf run: every record plus the bootstrap marker.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Report {
    /// True for the committed placeholder baseline produced before any
    /// real machine ran the bench: comparison is skipped, invariants are
    /// not.
    pub bootstrap: bool,
    /// All measured cells, in run order.
    pub records: Vec<Record>,
}

impl Report {
    /// Serializes to the `BENCH_perf.json` schema.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": 1,\n");
        let _ = writeln!(out, "  \"bootstrap\": {},", self.bootstrap);
        out.push_str("  \"records\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"workload\": \"{}\", \"algo\": \"{}\", \"cuts\": {}, \
                 \"elapsed_ns\": {}, \"cuts_per_sec\": {:.1}, \"peak_frontiers\": {}, \
                 \"peak_frontier_bytes\": {}, \"allocs\": {}, \"allocs_per_cut\": {:.4}, \
                 \"rel_throughput\": {:.4}}}",
                r.workload,
                r.algo,
                r.cuts,
                r.elapsed_ns,
                r.cuts_per_sec,
                r.peak_frontiers,
                r.peak_frontier_bytes,
                r.allocs,
                r.allocs_per_cut,
                r.rel_throughput
            );
            out.push_str(if i + 1 < self.records.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a report written by [`Report::to_json`] (or hand-edited —
    /// any standard JSON with the same shape).
    pub fn from_json(text: &str) -> Result<Report, String> {
        let value = parse_json(text)?;
        let obj = value.as_obj().ok_or("top level is not an object")?;
        let bootstrap = match find(obj, "bootstrap") {
            Some(Json::Bool(b)) => *b,
            None => false,
            Some(other) => return Err(format!("bootstrap is not a bool: {other:?}")),
        };
        let records_json = find(obj, "records")
            .and_then(Json::as_arr)
            .ok_or("missing records array")?;
        let mut records = Vec::new();
        for rec in records_json {
            let fields = rec.as_obj().ok_or("record is not an object")?;
            let str_field = |name: &str| -> Result<String, String> {
                find(fields, name)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("record missing string `{name}`"))
            };
            let num_field = |name: &str| -> Result<f64, String> {
                find(fields, name)
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("record missing number `{name}`"))
            };
            records.push(Record {
                workload: str_field("workload")?,
                algo: str_field("algo")?,
                cuts: num_field("cuts")? as u64,
                elapsed_ns: num_field("elapsed_ns")? as u64,
                cuts_per_sec: num_field("cuts_per_sec")?,
                peak_frontiers: num_field("peak_frontiers")? as u64,
                peak_frontier_bytes: num_field("peak_frontier_bytes")? as u64,
                allocs: num_field("allocs")? as u64,
                allocs_per_cut: num_field("allocs_per_cut")?,
                rel_throughput: num_field("rel_throughput")?,
            });
        }
        Ok(Report { bootstrap, records })
    }

    fn get(&self, workload: &str, algo: &str) -> Option<&Record> {
        self.records
            .iter()
            .find(|r| r.workload == workload && r.algo == algo)
    }
}

/// Machine-independent invariants on a single run. Returns human-readable
/// failures; empty means the run is internally sound.
pub fn self_check(report: &Report) -> Vec<String> {
    let mut failures = Vec::new();
    let mut workloads: Vec<&str> = report.records.iter().map(|r| r.workload.as_str()).collect();
    workloads.dedup();
    for w in workloads {
        let rows: Vec<&Record> = report.records.iter().filter(|r| r.workload == w).collect();
        // Exactly-once across subroutines: everyone sees the same lattice.
        for pair in rows.windows(2) {
            if pair[0].cuts != pair[1].cuts {
                failures.push(format!(
                    "{w}: cut counts disagree — {}={} vs {}={}",
                    pair[0].algo, pair[0].cuts, pair[1].algo, pair[1].cuts
                ));
            }
        }
        let leveled = rows.iter().find(|r| r.algo == "leveled");
        if let Some(lvl) = leveled {
            // The space bound the leveled walk exists for.
            if lvl.peak_frontiers != 1 {
                failures.push(format!(
                    "{w}: leveled peak_frontiers = {} (must regenerate, not store)",
                    lvl.peak_frontiers
                ));
            }
            // On wide lattices, stored-frontier BFS must pay measurably
            // more heap than regeneration. Narrow workloads are exempt:
            // their level sets are small enough that fixed overheads
            // dominate the comparison.
            if w.contains("wide") {
                if let Some(bfs) = rows.iter().find(|r| r.algo == "bfs") {
                    if lvl.peak_frontier_bytes >= bfs.peak_frontier_bytes {
                        failures.push(format!(
                            "{w}: leveled peak bytes {} not below bfs {}",
                            lvl.peak_frontier_bytes, bfs.peak_frontier_bytes
                        ));
                    }
                }
            }
        }
        // The sparse clock representation's claim: once the width
        // outgrows the causal neighborhood, sparse clocks must hold
        // strictly less heap than dense vectors on the same
        // communication pattern. Narrow widths are exempt — a dense
        // `n=8` vector is 32 bytes and per-entry bookkeeping can only
        // lose there.
        if let Some(width) = w
            .strip_prefix("clock-n")
            .and_then(|s| s.parse::<u64>().ok())
        {
            if width >= 256 {
                let dense = rows.iter().find(|r| r.algo == "dense");
                let sparse = rows.iter().find(|r| r.algo == "sparse");
                if let (Some(dense), Some(sparse)) = (dense, sparse) {
                    if sparse.peak_frontier_bytes >= dense.peak_frontier_bytes {
                        failures.push(format!(
                            "{w}: sparse peak bytes {} not below dense {}",
                            sparse.peak_frontier_bytes, dense.peak_frontier_bytes
                        ));
                    }
                }
            }
        }
        // The binary framing's claim: `paramount/2` must move events at
        // least twice as fast as the text protocol over the same
        // loopback socket (rel_throughput is normalized to the text row
        // in the same run, so the floor is machine-independent).
        if w == "ingest-loopback" {
            if let Some(binary) = rows.iter().find(|r| r.algo == "binary") {
                if binary.rel_throughput < 2.0 {
                    failures.push(format!(
                        "{w}: binary rel_throughput {:.2} below the 2.0x floor over text",
                        binary.rel_throughput
                    ));
                }
            }
        }
    }
    failures
}

/// Compares a fresh run against a baseline within `tolerance`
/// (fractional, e.g. `0.15`). Returns failures; empty means no
/// regression. Deterministic fields (cuts, peak frontiers) are exact;
/// ratio fields get the band. Records present in the baseline but
/// missing from the run fail — coverage must not silently shrink.
pub fn compare(current: &Report, baseline: &Report, tolerance: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for base in &baseline.records {
        let key = format!("{}/{}", base.workload, base.algo);
        let Some(cur) = current.get(&base.workload, &base.algo) else {
            failures.push(format!("{key}: in baseline but not measured"));
            continue;
        };
        if cur.cuts != base.cuts {
            failures.push(format!(
                "{key}: cuts {} != baseline {}",
                cur.cuts, base.cuts
            ));
        }
        if cur.peak_frontiers != base.peak_frontiers {
            failures.push(format!(
                "{key}: peak_frontiers {} != baseline {}",
                cur.peak_frontiers, base.peak_frontiers
            ));
        }
        if cur.rel_throughput < base.rel_throughput * (1.0 - tolerance) {
            failures.push(format!(
                "{key}: rel_throughput {:.3} regressed below baseline {:.3} (-{:.0}% band)",
                cur.rel_throughput,
                base.rel_throughput,
                tolerance * 100.0
            ));
        }
        if (cur.peak_frontier_bytes as f64) > (base.peak_frontier_bytes as f64) * (1.0 + tolerance)
        {
            failures.push(format!(
                "{key}: peak_frontier_bytes {} grew past baseline {} (+{:.0}% band)",
                cur.peak_frontier_bytes,
                base.peak_frontier_bytes,
                tolerance * 100.0
            ));
        }
        if cur.allocs_per_cut > base.allocs_per_cut * (1.0 + tolerance) + 0.01 {
            failures.push(format!(
                "{key}: allocs_per_cut {:.4} grew past baseline {:.4} (+{:.0}% band)",
                cur.allocs_per_cut,
                base.allocs_per_cut,
                tolerance * 100.0
            ));
        }
    }
    failures
}

/// A parsed JSON value. Only what the baseline reader needs — numbers
/// are `f64` (every gated integer fits well inside the 2^53 mantissa).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number literal.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

fn find<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Parses one JSON document. Recursive descent over bytes; no external
/// dependencies (the bench crate must not grow a serde edge for one
/// baseline file).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&ch) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", ch as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad keyword at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    other => return Err(format!("unsupported escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy a maximal run of plain bytes (UTF-8 passes through
                // untouched).
                let start = *pos;
                while *pos < bytes.len() && bytes[*pos] != b'"' && bytes[*pos] != b'\\' {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(workload: &str, algo: &str) -> Record {
        Record {
            workload: workload.to_string(),
            algo: algo.to_string(),
            cuts: 1000,
            elapsed_ns: 5_000_000,
            cuts_per_sec: 200_000.0,
            peak_frontiers: if algo == "leveled" { 1 } else { 64 },
            peak_frontier_bytes: if algo == "leveled" { 512 } else { 65536 },
            allocs: 40,
            allocs_per_cut: 0.04,
            rel_throughput: 1.0,
        }
    }

    #[test]
    fn json_roundtrip_preserves_records() {
        let report = Report {
            bootstrap: true,
            records: vec![record("w10-wide", "bfs"), record("w10-wide", "leveled")],
        };
        let parsed = Report::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed.bootstrap, report.bootstrap);
        assert_eq!(parsed.records.len(), 2);
        assert_eq!(parsed.records[0].workload, "w10-wide");
        assert_eq!(parsed.records[1].peak_frontiers, 1);
        assert_eq!(parsed.records[0].cuts, 1000);
    }

    #[test]
    fn parser_handles_nesting_escapes_and_rejects_garbage() {
        let v = parse_json(r#"{"a": [1, -2.5e3, "x\"y"], "b": {"c": null}}"#).unwrap();
        let Json::Obj(pairs) = v else { panic!() };
        assert_eq!(pairs[0].0, "a");
        assert_eq!(
            pairs[0].1,
            Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(-2500.0),
                Json::Str("x\"y".to_string())
            ])
        );
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("[1, 2] extra").is_err());
        assert!(parse_json("").is_err());
    }

    #[test]
    fn self_check_catches_each_invariant() {
        let mut report = Report {
            bootstrap: false,
            records: vec![record("w10-wide", "bfs"), record("w10-wide", "leveled")],
        };
        assert!(self_check(&report).is_empty());

        report.records[1].cuts = 999;
        assert!(self_check(&report)[0].contains("cut counts disagree"));
        report.records[1].cuts = 1000;

        report.records[1].peak_frontiers = 7;
        assert!(self_check(&report)[0].contains("peak_frontiers"));
        report.records[1].peak_frontiers = 1;

        report.records[1].peak_frontier_bytes = 1 << 30;
        assert!(self_check(&report)[0].contains("not below bfs"));
    }

    #[test]
    fn sparse_clocks_must_beat_dense_heap_at_wide_widths() {
        let mut report = Report {
            bootstrap: false,
            records: vec![
                record("clock-n1024", "dense"),
                record("clock-n1024", "sparse"),
            ],
        };
        report.records[0].peak_frontier_bytes = 8 << 20;
        report.records[1].peak_frontier_bytes = 1 << 20;
        assert!(self_check(&report).is_empty());

        report.records[1].peak_frontier_bytes = 8 << 20;
        assert!(self_check(&report)[0].contains("not below dense"));

        // Below the 256 threshold the dense layout is allowed to win.
        for r in &mut report.records {
            r.workload = "clock-n64".to_string();
        }
        assert!(self_check(&report).is_empty());
    }

    #[test]
    fn binary_framing_must_clear_the_2x_throughput_floor() {
        let mut report = Report {
            bootstrap: false,
            records: vec![
                record("ingest-loopback", "text"),
                record("ingest-loopback", "binary"),
            ],
        };
        report.records[1].rel_throughput = 3.1;
        assert!(self_check(&report).is_empty());

        report.records[1].rel_throughput = 1.4;
        assert!(self_check(&report)[0].contains("2.0x floor"));
    }

    #[test]
    fn narrow_workloads_skip_the_bytes_invariant() {
        let mut report = Report {
            bootstrap: false,
            records: vec![record("d8-dense", "bfs"), record("d8-dense", "leveled")],
        };
        report.records[1].peak_frontier_bytes = 1 << 30;
        assert!(self_check(&report).is_empty());
    }

    #[test]
    fn compare_is_exact_on_counts_and_banded_on_ratios() {
        let baseline = Report {
            bootstrap: false,
            records: vec![record("w10-wide", "leveled")],
        };
        let mut current = baseline.clone();
        assert!(compare(&current, &baseline, 0.15).is_empty());

        // Inside the band: fine.
        current.records[0].rel_throughput = 0.90;
        current.records[0].peak_frontier_bytes = 560;
        assert!(compare(&current, &baseline, 0.15).is_empty());

        // Outside: each trips its own failure.
        current.records[0].rel_throughput = 0.80;
        current.records[0].peak_frontier_bytes = 1024;
        current.records[0].cuts = 1001;
        let failures = compare(&current, &baseline, 0.15);
        assert_eq!(failures.len(), 3, "{failures:?}");
        assert!(failures.iter().any(|f| f.contains("cuts")));
        assert!(failures.iter().any(|f| f.contains("rel_throughput")));
        assert!(failures.iter().any(|f| f.contains("peak_frontier_bytes")));
    }

    #[test]
    fn missing_coverage_fails_the_gate() {
        let baseline = Report {
            bootstrap: false,
            records: vec![record("w10-wide", "leveled"), record("w10-wide", "bfs")],
        };
        let current = Report {
            bootstrap: false,
            records: vec![record("w10-wide", "leveled")],
        };
        let failures = compare(&current, &baseline, 0.15);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("not measured"));
    }
}
