//! Criterion microbenchmarks for the substrates: vector clocks, frontier
//! operations, the lock-free event store, and trace capture.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use paramount::store::AppendVec;
use paramount_poset::random::RandomComputation;
use paramount_poset::{EventId, Frontier, Tid};
use paramount_vclock::VectorClock;

fn bench_vector_clock(c: &mut Criterion) {
    let a = VectorClock::from_components((0..16).map(|i| i * 3).collect());
    let b = VectorClock::from_components((0..16).map(|i| 50 - i).collect());
    let mut group = c.benchmark_group("vclock");
    group.bench_function("join-16", |bch| {
        bch.iter(|| {
            let mut x = a.clone();
            x.join(&b);
            x
        })
    });
    group.bench_function("cmp-16", |bch| bch.iter(|| a.partial_cmp_hb(&b)));
    group.bench_function("le-16", |bch| bch.iter(|| a.le(&b)));
    group.finish();
}

fn bench_frontier_ops(c: &mut Criterion) {
    let poset = RandomComputation::new(10, 20, 0.7, 3).generate();
    let g = poset.final_frontier();
    let mid = Frontier::from_clock(poset.vc(EventId::new(Tid(5), 10)));
    let mut group = c.benchmark_group("frontier");
    group.bench_function("is-consistent", |b| b.iter(|| mid.is_consistent(&poset)));
    group.bench_function("leq", |b| b.iter(|| mid.leq(&g)));
    group.bench_function("enables", |b| {
        let next = EventId::new(Tid(0), mid.get(Tid(0)) + 1);
        b.iter(|| mid.enables(&poset, next))
    });
    group.finish();
}

fn bench_append_vec(c: &mut Criterion) {
    let mut group = c.benchmark_group("append-vec");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("push-10k", |b| {
        b.iter(|| {
            let v: AppendVec<u64> = AppendVec::new();
            for i in 0..10_000u64 {
                v.push(i);
            }
            v.len()
        })
    });
    group.bench_function("get-hot", |b| {
        let v: AppendVec<u64> = AppendVec::new();
        for i in 0..10_000u64 {
            v.push(i);
        }
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 9973) % 10_000;
            *v.get(i).unwrap()
        })
    });
    group.finish();
}

fn bench_partition_and_topo(c: &mut Criterion) {
    let poset = RandomComputation::new(10, 50, 0.8, 9).generate();
    let mut group = c.benchmark_group("partition");
    group.throughput(Throughput::Elements(poset.num_events() as u64));
    group.bench_function("weight-order", |b| {
        b.iter(|| paramount_poset::topo::weight_order(&poset).len())
    });
    group.bench_function("kahn-order", |b| {
        b.iter(|| paramount_poset::topo::kahn_order(&poset).len())
    });
    let order = paramount_poset::topo::weight_order(&poset);
    group.bench_function("intervals", |b| {
        b.iter(|| paramount::partition(&poset, &order).len())
    });
    group.finish();
}

fn bench_trace_capture(c: &mut Criterion) {
    use paramount_trace::sim::SimScheduler;
    use paramount_workloads::hedc;
    let program = hedc::program(&hedc::Params {
        workers: 7,
        tasks: 4,
    });
    let mut group = c.benchmark_group("trace");
    group.throughput(Throughput::Elements(program.num_ops() as u64));
    group.bench_function("sim-capture-hedc", |b| {
        b.iter(|| SimScheduler::new(1).run(&program).num_events())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_vector_clock,
    bench_frontier_ops,
    bench_append_vec,
    bench_partition_and_topo,
    bench_trace_capture
);
criterion_main!(benches);
