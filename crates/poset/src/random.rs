//! Random distributed computations — the paper's `d-*` benchmarks.
//!
//! The evaluation's `d-300`, `d-500` and `d-10K` inputs are "randomly
//! generated posets for modeling distributed computations": `n` processes
//! each executing a sequence of events, with messages creating cross-process
//! happened-before edges. This module reproduces that model with a seeded
//! generator so every benchmark row is reproducible.
//!
//! The message model: a process with a pending incoming message always
//! consumes it at its next event (a *receive*, adding the
//! `send → receive` edge); otherwise the event is a *send* to a uniformly
//! random other process with probability `message_fraction`, else an
//! *internal* event. Eager receipt makes the fraction an effective
//! density knob: 0.0 yields independent chains (maximal lattice
//! `∏(|E_i|+1)`), values near 1.0 an almost totally ordered computation.

use crate::builder::PosetBuilder;
use crate::Poset;
use paramount_vclock::Tid;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Configuration for one random distributed computation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RandomComputation {
    /// Number of processes (the paper's `n`; 10 for the `d-*` posets).
    pub processes: usize,
    /// Events per process (total events = `processes * events_per_process`).
    pub events_per_process: usize,
    /// Probability that an event attempts to be a send (and, symmetrically,
    /// that an event consumes a pending message when one is available).
    pub message_fraction: f64,
    /// RNG seed; same seed ⇒ same poset.
    pub seed: u64,
}

impl RandomComputation {
    /// Convenience constructor.
    pub fn new(
        processes: usize,
        events_per_process: usize,
        message_fraction: f64,
        seed: u64,
    ) -> Self {
        RandomComputation {
            processes,
            events_per_process,
            message_fraction,
            seed,
        }
    }

    /// Total number of events this configuration generates.
    pub fn total_events(&self) -> usize {
        self.processes * self.events_per_process
    }

    /// Generates the poset.
    pub fn generate(&self) -> Poset {
        self.generate_with_payload(|_, _| ())
    }

    /// Generates the poset, attaching `payload(tid, kind)` to each event.
    pub fn generate_with_payload<P>(
        &self,
        mut payload: impl FnMut(Tid, RandomEventKind) -> P,
    ) -> Poset<P> {
        assert!(self.processes > 0, "need at least one process");
        assert!(
            (0.0..=1.0).contains(&self.message_fraction),
            "message_fraction must be a probability"
        );
        let n = self.processes;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut builder = PosetBuilder::new(n);
        // Pending messages per destination process: the sending EventId.
        let mut inboxes: Vec<VecDeque<crate::EventId>> = vec![VecDeque::new(); n];
        // Remaining quota per process.
        let mut remaining: Vec<usize> = vec![self.events_per_process; n];
        let mut alive: Vec<usize> = (0..n).filter(|&i| remaining[i] > 0).collect();

        while !alive.is_empty() {
            // Pick a random process that still has quota — this interleaves
            // the processes, so message edges can point in any direction.
            let slot = rng.gen_range(0..alive.len());
            let p = alive[slot];
            let t = Tid::from(p);

            let id = if !inboxes[p].is_empty() {
                // Eager, batched receive: the destination's next event
                // consumes *every* pending message (join of all senders'
                // clocks). Without eager batching, high send rates just
                // pile up unconsumed messages and the density knob stops
                // controlling the lattice size.
                let sends: Vec<crate::EventId> = inboxes[p].drain(..).collect();
                builder.append_after(t, &sends, payload(t, RandomEventKind::Receive))
            } else if rng.gen_bool(self.message_fraction) && n > 1 {
                // Send to a uniformly random other process.
                let mut dest = rng.gen_range(0..n - 1);
                if dest >= p {
                    dest += 1;
                }
                let id = builder.append(t, payload(t, RandomEventKind::Send));
                inboxes[dest].push_back(id);
                id
            } else {
                builder.append(t, payload(t, RandomEventKind::Internal))
            };
            let _ = id;

            remaining[p] -= 1;
            if remaining[p] == 0 {
                alive.swap_remove(slot);
            }
        }
        builder.finish()
    }
}

/// What a generated event was, for payload attachment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RandomEventKind {
    /// Purely local event.
    Internal,
    /// Message send (creates an edge to a later receive, if consumed).
    Send,
    /// Message receive (has an incoming edge from its send).
    Receive,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::count_ideals;

    #[test]
    fn deterministic_per_seed() {
        let a = RandomComputation::new(4, 8, 0.5, 42).generate();
        let b = RandomComputation::new(4, 8, 0.5, 42).generate();
        assert_eq!(a.num_events(), b.num_events());
        for (ea, eb) in a.events().zip(b.events()) {
            assert_eq!(ea.id, eb.id);
            assert_eq!(ea.vc, eb.vc);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = RandomComputation::new(4, 8, 0.5, 1).generate();
        let b = RandomComputation::new(4, 8, 0.5, 2).generate();
        let same = a.events().zip(b.events()).all(|(ea, eb)| ea.vc == eb.vc);
        assert!(!same, "two seeds produced identical computations");
    }

    #[test]
    fn shape_matches_configuration() {
        let cfg = RandomComputation::new(5, 7, 0.3, 9);
        let p = cfg.generate();
        assert_eq!(p.num_threads(), 5);
        assert_eq!(p.num_events(), cfg.total_events());
        for t in Tid::all(5) {
            assert_eq!(p.events_of(t), 7);
        }
    }

    #[test]
    fn zero_fraction_yields_independent_chains() {
        let p = RandomComputation::new(3, 4, 0.0, 7).generate();
        // No messages: lattice is the full product (4+1)^3.
        assert_eq!(count_ideals(&p), 125);
    }

    #[test]
    fn high_fraction_shrinks_the_lattice() {
        let loose = RandomComputation::new(3, 5, 0.1, 11).generate();
        let tight = RandomComputation::new(3, 5, 0.9, 11).generate();
        assert!(
            count_ideals(&tight) < count_ideals(&loose),
            "more messages should mean fewer consistent cuts"
        );
    }

    #[test]
    fn single_process_is_a_chain() {
        let p = RandomComputation::new(1, 10, 0.5, 3).generate();
        assert_eq!(count_ideals(&p), 11);
    }

    #[test]
    fn payload_reflects_event_kinds() {
        let cfg = RandomComputation::new(3, 10, 0.8, 5);
        let p = cfg.generate_with_payload(|_, kind| kind);
        let sends = p
            .events()
            .filter(|e| *e.payload() == RandomEventKind::Send)
            .count();
        let receives = p
            .events()
            .filter(|e| *e.payload() == RandomEventKind::Receive)
            .count();
        assert!(sends >= receives, "every receive consumes a send");
        assert!(sends > 0, "fraction 0.8 must generate sends");
    }

    impl<P> crate::Event<P> {
        fn payload(&self) -> &P {
            &self.payload
        }
    }
}
