#!/usr/bin/env bash
# Regenerates every table and figure of the paper into bench_results/.
#
#   ./run_experiments.sh           # Default scale (minutes)
#   ./run_experiments.sh --smoke   # quick pass (seconds–minute)
#   ./run_experiments.sh --full    # paper-exact sizes (hours)
#
# Each metered binary also drops its engine-metrics JSON lines next to
# its table (bench_results/<target>.metrics.jsonl).
set -euo pipefail
cd "$(dirname "$0")"

if ! command -v cargo >/dev/null 2>&1; then
    echo "error: cargo not found on PATH — install a Rust toolchain (rustup.rs) first" >&2
    exit 1
fi

SCALE="${1:-}"
OUT=bench_results
mkdir -p "$OUT"

echo "building (release)..."
if ! cargo build --release -p paramount-bench --bins -p paramount-cli; then
    echo "error: release build failed — not running any experiment" >&2
    exit 1
fi

# The CLI owns the algorithm inventory: new subroutines (leveled, auto,
# ...) flow into the perf sweep without touching this script.
ALGOS=$(target/release/paramount list-algorithms | paste -sd, -)
echo "algorithms: $ALGOS"

# table3 is the qualitative comparison — nothing to meter there.
METERED="table1 fig10 fig11 fig12 table2"

for target in table1 fig10 fig11 fig12 table2 table3; do
    echo "== $target $SCALE"
    extra=()
    if [[ " $METERED " == *" $target "* ]]; then
        extra=(--metrics-out "$OUT/$target.metrics.jsonl")
    fi
    cargo run --release -q -p paramount-bench --bin "$target" -- $SCALE "${extra[@]}" \
        | tee "$OUT/$target.txt"
done

echo "== perf (per-algorithm gate workloads)"
cargo run --release -q -p paramount-bench --bin perf -- \
    --algos "$ALGOS" --out "$OUT" --check "$OUT/baseline.json" \
    | tee "$OUT/perf.txt"

echo
echo "results written to $OUT/"
