//! Crash-safe storage primitives for ParaMount.
//!
//! Everything stateful in the daemon — the spill deque, the live poset,
//! the quarantine ledger — is memory-only unless it passes through this
//! crate. Three pieces, all hand-rolled over `std` (no dependencies, in
//! the same spirit as the `paramount/1` text codec in `proto.rs`):
//!
//! * [`varint`] — the LEB128 codec shared with `Interval::pack_into`
//!   (the engine crates re-export it from here, so there is exactly one
//!   implementation in the workspace).
//! * [`wal`] — a segmented append-only log of length-prefixed,
//!   CRC32-checksummed records with torn-tail truncation on open,
//!   configurable fsync policy, and LSM-style compaction: a checkpoint
//!   record written through [`wal::Wal::compact`] supersedes every
//!   earlier segment, which are then deleted.
//! * [`fifo`] — [`fifo::DiskQueue`], an on-disk FIFO of checksummed
//!   byte batches backing the cold tier of the interval spill queue.
//!   Deliberately *not* fsynced: the WAL is authoritative and a crash
//!   regenerates spilled intervals by replay, so the cold tier trades
//!   durability for write speed.
//!
//! The crash model: a process may die (kill -9) at any instruction. A
//! record either round-trips bit-exactly or is detected (length or CRC
//! mismatch) and truncated away with everything after it; replay
//! therefore always yields an exact committed prefix of what was
//! appended.

pub mod crc32;
pub mod fifo;
pub mod varint;
pub mod wal;

pub use crc32::crc32;
pub use fifo::DiskQueue;
pub use wal::{FsyncPolicy, Record, Wal, WalConfig};
