//! Wall-clock helpers for the harness binaries.

use std::time::{Duration, Instant};

/// Times one run of `f`, returning its result and the elapsed time.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// Times one run of `f`, returning its result and elapsed seconds.
pub fn time_secs<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let (value, d) = time(f);
    (value, d.as_secs_f64())
}

/// Formats a duration the way the paper's tables do: seconds with one
/// decimal for long runs, milliseconds for short ones.
pub fn human(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.1}s")
    } else {
        format!("{:.1}ms", s * 1e3)
    }
}

/// Speedup of `base` over `run` (how many times faster `run` is).
pub fn speedup(base: Duration, run: Duration) -> f64 {
    base.as_secs_f64() / run.as_secs_f64().max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_measures_and_returns() {
        let (v, d) = time(|| {
            std::thread::sleep(Duration::from_millis(10));
            42
        });
        assert_eq!(v, 42);
        assert!(d >= Duration::from_millis(9));
    }

    #[test]
    fn human_formats() {
        assert_eq!(human(Duration::from_millis(2500)), "2.5s");
        assert_eq!(human(Duration::from_micros(1500)), "1.5ms");
    }

    #[test]
    fn speedup_ratio() {
        let s = speedup(Duration::from_secs(8), Duration::from_secs(2));
        assert!((s - 4.0).abs() < 1e-9);
    }
}
