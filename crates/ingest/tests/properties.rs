//! Property-based laws for the `paramount/2` binary codec.
//!
//! The unit tests in `wire2.rs` pin concrete byte layouts; these
//! properties pin the *contract* over arbitrary inputs: streams survive
//! any chunking, every torn tail is `Incomplete` (never an error),
//! stateless records reject both truncation and trailing bytes, and the
//! clock codec is a faithful inverse that consumes exactly its own
//! bytes.

use paramount_ingest::wire2::{TAG_END, TAG_FLUSH};
use paramount_ingest::{
    decode_event_record, encode_event_record, push_clock, read_clock, ClientFrame, Dec, Enc, Step,
    WireOp,
};
use paramount_vclock::VectorClock;
use proptest::prelude::*;

/// Short lowercase names drawn from a small alphabet so repeated names —
/// and therefore the interning path — show up in most generated streams.
fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,7}"
}

fn arb_op() -> impl Strategy<Value = WireOp> {
    prop_oneof![
        arb_name().prop_map(WireOp::Read),
        arb_name().prop_map(WireOp::Write),
        arb_name().prop_map(WireOp::Acquire),
        arb_name().prop_map(WireOp::Release),
        (0usize..64).prop_map(WireOp::Fork),
        (0usize..64).prop_map(WireOp::Join),
        any::<u32>().prop_map(WireOp::Work),
    ]
}

fn arb_events() -> impl Strategy<Value = Vec<(usize, WireOp)>> {
    prop::collection::vec((0usize..64, arb_op()), 0..24)
}

/// Sparse clocks of width `n` with up to 24 nonzero entries; a BTreeMap
/// strategy hands us distinct in-range tids for free.
fn arb_sparse_clock() -> impl Strategy<Value = VectorClock> {
    (1usize..2048).prop_flat_map(|n| {
        prop::collection::btree_map(0..n as u32, 1u32..1_000_000, 0..n.min(24) + 1)
            .prop_map(move |entries| VectorClock::from_entries(n, entries.into_iter().collect()))
    })
}

fn arb_dense_clock() -> impl Strategy<Value = VectorClock> {
    prop::collection::vec(0u32..50, 1..64).prop_map(VectorClock::from_components)
}

/// Encodes `events` as one v2 stream followed by FLUSH + END.
fn encode_stream(events: &[(usize, WireOp)]) -> Vec<u8> {
    let mut enc = Enc::new();
    let mut wire = Vec::new();
    for (tid, op) in events {
        enc.push_event(&mut wire, *tid, op);
    }
    enc.push_bare(&mut wire, TAG_FLUSH);
    enc.push_bare(&mut wire, TAG_END);
    wire
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any event sequence, delivered in any fixed chunk size, decodes
    /// back to exactly the frames that were encoded — interning, tid
    /// deltas, and frame reassembly are all invisible to the caller.
    #[test]
    fn streams_round_trip_under_arbitrary_chunking(
        events in arb_events(),
        chunk in 1usize..9,
    ) {
        let wire = encode_stream(&events);
        let mut dec = Dec::new();
        let mut got = Vec::new();
        let mut tail = Vec::new();
        for piece in wire.chunks(chunk) {
            dec.extend(piece);
            loop {
                match dec.next_frame() {
                    Ok(Step::Frame(ClientFrame::Event { tid, op })) => got.push((tid, op)),
                    Ok(Step::Frame(frame)) => tail.push(frame),
                    Ok(Step::Incomplete) => break,
                    Err(err) => {
                        prop_assert!(false, "well-formed stream rejected: {err:?}");
                    }
                }
            }
        }
        prop_assert_eq!(got, events);
        prop_assert_eq!(tail, vec![ClientFrame::Flush, ClientFrame::End]);
        prop_assert_eq!(dec.pending(), 0);
    }

    /// Every strict prefix of a valid stream is merely torn: the decoder
    /// reports `Incomplete` and waits, it never diagnoses an error. This
    /// is what makes half-received TCP segments safe.
    #[test]
    fn torn_prefixes_are_incomplete_never_errors(events in arb_events()) {
        let wire = encode_stream(&events);
        for cut in 0..wire.len() {
            let mut dec = Dec::new();
            dec.extend(&wire[..cut]);
            loop {
                match dec.next_frame() {
                    Ok(Step::Frame(_)) => {}
                    Ok(Step::Incomplete) => break,
                    Err(err) => {
                        prop_assert!(false, "torn prefix at {cut} treated as fatal: {err:?}");
                    }
                }
            }
        }
    }

    /// Stateless WAL records are a faithful inverse, and their framing is
    /// exact: any missing byte *or* any trailing byte is rejected.
    #[test]
    fn event_records_round_trip_exactly(tid in 0usize..1024, op in arb_op()) {
        let record = encode_event_record(tid, &op);
        let decoded = decode_event_record(&record);
        prop_assert!(decoded.is_ok(), "own record rejected: {decoded:?}");
        prop_assert_eq!(decoded.unwrap(), (tid, op));
        for cut in 0..record.len() {
            prop_assert!(decode_event_record(&record[..cut]).is_err());
        }
        let mut padded = record.clone();
        padded.push(0);
        prop_assert!(decode_event_record(&padded).is_err());
    }

    /// Interning and tid deltas only ever help: a shared-state stream is
    /// never larger than the same events as independent records.
    #[test]
    fn streaming_never_beats_stateless_records(events in arb_events()) {
        let mut enc = Enc::new();
        let mut streamed = Vec::new();
        let mut stateless = 0usize;
        for (tid, op) in &events {
            enc.push_event(&mut streamed, *tid, op);
            stateless += encode_event_record(*tid, op).len();
        }
        prop_assert!(streamed.len() <= stateless);
    }

    /// The clock codec round-trips sparse clocks and consumes exactly its
    /// own bytes, so it can be embedded mid-buffer.
    #[test]
    fn sparse_clocks_round_trip(clock in arb_sparse_clock(), garbage in any::<u8>()) {
        let mut buf = Vec::new();
        push_clock(&mut buf, clock.view());
        let body = buf.len();
        buf.push(garbage);
        let mut at = 0;
        let back = read_clock(&buf, &mut at);
        prop_assert_eq!(back, Some(clock));
        prop_assert_eq!(at, body);
    }

    /// Dense clocks survive the same codec; the decoded value compares
    /// equal even though it comes back in the sparse representation.
    #[test]
    fn dense_clocks_round_trip(clock in arb_dense_clock()) {
        let mut buf = Vec::new();
        push_clock(&mut buf, clock.view());
        let mut at = 0;
        prop_assert_eq!(read_clock(&buf, &mut at), Some(clock));
        prop_assert_eq!(at, buf.len());
    }

    /// A truncated clock body is always detected: no strict prefix of a
    /// valid encoding decodes, and none of them panic.
    #[test]
    fn truncated_clock_bodies_are_rejected(clock in arb_sparse_clock()) {
        let mut buf = Vec::new();
        push_clock(&mut buf, clock.view());
        for cut in 0..buf.len() {
            let mut at = 0;
            prop_assert!(read_clock(&buf[..cut], &mut at).is_none());
        }
    }
}
